"""End-to-end RoboX pipeline: DSL program -> solver -> accelerator.

Walks the full toolchain of the paper on its own §IV example:

1. the RoboX DSL source for the mobile robot and its ``moveTo`` task,
2. semantic analysis into the model/task IR and a closed-loop MPC solve,
3. the Program Translator's macro dataflow graph,
4. Algorithm-1 mapping + static schedule (cycle estimate at the Table IV
   design point), and
5. the functional fixed-point simulator executing the dynamics phase on the
   modeled silicon, compared against double precision.

Run:
    python examples/dsl_to_accelerator.py
"""

import numpy as np

from repro.accelerator import simulate_phase
from repro.compiler import MachineConfig, Translator, compile_problem
from repro.dsl import compile_program
from repro.mpc import InteriorPointSolver, TranscribedProblem

PROGRAM = """
// The paper's Section IV walkthrough, verbatim structure.
System MobileRobot( param vel_bound, param ang_bound ) {
  // system states
  state pos[2], angle;
  // system inputs
  input vel, ang_vel;
  // system dynamics
  pos[0].dt = vel * cos(angle);
  pos[1].dt = vel * sin(angle);
  angle.dt = ang_vel;
  // physical constraints
  vel.lower_bound <= -vel_bound;
  vel.upper_bound <= vel_bound;
  ang_vel.lower_bound <= -ang_bound;
  ang_vel.upper_bound <= ang_bound;

  Task moveTo( reference desired_x, reference desired_y,
               param weight, param radius ) {
    penalty target_x, target_y;
    target_x.running = pos[0] - desired_x;
    target_y.running = pos[1] - desired_y;
    target_x.weight <= weight;
    target_y.weight <= weight;
    range i[0:2];
    constraint pos_bound;
    pos_bound.running = norm[i](pos[i]);
    pos_bound.upper_bound <= radius;
  }
}
reference desired_x;
reference desired_y;
MobileRobot robot(1.0, 2.0);
robot.moveTo(desired_x, desired_y, 10, 5.0);
"""


def main() -> None:
    # -- 1+2: frontend and solve --------------------------------------------------
    analysis = compile_program(PROGRAM)
    model, task = analysis.model, analysis.task
    print(f"DSL produced {model} and {task}")

    problem = TranscribedProblem(model, task, horizon=16, dt=0.1)
    solver = InteriorPointSolver(problem)
    target = np.array([0.8, 0.5])
    result = solver.solve(np.zeros(3), ref=target)
    xs, _ = problem.split(result.z)
    print(
        f"MPC solve: converged={result.converged} iters={result.iterations} "
        f"horizon-end=({xs[-1, 0]:.3f}, {xs[-1, 1]:.3f})"
    )

    # -- 3: Program Translator -------------------------------------------------------
    info = Translator(problem).info()
    print(f"\nM-DFG: {info.n_nodes} nodes, phases {info.phases}")
    print(
        f"  group aggregations: {info.group_nodes}, "
        f"solver kernels: {info.kernel_nodes}"
    )
    dyn_ops = sum(info.op_counts_per_phase["dynamics"].values())
    solver_ops = sum(info.op_counts_per_phase["solver"].values())
    print(f"  ops/iteration: dynamics {dyn_ops}, solver kernels {solver_ops}")

    # -- 4: Controller Compiler (Table IV design point) ---------------------------------
    machine = MachineConfig()
    graph, pm, schedule = compile_problem(problem, machine)
    print(
        f"\nstatic schedule on {machine.n_cus} CUs "
        f"({machine.n_ccs} clusters): {schedule.instruction_count} "
        f"instructions, {schedule.cycles_per_iteration:,.0f} cycles/iteration "
        f"({schedule.seconds_per_iteration() * 1e6:.1f} us at 1 GHz)"
    )
    print(f"  CU utilization (Algorithm-1 map): {pm.utilization():.0%}")

    # Ablation: the same problem without the compute-enabled interconnect.
    _, _, ablated = compile_problem(
        problem, MachineConfig(compute_enabled_interconnect=False)
    )
    print(
        "  without compute-enabled interconnect: "
        f"{ablated.cycles_per_iteration:,.0f} cycles "
        f"({ablated.cycles_per_iteration / schedule.cycles_per_iteration:.2f}x)"
    )

    # -- 5: functional fixed-point simulation of the dynamics phase ----------------------
    inputs = {
        "pos[0]": 0.3,
        "pos[1]": -0.1,
        "angle": 0.4,
        "vel": 0.7,
        "ang_vel": 0.5,
    }
    sim, ref = simulate_phase(problem, "dynamics", inputs)
    print(
        f"\nfixed-point simulation (Q14.17, 4096-entry LUTs): "
        f"{sim.cycles} cycles, {sim.aggregation_waves} interconnect waves"
    )
    worst = 0.0
    for key in sorted(ref):
        err = abs(sim.outputs[key] - ref[key])
        worst = max(worst, err)
        print(
            f"  {key}: accelerator {sim.outputs[key]:+.6f} "
            f"float64 {ref[key]:+.6f} |err| {err:.2e}"
        )
    print(f"worst-case fixed-point error: {worst:.2e} (paper: negligible)")
    assert worst < 1e-3
    print("end-to-end pipeline complete.")


if __name__ == "__main__":
    main()
