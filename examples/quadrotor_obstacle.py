"""Quadrotor motion planning around an obstacle (the paper's Fig. 1b story).

The 12-state quadrotor benchmark flies from hover at (0, 0, 1) to a waypoint
at (1.2, 1.2, 1.0) while a spherical obstacle (the "balloon") sits directly
on the straight-line path.  The running obstacle-clearance constraint forces
the planner to curve around it; the script logs the closest approach.

Run:
    python examples/quadrotor_obstacle.py
"""

import numpy as np

from repro.mpc.controller import integrate_plant
from repro.robots import build_benchmark
from repro.robots.quadrotor import QuadrotorParams, build_benchmark as build_quad


def main() -> None:
    params = QuadrotorParams()
    bench = build_quad(params)
    problem = bench.transcribe(horizon=12)
    controller = bench.make_controller(problem, max_iterations=30)

    x = bench.x0.copy()
    waypoint = bench.ref
    center = np.array(params.obstacle_center)

    print(f"flying {bench.name} from {x[:3]} to waypoint {waypoint}")
    print(
        f"obstacle: center {center}, radius {params.obstacle_radius} m "
        "(in the way of the straight line)"
    )

    min_clearance = np.inf
    for step in range(40):
        u = controller.step(x, ref=waypoint)
        x = integrate_plant(problem, x, u)
        clearance = np.linalg.norm(x[:3] - center)
        min_clearance = min(min_clearance, clearance)
        if step % 8 == 0:
            dist = np.linalg.norm(x[:3] - waypoint)
            print(
                f"  t={step * problem.dt:5.2f}s pos=({x[0]:+.2f}, {x[1]:+.2f}, "
                f"{x[2]:+.2f}) dist-to-goal={dist:.3f} clearance={clearance:.3f} "
                f"solver_its={controller.last_result.iterations}"
            )

    dist = np.linalg.norm(x[:3] - waypoint)
    print(f"final distance to waypoint: {dist:.3f} m")
    print(
        f"closest obstacle approach: {min_clearance:.3f} m "
        f"(constraint radius {params.obstacle_radius} m)"
    )
    assert dist < 0.35, "did not reach the waypoint region"
    assert min_clearance > 0.9 * params.obstacle_radius, "clipped the obstacle"
    print("waypoint reached with the obstacle respected. done.")


if __name__ == "__main__":
    main()
