"""MicroSat attitude recovery: detumble and re-point under tiny actuators.

The 8-state microsatellite benchmark starts ~11 degrees off its nadir
attitude with a residual tumble.  The MPC controller must bring it back
using four coupled torque actuators limited to 10 mN·m each, while the
shared-power-bus constraints cap how hard actuator pairs can fire together
and the momentum state guards against wheel saturation.

Run:
    python examples/satellite_detumble.py
"""

import numpy as np

from repro.mpc.controller import integrate_plant
from repro.robots import build_benchmark


def attitude_error_deg(q: np.ndarray, q_ref: np.ndarray) -> float:
    """Rotation angle between two quaternions, in degrees."""
    dot = abs(float(np.dot(q, q_ref)) / (np.linalg.norm(q) * np.linalg.norm(q_ref)))
    return float(np.degrees(2.0 * np.arccos(min(dot, 1.0))))


def main() -> None:
    bench = build_benchmark("MicroSat")
    problem = bench.transcribe(horizon=12)
    controller = bench.make_controller(problem, max_iterations=30)

    x = bench.x0.copy()
    q_ref = bench.ref
    print(f"initial attitude error: {attitude_error_deg(x[:4], q_ref):.2f} deg")
    print(f"initial body rates: {x[4:7]} rad/s")

    history = []
    for step in range(24):
        u = controller.step(x, ref=q_ref)
        x = integrate_plant(problem, x, u, substeps=8)
        err = attitude_error_deg(x[:4], q_ref)
        rate = float(np.abs(x[4:7]).max())
        history.append((err, rate))
        if step % 4 == 0:
            print(
                f"  t={step * problem.dt:6.2f}s attitude_err={err:6.3f} deg "
                f"max_rate={rate:.4f} rad/s momentum={x[7]:+.4f} "
                f"|u|max={np.abs(u).max() * 1e3:.2f} mNm "
                f"its={controller.last_result.iterations}"
            )

    final_err, final_rate = history[-1]
    print(f"\nfinal attitude error: {final_err:.3f} deg")
    print(f"final max body rate: {final_rate:.5f} rad/s")
    # Quaternion norm must have been preserved through the maneuver.
    norm = float(np.linalg.norm(x[:4]))
    print(f"quaternion norm: {norm:.6f}")

    assert final_err < 0.35 * attitude_error_deg(bench.x0[:4], q_ref)
    assert final_rate < 0.05
    assert abs(norm - 1.0) < 0.02
    print("satellite detumbled and re-pointed. done.")


if __name__ == "__main__":
    main()
