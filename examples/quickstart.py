"""Quickstart: define a robot, transcribe its task, and run closed-loop MPC.

This is the 60-second tour of the library using the Python builder API: a
differential-drive mobile robot (the paper's running example) drives to a
waypoint under actuator bounds.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro.mpc import (
    InteriorPointSolver,
    MPCController,
    Penalty,
    RobotModel,
    Task,
    TranscribedProblem,
    VarSpec,
)
from repro.symbolic import Var, cos, sin


def build_robot() -> RobotModel:
    """Unicycle kinematics with bounded velocity commands."""
    vel, ang_vel, angle = Var("vel"), Var("ang_vel"), Var("angle")
    return RobotModel(
        name="MobileRobot",
        states=[VarSpec("pos[0]"), VarSpec("pos[1]"), VarSpec("angle")],
        inputs=[
            VarSpec("vel", -1.0, 1.0),
            VarSpec("ang_vel", -2.0, 2.0),
        ],
        dynamics={
            "pos[0]": vel * cos(angle),
            "pos[1]": vel * sin(angle),
            "angle": ang_vel,
        },
    )


def build_task(model: RobotModel) -> Task:
    """Drive to a referenced target, penalizing control effort."""
    px, py = Var("pos[0]"), Var("pos[1]")
    vel, ang_vel = Var("vel"), Var("ang_vel")
    return Task(
        name="moveTo",
        model=model,
        penalties=[
            Penalty("track_x", px - Var("target_x"), 10.0, "running"),
            Penalty("track_y", py - Var("target_y"), 10.0, "running"),
            Penalty("effort_v", vel, 0.05, "running"),
            Penalty("effort_w", ang_vel, 0.05, "running"),
        ],
        references=["target_x", "target_y"],
    )


def main() -> None:
    model = build_robot()
    task = build_task(model)

    # Discretize over a 1.6 s horizon (16 steps of 100 ms).
    problem = TranscribedProblem(model, task, horizon=16, dt=0.1)
    print(f"transcribed: {problem}")

    # One open-loop solve from the origin toward (1.0, 0.6).
    solver = InteriorPointSolver(problem)
    target = np.array([1.0, 0.6])
    result = solver.solve(np.zeros(3), ref=target)
    xs, us = problem.split(result.z)
    print(
        f"open-loop solve: converged={result.converged} "
        f"sqp_iterations={result.iterations} "
        f"qp_iterations={result.qp_iterations} "
        f"kkt={result.kkt_residual:.2e}"
    )
    print(f"planned end-of-horizon position: ({xs[-1, 0]:.3f}, {xs[-1, 1]:.3f})")

    # Closed loop: solve, apply the first input, measure, repeat.
    controller = MPCController(InteriorPointSolver(problem))
    log = controller.simulate(np.zeros(3), steps=30, ref=target)
    final = log.states[-1]
    print(
        f"closed loop after {log.steps} steps: "
        f"position=({final[0]:.3f}, {final[1]:.3f}) "
        f"heading={final[2]:.3f} rad"
    )
    print(
        "solver iterations per step (warm starts shrink them): "
        f"{log.solver_iterations[:10]} ..."
    )

    from repro.viz import ascii_plot, sparkline

    print(f"solver effort per step: {sparkline(log.solver_iterations)}")
    print()
    print(
        ascii_plot(
            {
                "x(t)": log.states[:, 0].tolist(),
                "y(t)": log.states[:, 1].tolist(),
            },
            width=54,
            height=10,
            title="closed-loop position vs. time",
        )
    )
    assert np.hypot(final[0] - target[0], final[1] - target[1]) < 0.1
    print("reached the target. done.")


if __name__ == "__main__":
    main()
