"""Accelerator design-space exploration (the paper's §VIII-C workflow).

Sweeps the RoboX machine configuration — compute-unit count, off-chip
bandwidth, and the compute-enabled interconnect — for one benchmark and
prints the per-iteration cycle estimates, the same methodology behind
Figures 10-12.

Run:
    python examples/design_space_exploration.py [BenchmarkName] [horizon]
"""

import sys

from repro.compiler import MachineConfig, compile_problem
from repro.robots import BENCHMARK_NAMES, build_benchmark


def cycles(problem, **kwargs) -> float:
    _, _, schedule = compile_problem(problem, MachineConfig(**kwargs))
    return schedule.cycles_per_iteration


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "Hexacopter"
    horizon = int(sys.argv[2]) if len(sys.argv) > 2 else 64
    if name not in BENCHMARK_NAMES:
        raise SystemExit(f"unknown benchmark {name!r}; pick from {BENCHMARK_NAMES}")

    bench = build_benchmark(name)
    problem = bench.transcribe(horizon=horizon)
    base = cycles(problem)
    print(f"{name} at horizon N={horizon}")
    print(f"Table IV design point (256 CUs, 16 B/cycle): {base:,.0f} cycles/iter\n")

    print("Compute-unit sweep (Fig. 11 axis):")
    print(f"  {'CUs':>6} {'cycles/iter':>14} {'vs 256':>8}")
    for n_cus in (1, 4, 16, 64, 256, 1024):
        c = cycles(problem, n_cus=n_cus, cus_per_cc=min(8, n_cus))
        print(f"  {n_cus:>6} {c:>14,.0f} {base / c:>7.2f}x")

    print("\nBandwidth sweep (Fig. 12 axis):")
    print(f"  {'factor':>6} {'cycles/iter':>14} {'vs 1x':>8}")
    for factor in (0.25, 0.5, 1.0, 2.0, 4.0):
        c = cycles(problem, bandwidth_bytes_per_cycle=16.0 * factor)
        print(f"  {factor:>5.2g}x {c:>14,.0f} {base / c:>7.2f}x")

    print("\nCompute-enabled interconnect (Fig. 10 ablation):")
    off = cycles(problem, compute_enabled_interconnect=False)
    print(f"  enabled : {base:>14,.0f} cycles/iter")
    print(f"  disabled: {off:>14,.0f} cycles/iter ({off / base:.2f}x slower)")

    print("\nCluster-shape sweep (CUs per CC at 256 total):")
    for cus_per_cc in (4, 8, 16, 32):
        c = cycles(problem, cus_per_cc=cus_per_cc)
        print(f"  {cus_per_cc:>3} CUs/CC: {c:>14,.0f} cycles/iter")


if __name__ == "__main__":
    main()
