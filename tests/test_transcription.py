"""Tests for direct transcription: layout, derivatives vs finite differences,
constraint staging, and the Gauss-Newton Hessian."""

import math

import numpy as np
import pytest

from repro.errors import TranscriptionError
from repro.mpc import (
    Constraint,
    Penalty,
    RobotModel,
    Task,
    TranscribedProblem,
    VarSpec,
)
from repro.symbolic import Var, cos, sin


@pytest.fixture(scope="module")
def setup():
    x, v, u = Var("x"), Var("v"), Var("u")
    model = RobotModel(
        "Cart",
        states=[VarSpec("x", -10.0, 10.0), VarSpec("v", -3.0, 3.0)],
        inputs=[VarSpec("u", -1.0, 1.0)],
        dynamics={"x": v, "v": u - 0.1 * v},
    )
    task = Task(
        "park",
        model,
        penalties=[
            Penalty("pos", x - Var("target"), 5.0, "running"),
            Penalty("vel", v, 1.0, "running"),
            Penalty("effort", u, 0.1, "running"),
            Penalty("final", x - Var("target"), 10.0, "terminal"),
        ],
        constraints=[
            Constraint("speed_envelope", v * v, upper=4.0, timing="running"),
        ],
        references=["target"],
    )
    problem = TranscribedProblem(model, task, horizon=5, dt=0.1)
    return model, task, problem


REF = np.array([1.0])


class TestLayout:
    def test_dimensions(self, setup):
        _, _, p = setup
        assert p.nz == 6 * 2 + 5 * 1
        assert p.n_eq == 2 + 5 * 2  # x0 + dynamics defects
        # state rows (x, v bounds two-sided each = 4; speed row = 1) at k=1..4,
        # input rows (u two-sided = 2) at k=0..4, terminal bounds (4) at k=5
        assert p.n_ineq == 4 * 5 + 5 * 2 + 4

    def test_slices_partition_z(self, setup):
        _, _, p = setup
        covered = set()
        for k in range(p.N + 1):
            covered.update(range(p.state_slice(k).start, p.state_slice(k).stop))
        for k in range(p.N):
            covered.update(range(p.input_slice(k).start, p.input_slice(k).stop))
        assert covered == set(range(p.nz))

    def test_slice_bounds_checked(self, setup):
        _, _, p = setup
        with pytest.raises(TranscriptionError):
            p.state_slice(p.N + 1)
        with pytest.raises(TranscriptionError):
            p.input_slice(p.N)

    def test_split_join_roundtrip(self, setup):
        _, _, p = setup
        z = np.arange(p.nz, dtype=float)
        xs, us = p.split(z)
        assert xs.shape == (p.N + 1, p.nx)
        assert us.shape == (p.N, p.nu)
        assert np.array_equal(p.join(xs, us), z)

    def test_split_shape_check(self, setup):
        _, _, p = setup
        with pytest.raises(TranscriptionError):
            p.split(np.zeros(p.nz + 1))


class TestConstruction:
    def test_horizon_validation(self, setup):
        model, task, _ = setup
        with pytest.raises(TranscriptionError):
            TranscribedProblem(model, task, horizon=0, dt=0.1)

    def test_dt_validation(self, setup):
        model, task, _ = setup
        with pytest.raises(TranscriptionError):
            TranscribedProblem(model, task, horizon=4, dt=-0.1)

    def test_integrator_validation(self, setup):
        model, task, _ = setup
        with pytest.raises(TranscriptionError):
            TranscribedProblem(model, task, horizon=4, dt=0.1, integrator="verlet")

    def test_wrong_model_task_pair(self, setup):
        model, task, _ = setup
        other = RobotModel(
            "Other",
            states=[VarSpec("a")],
            inputs=[VarSpec("b")],
            dynamics={"a": Var("b")},
        )
        with pytest.raises(TranscriptionError):
            TranscribedProblem(other, task, horizon=4, dt=0.1)


class TestDerivatives:
    def fd_grad(self, f, z, eps=1e-6):
        g = np.zeros_like(z)
        for i in range(len(z)):
            zp, zm = z.copy(), z.copy()
            zp[i] += eps
            zm[i] -= eps
            g[i] = (f(zp) - f(zm)) / (2 * eps)
        return g

    def test_objective_gradient_matches_fd(self, setup):
        _, _, p = setup
        rng = np.random.default_rng(0)
        z = rng.normal(scale=0.3, size=p.nz)
        grad = p.objective_gradient(z, REF)
        fd = self.fd_grad(lambda zz: p.objective(zz, REF), z)
        assert np.allclose(grad, fd, atol=1e-5)

    def test_equality_jacobian_matches_fd(self, setup):
        _, _, p = setup
        rng = np.random.default_rng(1)
        z = rng.normal(scale=0.3, size=p.nz)
        x0 = np.array([0.2, -0.1])
        G = p.equality_jacobian(z, REF)
        eps = 1e-6
        for i in range(0, p.nz, 3):  # probe a subset of columns
            zp, zm = z.copy(), z.copy()
            zp[i] += eps
            zm[i] -= eps
            col = (
                p.equality_constraints(zp, x0, REF)
                - p.equality_constraints(zm, x0, REF)
            ) / (2 * eps)
            assert np.allclose(G[:, i], col, atol=1e-5)

    def test_inequality_jacobian_matches_fd(self, setup):
        _, _, p = setup
        rng = np.random.default_rng(2)
        z = rng.normal(scale=0.3, size=p.nz)
        J = p.inequality_jacobian(z, REF)
        eps = 1e-6
        for i in range(0, p.nz, 4):
            zp, zm = z.copy(), z.copy()
            zp[i] += eps
            zm[i] -= eps
            col = (
                p.inequality_constraints(zp, REF)
                - p.inequality_constraints(zm, REF)
            ) / (2 * eps)
            assert np.allclose(J[:, i], col, atol=1e-5)

    def test_hessian_symmetric(self, setup):
        _, _, p = setup
        z = np.full(p.nz, 0.1)
        H = p.objective_hessian(z, REF)
        assert np.allclose(H, H.T)

    def test_gauss_newton_psd(self, setup):
        _, _, p = setup
        rng = np.random.default_rng(3)
        z = rng.normal(size=p.nz)
        H = p.objective_gauss_newton(z, REF)
        eigs = np.linalg.eigvalsh(H)
        assert eigs.min() >= -1e-9

    def test_gauss_newton_equals_exact_for_linear_penalties(self, setup):
        # All penalties in this problem are linear in z, so the exact
        # objective Hessian and the Gauss-Newton one must coincide.
        _, _, p = setup
        z = np.random.default_rng(4).normal(size=p.nz)
        assert np.allclose(
            p.objective_hessian(z, REF), p.objective_gauss_newton(z, REF), atol=1e-9
        )

    def test_lagrangian_hessian_adds_dynamics_curvature(self, setup):
        _, _, p = setup
        rng = np.random.default_rng(5)
        z = rng.normal(scale=0.2, size=p.nz)
        nu = rng.normal(size=p.n_eq)
        H_exact = p.lagrangian_hessian(z, nu, REF)
        assert np.allclose(H_exact, H_exact.T, atol=1e-9)
        # Cart dynamics are linear -> contraction contributes nothing.
        assert np.allclose(H_exact, p.objective_hessian(z, REF), atol=1e-9)


class TestDynamicsDefects:
    def test_rollout_has_zero_defects(self, setup):
        _, _, p = setup
        x0 = np.array([0.5, 0.0])
        z = p.initial_guess(x0)
        g = p.equality_constraints(z, x0, REF)
        # Cart is open-loop stable within the box: rollout is feasible.
        assert np.abs(g).max() < 1e-9

    def test_euler_vs_rk4_differ(self, setup):
        model, task, _ = setup
        pe = TranscribedProblem(model, task, horizon=3, dt=0.2, integrator="euler")
        pr = TranscribedProblem(model, task, horizon=3, dt=0.2, integrator="rk4")
        x = np.array([0.0, 1.0])
        u = np.array([0.5])
        fe = pe._F(np.concatenate([x, u]))
        fr = pr._F(np.concatenate([x, u]))
        # v dynamics include damping -> the integrators disagree at O(dt^2).
        assert not np.allclose(fe, fr)
        assert np.allclose(fe, fr, atol=1e-2)

    def test_rk4_matches_closed_form(self):
        # xdot = -x has exact solution x * exp(-dt); RK4 is O(dt^5) accurate.
        x = Var("x")
        model = RobotModel(
            "Decay",
            states=[VarSpec("x")],
            inputs=[VarSpec("u")],
            dynamics={"x": -x + 0.0 * Var("u")},
        )
        task = Task("hold", model, penalties=[Penalty("p", x)])
        p = TranscribedProblem(model, task, horizon=1, dt=0.1, integrator="rk4")
        out = p._F(np.array([1.0, 0.0]))
        assert out[0] == pytest.approx(math.exp(-0.1), abs=1e-7)


class TestReferences:
    def test_missing_reference_raises(self, setup):
        _, _, p = setup
        z = np.zeros(p.nz)
        with pytest.raises(TranscriptionError, match="reference"):
            p.objective(z, None)

    def test_bad_reference_shape(self, setup):
        _, _, p = setup
        z = np.zeros(p.nz)
        with pytest.raises(TranscriptionError, match="shape"):
            p.objective(z, np.zeros(3))

    def test_per_knot_references(self, setup):
        _, _, p = setup
        z = np.zeros(p.nz)
        traj = np.linspace(0, 1, p.N + 1)[:, None]
        # Varies along the horizon; cost differs from the constant case.
        assert p.objective(z, traj) != pytest.approx(p.objective(z, REF))


class TestMetadata:
    def test_stage_op_counts_keys(self, setup):
        _, _, p = setup
        counts = p.stage_op_counts()
        assert "dynamics" in counts and "cost_run_grad" in counts
        assert all(isinstance(v, dict) for v in counts.values())

    def test_variable_scales(self, setup):
        _, _, p = setup
        s = p.variable_scales()
        assert s.shape == (p.nz,)
        # x scale 10, v scale 3, u scale 1
        assert s[p.state_slice(0)][0] == 10.0
        assert s[p.input_slice(0)][0] == 1.0

    def test_soft_mask_dimensions(self, setup):
        _, _, p = setup
        mask = p.soft_inequality_mask()
        assert mask.shape == (p.n_ineq,)
        # input-only rows (u bounds) are hard
        assert (~mask).sum() == p.N * 2
