"""Tests for deadline-bounded solves: SolveBudget, BudgetClock, solver plumbing."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.mpc import (
    InteriorPointSolver,
    Penalty,
    RobotModel,
    SolveBudget,
    Task,
    TranscribedProblem,
    VarSpec,
)
from repro.mpc.budget import BudgetClock
from repro.symbolic import Var


@pytest.fixture(scope="module")
def cart():
    x, v, u = Var("x"), Var("v"), Var("u")
    model = RobotModel(
        "Cart",
        states=[VarSpec("x"), VarSpec("v", -2.0, 2.0)],
        inputs=[VarSpec("u", -1.0, 1.0)],
        dynamics={"x": v, "v": u},
    )
    task = Task(
        "park",
        model,
        penalties=[
            Penalty("pos", x - Var("target"), 5.0, "running"),
            Penalty("vel", v, 1.0, "running"),
            Penalty("effort", u, 0.1, "running"),
        ],
        references=["target"],
    )
    return TranscribedProblem(model, task, horizon=10, dt=0.1)


REF = np.array([1.0])
X0 = np.zeros(2)


class TestSolveBudget:
    def test_defaults_are_unlimited(self):
        assert SolveBudget().unlimited

    def test_any_limit_is_not_unlimited(self):
        assert not SolveBudget(wall_clock=0.1).unlimited
        assert not SolveBudget(sqp_iterations=3).unlimited
        assert not SolveBudget(qp_iterations=10).unlimited

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"wall_clock": -0.1},
            {"sqp_iterations": -1},
            {"qp_iterations": -5},
        ],
    )
    def test_negative_limits_rejected(self, kwargs):
        with pytest.raises(SolverError):
            SolveBudget(**kwargs)

    def test_zero_wall_clock_is_legal_and_expired(self):
        clock = SolveBudget(wall_clock=0.0).start()
        assert clock.expired()
        assert clock.remaining() == 0.0

    def test_untimed_clock_never_expires(self):
        clock = SolveBudget(sqp_iterations=5).start()
        assert not clock.expired()
        assert clock.deadline is None
        assert clock.remaining() is None

    def test_qp_exhaustion(self):
        clock = SolveBudget(qp_iterations=10).start()
        assert not clock.qp_exhausted(9)
        assert clock.qp_exhausted(10)
        assert clock.qp_exhausted(11)

    def test_qp_cap_absent_never_exhausts(self):
        clock = SolveBudget(wall_clock=10.0).start()
        assert not clock.qp_exhausted(10**9)

    def test_elapsed_monotone(self):
        clock = BudgetClock(SolveBudget(), 0.0)
        assert clock.elapsed() > 0.0


class TestBudgetedSolve:
    def test_unbudgeted_solve_converges_with_status(self, cart):
        res = InteriorPointSolver(cart).solve(X0, ref=REF)
        assert res.converged
        assert res.status == "converged"
        assert res.solve_time > 0.0

    def test_zero_wall_budget_returns_immediately(self, cart):
        res = InteriorPointSolver(cart).solve(
            X0, ref=REF, budget=SolveBudget(wall_clock=0.0)
        )
        assert res.status == "budget_exhausted"
        assert not res.converged
        assert res.iterations == 0
        # Never iterated: the residual was never evaluated.
        assert res.kkt_residual == float("inf")
        # The returned iterate is still a consistent trajectory.
        assert res.z.shape == (cart.nz,)
        assert np.all(np.isfinite(res.z))

    def test_sqp_iteration_budget_respected(self, cart):
        full = InteriorPointSolver(cart).solve(X0, ref=REF)
        assert full.iterations > 1  # the cap below must actually bind
        res = InteriorPointSolver(cart).solve(
            X0, ref=REF, budget=SolveBudget(sqp_iterations=1)
        )
        assert res.iterations == 1
        assert res.status == "budget_exhausted"

    def test_qp_iteration_budget_exact(self, cart):
        full = InteriorPointSolver(cart).solve(X0, ref=REF)
        cap = max(1, full.qp_iterations // 3)
        res = InteriorPointSolver(cart).solve(
            X0, ref=REF, budget=SolveBudget(qp_iterations=cap)
        )
        assert res.qp_iterations <= cap
        assert res.status == "budget_exhausted"

    def test_generous_budget_does_not_perturb_solution(self, cart):
        free = InteriorPointSolver(cart).solve(X0, ref=REF)
        capped = InteriorPointSolver(cart).solve(
            X0, ref=REF, budget=SolveBudget(wall_clock=60.0)
        )
        assert capped.converged
        assert capped.status == "converged"
        assert np.allclose(capped.z, free.z, atol=1e-8)

    def test_budget_exhausted_iterate_warm_startable(self, cart):
        """RTI-style accumulation: feeding the partial iterate back as the
        warm start converges in fewer total iterations than a cold solve."""
        solver = InteriorPointSolver(cart)
        partial = solver.solve(X0, ref=REF, budget=SolveBudget(sqp_iterations=1))
        resumed = solver.solve(
            X0,
            ref=REF,
            z_warm=partial.z,
            nu_warm=partial.nu,
            lam_warm=partial.lam,
        )
        cold = InteriorPointSolver(cart).solve(X0, ref=REF)
        assert resumed.converged
        assert resumed.iterations <= cold.iterations

    def test_exhausted_cap_equal_to_need_reports_converged(self, cart):
        """A budget that is large enough must not relabel a converged solve."""
        cold = InteriorPointSolver(cart).solve(X0, ref=REF)
        res = InteriorPointSolver(cart).solve(
            X0,
            ref=REF,
            budget=SolveBudget(
                sqp_iterations=cold.iterations + 1,
                qp_iterations=cold.qp_iterations + 10,
            ),
        )
        assert res.converged
        assert res.status == "converged"
