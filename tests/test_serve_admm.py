"""Per-session QP-method selection threaded end to end through serving:
config validation, the ``apply_qp_method`` options swap, engine paths
(inline, batched, worker priming), the loadgen/CLI surface, and the
degradation ladder running on the ADMM solver."""

import numpy as np
import pytest

from repro.errors import ServeError
from repro.robots import build_benchmark
from repro.serve import EngineConfig, ServeEngine, SessionConfig
from repro.serve.loadgen import LoadConfig, run_load
from repro.serve.session import ControlSession, apply_qp_method


class TestConfigValidation:
    def test_session_rejects_unknown_method(self):
        with pytest.raises(ServeError):
            SessionConfig(robot="MobileRobot", qp_method="sgd")

    def test_engine_rejects_unknown_method(self):
        with pytest.raises(ServeError):
            EngineConfig(qp_method="sgd")

    def test_defaults_are_ipm(self):
        assert SessionConfig(robot="MobileRobot").qp_method == "ipm"
        assert EngineConfig().qp_method == "ipm"
        assert LoadConfig().qp_method == "ipm"


class TestApplyQpMethod:
    def test_swaps_options_in_place(self):
        bench = build_benchmark("MobileRobot")
        solver = bench.make_solver(bench.transcribe(horizon=5))
        assert solver.options.qp.method == "ipm"
        apply_qp_method(solver, "admm")
        assert solver.options.qp.method == "admm"
        # idempotent — no needless dataclass churn
        opts = solver.options
        apply_qp_method(solver, "admm")
        assert solver.options is opts

    def test_from_benchmark_threads_method(self):
        config = SessionConfig(
            robot="MobileRobot", horizon=5, qp_method="admm"
        )
        session = ControlSession.from_benchmark("s0", config)
        assert session.controller.solver.options.qp.method == "admm"
        assert session.solve_payload(np.zeros(3))["qp_method"] == "admm"


class TestServeEndToEnd:
    def _load(self, **overrides):
        cfg = dict(
            sessions=2,
            ticks=3,
            robots=("MobileRobot",),
            horizon=5,
            deadline_s=None,
            qp_method="admm",
        )
        cfg.update(overrides)
        return run_load(LoadConfig(**cfg))

    def test_inline_fleet_serves_with_admm(self):
        report = self._load()
        assert report.ok
        assert report.metrics.fleet.steps == 6
        assert report.metrics.fleet.fallbacks == 0

    def test_batched_fleet_serves_with_admm(self):
        report = self._load(
            sessions=3, backend="batched", array_backend="numpy"
        )
        assert report.ok
        assert report.metrics.fleet.steps == 9

    def test_degradation_ladder_runs_on_admm(self):
        """An impossible deadline must walk ADMM sessions down the same
        ladder as IPM ones: fallbacks served, sessions degraded — never
        crashed."""
        report = self._load(sessions=2, ticks=4, deadline_s=1e-6,
                            degrade_after=2)
        assert report.ok  # degraded, not crashed
        assert report.metrics.fleet.fallbacks > 0
        assert any(
            state == "degraded" for state in report.session_states.values()
        )

    def test_admm_and_ipm_fleets_agree_on_outcome_shape(self):
        ipm = self._load(qp_method="ipm")
        admm = self._load()
        assert ipm.metrics.fleet.steps == admm.metrics.fleet.steps
        assert ipm.ok and admm.ok


class TestEngineSelection:
    def test_batch_solver_inherits_engine_method(self):
        engine = ServeEngine(
            EngineConfig(
                backend="batched", array_backend="numpy", qp_method="admm"
            )
        )
        try:
            sid = engine.create_session(
                SessionConfig(
                    robot="MobileRobot",
                    horizon=5,
                    deadline_s=None,
                    qp_method="admm",
                )
            )
            bench, _ = engine.binding("MobileRobot", 5)
            report = engine.tick(
                {sid: (np.asarray(bench.x0, dtype=float), None)}
            )
            out = report.outcomes[sid]
            assert out.status == "ok"
            assert np.all(np.isfinite(out.u))
        finally:
            engine.shutdown()
