"""First-order QP subsystem, scalar path: ADMM-vs-IPM agreement, the
``QPOptions(method=...)`` dispatch seam, warm-starting across solves and
MPC ticks (RTI accumulation under ``budget_exhausted``), and the
SQP-with-ADMM closed loop."""

from dataclasses import replace
from time import perf_counter

import numpy as np
import pytest

from repro.errors import SolverError
from repro.firstorder import solve_qp_admm
from repro.mpc import MPCController, SolveBudget
from repro.mpc.qp import QPOptions, solve_qp
from repro.robots import build_benchmark

#: tight enough that the primal iterates (not just objectives) agree
ADMM_OPTS = QPOptions(
    method="admm",
    polish=False,
    admm_tolerance=1e-9,
    admm_max_iterations=20000,
)


def spd(n, seed, scale=1.0):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(n, n))
    return scale * (A @ A.T + n * np.eye(n))


def random_qp(n, p, m, seed):
    rng = np.random.default_rng(seed)
    H = spd(n, seed)
    g = rng.normal(size=n)
    G = rng.normal(size=(p, n)) if p else None
    b = rng.normal(size=p) if p else None
    J = rng.normal(size=(m, n)) if m else None
    d = rng.normal(size=m) + 1.0 if m else None
    return H, g, G, b, J, d


class TestScalarADMM:
    @pytest.mark.parametrize("p,m", [(0, 0), (2, 0), (0, 4), (2, 4)])
    def test_matches_ipm(self, p, m):
        for seed in range(3):
            qp = random_qp(8, p, m, 120 + seed)
            ipm = solve_qp(*qp)
            admm = solve_qp(*qp, ADMM_OPTS)
            assert ipm.converged and admm.converged
            assert np.allclose(admm.x, ipm.x, atol=1e-5)
            if p:
                assert np.allclose(admm.nu, ipm.nu, atol=1e-4)
            if m:
                assert np.allclose(admm.lam, ipm.lam, atol=1e-4)

    def test_dispatch_via_options(self):
        qp = random_qp(6, 2, 3, 7)
        res = solve_qp(*qp, ADMM_OPTS)
        assert res.stats.mode == "admm"
        assert res.warm is not None
        assert set(res.warm) == {"x", "z", "y", "rho"}
        # The IPM path neither produces nor consumes warm state.
        assert solve_qp(*qp).warm is None

    def test_invalid_method_rejected(self):
        with pytest.raises(SolverError):
            QPOptions(method="sgd")

    def test_cached_factorization_reused(self):
        # One setup factorization, plus at most a few rho rescalings —
        # never one per iteration (the point of caching K^-1).
        qp = random_qp(8, 2, 4, 3)
        res = solve_qp_admm(*qp, ADMM_OPTS)
        assert res.converged
        assert res.iterations > 5
        assert 1 <= res.stats.factorizations <= 4

    def test_warm_start_reduces_iterations(self):
        qp = random_qp(8, 2, 4, 11)
        cold = solve_qp_admm(*qp, ADMM_OPTS)
        assert cold.converged and cold.warm is not None
        rewarm = solve_qp_admm(*qp, ADMM_OPTS, warm=cold.warm)
        assert rewarm.converged
        assert rewarm.iterations <= max(2, cold.iterations // 10)
        assert np.allclose(rewarm.x, cold.x, atol=1e-6)

    def test_malformed_warm_ignored(self):
        qp = random_qp(8, 2, 4, 11)
        bad = {"x": np.zeros(3), "z": np.zeros(2), "y": np.zeros(2)}
        res = solve_qp_admm(*qp, ADMM_OPTS, warm=bad)
        assert res.converged  # fell back to a cold start, didn't crash

    def test_deadline_returns_best_iterate_and_warm(self):
        qp = random_qp(10, 3, 5, 21)
        res = solve_qp_admm(*qp, ADMM_OPTS, deadline=perf_counter())
        assert res.budget_exhausted
        assert not res.converged
        assert np.all(np.isfinite(res.x))
        # The partial iterate is fit to resume from on the next tick.
        assert res.warm is not None
        resumed = solve_qp_admm(*qp, ADMM_OPTS, warm=res.warm)
        assert resumed.converged

    def test_iteration_cap_stops_without_convergence(self):
        qp = random_qp(10, 3, 5, 22)
        capped = solve_qp_admm(
            *qp, replace(ADMM_OPTS, admm_max_iterations=3)
        )
        assert not capped.converged
        assert capped.iterations <= 3
        assert np.all(np.isfinite(capped.x))


class TestSQPWithADMM:
    def _controllers(self):
        bench = build_benchmark("MobileRobot")
        problem = bench.transcribe(horizon=6)
        out = {}
        for method in ("ipm", "admm"):
            solver = bench.make_solver(problem)
            solver.options = replace(
                solver.options, qp=replace(solver.options.qp, method=method)
            )
            out[method] = bench, problem, solver
        return out

    def test_sqp_converges_with_admm(self):
        ctrls = self._controllers()
        _, _, ipm_solver = ctrls["ipm"]
        bench, _, admm_solver = ctrls["admm"]
        ref = ipm_solver.solve(bench.x0, ref=bench.ref)
        res = admm_solver.solve(bench.x0, ref=bench.ref)
        assert res.status == "converged"
        assert np.max(np.abs(res.z - ref.z)) < 1e-2

    @pytest.mark.parametrize("method", ["ipm", "admm"])
    def test_warm_carries_across_budgeted_ticks(self, method):
        """RTI accumulation: a tick that exhausts its QP budget must leave
        the solver resumable, and ``reset()`` must drop the carried state."""
        bench, _problem, solver = self._controllers()[method]
        ctrl = MPCController(solver)
        budget = SolveBudget(qp_iterations=25)
        u1 = ctrl.step(np.asarray(bench.x0, float), ref=bench.ref,
                       budget=budget)
        assert ctrl.last_result.status == "budget_exhausted"
        assert np.all(np.isfinite(u1))
        if method == "admm":
            assert solver._qp_warm is not None
        else:
            assert solver._qp_warm is None

        u2 = ctrl.step(np.asarray(bench.x0, float), ref=bench.ref,
                       budget=budget)
        assert np.all(np.isfinite(u2))

        ctrl.reset()
        assert solver._qp_warm is None
