"""Shard arena tests: binding cache, kill/revive, the worker-side group
solve, and real process-mode shard death with session handoff."""

import numpy as np
import pytest

from repro.robots import build_benchmark
from repro.serve import SessionConfig
from repro.serve2 import AsyncServeEngine, Serve2Config
from repro.serve2.shard import (
    Shard,
    _result_to_dict,
    result_from_dict,
    shard_solve_group,
)


class TestShardState:
    def test_binding_is_cached(self):
        shard = Shard(0)
        bench = build_benchmark("CartPole")
        b1 = shard.binding("CartPole", 8, bench)
        b2 = shard.binding("CartPole", 8, bench)
        assert b1 is b2

    def test_kill_and_revive(self):
        shard = Shard(0)
        assert not shard.dead
        shard.kill()
        assert shard.dead
        shard.revive()
        assert not shard.dead

    def test_bindings_survive_death(self):
        shard = Shard(0)
        bench = build_benchmark("CartPole")
        binding = shard.binding("CartPole", 8, bench)
        shard.kill()
        shard.revive()
        assert shard.binding("CartPole", 8, bench) is binding


class TestWorkerGroupSolve:
    def test_result_dict_roundtrip(self):
        bench = build_benchmark("CartPole")
        problem = bench.transcribe(horizon=5)
        res = bench.make_solver(problem).solve(bench.x0, ref=bench.ref)
        back = result_from_dict(_result_to_dict(res))
        np.testing.assert_array_equal(back.z, res.z)
        assert back.converged == res.converged
        assert back.status == res.status
        assert back.iterations == res.iterations

    def test_group_solve_in_this_process(self):
        """shard_solve_group is a plain function — drive it inline."""
        from repro.serve2.padding import pad_reference

        bench = build_benchmark("CartPole")
        native = bench.transcribe(horizon=5)
        reply = shard_solve_group(
            {
                "robot": "CartPole",
                "bucket": 8,
                "payloads": [
                    {
                        "x": bench.x0,
                        "ref": pad_reference(bench.ref, native.nref, 5, 8),
                        "deadline_s": None,
                    }
                ],
            }
        )
        assert reply["ok"]
        assert len(reply["lanes"]) == 1
        assert reply["lanes"][0]["converged"]
        assert reply["report"]["lanes"] == 1


class TestProcessShards:
    @pytest.fixture
    def engine(self):
        engine = AsyncServeEngine(
            Serve2Config(shards=2, shard_backend="process", rungs=(8,))
        )
        yield engine
        engine.shutdown()

    def test_groups_solve_on_worker_processes(self, engine):
        sids = [
            engine.create_session(
                SessionConfig(robot="CartPole", horizon=5, deadline_s=None)
            )
            for _ in range(4)
        ]
        bench, _ = engine.binding("CartPole", 5)
        report = engine.tick({sid: (bench.x0, bench.ref) for sid in sids})
        assert report.stepped == 4
        assert all(o.status == "ok" for o in report.outcomes.values())
        assert engine.metrics.batch_solves == 2  # one group per shard

    def test_shard_death_is_a_real_process_death(self, engine):
        sids = [
            engine.create_session(
                SessionConfig(robot="CartPole", horizon=5, deadline_s=None)
            )
            for _ in range(4)
        ]
        bench, _ = engine.binding("CartPole", 5)
        engine.tick({sid: (bench.x0, bench.ref) for sid in sids})

        class Hook:
            fired = 0

            def on_dispatch(self, tick, session_id):
                if not Hook.fired:
                    Hook.fired = 1
                    return {"kind": "shard_crash"}
                return None

        engine.fault_hook = Hook()
        report = engine.tick({sid: (bench.x0, bench.ref) for sid in sids})
        died = [
            sid
            for sid, o in report.outcomes.items()
            if o.reason == "worker_died"
        ]
        assert len(died) == 2  # the armed shard's whole group
        assert engine.metrics.shard_handoffs == 2
        assert engine.metrics.shard_respawns == 1
        survivor = engine.shard_of(died[0])
        assert all(engine.shard_of(sid) == survivor for sid in died)
        report = engine.tick({sid: (bench.x0, bench.ref) for sid in sids})
        assert all(o.status == "ok" for o in report.outcomes.values())
