"""Property: every fault schedule that clears leads back to ``active``.

Hypothesis drives a :class:`ControlSession` through arbitrary sequences of
solver-contract failures (deadline misses, solver errors, NaN objectives,
divergent residuals) followed by clean solves, and asserts the recovery
contract of the degradation ladder:

* no step ever raises or serves a non-finite input,
* the session is back to ``active`` within ``degrade_after + k`` clean
  ticks of the schedule clearing (with the scripted solver, k = 1:
  the first clean solve recovers it),
* the failure streak is reset by recovery.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpc import MPCController
from repro.serve import ACTIVE, DEGRADED, ControlSession, SessionConfig
from tests.test_serve_session import ScriptedSolver, cart  # noqa: F401

#: Failure modes the solver contract allows; "boom" (a non-solver bug) is
#: excluded on purpose — that is the engine's crash path, not the ladder's.
FAULT_MODES = ("deadline", "error", "nan", "highkkt")

X = np.zeros(2)

fault_runs = st.lists(
    st.sampled_from(FAULT_MODES), min_size=1, max_size=12
)


def build_session(cart, script, degrade_after):
    cfg = SessionConfig(
        robot="Cart", deadline_s=0.05, degrade_after=degrade_after
    )
    return ControlSession(
        "prop", cfg, MPCController(ScriptedSolver(cart, script))
    )


class TestRecoveryProperty:
    @settings(max_examples=40, deadline=None)
    @given(faults=fault_runs, degrade_after=st.integers(1, 5))
    def test_session_reenters_active_after_schedule_clears(
        self, cart, faults, degrade_after
    ):
        slack = 1  # clean ticks the ladder needs after the faults clear
        clean = degrade_after + slack
        session = build_session(
            cart, ["ok"] + faults + ["ok"] * clean, degrade_after
        )

        outcomes = [session.step(X)]  # prime the plan so holds have data
        for _ in faults:
            outcomes.append(session.step(X))
        assert all(np.all(np.isfinite(out.u)) for out in outcomes)
        # Mid-schedule the session is active or degraded, never worse.
        assert session.state in (ACTIVE, DEGRADED)
        if len(faults) >= degrade_after:
            assert session.state == DEGRADED

        recovered_after = None
        for k in range(1, clean + 1):
            out = session.step(X)
            assert np.all(np.isfinite(out.u))
            if session.state == ACTIVE and recovered_after is None:
                recovered_after = k
        assert recovered_after is not None
        assert recovered_after <= clean
        assert session.state == ACTIVE
        assert session.ladder.consecutive == 0

    @settings(max_examples=25, deadline=None)
    @given(faults=fault_runs)
    def test_failure_streak_never_exceeds_fault_count(self, cart, faults):
        session = build_session(cart, ["ok"] + faults + ["ok"], 3)
        session.step(X)
        streaks = [session.step(X).consecutive_fallbacks for _ in faults]
        # The streak counts *consecutive* fallbacks: bounded by the run
        # length and strictly increasing along a pure-fault run.
        assert streaks == list(range(1, len(faults) + 1))
        assert session.step(X).consecutive_fallbacks == 0

    @settings(max_examples=25, deadline=None)
    @given(
        faults=fault_runs,
        interleave=st.lists(st.booleans(), min_size=4, max_size=12),
    )
    def test_interleaved_faults_never_crash_or_emit_nonfinite(
        self, cart, faults, interleave
    ):
        # Alternate fault/clean steps in an arbitrary pattern: the session
        # must absorb every combination without crashing, and every served
        # input must be finite.
        script = ["ok"]
        n_faults = 0
        for is_fault in interleave:
            if is_fault:
                script.append(faults[n_faults % len(faults)])
                n_faults += 1
            else:
                script.append("ok")
        session = build_session(cart, script + ["ok"] * 4, 3)
        for _ in range(len(script) + 4):
            out = session.step(X)
            assert np.all(np.isfinite(out.u))
            assert out.session_state in (ACTIVE, DEGRADED)
        for _ in range(4):
            session.step(X)
        assert session.state == ACTIVE
