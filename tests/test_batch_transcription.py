"""Vectorized linearization: lane-wise agreement with the scalar
``TranscribedProblem`` evaluators, compiled-function vectorization, and
the loop fallback."""

import numpy as np
import pytest

from repro.batch import BatchLinearizer, vectorize_compiled
from repro.batch.transcription import VectorizedFunction
from repro.robots import build_benchmark
from repro.symbolic.compile import compile_function


@pytest.fixture(scope="module")
def mobile():
    bench = build_benchmark("MobileRobot")
    problem = bench.transcribe(horizon=5)
    return bench, problem


def lanes_for(problem, bench, B, seed=0):
    rng = np.random.default_rng(seed)
    Z = np.stack(
        [
            problem.initial_guess(
                np.asarray(bench.x0, float)
                + 0.1 * rng.standard_normal(problem.nx)
            )
            + 0.05 * rng.standard_normal(problem.nz)
            for _ in range(B)
        ]
    )
    X0 = Z[:, : problem.nx].copy()
    return Z, X0


class TestVectorizedFunction:
    def test_matches_scalar_elementwise(self, mobile):
        _bench, problem = mobile
        F = problem._F
        vf = vectorize_compiled(F)
        rng = np.random.default_rng(3)
        cols = [rng.normal(size=7) for _ in range(F.n_inputs)]
        out = vf(cols)
        assert out.shape == (7, F.n_outputs)
        for i in range(7):
            scalar = np.asarray(F(np.array([c[i] for c in cols])), dtype=float)
            assert np.allclose(out[i], scalar, atol=1e-14)

    def test_constant_outputs_broadcast(self):
        # A function whose output is a bare constant must still broadcast
        # across the batch axis.
        from repro.symbolic.expr import Const, Var

        x = Var("x")
        fn = compile_function([Const(2.5), x * 0 + 1.0], [x], name="konst")
        vf = VectorizedFunction(fn)
        out = vf([np.arange(4.0)])
        assert out.shape == (4, 2)
        assert np.allclose(out[:, 0], 2.5)
        assert np.allclose(out[:, 1], 1.0)


class TestBatchLinearizer:
    def test_vectorized_fast_path_active(self, mobile):
        _bench, problem = mobile
        lin = BatchLinearizer(problem)
        assert lin.vectorized

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_all_evaluators_match_scalar(self, mobile, vectorized):
        bench, problem = mobile
        lin = BatchLinearizer(problem)
        if not vectorized:
            lin.vectorized = False  # exercise the per-lane loop fallback
        B = 3
        Z, X0 = lanes_for(problem, bench, B)
        R = lin.normalize_ref([bench.ref] * B, B)
        obj = lin.objective(Z, R)
        grad = lin.objective_gradient(Z, R)
        H = lin.objective_gauss_newton(Z, R)
        g_eq = lin.equality_constraints(Z, X0, R)
        G = lin.equality_jacobian(Z, R)
        h = lin.inequality_constraints(Z, R)
        J = lin.inequality_jacobian(Z, R)
        for i in range(B):
            assert obj[i] == pytest.approx(
                problem.objective(Z[i], bench.ref), rel=1e-12
            )
            assert np.allclose(
                grad[i], problem.objective_gradient(Z[i], bench.ref), atol=1e-11
            )
            assert np.allclose(
                H[i], problem.objective_gauss_newton(Z[i], bench.ref), atol=1e-11
            )
            assert np.allclose(
                g_eq[i],
                problem.equality_constraints(Z[i], X0[i], bench.ref),
                atol=1e-11,
            )
            assert np.allclose(
                G[i], problem.equality_jacobian(Z[i], bench.ref), atol=1e-11
            )
            assert np.allclose(
                h[i], problem.inequality_constraints(Z[i], bench.ref), atol=1e-11
            )
            assert np.allclose(
                J[i], problem.inequality_jacobian(Z[i], bench.ref), atol=1e-11
            )

    def test_initial_guess_matches_scalar(self, mobile):
        bench, problem = mobile
        lin = BatchLinearizer(problem)
        rng = np.random.default_rng(5)
        X0 = np.stack(
            [
                np.asarray(bench.x0, float) + 0.1 * rng.standard_normal(problem.nx)
                for _ in range(4)
            ]
        )
        Z = lin.initial_guess(X0)
        for i in range(4):
            assert np.allclose(Z[i], problem.initial_guess(X0[i]), atol=1e-12)

    def test_per_lane_references(self, mobile):
        bench, problem = mobile
        lin = BatchLinearizer(problem)
        B = 3
        Z, _X0 = lanes_for(problem, bench, B, seed=11)
        rng = np.random.default_rng(6)
        refs = [bench.ref + 0.1 * rng.standard_normal(bench.ref.shape) for _ in range(B)]
        R = lin.normalize_ref(refs, B)
        obj = lin.objective(Z, R)
        for i in range(B):
            assert obj[i] == pytest.approx(
                problem.objective(Z[i], refs[i]), rel=1e-12
            )

    def test_normalized_stack_passthrough(self, mobile):
        bench, problem = mobile
        lin = BatchLinearizer(problem)
        R = lin.normalize_ref([bench.ref] * 2, 2)
        # A pre-normalized stack (and gathered subsets of it) must pass
        # through unchanged — the batched SQP loop re-submits these.
        assert lin.normalize_ref(R, 2) is R
        sub = R[:1]
        assert lin.normalize_ref(sub, 1) is sub
