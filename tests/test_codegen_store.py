"""Artifact-store behavior: content addressing, corruption, concurrency.

The store is an accelerator, never a correctness dependency: every test
here checks that a bad state (corrupt entry, stale version, unwritable
root, two racing first-compiles) degrades to a clean re-emit rather than
a wrong kernel.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.codegen import (
    ArtifactStore,
    FunctionGroup,
    c_available,
    emit_fused_module,
    module_fingerprint,
)
from repro.codegen.emit import CODEGEN_VERSION
from repro.symbolic.expr import Const, Var


def _module(weight: float = 2.0):
    x, u = Var("x"), Var("u")
    groups = [
        FunctionGroup(name="dyn", exprs=(x + Const(0.1) * u,)),
        FunctionGroup(name="cost", exprs=(Const(weight) * x * x + u * u,)),
    ]
    return emit_fused_module([("fused_run_full", groups, ["x", "u"])])


def test_cache_hit_on_identical_key(tmp_path):
    store = ArtifactStore(tmp_path)
    module = _module()
    key = module_fingerprint(module, extra=("N=8",))
    assert store.load(key) is None  # cold
    saved = store.save(key, module.source, module.layouts, meta={"robot": "T"})
    hit = store.load(key)
    assert hit is not None
    assert hit.source == saved.source == module.source
    assert hit.meta == {"robot": "T"}
    assert [g.name for g in hit.layouts["fused_run_full"].groups] == [
        "dyn",
        "cost",
    ]


def test_key_moves_on_dag_change_and_on_shape_change(tmp_path):
    base = module_fingerprint(_module(2.0), extra=("N=8",))
    # a changed weight constant is a different expression DAG
    assert module_fingerprint(_module(3.0), extra=("N=8",)) != base
    # same DAG, different horizon/shape context token
    assert module_fingerprint(_module(2.0), extra=("N=16",)) != base
    # the old entry is simply never consulted for the new key
    store = ArtifactStore(tmp_path)
    module = _module(2.0)
    store.save(base, module.source, module.layouts)
    assert store.load(module_fingerprint(_module(3.0), extra=("N=8",))) is None


@pytest.mark.parametrize(
    "corruption",
    ["not json at all", json.dumps({"codegen_version": CODEGEN_VERSION})],
    ids=["garbage", "missing-fields"],
)
def test_corrupt_artifact_rejected_and_evicted(tmp_path, corruption):
    store = ArtifactStore(tmp_path)
    module = _module()
    key = module_fingerprint(module, extra=())
    store.save(key, module.source, module.layouts)
    store.path_for(key).write_text(corruption)
    assert store.load(key) is None
    assert not store.path_for(key).exists()  # evicted, not left to re-fail
    # a clean re-save recovers
    store.save(key, module.source, module.layouts)
    assert store.load(key) is not None


def test_checksum_mismatch_rejected(tmp_path):
    store = ArtifactStore(tmp_path)
    module = _module()
    key = module_fingerprint(module, extra=())
    store.save(key, module.source, module.layouts)
    data = json.loads(store.path_for(key).read_text())
    data["source"] = data["source"] + "\n# tampered\n"
    store.path_for(key).write_text(json.dumps(data))
    assert store.load(key) is None


def test_stale_emitter_version_rejected(tmp_path):
    store = ArtifactStore(tmp_path)
    module = _module()
    key = module_fingerprint(module, extra=())
    store.save(key, module.source, module.layouts)
    data = json.loads(store.path_for(key).read_text())
    data["codegen_version"] = CODEGEN_VERSION + 1
    store.path_for(key).write_text(json.dumps(data))
    assert store.load(key) is None


def test_unwritable_root_tolerated(tmp_path):
    blocker = tmp_path / "blocker"
    blocker.write_text("")  # a *file* where the store wants a directory
    store = ArtifactStore(blocker / "cache")
    module = _module()
    key = module_fingerprint(module, extra=())
    stored = store.save(key, module.source, module.layouts)
    # nothing persisted, but the in-memory artifact is fully usable
    assert stored.source == module.source
    assert store.load(key) is None


_CHILD = """
import sys
import numpy as np
from repro.codegen import ArtifactStore, FunctionGroup, emit_fused_module, module_fingerprint
from repro.codegen.cbackend import build_c_kernel
from repro.symbolic.expr import Const, Var

x, u = Var("x"), Var("u")
groups = [
    FunctionGroup(name="dyn", exprs=(x + Const(0.1) * u,)),
    FunctionGroup(name="cost", exprs=(Const(2.0) * x * x + u * u,)),
]
module = emit_fused_module([("fused_run_full", groups, ["x", "u"])])
key = module_fingerprint(module, extra=("N=8",))
store = ArtifactStore(sys.argv[1])
store.save(key, module.source, module.layouts)
kern = build_c_kernel(module.irs, key, store)
out = kern.call("fused_run_full", [np.array([1.5]), np.array([-0.5])])
assert abs(out["dyn"][0, 0] - 1.45) < 1e-12, out
assert abs(out["cost"][0, 0] - 4.75) < 1e-12, out
print("OK", key)
"""


@pytest.mark.skipif(not c_available(), reason="no C compiler / cffi here")
def test_concurrent_first_compile_converges(tmp_path):
    """Two processes racing the same cold key must both succeed and leave
    exactly one valid artifact behind (atomic-replace convergence)."""
    script = tmp_path / "child.py"
    script.write_text(_CHILD)
    root = tmp_path / "cache"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    procs = [
        subprocess.Popen(
            [sys.executable, str(script), str(root)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        for _ in range(2)
    ]
    outs = [p.communicate(timeout=180) for p in procs]
    for p, (out, err) in zip(procs, outs):
        assert p.returncode == 0, err
        assert out.startswith("OK ")
    key = outs[0][0].split()[1]
    assert outs[1][0].split()[1] == key

    store = ArtifactStore(root)
    loaded = store.load(key)
    assert loaded is not None
    sos = list(store.so_dir_for(key).glob("*.so"))
    assert len(sos) == 1  # racing builders converged on one shared object
    assert not list(store.so_dir_for(key).glob(".build.*"))  # tmpdirs cleaned
