"""Tests for the evaluation harness: tables and figure shapes.

Full-scale sweeps (N = 1024) run in the benchmark harness; these tests use
the paper's N = 32 design point and smaller sweep subsets to check the
*shape* properties the paper reports while staying fast.
"""

import math

import pytest

from repro.experiments import (
    BENCHMARK_NAMES,
    PAPER_GEOMEAN_SPEEDUPS,
    PAPER_TABLE3,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    platform_calibration,
    render_figure,
    render_table,
    table3,
    table4,
)

# regenerates the paper's experiment tables — keep out of the fast lane (-m 'not slow').
pytestmark = pytest.mark.slow


class TestTables:
    def test_table3_matches_paper_exactly(self):
        for row in table3():
            expected = PAPER_TABLE3[row["name"]]
            for key in ("states", "inputs", "penalties", "constraints"):
                assert row[key] == expected[key], row["name"]

    def test_table4_has_all_platforms_plus_robox(self):
        rows = table4()
        names = {r["platform"] for r in rows}
        assert "RoboX" in names
        assert len(rows) == 6

    def test_table4_robox_specs(self):
        robox = next(r for r in table4() if r["platform"] == "RoboX")
        assert robox["cores"] == 256
        assert robox["tdp_w"] == 3.4
        assert robox["peak_bandwidth_gbs"] == pytest.approx(16.0)

    def test_render_table_smoke(self):
        text = render_table(table3(), "Table III")
        assert "MobileRobot" in text and "Hexacopter" in text


class TestCalibration:
    def test_calibrations_positive(self):
        for platform in PAPER_GEOMEAN_SPEEDUPS:
            assert platform_calibration(platform) > 0


class TestFigure5:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure5()

    def test_geomean_matches_paper(self, fig):
        assert fig.geomean["RoboX"] == pytest.approx(29.4, rel=0.02)
        assert fig.geomean["Xeon"] == pytest.approx(29.4 / 7.3, rel=0.05)

    def test_all_benchmarks_present(self, fig):
        assert set(fig.series["RoboX"]) == set(BENCHMARK_NAMES)

    def test_mobile_robot_lowest_speedup(self, fig):
        values = fig.series["RoboX"]
        assert values["MobileRobot"] == min(values.values())

    def test_robox_beats_xeon_everywhere(self, fig):
        for b in BENCHMARK_NAMES:
            assert fig.series["RoboX"][b] > fig.series["Xeon"][b]

    def test_render_smoke(self, fig):
        text = render_figure(fig)
        assert "geomean" in text


class TestFigure6:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure6()

    def test_geomeans_match_paper(self, fig):
        assert fig.geomean["RoboX"] == pytest.approx(2.0, rel=0.02)
        # Tegra/GTX = (RoboX/GTX) / (RoboX/Tegra) = 2.0 / 3.5
        assert fig.geomean["Tegra X2"] == pytest.approx(2.0 / 3.5, rel=0.05)
        # K40/GTX = 2.0 / 0.769 = 2.6: the K40 outruns RoboX (paper: 1.3x)
        assert fig.geomean["Tesla K40"] == pytest.approx(2.6, rel=0.05)

    def test_k40_beats_robox(self, fig):
        assert fig.geomean["Tesla K40"] > fig.geomean["RoboX"]


class TestFigure7:
    def test_ppw_matches_paper(self):
        fig = figure7()
        assert fig.geomean["RoboX"] == pytest.approx(22.1, rel=0.05)
        # Paper: "the Xeon E3 has a 0.28x lower performance-per-watt"
        assert fig.geomean["Xeon"] == pytest.approx(0.28, abs=0.02)


class TestFigure8:
    def test_ppw_matches_paper(self):
        fig = figure8()
        assert fig.geomean["RoboX"] == pytest.approx(65.5, rel=0.05)
        assert fig.geomean["Tegra X2"] == pytest.approx(7.8, rel=0.15)
        # RoboX wins on efficiency against every GPU.
        for series in ("Tegra X2", "Tesla K40"):
            assert fig.geomean["RoboX"] > fig.geomean[series]


class TestFigure9:
    def test_speedup_grows_with_horizon(self):
        fig = figure9(horizons=(32, 128, 512))
        g32 = fig.geomean["32 steps"]
        g512 = fig.geomean["512 steps"]
        assert g512 > g32  # paper: 29.4x -> 38.7x

    def test_hexacopter_among_most_sensitive(self):
        fig = figure9(horizons=(32, 512))
        growth = {
            b: fig.series["512 steps"][b] / fig.series["32 steps"][b]
            for b in BENCHMARK_NAMES
        }
        ranked = sorted(growth, key=growth.get, reverse=True)
        assert "Hexacopter" in ranked[:3]


class TestFigure10:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure10(horizon=256)

    def test_interconnect_helps_every_benchmark(self, fig):
        with_ic = fig.series["With Compute-Enabled Interconnect"]
        without = fig.series["Without Compute-Enabled Interconnect"]
        for b in BENCHMARK_NAMES:
            assert with_ic[b] > without[b]

    def test_average_gain_in_paper_range(self, fig):
        gain = (
            fig.geomean["With Compute-Enabled Interconnect"]
            / fig.geomean["Without Compute-Enabled Interconnect"]
        )
        # Paper reports ~35% average improvement at N = 1024.
        assert 1.1 < gain < 1.7


class TestFigure11:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure11(horizon=256, cu_counts=(16, 64, 256, 1024))

    def test_monotone_in_cus(self, fig):
        g = [fig.geomean[f"{n} CUs"] for n in (16, 64, 256, 1024)]
        assert g[0] < g[1] < g[2] <= g[3] * 1.01

    def test_plateau_after_256(self, fig):
        g256 = fig.geomean["256 CUs"]
        g1024 = fig.geomean["1024 CUs"]
        g64 = fig.geomean["64 CUs"]
        # Strong growth up to 256, weak beyond (paper: "plateau around 256").
        assert g256 / g64 > 1.5
        assert g1024 / g256 < 1.3


class TestFigure12:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure12(horizon=256, factors=(0.25, 1.0, 4.0))

    def test_monotone_in_bandwidth(self, fig):
        assert (
            fig.geomean["0.25 x"]
            < fig.geomean["1 x"]
            <= fig.geomean["4 x"]
        )

    def test_diminishing_returns(self, fig):
        lo = fig.geomean["1 x"] / fig.geomean["0.25 x"]
        hi = fig.geomean["4 x"] / fig.geomean["1 x"]
        assert hi < lo  # paper: "diminishing returns up to a certain point"

    def test_small_robot_least_sensitive(self, fig):
        sens = {
            b: fig.series["4 x"][b] / fig.series["0.25 x"][b]
            for b in BENCHMARK_NAMES
        }
        assert sens["MobileRobot"] == min(sens.values())
