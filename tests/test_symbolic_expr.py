"""Unit tests for the symbolic expression core (repro.symbolic.expr)."""

import math

import pytest

from repro.errors import SymbolicError
from repro.symbolic import (
    Call,
    Const,
    OPS,
    Var,
    as_expr,
    cos,
    count_nodes,
    count_ops,
    exp,
    log,
    sin,
    sqrt,
    substitute,
    tan,
    topological_order,
    variables_of,
)


class TestConstruction:
    def test_const_holds_float(self):
        c = Const(3)
        assert c.value == 3.0
        assert isinstance(c.value, float)

    def test_const_rejects_non_number(self):
        with pytest.raises(SymbolicError):
            Const("x")

    def test_const_rejects_bool(self):
        with pytest.raises(SymbolicError):
            Const(True)

    def test_var_requires_name(self):
        with pytest.raises(SymbolicError):
            Var("")

    def test_as_expr_passthrough(self):
        v = Var("x")
        assert as_expr(v) is v

    def test_as_expr_coerces_int(self):
        e = as_expr(2)
        assert isinstance(e, Const)
        assert e.value == 2.0

    def test_as_expr_rejects_bool(self):
        with pytest.raises(SymbolicError):
            as_expr(True)

    def test_as_expr_rejects_none(self):
        with pytest.raises(SymbolicError):
            as_expr(None)

    def test_call_arity_check(self):
        with pytest.raises(SymbolicError):
            Call(OPS["add"], (Const(1.0),))

    def test_call_rejects_non_expr_operand(self):
        with pytest.raises(SymbolicError):
            Call(OPS["add"], (Const(1.0), 2.0))

    def test_no_truth_value(self):
        with pytest.raises(SymbolicError):
            bool(Var("x"))


class TestOperatorOverloading:
    def test_add_builds_call(self):
        e = Var("x") + 1
        assert isinstance(e, Call)
        assert e.op.name == "add"

    def test_radd(self):
        e = 1 + Var("x")
        assert e.op.name == "add"
        assert isinstance(e.args[0], Const)

    def test_sub_mul_div_pow_neg(self):
        x = Var("x")
        assert (x - 1).op.name == "sub"
        assert (x * 2).op.name == "mul"
        assert (x / 2).op.name == "div"
        assert (x**2).op.name == "pow"
        assert (-x).op.name == "neg"

    def test_rsub_order(self):
        e = 5 - Var("x")
        assert isinstance(e.args[0], Const)
        assert e.args[0].value == 5.0

    def test_rdiv_order(self):
        e = 1 / Var("x")
        assert isinstance(e.args[0], Const)

    def test_pos_is_identity(self):
        x = Var("x")
        assert +x is x


class TestEquality:
    def test_structural_equality(self):
        a = Var("x") + Var("y")
        b = Var("x") + Var("y")
        assert a == b
        assert hash(a) == hash(b)

    def test_different_ops_unequal(self):
        assert Var("x") + Var("y") != Var("x") * Var("y")

    def test_const_equality(self):
        assert Const(1.0) == Const(1)
        assert Const(1.0) != Const(2.0)

    def test_usable_as_dict_key(self):
        d = {Var("x") + 1: "a"}
        assert d[Var("x") + 1] == "a"


class TestEvaluation:
    def test_arithmetic(self):
        e = (Var("x") + 2) * Var("y")
        assert e.evaluate({"x": 1.0, "y": 3.0}) == 9.0

    def test_nonlinear(self):
        e = sin(Var("t")) + cos(Var("t"))
        t = 0.7
        assert e.evaluate({"t": t}) == pytest.approx(math.sin(t) + math.cos(t))

    def test_unbound_variable_raises(self):
        with pytest.raises(SymbolicError, match="unbound"):
            Var("q").evaluate({})

    def test_division_by_zero_raises(self):
        e = Var("x") / Var("y")
        with pytest.raises(ZeroDivisionError):
            e.evaluate({"x": 1.0, "y": 0.0})

    def test_sqrt_negative_raises(self):
        with pytest.raises(SymbolicError):
            sqrt(Var("x")).evaluate({"x": -1.0})

    def test_pow(self):
        e = Var("x") ** 3
        assert e.evaluate({"x": 2.0}) == 8.0

    def test_exp_log_roundtrip(self):
        e = log(exp(Var("x")))
        assert e.evaluate({"x": 1.234}) == pytest.approx(1.234)


class TestTraversal:
    def test_topological_children_first(self):
        x = Var("x")
        e = sin(x) + x
        order = topological_order([e])
        assert order.index(x) < order.index(e)

    def test_shared_subexpression_counted_once(self):
        x = Var("x")
        shared = sin(x)
        e = shared + shared * shared
        counts = count_ops([e])
        assert counts["sin"] == 1
        assert counts["mul"] == 1
        assert counts["add"] == 1

    def test_count_nodes_distinct(self):
        x = Var("x")
        e = x + x
        # nodes: x, add
        assert count_nodes([e]) == 2

    def test_variables_of_order_and_dedup(self):
        e = Var("a") + Var("b") * Var("a")
        names = [v.name for v in variables_of([e])]
        assert names == ["a", "b"]

    def test_deep_chain_no_recursion_error(self):
        e = Var("x")
        for _ in range(5000):
            e = e + 1
        assert count_nodes([e]) > 5000


class TestSubstitute:
    def test_replace_var(self):
        x, y = Var("x"), Var("y")
        e = sin(x) + x
        out = substitute(e, {x: y})
        assert out == sin(y) + y

    def test_replace_subtree(self):
        x = Var("x")
        e = sin(x) * 2
        out = substitute(e, {sin(x): Const(0.5)})
        assert out.evaluate({}) == 1.0

    def test_identity_when_no_match(self):
        e = Var("x") + 1
        assert substitute(e, {Var("zzz"): Const(0.0)}) == e
