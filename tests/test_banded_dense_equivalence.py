"""Banded vs. dense QP solve-path equivalence on the robot benchmarks.

The stage-interleaved permutation makes the condensed KKT system banded;
these tests pin down that (a) the bandwidth hints the transcription layer
advertises actually bound the permuted problem data, and (b) routing the
factorizations through the banded kernels yields the same solution as the
dense path on every robot's first SQP subproblem (to 1e-8 relative, with
the active-set polish recovering both solutions past the barrier's
roundoff drift).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.mpc.banded import bandwidth_of
from repro.mpc.qp import QPOptions, solve_qp
from repro.robots.registry import BENCHMARK_NAMES, build_benchmark

HORIZON = 16


@pytest.fixture(scope="module")
def subproblems():
    """First-SQP-subproblem QP data for every robot (built once)."""
    out = {}
    for name in BENCHMARK_NAMES:
        bench = build_benchmark(name)
        problem = bench.transcribe(horizon=HORIZON)
        solver = bench.make_solver(problem)
        qp_args, qperm = solver.first_qp_subproblem(bench.x0, bench.ref)
        out[name] = (bench, problem, solver, qp_args, qperm)
    return out


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_first_subproblem_banded_matches_dense(subproblems, name):
    _, problem, solver, qp_args, qperm = subproblems[name]
    H, g, G, b, J, d, bw = qp_args
    assert bw is not None, "stage permutation should be available"
    # The cold-start subproblems are hard QPs (pinned initial state far
    # outside the soft bounds); give the IPM headroom beyond the default.
    opt = replace(solver.options.qp, polish=True, max_iterations=200)

    banded = solve_qp(H, g, G, b, J, d, opt, bandwidth=bw)
    dense = solve_qp(H, g, G, b, J, d, opt)

    assert banded.converged and dense.converged
    assert banded.stats.mode in ("banded", "mixed")
    assert banded.stats.banded_factorizations > 0
    assert dense.stats.mode == "dense"
    assert dense.stats.banded_factorizations == 0

    scale = 1.0 + np.max(np.abs(dense.x))
    assert np.max(np.abs(banded.x - dense.x)) <= 1e-8 * scale
    assert np.max(np.abs(banded.nu - dense.nu)) <= 1e-6 * (
        1.0 + np.max(np.abs(dense.nu))
    )


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_stage_permuted_kkt_bandwidth_within_hint(subproblems, name):
    """The advertised half-bandwidth ceiling bounds the permuted KKT data.

    The condensed matrix is Phi = H + J^T W J for a positive diagonal W, so
    its nonzero pattern is contained in the envelope |H| + |J|^T |J|; the
    hint must cover the envelope's measured bandwidth for every W.
    """
    bench, problem, solver, qp_args, qperm = subproblems[name]
    H, g, G, b, J, d, bw = qp_args
    envelope = np.abs(H)
    if J is not None:
        envelope = envelope + np.abs(J).T @ np.abs(J)
    assert bandwidth_of(envelope) <= bw

    # The same check on the plain (non-extended) problem, against the
    # primal KKT envelope |H| + |G|^T |G|: banded after the stage
    # interleave, nowhere near banded in the states-then-inputs ordering
    # (x_{k+1} and u_k sit ~N*nx apart there).
    perm = problem.stage_permutation()
    hint = problem.kkt_half_bandwidth()
    # bw is the extended-problem ceiling: at least the plain hint, wider
    # when a stage's group (states + inputs + L1 slacks) outgrows it.
    assert perm is not None and bw >= hint
    z0 = problem.initial_guess(np.asarray(bench.x0, dtype=float))
    Hu = problem.objective_gauss_newton(z0, bench.ref)
    Gu = problem.equality_jacobian(z0, bench.ref)
    env_u = np.abs(Hu) + np.abs(Gu).T @ np.abs(Gu)
    assert bandwidth_of(env_u[np.ix_(perm, perm)]) <= hint
    assert bandwidth_of(env_u) > hint


def test_first_subproblem_banded_solve_is_observable(subproblems):
    """QPStats reports per-phase wall time and flops on the banded path."""
    _, _, solver, qp_args, _ = subproblems["Quadrotor"]
    H, g, G, b, J, d, bw = qp_args
    res = solve_qp(H, g, G, b, J, d, solver.options.qp, bandwidth=bw)
    st = res.stats
    assert st.phi_bandwidth is not None and st.phi_bandwidth <= bw
    assert st.schur_bandwidth is not None and st.schur_bandwidth <= bw
    assert st.factorizations >= 2 * res.iterations
    assert st.factor_flops > 0 and st.substitute_flops > 0
    assert st.factorize_time > 0.0 and st.substitute_time > 0.0


def test_move_blocking_falls_back_to_dense():
    """move_block > 1 breaks the stage interleave; the solver must not
    advertise (or use) a bandwidth hint."""
    bench = build_benchmark("MobileRobot")
    problem = bench.transcribe(horizon=HORIZON)
    problem_mb = type(problem)(
        bench.model, bench.task, horizon=HORIZON, dt=bench.dt, move_block=2
    )
    assert problem_mb.stage_permutation() is None
    assert problem_mb.kkt_half_bandwidth() is None
    solver = bench.make_solver(problem_mb)
    qp_args, qperm = solver.first_qp_subproblem(bench.x0, bench.ref)
    assert qperm is None and qp_args[6] is None
    res = solver.solve(bench.x0, bench.ref)
    assert np.all(np.isfinite(res.z))
    assert solver.stats["banded_factorizations"] == 0


def test_banded_option_false_forces_dense_path():
    bench = build_benchmark("MobileRobot")
    problem = bench.transcribe(horizon=HORIZON)
    solver = bench.make_solver(problem, banded=False)
    qp_args, qperm = solver.first_qp_subproblem(bench.x0, bench.ref)
    assert qperm is None and qp_args[6] is None
    solver.solve(bench.x0, bench.ref)
    assert solver.stats["factorizations"] > 0
    assert solver.stats["banded_factorizations"] == 0


def test_solver_routes_through_banded_kernels():
    bench = build_benchmark("MobileRobot")
    problem = bench.transcribe(horizon=HORIZON)
    solver = bench.make_solver(problem)
    res = solver.solve(bench.x0, bench.ref)
    assert np.all(np.isfinite(res.z))
    assert solver.stats["banded_factorizations"] > 0
    assert solver.stats["factorize_time"] > 0.0
    assert solver.stats["substitute_time"] > 0.0
    assert solver.stats["linearize_time"] > 0.0
    assert solver.stats["factor_flops"] > 0


def test_banded_and_dense_solvers_agree_end_to_end():
    """Full SQP solves with and without the banded path reach the same
    trajectory (control-grade tolerance; the QP sequences are identical up
    to factorization roundoff)."""
    bench = build_benchmark("MobileRobot")
    problem = bench.transcribe(horizon=HORIZON)
    res_b = bench.make_solver(problem).solve(bench.x0, bench.ref)
    res_d = bench.make_solver(problem, banded=False).solve(bench.x0, bench.ref)
    assert res_b.converged and res_d.converged
    scale = 1.0 + np.max(np.abs(res_d.z))
    assert np.max(np.abs(res_b.z - res_d.z)) <= 1e-4 * scale


class TestDivergenceGuard:
    def infeasible_qp(self, **overrides):
        # x >= 2 and x <= -1 cannot both hold: the IPM drives the
        # inequality multipliers to infinity.
        H = np.eye(1)
        g = np.zeros(1)
        J = np.array([[1.0], [-1.0]])
        d = np.array([-1.0, -2.0])
        opt = QPOptions(**overrides)
        return solve_qp(H, g, None, None, J, d, opt)

    def test_returns_consistent_residual_iterate_pair(self):
        res = self.infeasible_qp(max_iterations=200)
        assert not res.converged
        # The reported residual must be the residual *of the returned
        # iterate* — recompute it from scratch.
        H = np.eye(1)
        J = np.array([[1.0], [-1.0]])
        d = np.array([-1.0, -2.0])
        r_dual = H @ res.x + J.T @ res.lam
        r_in = J @ res.x + res.slacks - d
        mu = float(res.slacks @ res.lam) / 2
        recomputed = max(
            float(np.max(np.abs(r_dual))), float(np.max(np.abs(r_in))), mu
        )
        assert np.isclose(res.residual, recomputed, rtol=1e-12, atol=0.0)

    def test_iterate_stays_finite(self):
        res = self.infeasible_qp(max_iterations=200)
        for v in (res.x, res.nu, res.lam, res.slacks):
            assert np.all(np.isfinite(v))
        assert np.isfinite(res.residual)


class TestPolish:
    def test_polish_improves_residual(self):
        rng = np.random.default_rng(3)
        n, m = 12, 8
        A = rng.normal(size=(n, n))
        H = A @ A.T + n * np.eye(n)
        g = rng.normal(size=n)
        J = rng.normal(size=(m, n))
        d = rng.normal(size=m)
        raw = solve_qp(H, g, None, None, J, d, QPOptions())
        pol = solve_qp(H, g, None, None, J, d, QPOptions(polish=True))
        assert raw.converged and pol.converged
        assert pol.residual <= raw.residual
        assert np.max(np.abs(pol.x - raw.x)) <= 1e-6 * (
            1.0 + np.max(np.abs(raw.x))
        )

    def test_polish_never_worsens_on_equality_constrained_qp(self):
        rng = np.random.default_rng(5)
        n, p, m = 10, 3, 6
        A = rng.normal(size=(n, n))
        H = A @ A.T + n * np.eye(n)
        g = rng.normal(size=n)
        G = rng.normal(size=(p, n))
        b = rng.normal(size=p)
        J = rng.normal(size=(m, n))
        d = rng.normal(size=m) + 1.0
        raw = solve_qp(H, g, G, b, J, d, QPOptions())
        pol = solve_qp(H, g, G, b, J, d, QPOptions(polish=True))
        assert pol.converged
        assert pol.residual <= raw.residual
        assert np.max(np.abs(G @ pol.x - b)) <= 1e-9
