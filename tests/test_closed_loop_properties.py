"""Property-based closed-loop tests: the controller makes progress from
randomized initial conditions and targets (bounded, fast problems only)."""

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.mpc import InteriorPointSolver, IPMOptions, MPCController
from repro.mpc.controller import integrate_plant
from repro.robots import build_benchmark

# closed-loop rollouts run many full MPC solves — keep out of the fast lane (-m 'not slow').
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def mobile_problem():
    bench = build_benchmark("MobileRobot")
    return bench, bench.transcribe(horizon=10)


@given(
    tx=st.floats(-1.0, 1.0),
    ty=st.floats(-1.0, 1.0),
    theta0=st.floats(-1.5, 1.5),
)
@settings(max_examples=12, deadline=None)
def test_mobile_robot_closes_distance(mobile_problem, tx, ty, theta0):
    bench, problem = mobile_problem
    d0 = float(np.hypot(tx, ty))
    if d0 < 0.2:
        return  # already at the target; nothing to prove
    # Reference heading points at the target (as a planner would supply).
    target = np.array([tx, ty, np.arctan2(ty, tx)])
    ctrl = MPCController(
        InteriorPointSolver(problem, IPMOptions(max_iterations=30))
    )
    x = np.array([0.0, 0.0, theta0])
    for _ in range(8):
        u = ctrl.step(x, ref=target)
        # actuator bounds always hold
        assert abs(u[0]) <= 1.0 + 1e-6
        assert abs(u[1]) <= 2.0 + 1e-6
        x = integrate_plant(problem, x, u)
    d_end = float(np.hypot(x[0] - tx, x[1] - ty))
    assert d_end < d0  # progress toward the target


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
@example(seed=5043)  # warm=18 vs cold=12: nearby state crosses an active-set boundary
def test_mobile_robot_warm_start_never_worse_than_two_cold_iterations(
    mobile_problem, seed
):
    """After one converged solve, re-solving a nearby state from the shifted
    warm start converges within a handful of iterations."""
    bench, problem = mobile_problem
    rng = np.random.default_rng(seed)
    target = rng.uniform(-0.8, 0.8, size=3)
    target[2] = 0.0
    ctrl = MPCController(
        InteriorPointSolver(problem, IPMOptions(max_iterations=40))
    )
    x = np.zeros(3)
    u = ctrl.step(x, ref=target)
    x = integrate_plant(problem, x, u)
    ctrl.step(x, ref=target)
    warm_iters = ctrl.last_result.iterations
    ctrl2 = MPCController(
        InteriorPointSolver(problem, IPMOptions(max_iterations=40))
    )
    ctrl2.step(x, ref=target)
    cold_iters = ctrl2.last_result.iterations
    # The shifted warm start is never worse than two cold solves: a nearby
    # state can cross an active-set boundary, costing extra centering steps,
    # but never more than a full second cold start's worth.
    assert warm_iters <= max(cold_iters + 5, 2 * cold_iters)
