"""Tests for the Algorithm-1 interconnect-aware mapping."""

import pytest

from repro.compiler import MDFG, NodeType, map_mdfg
from repro.errors import MappingError
from repro.robots import build_benchmark
from repro.compiler import translate


def chain_graph():
    """x -> neg -> sin -> result (pure chain)."""
    g = MDFG()
    x = g.add_input("x", phase="p")
    n1 = g.add_scalar("neg", [x], phase="p")
    n2 = g.add_scalar("sin", [n1], phase="p")
    return g, (x, n1, n2)


def reduction_graph(width):
    g = MDFG()
    inputs = [g.add_input(f"x{i}", phase="p") for i in range(width)]
    squares = [g.add_scalar("mul", [i, i], phase="p") for i in inputs]
    gid = g.add_group("add", squares, phase="p")
    return g, inputs, squares, gid


class TestValidation:
    def test_zero_cus_rejected(self):
        g, _ = chain_graph()
        with pytest.raises(MappingError):
            map_mdfg(g, 0, 1)

    def test_bad_cluster_size(self):
        g, _ = chain_graph()
        with pytest.raises(MappingError):
            map_mdfg(g, 4, 8)


class TestPlacement:
    def test_chain_stays_on_one_cu(self):
        g, (x, n1, n2) = chain_graph()
        pm = map_mdfg(g, 8, 4)
        assert pm.placement[n1] == pm.placement[x]
        assert pm.placement[n2] == pm.placement[n1]
        # A resident chain needs no communication.
        assert pm.communication_volume() == 0

    def test_independent_work_spreads(self):
        g, inputs, squares, _ = reduction_graph(8)
        pm = map_mdfg(g, 8, 4)
        used = {pm.placement[s] for s in squares}
        assert len(used) > 1  # parallelism exploited

    def test_initial_data_map_respected(self):
        g, (x, n1, _) = chain_graph()
        pm = map_mdfg(g, 8, 4, initial_data={"x": 5})
        assert pm.placement[x] == 5
        assert pm.placement[n1] == 5

    def test_every_op_placed(self):
        p = build_benchmark("MobileRobot").transcribe(horizon=4)
        g = translate(p)
        pm = map_mdfg(g, 16, 4)
        for n in g.nodes:
            if n.type in (NodeType.SCALAR, NodeType.VECTOR, NodeType.GROUP):
                assert n.id in pm.placement

    def test_operations_partition(self):
        p = build_benchmark("MobileRobot").transcribe(horizon=4)
        g = translate(p)
        pm = map_mdfg(g, 16, 4)
        all_ops = [op for ops in pm.operations for op in ops]
        assert len(all_ops) == len(set(all_ops))  # each op on exactly one CU


class TestAggregationMap:
    def test_group_recorded(self):
        g, _, squares, gid = reduction_graph(8)
        pm = map_mdfg(g, 8, 4)
        assert gid in pm.aggregation
        plan = pm.aggregation[gid]
        assert plan.width == 8
        assert plan.func == "add"

    def test_intra_cc_detection(self):
        g, _, squares, gid = reduction_graph(4)
        # All inputs round-robin over 4 CUs of a single cluster.
        pm = map_mdfg(g, 4, 4)
        assert pm.aggregation[gid].level == "intra_cc"

    def test_tree_bus_detection(self):
        g, _, squares, gid = reduction_graph(8)
        pm = map_mdfg(g, 8, 2)  # 4 clusters -> reduction spans clusters
        assert pm.aggregation[gid].level == "tree_bus"

    def test_group_result_placed_on_first_contributor(self):
        g, _, squares, gid = reduction_graph(6)
        pm = map_mdfg(g, 8, 4)
        assert pm.placement[gid] == pm.aggregation[gid].cus[0]


class TestCommunicationMap:
    def test_cross_cu_edge_recorded(self):
        g = MDFG()
        a = g.add_input("a", phase="p")
        b = g.add_input("b", phase="p")
        s1 = g.add_scalar("sin", [a], phase="p")  # lives with a
        s2 = g.add_scalar("sin", [b], phase="p")  # lives with b
        m = g.add_scalar("mul", [s1, s2], phase="p")  # forces a transfer
        pm = map_mdfg(g, 8, 4, initial_data={"a": 0, "b": 1})
        assert pm.placement[m] in (0, 1)
        other = s2 if pm.placement[m] == 0 else s1
        assert (other, m) in pm.communication

    def test_utilization_metric(self):
        p = build_benchmark("Quadrotor").transcribe(horizon=4)
        g = translate(p)
        pm = map_mdfg(g, 16, 4)
        assert 0.5 < pm.utilization() <= 1.0

    def test_cc_of(self):
        g, _ = chain_graph()
        pm = map_mdfg(g, 16, 4)
        assert pm.cc_of(0) == 0
        assert pm.cc_of(5) == 1
        assert pm.n_ccs == 4
