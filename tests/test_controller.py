"""Tests for the receding-horizon controller and plant integration."""

import numpy as np
import pytest

from repro.mpc import (
    IPMOptions,
    InteriorPointSolver,
    MPCController,
    Penalty,
    RobotModel,
    Task,
    TranscribedProblem,
    VarSpec,
    integrate_plant,
)
from repro.symbolic import Var


@pytest.fixture(scope="module")
def cart():
    x, v, u = Var("x"), Var("v"), Var("u")
    model = RobotModel(
        "Cart",
        states=[VarSpec("x"), VarSpec("v", -2.0, 2.0)],
        inputs=[VarSpec("u", -1.0, 1.0)],
        dynamics={"x": v, "v": u},
    )
    task = Task(
        "park",
        model,
        penalties=[
            Penalty("pos", x - Var("target"), 5.0, "running"),
            Penalty("vel", v, 1.0, "running"),
            Penalty("effort", u, 0.1, "running"),
        ],
        references=["target"],
    )
    return TranscribedProblem(model, task, horizon=10, dt=0.1)


REF = np.array([1.0])


class TestStep:
    def test_returns_first_input(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart))
        u = ctrl.step(np.zeros(2), ref=REF)
        assert u.shape == (1,)
        # Target ahead: push forward, near the actuator limit.
        assert u[0] > 0.5

    def test_warm_start_retained(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart))
        ctrl.step(np.zeros(2), ref=REF)
        first = ctrl.last_result.iterations
        ctrl.step(np.array([0.01, 0.05]), ref=REF)
        assert ctrl.last_result.iterations <= first

    def test_reset_clears_state(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart))
        ctrl.step(np.zeros(2), ref=REF)
        ctrl.reset()
        assert ctrl.last_result is None
        assert ctrl._warm is None

    def test_cold_restart_mode(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart), warm_start=False)
        ctrl.step(np.zeros(2), ref=REF)
        its1 = ctrl.last_result.iterations
        ctrl.step(np.zeros(2), ref=REF)
        # Identical state + cold restart -> identical solve.
        assert ctrl.last_result.iterations == its1


class TestClosedLoop:
    def test_reaches_target(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart))
        log = ctrl.simulate(np.zeros(2), steps=25, ref=REF)
        assert abs(log.states[-1, 0] - 1.0) < 0.1
        assert abs(log.states[-1, 1]) < 0.3

    def test_log_shapes(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart))
        log = ctrl.simulate(np.zeros(2), steps=5, ref=REF)
        assert log.states.shape == (6, 2)
        assert log.inputs.shape == (5, 1)
        assert log.steps == 5
        assert len(log.objectives) == 5
        assert len(log.solver_iterations) == 5

    def test_input_bounds_respected_in_loop(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart))
        log = ctrl.simulate(np.zeros(2), steps=10, ref=REF)
        assert np.all(log.inputs <= 1.0 + 1e-6)
        assert np.all(log.inputs >= -1.0 - 1e-6)

    def test_disturbance_rejection(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart))

        def kick(k, x):
            return np.array([0.0, -0.2]) if k == 5 else np.zeros(2)

        log = ctrl.simulate(np.zeros(2), steps=30, ref=REF, disturbance=kick)
        assert abs(log.states[-1, 0] - 1.0) < 0.15

    def test_time_varying_reference(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart))

        def ref_fn(k):
            return np.array([0.5 if k < 8 else 1.0])

        log = ctrl.simulate(np.zeros(2), steps=24, ref_fn=ref_fn)
        assert abs(log.states[-1, 0] - 1.0) < 0.2


class TestPlantIntegration:
    def test_linear_plant_exact(self, cart):
        # Double integrator with constant input has closed form.
        x = np.array([0.0, 0.0])
        u = np.array([1.0])
        out = integrate_plant(cart, x, u, dt=0.5, substeps=8)
        assert out[1] == pytest.approx(0.5, abs=1e-9)  # v = u t
        assert out[0] == pytest.approx(0.125, abs=1e-9)  # x = u t^2 / 2

    def test_substep_refinement_converges(self, cart):
        x = np.array([0.2, 0.4])
        u = np.array([-0.3])
        coarse = integrate_plant(cart, x, u, substeps=1)
        fine = integrate_plant(cart, x, u, substeps=16)
        assert np.allclose(coarse, fine, atol=1e-6)
