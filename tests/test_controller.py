"""Tests for the receding-horizon controller and plant integration."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.mpc import (
    IPMOptions,
    InteriorPointSolver,
    MPCController,
    Penalty,
    RobotModel,
    SolveBudget,
    Task,
    TranscribedProblem,
    VarSpec,
    integrate_plant,
)
from repro.symbolic import Var


@pytest.fixture(scope="module")
def cart():
    x, v, u = Var("x"), Var("v"), Var("u")
    model = RobotModel(
        "Cart",
        states=[VarSpec("x"), VarSpec("v", -2.0, 2.0)],
        inputs=[VarSpec("u", -1.0, 1.0)],
        dynamics={"x": v, "v": u},
    )
    task = Task(
        "park",
        model,
        penalties=[
            Penalty("pos", x - Var("target"), 5.0, "running"),
            Penalty("vel", v, 1.0, "running"),
            Penalty("effort", u, 0.1, "running"),
        ],
        references=["target"],
    )
    return TranscribedProblem(model, task, horizon=10, dt=0.1)


REF = np.array([1.0])


class TestStep:
    def test_returns_first_input(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart))
        u = ctrl.step(np.zeros(2), ref=REF)
        assert u.shape == (1,)
        # Target ahead: push forward, near the actuator limit.
        assert u[0] > 0.5

    def test_warm_start_retained(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart))
        ctrl.step(np.zeros(2), ref=REF)
        first = ctrl.last_result.iterations
        ctrl.step(np.array([0.01, 0.05]), ref=REF)
        assert ctrl.last_result.iterations <= first

    def test_reset_clears_state(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart))
        ctrl.step(np.zeros(2), ref=REF)
        ctrl.reset()
        assert ctrl.last_result is None
        assert ctrl._warm is None

    def test_reset_clears_every_warm_attribute(self, cart):
        """Regression: reset must leave no per-solve state behind — the
        serving layer relies on a reset controller being indistinguishable
        from a fresh one after divergence/solver errors."""
        ctrl = MPCController(InteriorPointSolver(cart))
        ctrl.step(np.zeros(2), ref=REF)
        assert ctrl._warm is not None
        assert ctrl._nu_warm is not None
        assert ctrl._lam_warm is not None
        assert ctrl.last_result is not None
        assert ctrl.last_solve_time is not None
        ctrl.reset()
        fresh = MPCController(InteriorPointSolver(cart))
        for attr in ("_warm", "_nu_warm", "_lam_warm", "last_result",
                     "last_solve_time"):
            assert getattr(ctrl, attr) is None, attr
            assert getattr(ctrl, attr) == getattr(fresh, attr)

    def test_reset_restores_cold_start_iterations(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart))
        ctrl.step(np.zeros(2), ref=REF)
        cold_iters = ctrl.last_result.iterations
        ctrl.step(np.zeros(2), ref=REF)
        ctrl.reset()
        ctrl.step(np.zeros(2), ref=REF)
        # Identical state after reset -> identical cold solve.
        assert ctrl.last_result.iterations == cold_iters

    def test_step_records_solve_time(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart))
        assert ctrl.last_solve_time is None
        ctrl.step(np.zeros(2), ref=REF)
        assert ctrl.last_solve_time is not None
        assert ctrl.last_solve_time > 0.0
        assert ctrl.last_solve_time == ctrl.last_result.solve_time

    def test_cold_restart_mode(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart), warm_start=False)
        ctrl.step(np.zeros(2), ref=REF)
        its1 = ctrl.last_result.iterations
        ctrl.step(np.zeros(2), ref=REF)
        # Identical state + cold restart -> identical solve.
        assert ctrl.last_result.iterations == its1


class TestClosedLoop:
    def test_reaches_target(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart))
        log = ctrl.simulate(np.zeros(2), steps=25, ref=REF)
        assert abs(log.states[-1, 0] - 1.0) < 0.1
        assert abs(log.states[-1, 1]) < 0.3

    def test_log_shapes(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart))
        log = ctrl.simulate(np.zeros(2), steps=5, ref=REF)
        assert log.states.shape == (6, 2)
        assert log.inputs.shape == (5, 1)
        assert log.steps == 5
        assert len(log.objectives) == 5
        assert len(log.solver_iterations) == 5

    def test_log_records_solve_times_and_fallbacks(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart))
        log = ctrl.simulate(np.zeros(2), steps=5, ref=REF)
        assert len(log.solve_times) == 5
        assert all(t > 0.0 for t in log.solve_times)
        # No budget, no injected failures: every step is a fresh solve.
        assert log.fallbacks == [False] * 5
        assert log.fallback_count == 0

    def test_input_bounds_respected_in_loop(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart))
        log = ctrl.simulate(np.zeros(2), steps=10, ref=REF)
        assert np.all(log.inputs <= 1.0 + 1e-6)
        assert np.all(log.inputs >= -1.0 - 1e-6)

    def test_disturbance_rejection(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart))

        def kick(k, x):
            return np.array([0.0, -0.2]) if k == 5 else np.zeros(2)

        log = ctrl.simulate(np.zeros(2), steps=30, ref=REF, disturbance=kick)
        assert abs(log.states[-1, 0] - 1.0) < 0.15

    def test_time_varying_reference(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart))

        def ref_fn(k):
            return np.array([0.5 if k < 8 else 1.0])

        log = ctrl.simulate(np.zeros(2), steps=24, ref_fn=ref_fn)
        assert abs(log.states[-1, 0] - 1.0) < 0.2


class FlakySolver:
    """Delegates to a real solver but raises SolverError on chosen steps."""

    def __init__(self, problem, fail_at):
        self._inner = InteriorPointSolver(problem)
        self.problem = problem
        self.fail_at = set(fail_at)
        self.calls = 0
        self.stats = self._inner.stats

    def solve(self, *args, **kwargs):
        k = self.calls
        self.calls += 1
        if k in self.fail_at:
            raise SolverError("injected linearization failure")
        return self._inner.solve(*args, **kwargs)


class TestSimulateFallback:
    def test_solver_error_raises_without_fallback(self, cart):
        ctrl = MPCController(FlakySolver(cart, {2}))
        with pytest.raises(SolverError):
            ctrl.simulate(np.zeros(2), steps=4, ref=REF)

    def test_solver_error_served_from_ladder(self, cart):
        ctrl = MPCController(FlakySolver(cart, {2}))
        log = ctrl.simulate(np.zeros(2), steps=5, ref=REF, fallback=True)
        assert log.fallbacks == [False, False, True, False, False]
        assert log.fallback_count == 1
        assert np.isnan(log.objectives[2])
        assert not log.converged[2]
        assert np.all(np.isfinite(log.inputs))
        # The fallback step served the shifted tail of step 1's plan — a
        # forward push, not the neutral hold.
        assert log.inputs[2, 0] > 0.0

    def test_zero_budget_with_fallback_never_raises(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart))
        log = ctrl.simulate(
            np.zeros(2),
            steps=3,
            ref=REF,
            budget=SolveBudget(wall_clock=0.0),
            fallback=True,
        )
        # Every solve is budget-exhausted and unconverged; with no plan ever
        # armed the ladder holds at the neutral input.
        assert log.fallback_count == 3
        assert np.all(log.inputs == 0.0)

    def test_budgeted_simulate_reports_status(self, cart):
        ctrl = MPCController(InteriorPointSolver(cart))
        log = ctrl.simulate(
            np.zeros(2),
            steps=5,
            ref=REF,
            budget=SolveBudget(wall_clock=10.0),
        )
        assert log.fallback_count == 0
        assert all(log.converged)


class TestPlantIntegration:
    def test_linear_plant_exact(self, cart):
        # Double integrator with constant input has closed form.
        x = np.array([0.0, 0.0])
        u = np.array([1.0])
        out = integrate_plant(cart, x, u, dt=0.5, substeps=8)
        assert out[1] == pytest.approx(0.5, abs=1e-9)  # v = u t
        assert out[0] == pytest.approx(0.125, abs=1e-9)  # x = u t^2 / 2

    def test_substep_refinement_converges(self, cart):
        x = np.array([0.2, 0.4])
        u = np.array([-0.3])
        coarse = integrate_plant(cart, x, u, substeps=1)
        fine = integrate_plant(cart, x, u, substeps=16)
        assert np.allclose(coarse, fine, atol=1e-6)
