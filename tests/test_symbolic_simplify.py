"""Tests for algebraic simplification, including hypothesis properties."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import SymbolicError
from repro.symbolic import (
    Call,
    Const,
    OPS,
    Var,
    cos,
    count_nodes,
    exp,
    is_one,
    is_zero,
    log,
    simplify,
    sin,
    sqrt,
    tanh,
)

X = Var("x")
Y = Var("y")


class TestIdentities:
    def test_add_zero(self):
        assert simplify(X + 0) == X
        assert simplify(0 + X) == X

    def test_sub_zero(self):
        assert simplify(X - 0) == X

    def test_sub_self(self):
        assert simplify(X - X) == Const(0.0)

    def test_zero_minus(self):
        s = simplify(0 - X)
        assert s == Call(OPS["neg"], (X,))

    def test_mul_zero_annihilates(self):
        assert simplify(X * 0) == Const(0.0)
        assert simplify(0 * sin(X)) == Const(0.0)

    def test_mul_one(self):
        assert simplify(X * 1) == X
        assert simplify(1 * X) == X

    def test_mul_minus_one(self):
        assert simplify(X * -1) == Call(OPS["neg"], (X,))

    def test_div_one(self):
        assert simplify(X / 1) == X

    def test_div_self(self):
        assert simplify(X / X) == Const(1.0)

    def test_zero_div(self):
        assert simplify(0 / X) == Const(0.0)

    def test_double_negation(self):
        assert simplify(-(-X)) == X

    def test_pow_zero(self):
        assert simplify(X**0) == Const(1.0)

    def test_pow_one(self):
        assert simplify(X**1) == X

    def test_one_pow(self):
        assert simplify(Const(1.0) ** X) == Const(1.0)

    def test_add_self_becomes_double(self):
        s = simplify(X + X)
        assert s.evaluate({"x": 3.0}) == 6.0

    def test_constant_folding(self):
        assert simplify(Const(2.0) + Const(3.0)) == Const(5.0)
        assert simplify(cos(Const(0.0))) == Const(1.0)

    def test_folding_does_not_divide_by_zero(self):
        e = Const(1.0) / Const(0.0)
        s = simplify(e)  # stays symbolic rather than raising
        assert isinstance(s, Call)

    def test_nested_cleanup(self):
        # (x*0) + (y*1) -> y
        assert simplify(X * 0 + Y * 1) == Y

    def test_is_zero_is_one(self):
        assert is_zero(Const(0.0))
        assert not is_zero(Const(1e-300))
        assert is_one(Const(1.0))


# -- hypothesis: random expression trees evaluate identically after simplify ----

_leaf = st.one_of(
    st.floats(min_value=-4, max_value=4, allow_nan=False).map(Const),
    st.sampled_from([X, Y]),
)


def _combine(children):
    a, b = children
    ops = [lambda: a + b, lambda: a - b, lambda: a * b, lambda: sin(a), lambda: cos(b)]
    return st.sampled_from(range(len(ops))).map(lambda i: ops[i]())


_expr = st.recursive(
    _leaf,
    lambda inner: st.tuples(inner, inner).flatmap(_combine),
    max_leaves=24,
)


@given(e=_expr, x=st.floats(-3, 3, allow_nan=False), y=st.floats(-3, 3, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_simplify_preserves_value(e, x, y):
    env = {"x": x, "y": y}
    expected = e.evaluate(env)
    got = simplify(e).evaluate(env)
    assert got == pytest.approx(expected, rel=1e-9, abs=1e-9)


@given(e=_expr)
@settings(max_examples=200, deadline=None)
def test_simplify_bounded_growth(e):
    # The x + x -> 2 * x rewrite can add one node per tree level, so
    # simplification is not strictly non-growing — but it must stay within
    # a small factor of the input size (no rewriting explosions).
    before = count_nodes([e])
    after = count_nodes([simplify(e)])
    assert after <= 2 * before + 1


@given(e=_expr)
@settings(max_examples=100, deadline=None)
def test_simplify_idempotent(e):
    once = simplify(e)
    assert simplify(once) == once


# -- the full operator surface: div/neg/pow and the transcendentals the
# -- rewrite rules special-case (x/x -> 1, pow folding, exp/log identities).
# -- Partial operations can fail on the random input; the property is that
# -- whenever the ORIGINAL evaluates finitely, the simplified expression
# -- evaluates to the same value — simplification must never turn a defined
# -- expression into an undefined (or different) one.

_EVAL_ERRORS = (ZeroDivisionError, ValueError, OverflowError, SymbolicError)


def _combine_full(children):
    a, b = children
    ops = [
        lambda: a + b,
        lambda: a - b,
        lambda: a * b,
        lambda: a / b,
        lambda: -a,
        lambda: a ** 2,
        lambda: b ** 3,
        lambda: a ** 0,
        lambda: sin(a),
        lambda: cos(b),
        lambda: tanh(a),
        lambda: exp(a),
        lambda: log(b),
        lambda: sqrt(a),
    ]
    return st.sampled_from(range(len(ops))).map(lambda i: ops[i]())


_expr_full = st.recursive(
    _leaf,
    lambda inner: st.tuples(inner, inner).flatmap(_combine_full),
    max_leaves=20,
)


@given(
    e=_expr_full,
    x=st.floats(-3, 3, allow_nan=False),
    y=st.floats(-3, 3, allow_nan=False),
)
@settings(max_examples=300, deadline=None)
def test_simplify_preserves_value_full_operator_surface(e, x, y):
    env = {"x": x, "y": y}
    try:
        expected = e.evaluate(env)
    except _EVAL_ERRORS:
        assume(False)  # the original is undefined here; nothing to preserve
    assume(math.isfinite(expected))
    got = simplify(e).evaluate(env)
    assert got == pytest.approx(expected, rel=1e-9, abs=1e-9)


@given(e=_expr_full)
@settings(max_examples=150, deadline=None)
def test_simplify_idempotent_full_operator_surface(e):
    once = simplify(e)
    assert simplify(once) == once


@given(e=_expr_full)
@settings(max_examples=150, deadline=None)
def test_simplify_never_raises_on_partial_ops(e):
    # Rewrites constant-fold eagerly; folding a division by zero or a
    # negative sqrt must leave the node symbolic, never raise at
    # simplification time (evaluation is where definedness is decided).
    simplify(e)
