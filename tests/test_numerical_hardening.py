"""Numerical hardening: bad states, poisoned warm starts, failed factorizations.

The solver stack must convert garbage inputs into *structured* rejections
(:class:`StateValidationError` + :class:`SolverHealth`) and absorb transient
factorization failures through the escalating-regularization retry ladder —
never a raw ``numpy`` warning, never a NaN control input.
"""

import numpy as np
import pytest

from repro.errors import SolverError, StateValidationError
from repro.mpc import MPCController, SolveBudget, SolverHealth
from repro.mpc.health import nonfinite_indices
from repro.mpc.qp import QPOptions, QPStats, _robust_factor, solve_qp
from repro.robots import build_benchmark

HORIZON = 8


@pytest.fixture(scope="module")
def bench():
    return build_benchmark("MobileRobot")


@pytest.fixture(scope="module")
def problem(bench):
    return bench.transcribe(horizon=HORIZON)


@pytest.fixture()
def solver(bench, problem):
    return bench.make_solver(problem)


class ForceFailHook:
    """Solver-layer fault hook: fail the next ``fails`` factorization
    attempts, optionally perturbing the matrix first."""

    def __init__(self, fails=0, transform=None):
        self.fails = fails
        self.transform = transform
        self.transform_calls = 0

    def transform_matrix(self, A):
        self.transform_calls += 1
        return A if self.transform is None else self.transform(A)

    def force_failure(self):
        if self.fails > 0:
            self.fails -= 1
            return True
        return False


class TestStateValidation:
    def test_nan_state_rejected_with_health(self, bench, solver):
        x = bench.x0.copy()
        x[1] = float("nan")
        with pytest.raises(StateValidationError) as exc_info:
            solver.solve(x, ref=bench.ref)
        health = exc_info.value.health
        assert isinstance(health, SolverHealth)
        assert not health.state_finite
        assert not health.ok
        assert any("nonfinite_state" in note for note in health.notes)

    def test_inf_state_rejected(self, bench, solver):
        x = bench.x0.copy()
        x[0] = float("inf")
        with pytest.raises(StateValidationError):
            solver.solve(x, ref=bench.ref)

    def test_nonfinite_reference_rejected(self, bench, solver):
        ref = bench.ref.copy()
        ref[0] = float("nan")
        with pytest.raises(StateValidationError, match="reference"):
            solver.solve(bench.x0, ref=ref)

    def test_controller_step_propagates_and_keeps_warm_start(
        self, bench, problem
    ):
        controller = bench.make_controller(problem)
        controller.step(bench.x0, ref=bench.ref)
        warm_before = controller._warm.copy()
        bad = bench.x0.copy()
        bad[2] = float("nan")
        with pytest.raises(StateValidationError):
            controller.step(bad, ref=bench.ref)
        # The measurement, not the warm start, is implicated: warm state
        # must survive the rejection untouched.
        assert controller._warm is not None
        assert np.array_equal(controller._warm, warm_before)
        u = controller.step(bench.x0, ref=bench.ref)
        assert np.all(np.isfinite(u))

    def test_nonfinite_indices_helper(self):
        v = np.array([1.0, np.nan, 2.0, np.inf, -np.inf])
        assert nonfinite_indices(v) == [1, 3, 4]
        assert nonfinite_indices(np.ones(3)) == []
        assert len(nonfinite_indices(np.full(40, np.nan), limit=8)) == 8


class TestWarmStartValidation:
    def test_contaminated_warm_start_reseeded(self, bench, solver):
        clean = solver.solve(bench.x0, ref=bench.ref)
        z_bad = clean.z.copy()
        z_bad[3] = float("nan")
        res = solver.solve(bench.x0, ref=bench.ref, z_warm=z_bad)
        assert res.converged
        assert res.health is not None
        assert res.health.warm_start_reseeded
        assert not res.health.ok
        assert "warm_start_reseeded" in res.health.notes
        # Identical trajectory to a cold-started solve: the poison never
        # reached the iteration.
        cold = solver.solve(bench.x0, ref=bench.ref)
        assert np.allclose(res.z, cold.z, atol=1e-8)

    def test_contaminated_multipliers_reseeded(self, bench, solver):
        clean = solver.solve(bench.x0, ref=bench.ref)
        nu_bad = clean.nu.copy()
        nu_bad[0] = float("inf")
        res = solver.solve(
            bench.x0, ref=bench.ref, z_warm=clean.z, nu_warm=nu_bad
        )
        assert res.converged
        assert "nu_warm_reseeded" in res.health.notes

    def test_clean_solve_reports_healthy(self, bench, solver):
        res = solver.solve(bench.x0, ref=bench.ref)
        assert res.health is not None
        assert res.health.ok
        assert res.health.state_finite
        assert res.health.steps_rejected == 0

    def test_health_dict_roundtrip(self):
        h = SolverHealth(
            warm_start_reseeded=True,
            factorization_retries=3,
            regularization_max=1e-3,
            notes=["warm_start_reseeded"],
        )
        back = SolverHealth.from_dict(h.to_dict())
        assert back.warm_start_reseeded
        assert back.factorization_retries == 3
        assert back.regularization_max == 1e-3
        assert not back.ok
        assert SolverHealth.from_dict(None) is None


class TestFactorizationRetry:
    def test_forced_failures_absorbed_by_retry_ladder(self, bench, solver):
        solver.fault_hook = ForceFailHook(fails=3)
        res = solver.solve(bench.x0, ref=bench.ref)
        assert res.converged
        assert res.health.factorization_retries >= 3
        # The ladder escalates geometrically from the base regularization.
        assert res.health.regularization_max > solver.options.qp.regularization

    def test_retries_surfaced_in_qp_stats(self):
        rng = np.random.default_rng(0)
        n = 6
        A = rng.normal(size=(n, n))
        H = A @ A.T + n * np.eye(n)
        g = rng.normal(size=n)
        hook = ForceFailHook(fails=2)
        res = solve_qp(H, g, None, None, None, None, QPOptions(), fault_hook=hook)
        assert res.converged
        assert res.stats.retries >= 2
        assert res.stats.regularization_max > QPOptions().regularization

    def test_regularization_max_at_base_without_retries(self):
        H = 4.0 * np.eye(3)
        g = np.ones(3)
        res = solve_qp(H, g, None, None, None, None, QPOptions())
        assert res.converged
        assert res.stats.retries == 0
        assert res.stats.regularization_max == QPOptions().regularization

    def test_robust_factor_fails_fast_on_nonfinite_matrix(self):
        A = np.eye(3)
        A[1, 1] = float("nan")
        stats = QPStats()
        with pytest.raises(SolverError, match="non-finite"):
            _robust_factor(A, 1e-9, None, stats)
        # Fail-fast: the 16-rung ladder must not have been burned.
        assert stats.retries == 0

    def test_unfactorizable_matrix_exhausts_ladder(self):
        stats = QPStats()
        hook = ForceFailHook(fails=100)
        with pytest.raises(SolverError, match="could not be factorized"):
            _robust_factor(np.eye(2), 1e-9, None, stats, hook)

    def test_qp_data_validation(self):
        H = np.eye(2)
        g = np.array([1.0, float("nan")])
        with pytest.raises(SolverError, match="QP data g"):
            solve_qp(H, g, None, None, None, None, QPOptions())


class TestClosedLoopFallbackReasons:
    def test_bad_state_recorded_with_reason(self, bench, problem):
        controller = bench.make_controller(problem)

        def poison(k, x):
            return np.zeros_like(x)

        hits = {"n": 0}

        def nan_at_step_2(x):
            hits["n"] += 1
            if hits["n"] == 3:
                bad = x.copy()
                bad[0] = float("nan")
                return bad
            return x

        controller.state_fault_hook = nan_at_step_2
        log = controller.simulate(
            bench.x0, steps=5, ref=bench.ref, disturbance=poison, fallback=True
        )
        assert log.fallbacks[2]
        assert log.fallback_reasons[2] == "bad_state"
        assert np.isnan(log.objectives[2])
        # Non-fallback steps carry a None reason (distinguishable from a
        # fallback that happened to record a NaN objective).
        assert log.fallback_reasons[0] is None
        assert len(log.fallback_reasons) == log.steps

    def test_clean_rollout_has_no_reasons(self, bench, problem):
        controller = bench.make_controller(problem)
        log = controller.simulate(bench.x0, steps=3, ref=bench.ref, fallback=True)
        assert log.fallback_reasons == [None, None, None]


class TestBudgetStarvationPath:
    def test_starved_budget_reports_exhaustion_not_crash(self, bench, problem):
        controller = bench.make_controller(problem)
        controller.budget_fault_hook = lambda b: SolveBudget(wall_clock=1e-9)
        u = controller.step(bench.x0, ref=bench.ref)
        assert np.all(np.isfinite(u))
        assert controller.last_result.status == "budget_exhausted"
