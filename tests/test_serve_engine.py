"""Tests for the batch serving engine: admission, ticking, backpressure."""

import numpy as np
import pytest

from repro.errors import AdmissionError, ServeError, SessionStateError
from repro.mpc import MPCController
from repro.serve import (
    ControlSession,
    EngineConfig,
    ServeEngine,
    SessionConfig,
)
from tests.test_serve_session import ScriptedSolver, cart  # noqa: F401

X = np.zeros(2)


def stub_session(cart, sid, script, **cfg):
    cfg.setdefault("robot", "Cart")
    cfg.setdefault("degrade_after", 3)
    solver = ScriptedSolver(cart, script)
    return ControlSession(sid, SessionConfig(**cfg), MPCController(solver))


def fleet(cart, engine, n, script=("ok",)):
    sids = []
    for i in range(n):
        sids.append(engine.add_session(stub_session(cart, f"s{i}", list(script))))
    return sids


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_sessions": 0},
            {"workers": -1},
            {"workers": 2, "backend": "carrier-pigeon"},
            {"min_batch": 0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ServeError):
            EngineConfig(**kwargs)


class TestAdmission:
    def test_capacity_enforced(self, cart):
        engine = ServeEngine(EngineConfig(max_sessions=2))
        fleet(cart, engine, 2)
        with pytest.raises(AdmissionError):
            engine.add_session(stub_session(cart, "s2", ["ok"]))

    def test_closing_frees_a_slot(self, cart):
        engine = ServeEngine(EngineConfig(max_sessions=2))
        sids = fleet(cart, engine, 2)
        engine.close_session(sids[0])
        engine.add_session(stub_session(cart, "s2", ["ok"]))  # admitted again

    def test_duplicate_id_rejected(self, cart):
        engine = ServeEngine()
        engine.add_session(stub_session(cart, "dup", ["ok"]))
        with pytest.raises(ServeError):
            engine.add_session(stub_session(cart, "dup", ["ok"]))

    def test_unknown_session_lookup(self):
        with pytest.raises(ServeError):
            ServeEngine().get_session("nope")

    def test_unknown_binding_lookup(self):
        with pytest.raises(ServeError):
            ServeEngine().binding("Cart", 8)


class TestTick:
    def test_steps_every_session_with_input(self, cart):
        engine = ServeEngine()
        sids = fleet(cart, engine, 3)
        report = engine.tick({sid: (X, None) for sid in sids})
        assert report.stepped == 3
        assert not report.deferred
        assert all(o.status == "ok" for o in report.outcomes.values())
        assert engine.metrics.fleet.steps == 3
        assert engine.metrics.fleet.ok == 3

    def test_sessions_without_input_are_skipped(self, cart):
        engine = ServeEngine()
        sids = fleet(cart, engine, 3)
        report = engine.tick({sids[0]: (X, None)})
        assert set(report.outcomes) == {sids[0]}

    def test_closed_sessions_are_skipped(self, cart):
        engine = ServeEngine()
        sids = fleet(cart, engine, 2)
        engine.close_session(sids[1])
        report = engine.tick({sid: (X, None) for sid in sids})
        assert set(report.outcomes) == {sids[0]}

    def test_fallbacks_counted_in_metrics(self, cart):
        engine = ServeEngine()
        sids = fleet(cart, engine, 2, script=["ok", "deadline"])
        engine.tick({sid: (X, None) for sid in sids})
        engine.tick({sid: (X, None) for sid in sids})
        f = engine.metrics.fleet
        assert f.steps == 4
        assert f.ok == 2
        assert f.fallbacks == 2
        assert f.deadline_misses == 2

    def test_lifecycle_misuse_is_not_masked(self, cart):
        """ReproError from a step is the caller's bug and must propagate."""
        engine = ServeEngine()
        [sid] = fleet(cart, engine, 1)
        engine.get_session(sid).close()
        engine.sessions[sid].state = "active"  # force an inconsistent close
        engine.get_session(sid).state = "closed"
        report = engine.tick({sid: (X, None)})
        assert report.stepped == 0  # non-serving sessions are just skipped

    def test_thread_backend_matches_inline(self, cart):
        inline = ServeEngine()
        threaded = ServeEngine(EngineConfig(workers=2, backend="thread"))
        sids_a = fleet(cart, inline, 3, script=["ok", "deadline"])
        sids_b = fleet(cart, threaded, 3, script=["ok", "deadline"])
        for _ in range(2):
            inline.tick({sid: (X, None) for sid in sids_a})
            threaded.tick({sid: (X, None) for sid in sids_b})
        threaded.shutdown()
        a, b = inline.metrics.fleet, threaded.metrics.fleet
        assert (a.steps, a.ok, a.fallbacks, a.deadline_misses) == (
            b.steps,
            b.ok,
            b.fallbacks,
            b.deadline_misses,
        )


class TestCrashIsolation:
    def test_non_solver_bug_crashes_only_that_session(self, cart):
        engine = ServeEngine()
        good = engine.add_session(stub_session(cart, "good", ["ok"]))
        bad = engine.add_session(stub_session(cart, "bad", ["boom"]))
        report = engine.tick({good: (X, None), bad: (X, None)})
        assert report.outcomes[good].status == "ok"
        assert report.outcomes[bad].status == "crashed"
        assert engine.crashed_sessions() == [bad]
        assert engine.metrics.fleet.crashes == 1

    def test_crashed_session_not_ticked_again(self, cart):
        engine = ServeEngine()
        bad = engine.add_session(stub_session(cart, "bad", ["boom"]))
        engine.tick({bad: (X, None)})
        report = engine.tick({bad: (X, None)})
        assert report.stepped == 0

    def test_crashed_session_cannot_be_reset(self, cart):
        engine = ServeEngine()
        bad = engine.add_session(stub_session(cart, "bad", ["boom"]))
        engine.tick({bad: (X, None)})
        with pytest.raises(SessionStateError):
            engine.reset_session(bad)


class TestBackpressure:
    def test_overrun_shrinks_next_batch(self, cart):
        engine = ServeEngine(EngineConfig(tick_budget_s=1e-12))
        sids = fleet(cart, engine, 4)
        engine.tick({sid: (X, None) for sid in sids})  # overruns for sure
        report = engine.tick({sid: (X, None) for sid in sids})
        assert report.stepped == 1  # min_batch floor
        assert len(report.deferred) == 3

    def test_deferred_sessions_are_served_round_robin(self, cart):
        engine = ServeEngine(EngineConfig(tick_budget_s=1e-12))
        sids = fleet(cart, engine, 4)
        engine.tick({sid: (X, None) for sid in sids})
        served = []
        for _ in range(4):
            report = engine.tick({sid: (X, None) for sid in sids})
            served.extend(report.outcomes)
        # Four throttled ticks serve each session exactly once: bounded delay.
        assert sorted(served) == sorted(sids)

    def test_headroom_regrows_batch_limit(self, cart):
        engine = ServeEngine(EngineConfig(tick_budget_s=60.0))
        sids = fleet(cart, engine, 4)
        engine._batch_limit = 1
        engine.tick({sid: (X, None) for sid in sids})  # far under budget
        assert engine._batch_limit == 2
        engine.tick({sid: (X, None) for sid in sids})
        assert engine._batch_limit is None  # cap removed at fleet size

    def test_overflow_wait_is_bounded(self, cart):
        """Pinned fairness baseline: under a forced batch limit L with n
        sessions all requesting every tick, round-robin deferral must
        serve every session at least once in any window of ceil(n/L)
        ticks — no session starves behind the overflow."""
        import math

        engine = ServeEngine(EngineConfig(tick_budget_s=60.0))
        n, limit = 5, 2
        sids = fleet(cart, engine, n)
        bound = math.ceil(n / limit)
        last_served = {sid: 0 for sid in sids}
        for tick in range(1, 3 * bound + 1):
            engine._batch_limit = limit  # pin: headroom must not regrow it
            report = engine.tick({sid: (X, None) for sid in sids})
            assert report.stepped == limit
            assert len(report.deferred) == n - limit
            for sid in report.outcomes:
                gap = tick - last_served[sid]
                assert gap <= bound, f"{sid} waited {gap} ticks (bound {bound})"
                last_served[sid] = tick
        stale = [sid for sid, t in last_served.items() if 3 * bound - t >= bound]
        assert not stale, f"sessions starved at the end: {stale}"

    def test_deferred_steps_reach_metrics(self, cart):
        engine = ServeEngine(EngineConfig(tick_budget_s=1e-12))
        sids = fleet(cart, engine, 3)
        engine.tick({sid: (X, None) for sid in sids})
        engine.tick({sid: (X, None) for sid in sids})
        assert engine.metrics.deferred_steps == 2


class TestTeardown:
    def test_shutdown_closes_serving_sessions(self, cart):
        engine = ServeEngine()
        sids = fleet(cart, engine, 2)
        engine.shutdown()
        assert all(engine.sessions[sid].state == "closed" for sid in sids)

    def test_collect_solver_stats_tolerates_stub_solvers(self, cart):
        engine = ServeEngine()
        sids = fleet(cart, engine, 2)
        engine.tick({sid: (X, None) for sid in sids})
        engine.collect_solver_stats()  # stubs expose no phase keys: no-op
        assert engine.metrics.phase_totals["factorize_time"] == 0
