"""EDF queue unit tests: ordering, same-key batch extraction, lazy deletion."""

import numpy as np

from repro.serve2.scheduler import EDFScheduler, SolveRequest

X = np.zeros(2)


def req(sid, deadline, seq, shard=0, robot="Cart", bucket=8):
    return SolveRequest(
        session_id=sid,
        robot=robot,
        horizon=5,
        bucket=bucket,
        shard=shard,
        x=X,
        ref=None,
        deadline=deadline,
        seq=seq,
    )


class TestEDFOrder:
    def test_earliest_deadline_pops_first(self):
        s = EDFScheduler()
        s.push(req("late", 9.0, 0))
        s.push(req("early", 1.0, 1))
        group = s.pop_group(1)
        assert [r.session_id for r in group] == ["early"]

    def test_fifo_among_equal_deadlines(self):
        s = EDFScheduler()
        for i, sid in enumerate(["a", "b", "c"]):
            s.push(req(sid, 5.0, i))
        assert [r.session_id for r in s.drain()] == ["a", "b", "c"]

    def test_depth_tracks_push_and_pop(self):
        s = EDFScheduler()
        assert s.depth == 0
        s.push(req("a", 1.0, 0))
        s.push(req("b", 2.0, 1))
        assert s.depth == len(s) == 2
        s.pop_group(8)
        assert s.depth == 0


class TestGroupFormation:
    def test_same_key_peers_join_the_head(self):
        s = EDFScheduler()
        s.push(req("a", 1.0, 0))
        s.push(req("b", 7.0, 1))
        s.push(req("c", 3.0, 2))
        group = s.pop_group(8)
        assert {r.session_id for r in group} == {"a", "b", "c"}
        assert group[0].session_id == "a"  # head is the EDF minimum
        assert s.depth == 0

    def test_max_batch_caps_the_group(self):
        s = EDFScheduler()
        for i in range(5):
            s.push(req(f"s{i}", float(i), i))
        group = s.pop_group(2)
        assert len(group) == 2
        assert s.depth == 3
        rest = s.pop_group(8)
        assert len(rest) == 3

    def test_other_keys_stay_queued(self):
        s = EDFScheduler()
        s.push(req("cart", 1.0, 0, robot="Cart"))
        s.push(req("quad", 2.0, 1, robot="Quadrotor"))
        s.push(req("cart2", 3.0, 2, robot="Cart"))
        group = s.pop_group(8)
        assert {r.session_id for r in group} == {"cart", "cart2"}
        assert [r.session_id for r in s.pop_group(8)] == ["quad"]

    def test_shard_splits_groups(self):
        s = EDFScheduler()
        s.push(req("a", 1.0, 0, shard=0))
        s.push(req("b", 2.0, 1, shard=1))
        assert len(s.pop_group(8)) == 1
        assert len(s.pop_group(8)) == 1

    def test_lazy_deletion_skips_batched_peers(self):
        """A peer absorbed into an earlier group must not pop again from
        the heap."""
        s = EDFScheduler()
        s.push(req("a", 1.0, 0))
        s.push(req("b", 2.0, 1))
        s.pop_group(8)  # takes both
        assert s.pop_group(8) == []
        assert s.depth == 0

    def test_empty_queue_returns_empty_group(self):
        assert EDFScheduler().pop_group(4) == []
