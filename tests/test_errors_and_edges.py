"""Tests for the exception hierarchy and cross-module edge cases."""

import numpy as np
import pytest

from repro.errors import (
    AcceleratorError,
    CompilerError,
    DSLError,
    LexerError,
    ModelError,
    ParseError,
    ReproError,
    SemanticError,
    SolverError,
    SymbolicError,
    TaskError,
    TranscriptionError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            SymbolicError,
            ModelError,
            TaskError,
            TranscriptionError,
            SolverError,
            DSLError,
            CompilerError,
            AcceleratorError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_dsl_errors_derive_from_dsl_error(self):
        assert issubclass(LexerError, DSLError)
        assert issubclass(ParseError, DSLError)
        assert issubclass(SemanticError, DSLError)

    def test_dsl_error_position_formatting(self):
        err = ParseError("bad token", line=7, column=3)
        assert "line 7" in str(err)
        assert err.line == 7
        assert err.column == 3

    def test_dsl_error_without_position(self):
        err = SemanticError("just a message")
        assert str(err) == "just a message"


class TestAssemblerEdgeCases:
    def test_unknown_phase_rejected(self):
        from repro.accelerator import assemble
        from repro.compiler import map_mdfg, translate
        from repro.robots import build_benchmark

        p = build_benchmark("MobileRobot").transcribe(horizon=2)
        g = translate(p)
        pm = map_mdfg(g, 4, 2)
        with pytest.raises(AcceleratorError, match="no nodes in phase"):
            assemble(g, pm, "imaginary_phase")

    def test_cost_phase_assembles_and_runs(self):
        from repro.accelerator import AcceleratorSimulator, assemble
        from repro.compiler import map_mdfg, translate
        from repro.robots import build_benchmark

        p = build_benchmark("MobileRobot").transcribe(horizon=2)
        g = translate(p)
        pm = map_mdfg(g, 4, 2)
        program = assemble(g, pm, "cost")
        inputs = {name: 0.25 for name in program.input_slots}
        res = AcceleratorSimulator().run(program, inputs)
        assert res.cycles > 0
        assert all(np.isfinite(v) for v in res.outputs.values())


class TestSolverEdgeCases:
    def test_equality_only_problem(self):
        """A model with no bounds and no task constraints: n_ineq = 0."""
        from repro.mpc import (
            InteriorPointSolver,
            Penalty,
            RobotModel,
            Task,
            TranscribedProblem,
            VarSpec,
        )
        from repro.symbolic import Var

        model = RobotModel(
            "Free",
            states=[VarSpec("x")],
            inputs=[VarSpec("u")],
            dynamics={"x": Var("u")},
        )
        task = Task(
            "go",
            model,
            penalties=[
                Penalty("p", Var("x") - 1.0, 5.0),
                Penalty("e", Var("u"), 0.1),
            ],
        )
        p = TranscribedProblem(model, task, horizon=6, dt=0.2)
        assert p.n_ineq == 0
        res = InteriorPointSolver(p).solve(np.zeros(1))
        assert res.converged
        assert res.lam is None

    def test_horizon_one(self):
        from repro.mpc import (
            InteriorPointSolver,
            Penalty,
            RobotModel,
            Task,
            TranscribedProblem,
            VarSpec,
        )
        from repro.symbolic import Var

        model = RobotModel(
            "Tiny",
            states=[VarSpec("x")],
            inputs=[VarSpec("u", -1.0, 1.0)],
            dynamics={"x": Var("u")},
        )
        task = Task("hold", model, penalties=[Penalty("p", Var("x"))])
        p = TranscribedProblem(model, task, horizon=1, dt=0.1)
        res = InteriorPointSolver(p).solve(np.array([0.5]))
        assert res.z.shape == (p.nz,)

    def test_solver_reports_unconverged_honestly(self):
        from repro.mpc import IPMOptions, InteriorPointSolver
        from repro.robots import build_benchmark

        b = build_benchmark("Quadrotor")
        p = b.transcribe(horizon=6)
        res = InteriorPointSolver(p, IPMOptions(max_iterations=1)).solve(
            b.x0, ref=b.ref
        )
        assert not res.converged
        assert res.iterations == 1
