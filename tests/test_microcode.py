"""Tests for the interconnect hop microcode (shift-register bypass bits)."""

import pytest

from repro.compiler import MDFG, map_mdfg, translate
from repro.compiler.microcode import build_microcode
from repro.robots import build_benchmark


def reduction_map(width, n_cus, cus_per_cc, spread=None):
    """A graph with one `width`-wide aggregation, with controlled placement."""
    g = MDFG()
    inputs = [g.add_input(f"x{i}", phase="p") for i in range(width)]
    squares = [g.add_scalar("mul", [i, i], phase="p") for i in inputs]
    g.add_group("add", squares, phase="p")
    initial = (
        {f"x{i}": spread[i] for i in range(width)} if spread is not None else None
    )
    return g, map_mdfg(g, n_cus, cus_per_cc, initial_data=initial)


class TestNeighborHops:
    def test_intra_cc_chain_engages_between_participants(self):
        # 4 CUs in one cluster, all participating -> hops 0, 1, 2 engage.
        _, pm = reduction_map(4, 4, 4, spread=[0, 1, 2, 3])
        mc = build_microcode(pm)
        assert len(mc.waves) == 1
        for hop in range(3):
            assert mc.neighbor_hops[(0, hop)].bits == [1]

    def test_gap_in_participants_still_engages_span(self):
        # Participants on local CUs 0 and 3: hops 0..2 all carry the value.
        _, pm = reduction_map(2, 4, 4, spread=[0, 3])
        mc = build_microcode(pm)
        assert [mc.neighbor_hops[(0, h)].bits[0] for h in range(3)] == [1, 1, 1]

    def test_single_participant_bypasses(self):
        _, pm = reduction_map(2, 8, 4, spread=[0, 4])  # one per cluster
        mc = build_microcode(pm)
        for sched in mc.neighbor_hops.values():
            assert sched.bits == [0]

    def test_uninvolved_cluster_bypasses(self):
        _, pm = reduction_map(4, 8, 4, spread=[0, 1, 2, 3])  # cluster 0 only
        mc = build_microcode(pm)
        for hop in range(3):
            assert mc.neighbor_hops[(1, hop)].bits == [0]


class TestTreeHops:
    def test_two_cluster_reduction_engages_root(self):
        _, pm = reduction_map(2, 8, 4, spread=[0, 4])
        mc = build_microcode(pm)
        assert pm.aggregation and all(
            p.level == "tree_bus" for p in pm.aggregation.values()
        )
        assert sum(s.engagements for s in mc.tree_hops.values()) >= 1

    def test_intra_cc_wave_leaves_tree_idle(self):
        _, pm = reduction_map(4, 8, 4, spread=[0, 1, 2, 3])
        mc = build_microcode(pm)
        assert all(s.engagements == 0 for s in mc.tree_hops.values())

    def test_four_cluster_reduction_engages_multiple_nodes(self):
        _, pm = reduction_map(4, 16, 4, spread=[0, 4, 8, 12])
        mc = build_microcode(pm)
        assert sum(s.engagements for s in mc.tree_hops.values()) >= 3


class TestLockstep:
    def test_all_registers_same_length(self):
        p = build_benchmark("Quadrotor").transcribe(horizon=4)
        g = translate(p)
        pm = map_mdfg(g, 16, 4)
        mc = build_microcode(pm)
        lengths = {
            len(s.bits)
            for s in list(mc.neighbor_hops.values()) + list(mc.tree_hops.values())
        }
        assert len(lengths) == 1
        assert lengths.pop() == len(mc.waves)

    def test_waves_match_aggregation_map(self):
        p = build_benchmark("Quadrotor").transcribe(horizon=4)
        g = translate(p)
        pm = map_mdfg(g, 16, 4)
        mc = build_microcode(pm)
        assert len(mc.waves) == len(pm.aggregation)
        assert {v for v, _ in mc.waves} == set(pm.aggregation)

    def test_utilization_bounded(self):
        p = build_benchmark("Hexacopter").transcribe(horizon=4)
        g = translate(p)
        pm = map_mdfg(g, 16, 4)
        mc = build_microcode(pm)
        assert 0.0 <= mc.hop_utilization() <= 1.0
        if mc.waves:
            assert mc.total_engagements > 0
