"""Tests for static scheduling and the cycle model."""

import pytest

from repro.compiler import (
    MachineConfig,
    Scheduler,
    compile_problem,
    translate,
)
from repro.errors import ScheduleError
from repro.robots import build_benchmark


@pytest.fixture(scope="module")
def quad_problem():
    return build_benchmark("Quadrotor").transcribe(horizon=8)


@pytest.fixture(scope="module")
def default_schedule(quad_problem):
    _, _, sched = compile_problem(quad_problem)
    return sched


class TestMachineConfig:
    def test_defaults_match_table4(self):
        m = MachineConfig()
        assert m.n_cus == 256
        assert m.frequency_ghz == 1.0
        assert m.onchip_sram_bytes == 512 * 1024
        assert m.total_power_watts == 3.4
        # 128 Gb/s at 1 GHz
        assert m.bandwidth_bytes_per_cycle == 16.0

    def test_validation(self):
        with pytest.raises(ScheduleError):
            MachineConfig(n_cus=0)
        with pytest.raises(ScheduleError):
            MachineConfig(cus_per_cc=0)

    def test_cluster_count(self):
        assert MachineConfig(n_cus=256, cus_per_cc=8).n_ccs == 32
        assert MachineConfig(n_cus=10, cus_per_cc=4).n_ccs == 3


class TestScheduleArtifacts:
    def test_phase_costs_cover_graph(self, quad_problem, default_schedule):
        phases = {pc.phase.split(":")[0] for pc in default_schedule.phase_costs}
        assert "dynamics" in phases
        assert "solver" in phases

    def test_cycles_positive(self, default_schedule):
        assert default_schedule.cycles_per_iteration > 0
        assert default_schedule.seconds_per_iteration() > 0

    def test_instruction_streams_emitted(self, default_schedule):
        assert len(default_schedule.compute_stream) > 100
        assert len(default_schedule.comm_stream) > 0
        assert len(default_schedule.memory_stream) >= 2

    def test_streams_decode(self, default_schedule):
        from repro.compiler import decode

        for word in default_schedule.compute_stream[:50]:
            decode(word, "compute")
        for word in default_schedule.comm_stream[:50]:
            decode(word, "comm")
        for word in default_schedule.memory_stream:
            decode(word, "memory")

    def test_phase_lookup(self, default_schedule):
        pc = default_schedule.phase("dynamics")
        assert pc.cycles > 0
        with pytest.raises(ScheduleError):
            default_schedule.phase("nonexistent")


class TestScalingTrends:
    """The design-space trends behind Figures 10-12."""

    def cycles(self, problem, **kwargs):
        _, _, sched = compile_problem(problem, MachineConfig(**kwargs))
        return sched.cycles_per_iteration

    def test_more_cus_never_slower(self, quad_problem):
        prev = None
        for n in (16, 64, 256):
            c = self.cycles(quad_problem, n_cus=n)
            if prev is not None:
                assert c <= prev * 1.01
            prev = c

    def test_cu_scaling_saturates(self, quad_problem):
        c16 = self.cycles(quad_problem, n_cus=16)
        c256 = self.cycles(quad_problem, n_cus=256)
        c1024 = self.cycles(quad_problem, n_cus=1024)
        # Strong gains early, diminishing at the top end (Fig. 11 plateau).
        assert c16 / c256 > 3.0
        assert c256 / c1024 < 2.5

    def test_interconnect_ablation_slows(self, quad_problem):
        on = self.cycles(quad_problem)
        off = self.cycles(quad_problem, compute_enabled_interconnect=False)
        assert off > on  # Fig. 10 direction

    def test_bandwidth_monotone(self, quad_problem):
        slow = self.cycles(quad_problem, bandwidth_bytes_per_cycle=4.0)
        base = self.cycles(quad_problem)
        fast = self.cycles(quad_problem, bandwidth_bytes_per_cycle=64.0)
        assert slow >= base >= fast

    def test_horizon_scales_cycles(self):
        b = build_benchmark("MobileRobot")
        c8 = compile_problem(b.transcribe(horizon=8))[2].cycles_per_iteration
        c64 = compile_problem(b.transcribe(horizon=64))[2].cycles_per_iteration
        assert 4.0 < c64 / c8 < 16.0  # roughly linear in N

    def test_frequency_scales_time_not_cycles(self, quad_problem):
        _, _, s1 = compile_problem(quad_problem, MachineConfig(frequency_ghz=1.0))
        _, _, s2 = compile_problem(quad_problem, MachineConfig(frequency_ghz=2.0))
        assert s1.cycles_per_iteration == pytest.approx(s2.cycles_per_iteration)
        assert s1.seconds_per_iteration() == pytest.approx(
            2.0 * s2.seconds_per_iteration()
        )
