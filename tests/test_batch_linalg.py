"""Batched banded Cholesky: lane-wise agreement with the scalar kernels,
per-lane failure isolation, and the escalating-regularization retry ladder."""

import warnings

import numpy as np
import pytest

from repro.batch import BatchCholeskyFactor, robust_factor_batch, solve_qp_batch
from repro.batch.backend import HOST
from repro.batch.linalg import _triangular_inverse
from repro.errors import SolverError
from repro.mpc.banded import BandedCholeskyFactor, to_banded

# Both pivots pass the positivity check, yet the forward-substitution
# sweep of the inverse overflows (1e154 * 1e160 > float max): the sweep
# used to certify this lane ok=True while its D^-1 tiles held inf.
OVERFLOW = np.array([[1e-320, 1e-6], [1e-6, 1.5e308]])


def spd(n, seed, band=None, scale=1.0):
    """SPD matrix with an exact half-bandwidth: built as L L^T from a
    banded lower factor, so definiteness survives the band structure."""
    rng = np.random.default_rng(seed)
    L = np.tril(rng.normal(size=(n, n)))
    if band is not None:
        mask = np.subtract.outer(np.arange(n), np.arange(n)) <= band
        L = np.where(mask, L, 0.0)
    L[np.arange(n), np.arange(n)] = 1.0 + np.abs(L[np.arange(n), np.arange(n)])
    return scale * (L @ L.T)


class TestAgainstScalar:
    @pytest.mark.parametrize("band", [None, 0, 2, 5])
    def test_solve_matches_numpy(self, band):
        n, B = 24, 5
        A = np.stack([spd(n, 100 + i, band=band) for i in range(B)])
        rng = np.random.default_rng(0)
        b = rng.normal(size=(B, n))
        fac = BatchCholeskyFactor(A, band=band)
        assert fac.ok.all()
        x = fac.solve(b)
        for i in range(B):
            assert np.allclose(A[i] @ x[i], b[i], atol=1e-8)

    def test_matches_scalar_banded_kernel(self):
        n, band, B = 30, 3, 4
        A = np.stack([spd(n, 7 + i, band=band) for i in range(B)])
        rng = np.random.default_rng(1)
        b = rng.normal(size=(B, n))
        batch = BatchCholeskyFactor(A, band=band)
        x = batch.solve(b)
        for i in range(B):
            scalar = BandedCholeskyFactor(to_banded(A[i], band))
            assert np.allclose(x[i], scalar.solve(b[i]), atol=1e-9)

    def test_multi_rhs(self):
        n, B, k = 12, 3, 4
        A = np.stack([spd(n, 40 + i) for i in range(B)])
        rng = np.random.default_rng(2)
        b = rng.normal(size=(B, n, k))
        x = BatchCholeskyFactor(A).solve(b)
        assert x.shape == (B, n, k)
        for i in range(B):
            assert np.allclose(A[i] @ x[i], b[i], atol=1e-8)

    def test_band_wider_than_matrix_clamped(self):
        A = np.stack([spd(4, 3)])
        fac = BatchCholeskyFactor(A, band=99)
        assert fac.ok.all()
        b = np.ones((1, 4))
        assert np.allclose(A[0] @ fac.solve(b)[0], b[0], atol=1e-9)


class TestLaneIsolation:
    def test_indefinite_lane_flagged_others_exact(self):
        n, B = 10, 3
        A = np.stack([spd(n, i) for i in range(B)])
        A[1] = -np.eye(n)  # not SPD
        fac = BatchCholeskyFactor(A)
        assert list(fac.ok) == [True, False, True]
        b = np.ones((B, n))
        x = fac.solve(b)
        for i in (0, 2):
            assert np.allclose(A[i] @ x[i], b[i], atol=1e-8)

    def test_nonfinite_lane_never_poisons_neighbours(self):
        n = 8
        A = np.stack([spd(n, 1), np.full((n, n), np.nan), spd(n, 2)])
        fac = BatchCholeskyFactor(A, band=3)
        assert list(fac.ok) == [True, False, True]
        x = fac.solve(np.ones((3, n)))
        assert np.all(np.isfinite(x[[0, 2]]))

    def test_bad_shape_raises(self):
        with pytest.raises(SolverError):
            BatchCholeskyFactor(np.eye(3))
        fac = BatchCholeskyFactor(np.stack([spd(4, 0)]))
        with pytest.raises(SolverError):
            fac.solve(np.ones((2, 4)))


class TestRobustFactorBatch:
    def test_healthy_lanes_no_retries(self):
        A = np.stack([spd(12, i, band=2) for i in range(3)])
        fac, reg, retries = robust_factor_batch(A, 1e-9, band=2)
        assert fac.ok.all()
        assert (retries == 0).all()
        assert np.allclose(reg, 1e-9)

    def test_retry_scatters_only_failed_lanes(self):
        n = 8
        good = spd(n, 5)
        # Semidefinite lane: needs regularization to factor.
        v = np.ones((n, 1))
        bad = v @ v.T
        A = np.stack([good, bad, good])
        fac, reg, retries = robust_factor_batch(A, 0.0, band=None)
        assert fac.ok.all()
        assert retries[1] > 0 and retries[0] == 0 and retries[2] == 0
        assert reg[1] > reg[0]
        # Healthy lanes keep the bit-identical zero-reg factor.
        base = BatchCholeskyFactor(np.stack([good]), reg=0.0)
        assert np.array_equal(fac._D[0], base._D[0])

    def test_hopeless_nonfinite_lane_not_retried(self):
        A = np.stack([spd(6, 1), np.full((6, 6), np.inf)])
        fac, _reg, retries = robust_factor_batch(A, 1e-9)
        assert list(fac.ok) == [True, False]
        assert retries[1] == 0  # fail-fast, like the scalar guard


class TestTileOnlyStorage:
    """The banded factor must never hold a dense (B, npad, npad) array —
    only the (B, K, nb, nb) D / D^-1 / C tile stacks."""

    def test_no_padded_dense_copy_retained(self):
        n, band, B = 90, 4, 3
        A = np.stack([spd(n, 60 + i, band=band) for i in range(B)])
        fac = BatchCholeskyFactor(A, band=band)
        assert fac.ok.all()
        assert fac.nb < n < fac.npad  # padding is real in this config
        for name, val in vars(fac).items():
            if isinstance(val, np.ndarray) and val.ndim >= 2:
                assert val.shape[-2:] != (fac.npad, fac.npad), (
                    f"{name} is a dense padded (npad, npad) allocation"
                )
        assert fac._D.shape == (B, fac.K, fac.nb, fac.nb)
        assert fac._Dinv.shape == (B, fac.K, fac.nb, fac.nb)
        assert fac._C.shape == (B, fac.K - 1, fac.nb, fac.nb)
        b = np.ones((B, n))
        x = fac.solve(b)
        for i in range(B):
            assert np.allclose(A[i] @ x[i], b[i], atol=1e-8)


class TestTriangularInverse:
    def test_matches_dense_inverse_and_stays_triangular(self):
        rng = np.random.default_rng(3)
        L = np.tril(rng.normal(size=(4, 8, 8)))
        dg = np.arange(8)
        L[:, dg, dg] = 1.0 + np.abs(L[:, dg, dg])
        X = _triangular_inverse(HOST, L)
        assert np.array_equal(np.tril(X), X)
        for i in range(4):
            assert np.allclose(X[i] @ L[i], np.eye(8), atol=1e-9)


class TestOverflowEscape:
    """Overflow past the pivot checks must flag the lane, not certify
    garbage; warnings stay audible for healthy batches."""

    def test_overflowing_lane_flagged_not_certified(self):
        A = np.stack([spd(2, 0), OVERFLOW, spd(2, 1)])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            fac = BatchCholeskyFactor(A)
        assert list(fac.ok) == [True, False, True]
        assert not np.all(np.isfinite(fac._Dinv[1]))  # the garbage it flags

    def test_ladder_repairs_overflow_lane(self):
        # Pre-fix the ladder saw ok=True, never retried, and solves on the
        # "certified" factor returned non-finite values silently.
        A = np.stack([spd(2, 0), OVERFLOW])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            fac, reg, retries = robust_factor_batch(A, 0.0)
        assert fac.ok.all()
        assert retries[1] > 0 and retries[0] == 0
        assert reg[1] > 0.0 and reg[0] == 0.0
        x = fac.solve(np.ones((2, 2)))
        assert np.all(np.isfinite(x))

    def test_unfactorable_lane_surfaces_failed_in_qp_not_garbage(self):
        # A lane the whole regularization ladder cannot repair must come
        # out of the batched QP as a frozen failure (the SQP driver then
        # classifies it diverged), never as a healthy-looking solution.
        good = np.array([[4.0, 1.0], [1.0, 3.0]])
        H = np.stack([good, -1e30 * np.eye(2), good])
        g = np.tile(np.array([1.0, -1.0]), (3, 1))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            res = solve_qp_batch(H, g, None, None, None, None)
        assert list(res.status) == ["converged", "failed", "converged"]
        assert np.all(np.isfinite(res.x[[0, 2]]))

    def test_healthy_batch_keeps_warnings_audible(self):
        A = np.stack([spd(6, 1), spd(6, 2)])
        fac = BatchCholeskyFactor(A)
        assert fac.ok.all()
        assert fac._suppress is False
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any FP warning would raise
            x = fac.solve(np.ones((2, 6)))
        assert np.all(np.isfinite(x))

    def test_errstate_muted_only_with_flagged_lanes_present(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            flagged = BatchCholeskyFactor(np.stack([spd(2, 0), OVERFLOW]))
        assert flagged._suppress is True
