"""Tests for the differential conformance harness (:mod:`repro.conform`).

Fast lane: case/ledger/shrink unit tests plus a small conformance budget on
the two cheapest robots.  The full 25-case sweep over every Table III robot
(the acceptance criterion for the harness) is marked ``slow``.

The mutation test is the harness's own conformance check: a deliberately
corrupted banded solve must be caught against the ledger, shrunk, and
serialized to a repro file that replays.
"""

import dataclasses
import json

import numpy as np
import pytest

import repro.mpc.qp as qp_mod
from repro.conform import (
    CASE_HORIZONS,
    DEFAULT_ROBOTS,
    FAMILY_BASELINES,
    FORMAT_VERSION,
    ConformanceCase,
    generate_cases,
    get_path,
    load_ledger,
    path_names,
    relative_error,
    replay_file,
    run_case,
    run_conformance,
    shrink_case,
    supported_paths,
    tolerance_for,
)
from repro.errors import ConformanceError

LEDGER = load_ledger()

#: Cheapest robots for the fast lane — small state spaces, short solves.
FAST_ROBOTS = ["MobileRobot", "CartPole"]


# ---------------------------------------------------------------- cases ----


class TestCases:
    def test_round_trip(self):
        case = ConformanceCase(
            "Quadrotor", horizon=6, seed=42, x0_scale=0.05, warm=True
        )
        assert ConformanceCase.from_dict(case.to_dict()) == case

    def test_unknown_field_rejected(self):
        with pytest.raises(ConformanceError, match="unknown"):
            ConformanceCase.from_dict({"robot": "CartPole", "horzon": 4})

    def test_missing_robot_rejected(self):
        with pytest.raises(ConformanceError, match="robot"):
            ConformanceCase.from_dict({"horizon": 4})

    def test_horizon_floor(self):
        with pytest.raises(ConformanceError, match="horizon"):
            ConformanceCase("CartPole", horizon=1)

    def test_robot_name_canonicalized(self):
        assert ConformanceCase("cartpole").robot == "CartPole"

    def test_unknown_robot_rejected(self):
        with pytest.raises(Exception):
            ConformanceCase("NotARobot")

    def test_case_id_encodes_knobs(self):
        case = ConformanceCase(
            "CartPole", horizon=4, seed=7, warm=True, drop_constraints=True
        )
        assert case.case_id == "CartPole-N4-s7-warm-nocon"

    def test_generator_deterministic(self):
        a = generate_cases(12, seed=3)
        b = generate_cases(12, seed=3)
        assert a == b
        assert a != generate_cases(12, seed=4)

    def test_generator_round_robin_covers_all_robots(self):
        cases = generate_cases(len(DEFAULT_ROBOTS), seed=0)
        assert {c.robot for c in cases} == set(DEFAULT_ROBOTS)

    def test_generator_horizons_from_menu(self):
        for c in generate_cases(20, seed=1):
            assert c.horizon in CASE_HORIZONS

    def test_generator_rejects_empty_budget(self):
        with pytest.raises(ConformanceError):
            generate_cases(0)


# --------------------------------------------------------------- ledger ----


class TestLedger:
    def test_robot_key_wins_over_default(self):
        ledger = {"p": {"default": 1e-6, "CartPole": 1e-2}}
        assert tolerance_for(ledger, "p", "CartPole") == 1e-2
        assert tolerance_for(ledger, "p", "Quadrotor") == 1e-6

    def test_missing_path_entry_is_an_error(self):
        with pytest.raises(ConformanceError, match="ledger"):
            tolerance_for({}, "new_path", "CartPole")

    def test_checked_in_ledger_covers_every_comparison_path(self):
        for name in path_names():
            if name in FAMILY_BASELINES.values():
                continue  # baselines are the oracle; they have no bound
            assert tolerance_for(LEDGER, name, "CartPole") > 0.0

    def test_relative_error_basics(self):
        assert relative_error([1.0, 2.0], [1.0, 2.0]) == 0.0
        assert relative_error([], []) == 0.0
        assert relative_error([1.0], [1.0, 2.0]) == float("inf")
        assert relative_error([np.nan], [1.0]) == float("inf")

    def test_relative_error_is_relative(self):
        # Same absolute gap, bigger baseline -> smaller error.
        small = relative_error([1.1], [1.0])
        large = relative_error([100.1], [100.0])
        assert large < small


# --------------------------------------------------------------- shrink ----


class TestShrink:
    def test_shrinks_to_lattice_bottom_when_everything_fails(self):
        case = ConformanceCase(
            "CartPole",
            horizon=10,
            seed=5,
            x0_scale=0.1,
            ref_scale=0.05,
            weight_scale=1.7,
            warm=True,
        )
        shrunk, checks = shrink_case(case, lambda c: True)
        assert shrunk.horizon == 2
        assert shrunk.drop_constraints
        assert shrunk.weight_scale == 1.0
        assert not shrunk.warm
        assert shrunk.x0_scale == 0.0 and shrunk.ref_scale == 0.0
        assert shrunk.seed == case.seed  # the seed is never touched
        assert checks > 0

    def test_returns_original_when_nothing_simpler_fails(self):
        case = ConformanceCase("CartPole", horizon=8, warm=True)
        shrunk, _ = shrink_case(case, lambda c: False)
        assert shrunk == case

    def test_keeps_only_transforms_preserving_failure(self):
        # Failure depends on the warm start: everything else must shrink,
        # but the warm flag must survive.
        case = ConformanceCase(
            "CartPole", horizon=10, seed=2, weight_scale=1.5, warm=True
        )
        shrunk, _ = shrink_case(case, lambda c: c.warm)
        assert shrunk.warm
        assert shrunk.horizon == 2
        assert shrunk.weight_scale == 1.0

    def test_check_budget_is_respected(self):
        case = ConformanceCase("CartPole", horizon=10, warm=True)
        calls = []

        def predicate(c):
            calls.append(c)
            return True

        _, checks = shrink_case(case, predicate, max_checks=3)
        assert checks == 3 and len(calls) == 3


# ---------------------------------------------------------------- paths ----


class TestPaths:
    def test_registry_lists_baselines(self):
        names = path_names()
        for baseline in FAMILY_BASELINES.values():
            assert baseline in names

    def test_unknown_path_rejected(self):
        with pytest.raises(ConformanceError, match="unknown"):
            get_path("warp_drive")

    def test_dsl_path_support_is_per_robot(self):
        dsl = get_path("dsl_dynamics")
        assert dsl.supports(ConformanceCase("MobileRobot"))
        assert not dsl.supports(ConformanceCase("CartPole"))
        names = [p.name for p in supported_paths(ConformanceCase("CartPole"))]
        assert "dsl_dynamics" not in names and "dense_kkt" in names


# ------------------------------------------------------------ fast lane ----


class TestFastLane:
    def test_small_budget_all_paths_agree(self):
        report = run_conformance(
            n_cases=4, seed=0, robots=FAST_ROBOTS, ledger=LEDGER
        )
        assert report.ok, report.summary()
        assert report.n_pass + report.n_infeasible == 4
        assert report.failure_files == []

    def test_single_case_comparisons_cover_every_family(self):
        outcome = run_case(
            ConformanceCase("MobileRobot", horizon=4, seed=11), ledger=LEDGER
        )
        assert outcome.status == "pass"
        families = {c.family for c in outcome.comparisons}
        assert families == {"qp", "dynamics", "linearize", "padded"}

    def test_path_subset_runs_only_that_family(self):
        report = run_conformance(
            n_cases=2,
            seed=1,
            robots=["CartPole"],
            paths=["dense_kkt", "banded_kkt"],
            ledger=LEDGER,
        )
        assert report.ok, report.summary()
        for outcome in report.outcomes:
            assert {c.family for c in outcome.comparisons} == {"qp"}

    def test_unknown_path_rejected_up_front(self):
        with pytest.raises(ConformanceError, match="unknown"):
            run_conformance(n_cases=1, paths=["dense_kkt", "nope"], ledger=LEDGER)

    def test_impossible_tolerance_fails_without_shrink(self, tmp_path):
        # A zero tolerance makes any nonzero disagreement a failure; with
        # shrinking disabled the original recipe lands in the repro file.
        ledger = {k: dict(v) for k, v in LEDGER.items()}
        ledger["accel_sim"] = {"default": 0.0}
        report = run_conformance(
            n_cases=1,
            seed=0,
            robots=["CartPole"],
            paths=["float_dynamics", "accel_sim"],
            ledger=ledger,
            shrink=False,
            out_dir=tmp_path,
        )
        assert report.n_fail == 1 and not report.ok
        (repro,) = report.failure_files
        doc = json.loads(open(repro).read())
        assert doc["case"] == doc["original_case"]
        assert doc["shrink_checks"] == 0


# --------------------------------------------------------------- replay ----


class TestReplay:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ConformanceError, match="not found"):
            replay_file(tmp_path / "nope.json", ledger=LEDGER)

    def test_malformed_file(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(ConformanceError, match="malformed"):
            replay_file(p, ledger=LEDGER)

    def test_version_mismatch(self, tmp_path):
        p = tmp_path / "old.json"
        p.write_text(json.dumps({"version": FORMAT_VERSION + 1, "case": {}}))
        with pytest.raises(ConformanceError, match="version"):
            replay_file(p, ledger=LEDGER)

    def test_replay_of_passing_case(self, tmp_path):
        doc = {
            "version": FORMAT_VERSION,
            "case": ConformanceCase("CartPole", horizon=4, seed=3).to_dict(),
            "paths": ["dense_kkt", "banded_kkt"],
        }
        p = tmp_path / "case.json"
        p.write_text(json.dumps(doc))
        outcome = replay_file(p, ledger=LEDGER)
        assert outcome.status == "pass"


# ------------------------------------------------------------- mutation ----


class _OffByOneSolve(qp_mod.BandedCholeskyFactor):
    """A subtle indexing-style bug: the first solution entry is nudged."""

    def solve(self, b):
        x = np.array(super().solve(b), dtype=float)
        x[0] += 1e-4 * (1.0 + abs(float(x.flat[0])))
        return x


class TestMutationCheck:
    """The acceptance criterion: an injected banded-solver bug must be
    caught, shrunk, and serialized to a replayable repro file."""

    def test_corrupted_banded_solver_is_caught_and_shrunk(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(qp_mod, "BandedCholeskyFactor", _OffByOneSolve)
        report = run_conformance(
            n_cases=2,
            seed=0,
            robots=["MobileRobot"],
            paths=["dense_kkt", "banded_kkt"],
            ledger=LEDGER,
            out_dir=tmp_path,
        )
        assert not report.ok and report.n_fail == 2

        repro = report.failure_files[0]
        doc = json.loads(open(repro).read())
        assert doc["version"] == FORMAT_VERSION
        assert [f["path"] for f in doc["failures"]] == ["banded_kkt"]

        # The shrinker must have simplified the recipe, not grown it.
        shrunk = ConformanceCase.from_dict(doc["case"])
        original = ConformanceCase.from_dict(doc["original_case"])
        assert shrunk.horizon <= original.horizon
        assert doc["shrink_checks"] > 0

        # The repro file reproduces the failure while the bug is live...
        assert replay_file(repro, ledger=LEDGER).status == "fail"

        # ...and passes once the mutation is reverted.
        monkeypatch.undo()
        assert replay_file(repro, ledger=LEDGER).status == "pass"


# ------------------------------------------------------------ full sweep ---


@pytest.mark.slow
def test_full_acceptance_sweep():
    """The checked-in ledger holds for 25 seeded cases over every robot."""
    report = run_conformance(n_cases=25, seed=0, ledger=LEDGER)
    assert report.ok, report.summary()
    assert report.n_pass >= 20  # infeasible draws are rare, failures zero
