"""Tests for the serving session layer: the degradation ladder end to end.

Uses an injected scripted solver stub so every rung is exercised
deterministically: deadline miss -> shifted previous plan, repeated misses
-> degraded session, recovery after a successful solve, solver errors and
divergence -> warm-start reset.
"""

import numpy as np
import pytest

from repro.errors import ServeError, SessionStateError, SolverError
from repro.mpc import (
    MPCController,
    Penalty,
    RobotModel,
    Task,
    TranscribedProblem,
    VarSpec,
)
from repro.mpc.ipm import IPMResult
from repro.serve import (
    ACTIVE,
    CRASHED,
    CLOSED,
    DEGRADED,
    ControlSession,
    FallbackLadder,
    HOLD,
    SHIFTED_PLAN,
    SessionConfig,
)
from repro.symbolic import Var


@pytest.fixture(scope="module")
def cart():
    x, v, u = Var("x"), Var("v"), Var("u")
    model = RobotModel(
        "Cart",
        states=[VarSpec("x"), VarSpec("v", -2.0, 2.0)],
        inputs=[VarSpec("u", -1.0, 1.0)],
        dynamics={"x": v, "v": u},
    )
    task = Task(
        "park",
        model,
        penalties=[Penalty("pos", x, 5.0, "running")],
    )
    return TranscribedProblem(model, task, horizon=10, dt=0.1)


class ScriptedSolver:
    """Stands in for InteriorPointSolver, playing back a list of step modes.

    Modes: "ok" (converged), "deadline" (budget exhausted, residual never
    evaluated), "partial" (budget exhausted but control-grade), "error"
    (raises SolverError), "nan" (non-finite objective), "highkkt"
    (finite but divergent residual), "boom" (non-solver bug: ValueError).
    The solved input plan is always ``us[t] = t + 1`` so shifted-plan
    fallbacks are recognizable by value.
    """

    def __init__(self, problem, script):
        self.problem = problem
        self.script = list(script)
        self.calls = 0
        self.stats = {"solves": 0}

    def solve(
        self,
        x_init,
        ref=None,
        z_warm=None,
        nu_warm=None,
        lam_warm=None,
        budget=None,
    ):
        mode = self.script[min(self.calls, len(self.script) - 1)]
        self.calls += 1
        self.stats["solves"] += 1
        if mode == "error":
            raise SolverError("injected solver failure")
        if mode == "boom":
            raise ValueError("injected bug outside the solver contract")
        p = self.problem
        xs = np.zeros((p.N + 1, p.nx))
        us = np.arange(1.0, p.N + 1)[:, None] * np.ones((1, p.nu))
        z = p.join(xs, us)
        fields = dict(z=z, nu=None, lam=None, solve_time=0.001)
        if mode == "ok":
            return IPMResult(
                converged=True,
                iterations=3,
                qp_iterations=9,
                objective=1.0,
                kkt_residual=1e-6,
                status="converged",
                **fields,
            )
        if mode == "deadline":
            return IPMResult(
                converged=False,
                iterations=1,
                qp_iterations=2,
                objective=5.0,
                kkt_residual=float("inf"),
                status="budget_exhausted",
                **fields,
            )
        if mode == "partial":
            return IPMResult(
                converged=False,
                iterations=2,
                qp_iterations=4,
                objective=2.0,
                kkt_residual=5e-3,
                status="budget_exhausted",
                **fields,
            )
        if mode == "nan":
            return IPMResult(
                converged=False,
                iterations=2,
                qp_iterations=4,
                objective=float("nan"),
                kkt_residual=1e3,
                status="max_iterations",
                **fields,
            )
        if mode == "highkkt":
            return IPMResult(
                converged=False,
                iterations=2,
                qp_iterations=4,
                objective=3.0,
                kkt_residual=1e9,
                status="max_iterations",
                **fields,
            )
        raise AssertionError(f"unknown mode {mode!r}")


def make_session(cart, script, **cfg):
    cfg.setdefault("robot", "Cart")
    cfg.setdefault("deadline_s", 0.05)
    cfg.setdefault("degrade_after", 3)
    solver = ScriptedSolver(cart, script)
    return ControlSession("t0", SessionConfig(**cfg), MPCController(solver))


X = np.zeros(2)


class TestFallbackLadder:
    def test_needs_at_least_one_input(self):
        with pytest.raises(ServeError):
            FallbackLadder(0)

    def test_hover_shape_validated(self):
        with pytest.raises(ServeError):
            FallbackLadder(2, hover=np.zeros(3))

    def test_plan_shape_validated(self):
        ladder = FallbackLadder(2)
        with pytest.raises(ServeError):
            ladder.record_success(np.zeros((5, 3)))

    def test_unarmed_fallback_holds(self):
        ladder = FallbackLadder(2)
        action = ladder.fallback()
        assert action.rung == HOLD
        assert np.array_equal(action.input, np.zeros(2))
        assert ladder.consecutive == 1
        assert ladder.total == 1

    def test_shifted_plan_sequence_then_hold(self):
        ladder = FallbackLadder(1)
        plan = np.arange(1.0, 4.0)[:, None]  # [[1], [2], [3]]
        ladder.record_success(plan)
        assert ladder.plan_remaining == 2
        a1, a2 = ladder.fallback(), ladder.fallback()
        assert a1.rung == SHIFTED_PLAN and a1.input[0] == 2.0
        assert a2.rung == SHIFTED_PLAN and a2.input[0] == 3.0
        assert ladder.plan_remaining == 0
        assert ladder.fallback().rung == HOLD

    def test_success_rearms_and_clears_consecutive(self):
        ladder = FallbackLadder(1)
        ladder.record_success(np.ones((4, 1)))
        ladder.fallback()
        ladder.fallback()
        assert ladder.consecutive == 2
        ladder.record_success(np.ones((4, 1)))
        assert ladder.consecutive == 0
        assert ladder.plan_remaining == 3
        assert ladder.total == 2  # lifetime count survives re-arming

    def test_reset_forgets_plan_keeps_total(self):
        ladder = FallbackLadder(1)
        ladder.record_success(np.ones((4, 1)))
        ladder.fallback()
        ladder.reset()
        assert ladder.plan_remaining == 0
        assert ladder.consecutive == 0
        assert ladder.total == 1
        assert ladder.fallback().rung == HOLD


class TestDegradationLadder:
    def test_successful_step(self, cart):
        session = make_session(cart, ["ok"])
        out = session.step(X)
        assert out.status == "ok"
        assert not out.fallback
        assert out.reason is None
        assert out.converged
        assert out.session_state == ACTIVE
        assert np.array_equal(out.u, np.array([1.0]))

    def test_deadline_miss_serves_shifted_plan(self, cart):
        session = make_session(cart, ["ok", "deadline", "deadline"])
        session.step(X)
        miss1 = session.step(X)
        miss2 = session.step(X)
        assert miss1.status == SHIFTED_PLAN
        assert miss1.fallback and miss1.reason == "deadline"
        # The plan's u_0 == 1 was applied on the good step; the first miss
        # serves u_1, the second u_2.
        assert np.array_equal(miss1.u, np.array([2.0]))
        assert np.array_equal(miss2.u, np.array([3.0]))
        assert miss1.consecutive_fallbacks == 1
        assert miss2.consecutive_fallbacks == 2

    def test_miss_before_any_success_holds(self, cart):
        session = make_session(cart, ["deadline"])
        out = session.step(X)
        assert out.status == HOLD
        assert np.array_equal(out.u, np.zeros(1))

    def test_repeated_misses_degrade_session(self, cart):
        session = make_session(cart, ["ok"] + ["deadline"] * 4)
        session.step(X)
        outs = [session.step(X) for _ in range(4)]
        assert [o.session_state for o in outs] == [
            ACTIVE,
            ACTIVE,
            DEGRADED,
            DEGRADED,
        ]
        # The transition fires exactly once, on the third consecutive miss.
        assert [o.degraded_transition for o in outs] == [
            False,
            False,
            True,
            False,
        ]
        assert session.state == DEGRADED

    def test_recovery_after_successful_solve(self, cart):
        session = make_session(cart, ["ok"] + ["deadline"] * 3 + ["ok"])
        for _ in range(4):
            session.step(X)
        assert session.state == DEGRADED
        out = session.step(X)
        assert out.status == "ok"
        assert out.session_state == ACTIVE
        assert session.state == ACTIVE
        assert session.ladder.consecutive == 0

    def test_deadline_miss_keeps_warm_start(self, cart):
        """A truncated solve is RTI progress — the partial iterate must
        survive as the next warm start even though the ladder input is
        served."""
        session = make_session(cart, ["ok", "deadline"])
        session.step(X)
        session.step(X)
        assert session.controller._warm is not None

    def test_solver_error_resets_warm_but_keeps_plan(self, cart):
        session = make_session(cart, ["ok", "error"])
        session.step(X)
        out = session.step(X)
        assert out.fallback and out.reason == "solver_error"
        assert out.status == SHIFTED_PLAN  # the last good plan still serves
        assert np.array_equal(out.u, np.array([2.0]))
        assert session.controller._warm is None
        assert session.controller.last_result is None

    def test_nonfinite_objective_is_divergence(self, cart):
        session = make_session(cart, ["ok", "nan"])
        session.step(X)
        out = session.step(X)
        assert out.fallback and out.reason == "diverged"
        assert session.controller._warm is None

    def test_huge_kkt_residual_is_divergence(self, cart):
        session = make_session(cart, ["ok", "highkkt"])
        session.step(X)
        out = session.step(X)
        assert out.fallback and out.reason == "diverged"

    def test_budget_exhausted_but_control_grade_is_served(self, cart):
        """Rung 0: KKT below accept_kkt -> serve the partial iterate."""
        session = make_session(cart, ["partial"])
        out = session.step(X)
        assert out.status == "ok"
        assert not out.fallback
        assert out.partial
        assert np.array_equal(out.u, np.array([1.0]))

    def test_accept_kkt_threshold_is_configurable(self, cart):
        session = make_session(cart, ["partial"], accept_kkt=1e-4)
        out = session.step(X)  # 5e-3 now above the bar -> fallback
        assert out.fallback and out.reason == "deadline"

    def test_every_fallback_input_is_finite(self, cart):
        session = make_session(cart, ["deadline"] * 6)
        for _ in range(6):
            out = session.step(X)
            assert np.all(np.isfinite(out.u))


class TestLifecycle:
    def test_close_then_step_raises(self, cart):
        session = make_session(cart, ["ok"])
        session.close()
        assert session.state == CLOSED
        assert not session.serving
        with pytest.raises(SessionStateError):
            session.step(X)

    def test_close_clears_controller_state(self, cart):
        session = make_session(cart, ["ok"])
        session.step(X)
        session.close()
        assert session.controller._warm is None

    def test_reset_reactivates_degraded_session(self, cart):
        session = make_session(cart, ["ok"] + ["deadline"] * 3)
        for _ in range(4):
            session.step(X)
        assert session.state == DEGRADED
        session.reset()
        assert session.state == ACTIVE
        assert session.ladder.plan_remaining == 0
        assert session.controller._warm is None

    def test_mark_crashed_is_terminal(self, cart):
        session = make_session(cart, ["ok"])
        out = session.mark_crashed()
        assert out.status == "crashed"
        assert out.session_state == CRASHED
        assert np.all(np.isfinite(out.u))
        with pytest.raises(SessionStateError):
            session.step(X)
        with pytest.raises(SessionStateError):
            session.close()

    def test_step_counter(self, cart):
        session = make_session(cart, ["ok", "deadline", "ok"])
        for _ in range(3):
            session.step(X)
        assert session.steps == 3

    def test_outcome_record_is_flat(self, cart):
        session = make_session(cart, ["ok"])
        record = session.step(X).to_record()
        assert record["status"] == "ok"
        assert record["session"] == "t0"
        assert "u" not in record  # trace records drop the input vector
