"""Fused-linearizer integration: tier selection, scalar/batch agreement
with the interpreted evaluators, solver stats surfacing, and the fallback
ladder (build failures, runtime failures, narrow batch-vectorization
catches)."""

import numpy as np
import pytest

from repro.batch import BatchLinearizer
from repro.batch.backend import NumpyBackend
from repro.codegen import CodegenStats, FusedProblemKernels, c_available, resolve_mode
from repro.errors import CodegenError, SolverError, VectorizationError
from repro.robots import build_benchmark


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Every test gets its own artifact-store root."""
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "cgcache"))
    monkeypatch.delenv("REPRO_CODEGEN", raising=False)


@pytest.fixture()
def mobile():
    bench = build_benchmark("MobileRobot")
    return bench, bench.transcribe(horizon=5)


def _point(bench, problem, seed=0):
    rng = np.random.default_rng(seed)
    x0 = np.asarray(bench.x0, float) + 0.05 * rng.standard_normal(problem.nx)
    z = problem.initial_guess(x0) + 0.02 * rng.standard_normal(problem.nz)
    return x0, z


class TestModeResolution:
    def test_env_default(self, monkeypatch):
        assert resolve_mode(None) == "auto"
        monkeypatch.setenv("REPRO_CODEGEN", "numpy")
        assert resolve_mode(None) == "numpy"
        assert resolve_mode("off") == "off"  # explicit beats env

    def test_unknown_mode_rejected(self):
        with pytest.raises(CodegenError):
            resolve_mode("fast")

    def test_qpoptions_validates_codegen(self):
        from repro.mpc.qp import QPOptions

        assert QPOptions(codegen="numpy").codegen == "numpy"
        with pytest.raises(SolverError):
            QPOptions(codegen="fast")


class TestTierSelection:
    def test_off_is_interpreted(self, mobile):
        _, problem = mobile
        k = FusedProblemKernels(problem, "off")
        assert not k.active
        assert k.stats.kernel == "interpreted"
        assert k.stats.fallback_reason == "codegen off"

    def test_auto_keeps_small_problems_interpreted(self, mobile):
        _, problem = mobile
        k = FusedProblemKernels(problem, "auto")
        assert not k.active
        assert "below size cutoff" in k.stats.fallback_reason

    def test_numpy_pin(self, mobile):
        _, problem = mobile
        k = FusedProblemKernels(problem, "numpy")
        assert k.active
        assert k.stats.kernel == "fused-numpy"
        assert k.stats.emit_time > 0.0

    def test_move_block_falls_back(self):
        from repro.mpc import TranscribedProblem

        bench = build_benchmark("MobileRobot")
        problem = TranscribedProblem(
            bench.model, bench.task, horizon=6, dt=bench.dt, move_block=2
        )
        k = FusedProblemKernels(problem, "on")
        assert not k.active
        assert k.stats.fallback_reason == "move_block > 1"

    def test_c_mode_degrades_without_compiler(self, mobile, monkeypatch):
        _, problem = mobile
        monkeypatch.setattr(
            "repro.codegen.linearizer.c_available", lambda: False
        )
        k = FusedProblemKernels(problem, "c")
        assert k.active
        assert k.stats.kernel == "fused-numpy"
        assert "no C compiler" in k.stats.fallback_reason

    def test_store_hit_on_second_build(self, mobile):
        _, problem = mobile
        first = FusedProblemKernels(problem, "numpy")
        second = FusedProblemKernels(problem, "numpy")
        assert first.key == second.key
        assert not first.stats.store_hit
        assert second.stats.store_hit


def _all_scalar_outputs(problem, z, x0, ref):
    return (
        problem.objective(z, ref),
        problem.objective_gradient(z, ref),
        problem.objective_gauss_newton(z, ref),
        problem.equality_constraints(z, x0, ref),
        problem.equality_jacobian(z, ref),
        problem.inequality_constraints(z, ref),
        problem.inequality_jacobian(z, ref),
    )


@pytest.mark.parametrize(
    "mode",
    [
        "numpy",
        pytest.param(
            "c",
            marks=pytest.mark.skipif(
                not c_available(), reason="no C compiler / cffi here"
            ),
        ),
    ],
)
def test_scalar_fused_matches_interpreted(mobile, mode):
    bench, problem = mobile
    x0, z = _point(bench, problem)
    problem.set_codegen("off")
    expected = _all_scalar_outputs(problem, z, x0, bench.ref)
    problem.set_codegen(mode)
    assert problem.codegen_kernels().active
    got = _all_scalar_outputs(problem, z, x0, bench.ref)
    for e, g in zip(expected, got):
        if mode == "c":
            # same libm, contraction off: bit-identical to interpreted
            assert np.array_equal(np.asarray(e), np.asarray(g))
        else:
            np.testing.assert_allclose(g, e, rtol=0, atol=1e-12)


def test_scalar_point_cache_serves_follow_ups(mobile):
    bench, problem = mobile
    x0, z = _point(bench, problem)
    problem.set_codegen("numpy")
    problem.objective_gradient(z, bench.ref)  # fused_run_full + term_full
    stats = problem.codegen_stats()
    misses = stats.cache_misses
    problem.objective(z, bench.ref)  # subset of the cached full pass
    problem.equality_constraints(z, x0, bench.ref)
    assert stats.cache_misses == misses
    assert stats.cache_hits > 0


def test_runtime_failure_falls_back_to_interpreted(mobile):
    bench, problem = mobile
    x0, z = _point(bench, problem)
    problem.set_codegen("off")
    expected = problem.objective(z, bench.ref)
    problem.set_codegen("numpy")
    lin = problem._fused_linearizer()
    assert lin is not None

    def boom(*a, **k):
        raise RuntimeError("kernel exploded")

    lin.kernel.call = boom
    assert problem.objective(z, bench.ref) == pytest.approx(expected, abs=1e-12)
    assert problem._fused_linearizer() is None  # permanently disabled
    assert "runtime failure" in problem.codegen_stats().fallback_reason


def test_validation_errors_still_raise_through_fused(mobile):
    from repro.errors import TranscriptionError

    bench, problem = mobile
    x0, z = _point(bench, problem)
    problem.set_codegen("numpy")
    with pytest.raises(TranscriptionError):
        problem.equality_constraints(z, np.zeros(problem.nx + 1), bench.ref)
    with pytest.raises(TranscriptionError):
        problem.objective(z)  # missing required reference values
    # a contract violation must not tear down the fused path
    assert problem._fused_linearizer() is not None


def test_ipm_solver_surfaces_codegen_stats(mobile):
    bench, problem = mobile
    solver = bench.make_solver(problem)
    solver.options.qp.codegen = "numpy"
    problem.set_codegen("numpy")
    result = solver.solve(np.asarray(bench.x0, float), ref=bench.ref)
    assert result.converged
    record = solver.stats["codegen"]
    assert record is not None
    assert record["kernel"] == "fused-numpy"
    assert record["cache_hits"] > 0


class TestBatchFused:
    def _lanes(self, bench, problem, B=3):
        rng = np.random.default_rng(1)
        Z = np.stack(
            [
                problem.initial_guess(
                    np.asarray(bench.x0, float)
                    + 0.1 * rng.standard_normal(problem.nx)
                )
                + 0.05 * rng.standard_normal(problem.nz)
                for _ in range(B)
            ]
        )
        return Z, Z[:, : problem.nx].copy()

    def test_batch_fused_matches_batch_vectorized(self, mobile):
        bench, problem = mobile
        Z, X0 = self._lanes(bench, problem)
        problem.set_codegen("off")
        plain = BatchLinearizer(problem)
        assert plain._fused is None
        problem.set_codegen("numpy")
        fused = BatchLinearizer(problem)
        assert fused._fused is not None
        R = plain.normalize_ref([bench.ref] * Z.shape[0], Z.shape[0])
        pairs = [
            (plain.objective(Z, R), fused.objective(Z, R)),
            (
                plain.objective_gradient(Z, R),
                fused.objective_gradient(Z, R),
            ),
            (
                plain.objective_gauss_newton(Z, R),
                fused.objective_gauss_newton(Z, R),
            ),
            (
                plain.equality_constraints(Z, X0, R),
                fused.equality_constraints(Z, X0, R),
            ),
            (plain.equality_jacobian(Z, R), fused.equality_jacobian(Z, R)),
            (
                plain.inequality_constraints(Z, R),
                fused.inequality_constraints(Z, R),
            ),
            (
                plain.inequality_jacobian(Z, R),
                fused.inequality_jacobian(Z, R),
            ),
        ]
        for want, got in pairs:
            # same ufuncs in the same order: bit-identical stacks
            assert np.array_equal(np.asarray(want), np.asarray(got))

    def test_batch_point_cache_counts(self, mobile):
        bench, problem = mobile
        Z, X0 = self._lanes(bench, problem)
        problem.set_codegen("numpy")
        lin = BatchLinearizer(problem)
        R = lin.normalize_ref([bench.ref] * Z.shape[0], Z.shape[0])
        lin.equality_jacobian(Z, R)
        stats = lin.codegen_stats
        misses = stats.cache_misses
        lin.equality_constraints(Z, X0, R)  # same objects: cached full pass
        assert stats.cache_misses == misses
        assert stats.cache_hits > 0


class TestBatchFallbackNarrowing:
    """Satellite regression: ``BatchLinearizer.__init__`` must only swallow
    genuine vectorization failures — real bugs surface."""

    class _NoSinBackend(NumpyBackend):
        def ufuncs(self):
            funcs = dict(super().ufuncs())
            funcs.pop("sin", None)
            return funcs

    def test_missing_ufunc_records_reason(self, mobile):
        _, problem = mobile
        lin = BatchLinearizer(problem, backend=self._NoSinBackend("float64"))
        assert not lin.vectorized
        assert "sin" in lin.fallback_reason

    def test_vectorized_path_has_no_reason(self, mobile):
        _, problem = mobile
        lin = BatchLinearizer(problem)
        assert lin.vectorized
        assert lin.fallback_reason == ""

    def test_genuine_bug_propagates(self, mobile, monkeypatch):
        _, problem = mobile

        def broken(fn, backend=None):
            raise RuntimeError("a real bug, not a vectorization gap")

        monkeypatch.setattr(
            "repro.batch.transcription.vectorize_compiled", broken
        )
        with pytest.raises(RuntimeError, match="a real bug"):
            BatchLinearizer(problem)

    def test_vectorization_error_subclasses_transcription_error(self):
        from repro.errors import TranscriptionError

        assert issubclass(VectorizationError, TranscriptionError)


def test_codegen_stats_roundtrip():
    stats = CodegenStats(kernel="fused-c", cache_hits=3)
    d = stats.as_dict()
    assert d["kernel"] == "fused-c"
    assert d["cache_hits"] == 3
