"""Tests for the macro dataflow graph and kernel op accounting."""

import pytest

from repro.compiler import MDFG, NodeType, kernel_op_counts
from repro.errors import CompilerError


class TestConstruction:
    def test_input_dedup(self):
        g = MDFG()
        a = g.add_input("x")
        b = g.add_input("x")
        assert a == b
        assert len(g) == 1

    def test_scalar_node(self):
        g = MDFG()
        x = g.add_input("x")
        y = g.add_input("y")
        s = g.add_scalar("mul", [x, y], phase="dyn")
        assert g.nodes[s].op == "mul"
        assert g.nodes[s].parents == (x, y)

    def test_bad_parent_rejected(self):
        g = MDFG()
        with pytest.raises(CompilerError):
            g.add_scalar("add", [42])

    def test_group_requires_known_aggregation(self):
        g = MDFG()
        x = g.add_input("x")
        with pytest.raises(CompilerError, match="add/mul/min/max"):
            g.add_group("sub", [x])

    def test_group_width(self):
        g = MDFG()
        parents = [g.add_input(f"x{i}") for i in range(5)]
        gid = g.add_group("add", parents)
        assert g.nodes[gid].width == 5

    def test_vector_width_validated(self):
        g = MDFG()
        with pytest.raises(CompilerError):
            g.add_vector("add", 0, [])

    def test_kernel_parameter_check(self):
        g = MDFG()
        with pytest.raises(CompilerError, match="missing parameters"):
            g.add_kernel("cholesky", {})

    def test_unknown_kernel(self):
        g = MDFG()
        with pytest.raises(CompilerError, match="unknown kernel"):
            g.add_kernel("fft", {"n": 8})

    def test_validate_passes_for_well_formed(self):
        g = MDFG()
        x = g.add_input("x")
        g.add_scalar("neg", [x])
        g.validate()


class TestOpCounts:
    def test_scalar_counts(self):
        g = MDFG()
        x = g.add_input("x")
        g.add_scalar("mul", [x, x], repeat=3)
        assert g.total_op_counts() == {"mul": 3}

    def test_vector_counts(self):
        g = MDFG()
        x = g.add_input("x")
        g.add_vector("add", 8, [x], repeat=2)
        assert g.total_op_counts() == {"add": 16}

    def test_group_counts(self):
        g = MDFG()
        parents = [g.add_input(f"x{i}") for i in range(6)]
        g.add_group("add", parents)
        # width-6 reduction = 5 combines
        assert g.total_op_counts() == {"add": 5}

    def test_phase_filtering(self):
        g = MDFG()
        x = g.add_input("x")
        g.add_scalar("mul", [x, x], phase="a")
        g.add_scalar("add", [x, x], phase="b")
        assert g.total_op_counts("a") == {"mul": 1}
        assert g.total_op_counts("b") == {"add": 1}
        assert g.phases() == ("a", "b")


class TestKernelCounts:
    def test_cholesky_cubic(self):
        c = kernel_op_counts("cholesky", {"n": 32})
        assert c["sqrt"] == 32
        # Exact count: sum_j j*(n-j) = n^3/6 - n/6.
        assert c["mul"] == (32**3 - 32) // 6

    def test_banded_cholesky_linear_in_n(self):
        narrow = kernel_op_counts("cholesky_banded", {"n": 100, "band": 5})
        wide = kernel_op_counts("cholesky_banded", {"n": 200, "band": 5})
        assert wide["mul"] == 2 * narrow["mul"]

    def test_banded_band_capped_at_n(self):
        a = kernel_op_counts("cholesky_banded", {"n": 4, "band": 100})
        b = kernel_op_counts("cholesky_banded", {"n": 4, "band": 4})
        assert a == b

    def test_trsolve_scales_with_rhs(self):
        one = kernel_op_counts("trsolve_banded", {"n": 50, "band": 6, "nrhs": 1})
        ten = kernel_op_counts("trsolve_banded", {"n": 50, "band": 6, "nrhs": 10})
        assert ten["mul"] == 10 * one["mul"]

    def test_matmul(self):
        c = kernel_op_counts("matmul", {"m": 2, "n": 3, "k": 4})
        assert c["mul"] == 24

    def test_matvec_dot_axpy(self):
        assert kernel_op_counts("matvec", {"m": 3, "n": 5})["mul"] == 15
        assert kernel_op_counts("dot", {"n": 7})["mul"] == 7
        assert kernel_op_counts("axpy", {"n": 9}) == {"mul": 9, "add": 9}

    def test_block_outer(self):
        c = kernel_op_counts("block_outer", {"blocks": 4, "rows": 2, "dim": 3})
        assert c["mul"] == 4 * 2 * 9
