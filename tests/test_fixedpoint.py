"""Tests for the Q14.17 fixed-point datapath."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator import (
    FXP_MAX,
    FXP_MIN,
    SCALE,
    from_fixed,
    fxp_add,
    fxp_div,
    fxp_mul,
    fxp_neg,
    fxp_sub,
    resolution,
    to_fixed,
)
from repro.errors import FixedPointError

#: safely representable magnitude for Q14.17 (|x| < 2^14)
LIMIT = 2.0**14 - 1


class TestConversion:
    def test_roundtrip_small_values(self):
        for v in (0.0, 1.0, -1.0, 0.5, math.pi, -123.456):
            assert from_fixed(to_fixed(v)) == pytest.approx(v, abs=resolution())

    def test_resolution(self):
        assert resolution() == 2.0**-17

    def test_saturation_positive(self):
        assert to_fixed(1e9) == FXP_MAX

    def test_saturation_negative(self):
        assert to_fixed(-1e9) == FXP_MIN

    def test_nan_rejected(self):
        with pytest.raises(FixedPointError):
            to_fixed(float("nan"))

    def test_array_conversion(self):
        arr = np.array([0.25, -0.75, 2.5])
        raw = to_fixed(arr)
        assert raw.dtype == np.int64
        assert np.allclose(from_fixed(raw), arr, atol=resolution())

    def test_array_nan_rejected(self):
        with pytest.raises(FixedPointError):
            to_fixed(np.array([1.0, float("inf")]))


class TestArithmetic:
    def check(self, op, fxp_op, a, b, tol_factor=2):
        raw = fxp_op(to_fixed(a), to_fixed(b))
        assert from_fixed(raw) == pytest.approx(
            op(a, b), abs=tol_factor * resolution()
        )

    def test_add(self):
        self.check(lambda a, b: a + b, fxp_add, 1.25, -0.75)

    def test_sub(self):
        self.check(lambda a, b: a - b, fxp_sub, 3.5, 1.2)

    def test_mul(self):
        self.check(lambda a, b: a * b, fxp_mul, 1.5, -2.25)

    def test_div(self):
        self.check(lambda a, b: a / b, fxp_div, 1.0, 3.0)

    def test_neg(self):
        assert from_fixed(fxp_neg(to_fixed(2.5))) == -2.5

    def test_div_by_zero_saturates(self):
        assert fxp_div(to_fixed(1.0), 0) == FXP_MAX
        assert fxp_div(to_fixed(-1.0), 0) == FXP_MIN

    def test_mul_saturates(self):
        big = to_fixed(LIMIT)
        assert fxp_mul(big, big) == FXP_MAX

    def test_array_ops(self):
        a = to_fixed(np.array([1.0, 2.0, -3.0]))
        b = to_fixed(np.array([0.5, -0.25, 2.0]))
        assert np.allclose(from_fixed(fxp_mul(a, b)), [0.5, -0.5, -6.0], atol=1e-4)
        assert np.allclose(from_fixed(fxp_div(a, b)), [2.0, -8.0, -1.5], atol=1e-4)

    def test_array_div_by_zero(self):
        a = to_fixed(np.array([1.0, -1.0]))
        b = np.array([0, 0], dtype=np.int64)
        out = fxp_div(a, b)
        assert out[0] == FXP_MAX and out[1] == FXP_MIN


@given(
    a=st.floats(-100, 100),
    b=st.floats(-100, 100),
)
@settings(max_examples=300, deadline=None)
def test_property_add_accuracy(a, b):
    raw = fxp_add(to_fixed(a), to_fixed(b))
    assert abs(from_fixed(raw) - (a + b)) <= 2 * resolution()


@given(
    a=st.floats(-50, 50),
    b=st.floats(-50, 50),
)
@settings(max_examples=300, deadline=None)
def test_property_mul_relative_accuracy(a, b):
    raw = fxp_mul(to_fixed(a), to_fixed(b))
    # Quantizing each operand contributes |a| eps + |b| eps; rounding adds eps.
    bound = (abs(a) + abs(b) + 2) * resolution()
    assert abs(from_fixed(raw) - a * b) <= bound


@given(
    a=st.floats(-100, 100),
    b=st.one_of(st.floats(-100, -0.01), st.floats(0.01, 100)),
)
@settings(max_examples=300, deadline=None)
def test_property_div_accuracy(a, b):
    raw = fxp_div(to_fixed(a), to_fixed(b))
    # First-order quantization error: d(a/b) = da/b - a db/b^2, plus one LSB
    # of output truncation.
    bound = (1 + abs(1 / b) + abs(a / (b * b))) * 2 * resolution()
    assert abs(from_fixed(raw) - a / b) <= bound


@given(v=st.floats(-LIMIT, LIMIT))
@settings(max_examples=300, deadline=None)
def test_property_roundtrip_within_half_lsb(v):
    assert abs(from_fixed(to_fixed(v)) - v) <= 0.5 * resolution() + 1e-12
