"""Tests for the Q14.17 fixed-point datapath."""

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator import (
    FXP_MAX,
    FXP_MIN,
    SCALE,
    FixedPointFormat,
    Q14_17,
    from_fixed,
    fxp_add,
    fxp_div,
    fxp_mul,
    fxp_neg,
    fxp_sub,
    resolution,
    to_fixed,
)
from repro.errors import FixedPointError

#: safely representable magnitude for Q14.17 (|x| < 2^14)
LIMIT = 2.0**14 - 1


class TestConversion:
    def test_roundtrip_small_values(self):
        for v in (0.0, 1.0, -1.0, 0.5, math.pi, -123.456):
            assert from_fixed(to_fixed(v)) == pytest.approx(v, abs=resolution())

    def test_resolution(self):
        assert resolution() == 2.0**-17

    def test_saturation_positive(self):
        assert to_fixed(1e9) == FXP_MAX

    def test_saturation_negative(self):
        assert to_fixed(-1e9) == FXP_MIN

    def test_nan_rejected(self):
        with pytest.raises(FixedPointError):
            to_fixed(float("nan"))

    def test_array_conversion(self):
        arr = np.array([0.25, -0.75, 2.5])
        raw = to_fixed(arr)
        assert raw.dtype == np.int64
        assert np.allclose(from_fixed(raw), arr, atol=resolution())

    def test_array_nan_rejected(self):
        with pytest.raises(FixedPointError):
            to_fixed(np.array([1.0, float("inf")]))


class TestArithmetic:
    def check(self, op, fxp_op, a, b, tol_factor=2):
        raw = fxp_op(to_fixed(a), to_fixed(b))
        assert from_fixed(raw) == pytest.approx(
            op(a, b), abs=tol_factor * resolution()
        )

    def test_add(self):
        self.check(lambda a, b: a + b, fxp_add, 1.25, -0.75)

    def test_sub(self):
        self.check(lambda a, b: a - b, fxp_sub, 3.5, 1.2)

    def test_mul(self):
        self.check(lambda a, b: a * b, fxp_mul, 1.5, -2.25)

    def test_div(self):
        self.check(lambda a, b: a / b, fxp_div, 1.0, 3.0)

    def test_neg(self):
        assert from_fixed(fxp_neg(to_fixed(2.5))) == -2.5

    def test_div_by_zero_saturates(self):
        assert fxp_div(to_fixed(1.0), 0) == FXP_MAX
        assert fxp_div(to_fixed(-1.0), 0) == FXP_MIN

    def test_mul_saturates(self):
        big = to_fixed(LIMIT)
        assert fxp_mul(big, big) == FXP_MAX

    def test_array_ops(self):
        a = to_fixed(np.array([1.0, 2.0, -3.0]))
        b = to_fixed(np.array([0.5, -0.25, 2.0]))
        assert np.allclose(from_fixed(fxp_mul(a, b)), [0.5, -0.5, -6.0], atol=1e-4)
        assert np.allclose(from_fixed(fxp_div(a, b)), [2.0, -8.0, -1.5], atol=1e-4)

    def test_array_div_by_zero(self):
        a = to_fixed(np.array([1.0, -1.0]))
        b = np.array([0, 0], dtype=np.int64)
        out = fxp_div(a, b)
        assert out[0] == FXP_MAX and out[1] == FXP_MIN


@given(
    a=st.floats(-100, 100),
    b=st.floats(-100, 100),
)
@settings(max_examples=300, deadline=None)
def test_property_add_accuracy(a, b):
    raw = fxp_add(to_fixed(a), to_fixed(b))
    assert abs(from_fixed(raw) - (a + b)) <= 2 * resolution()


@given(
    a=st.floats(-50, 50),
    b=st.floats(-50, 50),
)
@settings(max_examples=300, deadline=None)
def test_property_mul_relative_accuracy(a, b):
    raw = fxp_mul(to_fixed(a), to_fixed(b))
    # Quantizing each operand contributes |a| eps + |b| eps; rounding adds eps.
    bound = (abs(a) + abs(b) + 2) * resolution()
    assert abs(from_fixed(raw) - a * b) <= bound


@given(
    a=st.floats(-100, 100),
    b=st.one_of(st.floats(-100, -0.01), st.floats(0.01, 100)),
)
@settings(max_examples=300, deadline=None)
def test_property_div_accuracy(a, b):
    raw = fxp_div(to_fixed(a), to_fixed(b))
    # First-order quantization error: d(a/b) = da/b - a db/b^2, plus one LSB
    # of output truncation.
    bound = (1 + abs(1 / b) + abs(a / (b * b))) * 2 * resolution()
    assert abs(from_fixed(raw) - a / b) <= bound


@given(v=st.floats(-LIMIT, LIMIT))
@settings(max_examples=300, deadline=None)
def test_property_roundtrip_within_half_lsb(v):
    assert abs(from_fixed(to_fixed(v)) - v) <= 0.5 * resolution() + 1e-12


class TestFormatValidation:
    """FixedPointFormat is the design-space axis: widths must validate."""

    def test_default_is_the_paper_design_point(self):
        assert Q14_17.word_bits == 32 and Q14_17.fraction_bits == 17
        assert str(Q14_17) == "Q14.17"
        assert Q14_17.max_raw == FXP_MAX and Q14_17.min_raw == FXP_MIN

    @pytest.mark.parametrize("word_bits", [1, 0, -4, 63, 64])
    def test_word_bits_out_of_range(self, word_bits):
        with pytest.raises(FixedPointError, match="word_bits"):
            FixedPointFormat(word_bits, 1)

    @pytest.mark.parametrize("word_bits,fraction_bits", [(32, 0), (32, 32), (8, 8), (8, 9)])
    def test_fraction_bits_out_of_range(self, word_bits, fraction_bits):
        with pytest.raises(FixedPointError, match="fraction_bits"):
            FixedPointFormat(word_bits, fraction_bits)

    def test_formats_are_frozen_and_hashable(self):
        fmt = FixedPointFormat(16, 8)
        assert fmt == FixedPointFormat(16, 8)
        assert hash(fmt) == hash(FixedPointFormat(16, 8))
        with pytest.raises(dataclasses.FrozenInstanceError):
            fmt.word_bits = 32

    def test_narrowest_and_widest_legal_formats(self):
        tiny = FixedPointFormat(2, 1)  # 1 sign + 1 fraction bit
        assert tiny.max_value == 0.5 and tiny.min_value == -1.0
        wide = FixedPointFormat(62, 30)
        v = 12345.6789
        assert wide.from_fixed(wide.to_fixed(v)) == pytest.approx(
            v, abs=wide.resolution()
        )


class TestRepresentableEdges:
    """Boundary behavior: extremes, smallest step, and saturation."""

    FMT = FixedPointFormat(16, 8)  # Q7.8: edges are easy to reason about

    def test_largest_representable_round_trips_exactly(self):
        fmt = self.FMT
        assert fmt.to_fixed(fmt.max_value) == fmt.max_raw
        assert fmt.from_fixed(fmt.max_raw) == fmt.max_value

    def test_most_negative_representable_round_trips_exactly(self):
        fmt = self.FMT
        assert fmt.to_fixed(fmt.min_value) == fmt.min_raw
        assert fmt.from_fixed(fmt.min_raw) == fmt.min_value

    def test_one_lsb_beyond_the_edge_saturates(self):
        fmt = self.FMT
        assert fmt.to_fixed(fmt.max_value + fmt.resolution()) == fmt.max_raw
        assert fmt.to_fixed(fmt.min_value - fmt.resolution()) == fmt.min_raw

    def test_smallest_representable_increment(self):
        fmt = self.FMT
        assert fmt.to_fixed(fmt.resolution()) == 1
        assert fmt.from_fixed(1) == fmt.resolution()
        # Below half an LSB quantizes to exactly zero.
        assert fmt.to_fixed(0.49 * fmt.resolution()) == 0
        assert fmt.to_fixed(-0.49 * fmt.resolution()) == 0

    def test_add_saturates_at_word_boundary(self):
        fmt = self.FMT
        assert fmt.add(fmt.max_raw, 1) == fmt.max_raw
        assert fmt.sub(fmt.min_raw, 1) == fmt.min_raw

    def test_neg_of_most_negative_saturates(self):
        # Two's complement: -min_raw == max_raw + 1 overflows, so the ALU
        # must clamp rather than wrap.
        fmt = self.FMT
        assert fmt.neg(fmt.min_raw) == fmt.max_raw

    def test_mul_saturates_both_signs(self):
        fmt = self.FMT
        assert fmt.mul(fmt.max_raw, fmt.max_raw) == fmt.max_raw
        assert fmt.mul(fmt.min_raw, fmt.max_raw) == fmt.min_raw
        assert fmt.mul(fmt.min_raw, fmt.min_raw) == fmt.max_raw

    def test_div_truncates_toward_zero(self):
        fmt = self.FMT
        minus_third = fmt.div(fmt.to_fixed(-1.0), fmt.to_fixed(3.0))
        assert fmt.from_fixed(minus_third) == pytest.approx(
            -1.0 / 3.0, abs=fmt.resolution()
        )
        # Truncation, not floor: the quotient rounds toward zero.
        assert minus_third >= -1.0 / 3.0 * fmt.scale

    def test_div_by_zero_saturates_per_format(self):
        fmt = self.FMT
        assert fmt.div(fmt.to_fixed(2.0), 0) == fmt.max_raw
        assert fmt.div(fmt.to_fixed(-2.0), 0) == fmt.min_raw

    def test_narrow_format_coarsens_quantization(self):
        coarse = FixedPointFormat(16, 4)
        fine = FixedPointFormat(16, 12)
        v = math.pi
        err_coarse = abs(coarse.from_fixed(coarse.to_fixed(v)) - v)
        err_fine = abs(fine.from_fixed(fine.to_fixed(v)) - v)
        assert err_fine < err_coarse
        assert err_coarse <= 0.5 * coarse.resolution()

    def test_array_ops_saturate_like_scalars(self):
        fmt = self.FMT
        a = np.array([fmt.max_raw, fmt.min_raw], dtype=np.int64)
        out = fmt.add(a, np.array([10, -10], dtype=np.int64))
        assert out[0] == fmt.max_raw and out[1] == fmt.min_raw
