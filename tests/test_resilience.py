"""Solver resilience layer: Ruiz equilibration for stiff QPs, the
stall/divergence ``ConditioningReport``, the active-set rescue polish, and
the health-driven ADMM->IPM fallback ladder across the scalar, batch, and
serve layers (plus the ``admm_stall``/``illcond_qp`` chaos fault kinds
that exercise it)."""

from dataclasses import replace

import numpy as np
import pytest

import repro.firstorder.batch as firstorder_batch
from repro.batch import BatchSolver, CountingBackend
from repro.faults import (
    CampaignConfig,
    FaultSchedule,
    FaultSpec,
    SessionFaultInjector,
    builtin_schedule,
    run_campaign,
)
from repro.firstorder import solve_qp_admm, solve_qp_admm_batch
from repro.firstorder.admm import _polish_qp
from repro.firstorder.precond import (
    identity_equilibration,
    norm_spread,
    norm_spread_batch,
    ruiz_equilibrate,
    ruiz_equilibrate_batch,
)
from repro.mpc import MPCController, SolveBudget
from repro.mpc.health import SolverHealth
from repro.mpc.ipm import IPMResult
from repro.mpc.qp import QPOptions, solve_qp
from repro.robots import build_benchmark
from repro.serve import ControlSession, SessionConfig
from repro.serve.telemetry import FleetMetrics, render_summary

ADMM_OPTS = QPOptions(
    method="admm",
    polish=False,
    admm_tolerance=1e-8,
    admm_max_iterations=20000,
)


def spd(n, seed, scale=1.0):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(n, n))
    return scale * (A @ A.T + n * np.eye(n))


def random_qp(n, p, m, seed, skew=1.0):
    """A feasible random QP; ``skew > 1`` grades the Hessian's row/col
    scales across ``skew`` orders (congruence, so it stays SPD) — the
    norm-spread pattern of the stiff robots."""
    rng = np.random.default_rng(seed)
    H = spd(n, seed)
    if skew > 1.0:
        d0 = np.logspace(0.0, np.log10(skew), n)
        H = d0[:, None] * H * d0[None, :]
        g = rng.normal(size=n) * d0
    else:
        g = rng.normal(size=n)
    G = rng.normal(size=(p, n)) if p else None
    b = rng.normal(size=p) if p else None
    J = rng.normal(size=(m, n)) if m else None
    d = rng.normal(size=m) + 1.0 if m else None
    return H, g, G, b, J, d


def stacked_rows(qp):
    """The [G; J] constraint stack of one ``random_qp`` tuple."""
    _H, _g, G, _b, J, _d = qp
    rows = [r for r in (G, J) if r is not None]
    return np.vstack(rows) if rows else np.zeros((0, qp[0].shape[1]))


def stack_qps(qps):
    cols = list(zip(*qps))
    return tuple(None if c[0] is None else np.stack(c) for c in cols)


class StallHook:
    """Minimal duck-typed fault hook: forces the next ``n`` ADMM solves to
    report a stall, implements nothing else (the protocol is a subset)."""

    def __init__(self, n=1):
        self.n = n

    def force_stall(self):
        if self.n > 0:
            self.n -= 1
            return True
        return False


# ---------------------------------------------------------------------------
# Ruiz equilibration (repro.firstorder.precond)
# ---------------------------------------------------------------------------


class TestRuizEquilibration:
    def test_spread_collapses_on_stiff_data(self):
        qp = random_qp(8, 2, 4, 0, skew=1e4)
        A = stacked_rows(qp)
        before = norm_spread(qp[0], A)
        assert before > 1e6
        _Hs, _gs, _As, eq = ruiz_equilibrate(qp[0], qp[1], A)
        assert eq.spread_before == pytest.approx(before)
        assert eq.spread_after < 10.0
        assert eq.iters >= 1

    def test_scaling_relations_are_exact(self):
        """The returned data must be exactly ``c D H D``, ``c D g``,
        ``E A D`` for the returned scalings — the mapping between the two
        spaces is algebraic, not approximate."""
        qp = random_qp(6, 2, 3, 1, skew=1e3)
        A = stacked_rows(qp)
        Hs, gs, As, eq = ruiz_equilibrate(qp[0], qp[1], A)
        D, E, c = eq.D, eq.E, eq.c
        assert np.allclose(Hs, c * D[:, None] * qp[0] * D[None, :], rtol=1e-12)
        assert np.allclose(gs, c * D * qp[1], rtol=1e-12)
        assert np.allclose(As, E[:, None] * A * D[None, :], rtol=1e-12)

    def test_warm_round_trip(self):
        qp = random_qp(6, 2, 3, 2, skew=1e3)
        _Hs, _gs, _As, eq = ruiz_equilibrate(qp[0], qp[1], stacked_rows(qp))
        rng = np.random.default_rng(0)
        x, z, y = rng.normal(size=6), rng.normal(size=5), rng.normal(size=5)
        xb, zb, yb = eq.scale_warm(x, z, y)
        x2, z2, y2 = eq.unscale_solution(xb, zb, yb)
        assert np.allclose(x2, x, rtol=1e-12)
        assert np.allclose(z2, z, rtol=1e-12)
        assert np.allclose(y2, y, rtol=1e-12)

    def test_identity_is_bit_exact(self):
        eq = identity_equilibration(5, 3)
        v = np.random.default_rng(3).normal(size=5)
        w = np.random.default_rng(4).normal(size=3)
        x, z, y = eq.scale_warm(v, w, w)
        assert np.array_equal(x, v) and np.array_equal(z, w)
        assert np.array_equal(y, w)

    def test_batch_matches_scalar_per_lane(self):
        qps = [random_qp(6, 0, 4, 10 + i, skew=10.0 ** (2 + i)) for i in range(3)]
        H = np.stack([q[0] for q in qps])
        g = np.stack([q[1] for q in qps])
        A = np.stack([q[4] for q in qps])
        Hb, gb, Ab, scale = ruiz_equilibrate_batch(H, g, A)
        assert np.allclose(
            norm_spread_batch(H, A),
            [norm_spread(q[0], q[4]) for q in qps],
        )
        for i, q in enumerate(qps):
            # Each lane equilibrates to its own fixpoint; the batched sweep
            # runs lockstep, so lanes land near (not bit-equal to) their
            # scalar fixpoints.
            _Hs, _gs, _As, eq = ruiz_equilibrate(q[0], q[1], q[4])
            assert norm_spread_batch(Hb, Ab)[i] < 10.0
            assert eq.spread_after < 10.0
            assert np.allclose(
                Hb[i],
                scale["c"][i]
                * scale["D"][i][:, None]
                * q[0]
                * scale["D"][i][None, :],
                rtol=1e-12,
            )


class TestEquilibrationGate:
    def test_calm_problem_is_left_alone(self):
        """Below the norm-spread gate, equilibration must not run — the
        result is bit-identical to an explicitly disabled run."""
        qp = random_qp(8, 2, 4, 5)
        on = solve_qp_admm(*qp, ADMM_OPTS)
        off = solve_qp_admm(*qp, replace(ADMM_OPTS, admm_equilibrate=False))
        assert not on.stats.conditioning.equilibrated
        assert np.array_equal(on.x, off.x)
        assert on.iterations == off.iterations

    def test_stiff_problem_engages_and_matches_ipm(self):
        qp = random_qp(8, 2, 4, 0, skew=1e4)
        res = solve_qp_admm(*qp, ADMM_OPTS)
        cond = res.stats.conditioning
        assert cond.equilibrated
        assert cond.norm_spread_before > ADMM_OPTS.admm_equilibrate_spread
        assert cond.norm_spread_after < 10.0
        assert res.converged
        ipm = solve_qp(*qp)
        assert np.allclose(res.x, ipm.x, atol=1e-4)

    def test_warm_start_survives_equilibrated_solves(self):
        """Warm dicts travel in the unscaled space: a warm restart across
        re-equilibration must converge fast to the same point."""
        qp = random_qp(8, 2, 4, 1, skew=1e4)
        cold = solve_qp_admm(*qp, ADMM_OPTS)
        assert cold.converged and cold.warm is not None
        rewarm = solve_qp_admm(*qp, ADMM_OPTS, warm=cold.warm)
        assert rewarm.converged
        assert rewarm.iterations <= max(2, cold.iterations // 10)
        assert np.allclose(rewarm.x, cold.x, atol=1e-6)

    def test_gate_threshold_is_respected(self):
        qp = random_qp(8, 2, 4, 5)  # calm: spread well under 100
        forced = solve_qp_admm(
            *qp, replace(ADMM_OPTS, admm_equilibrate_spread=1.0)
        )
        assert forced.stats.conditioning.equilibrated
        assert forced.converged


# ---------------------------------------------------------------------------
# Active-set rescue polish (drop-first repair discipline)
# ---------------------------------------------------------------------------


class TestPolish:
    @pytest.mark.parametrize("seed", range(4))
    def test_superset_guess_repaired_by_dropping_first(self, seed):
        """A guess that wrongly pins extra rows must converge by *evicting*
        the negative-multiplier rows — the case where simultaneous
        add+drop repair used to thrash."""
        qp = random_qp(8, 2, 6, 40 + seed)
        ipm = solve_qp(*qp)
        rng = np.random.default_rng(seed)
        x_guess = ipm.x + 0.01 * rng.standard_normal(8)
        lam_guess = ipm.lam.copy()
        inactive = np.flatnonzero(lam_guess < 1e-8)
        lam_guess[inactive[:2]] = 0.5  # pretend two slack rows bind
        pol = _polish_qp(*qp, x_guess, lam_guess, 1e-8, 1e-8)
        assert pol is not None and pol["converged"]
        assert np.allclose(pol["x"], ipm.x, atol=1e-5)
        assert np.all(pol["lam"] >= 0.0)

    def test_polished_stall_does_not_need_fallback(self):
        """``needs_fallback`` is stall-or-divergence *minus* a successful
        polish: a repaired solve must not trigger the rescue ladder."""
        qp = random_qp(8, 2, 4, 7)
        res = solve_qp_admm(
            *qp, replace(ADMM_OPTS, polish=True), fault_hook=StallHook()
        )
        cond = res.stats.conditioning
        assert cond.stalled
        if cond.polished:
            assert res.converged
            assert not cond.needs_fallback
        else:
            assert cond.needs_fallback


# ---------------------------------------------------------------------------
# Scalar ADMM->IPM rescue (mpc.ipm fallback ladder)
# ---------------------------------------------------------------------------


class TestScalarRescue:
    def _admm_solver(self, polish=False, fallback=True):
        bench = build_benchmark("MobileRobot")
        problem = bench.transcribe(horizon=6)
        solver = bench.make_solver(problem)
        solver.options = replace(
            solver.options,
            qp=replace(
                solver.options.qp,
                method="admm",
                polish=polish,
                admm_fallback=fallback,
            ),
        )
        return bench, solver

    def test_forced_stall_is_rescued_by_ipm(self):
        bench, solver = self._admm_solver()
        solver.fault_hook = StallHook()
        res = solver.solve(bench.x0, ref=bench.ref)
        assert res.status == "converged"
        assert res.health.method_fallbacks == 1
        assert any(n.startswith("admm_fallback") for n in res.health.notes)
        ref = build_benchmark("MobileRobot").make_solver(
            solver.problem
        ).solve(bench.x0, ref=bench.ref)
        assert np.max(np.abs(res.z - ref.z)) < 1e-2

    def test_fallback_disabled_leaves_stall_alone(self):
        bench, solver = self._admm_solver(fallback=False)
        solver.fault_hook = StallHook()
        res = solver.solve(bench.x0, ref=bench.ref)
        assert res.health.method_fallbacks == 0

    def test_rescue_invalidates_admm_warm_state(self):
        """Warm-start hygiene, ADMM->IPM direction: the stalled iterate
        must not survive as warm state once the rescue hands the
        subproblem to the IPM (which never returns a warm dict)."""
        bench, solver = self._admm_solver()
        ctrl = MPCController(solver)
        x0 = np.asarray(bench.x0, float)
        # Tick 1: budget-exhausted ADMM tick carries warm state (RTI).
        ctrl.step(x0, ref=bench.ref, budget=SolveBudget(qp_iterations=25))
        assert ctrl.last_result.status == "budget_exhausted"
        assert solver._qp_warm is not None
        # Tick 2: every ADMM subproblem stalls -> each is rescued by the
        # IPM, so the carried ADMM iterate is dropped and never refreshed.
        solver.fault_hook = StallHook(n=1000)
        ctrl.step(x0, ref=bench.ref, budget=SolveBudget(qp_iterations=500))
        assert ctrl.last_result.health.method_fallbacks >= 1
        assert solver._qp_warm is None

    def test_post_rescue_admm_tick_restarts_cold_then_rewarms(self):
        """Warm-start hygiene, IPM->ADMM direction: after a rescued tick
        the next ADMM tick starts cold (no stale triple) and re-warms
        from its own clean solve."""
        bench, solver = self._admm_solver()
        ctrl = MPCController(solver)
        x0 = np.asarray(bench.x0, float)
        solver.fault_hook = StallHook(n=1000)
        ctrl.step(x0, ref=bench.ref, budget=SolveBudget(qp_iterations=500))
        assert solver._qp_warm is None
        solver.fault_hook = None
        u = ctrl.step(x0, ref=bench.ref)
        assert np.all(np.isfinite(u))
        assert ctrl.last_result.status == "converged"
        assert solver._qp_warm is not None  # re-warmed by the clean solve

    def test_rescue_respects_exhausted_qp_budget(self):
        """No remaining QP budget -> no rescue attempt (the ladder cannot
        overdraw the per-step contract)."""
        bench, solver = self._admm_solver()
        solver.fault_hook = StallHook(n=1000)
        res = solver.solve(
            bench.x0, ref=bench.ref, budget=SolveBudget(qp_iterations=5)
        )
        assert res.status == "budget_exhausted"
        assert res.health.method_fallbacks == 0


# ---------------------------------------------------------------------------
# Batched lane-scatter rescue (batch.ipm fallback ladder)
# ---------------------------------------------------------------------------


class TestBatchRescue:
    @pytest.fixture(scope="class")
    def mobile(self):
        bench = build_benchmark("MobileRobot")
        problem = bench.transcribe(horizon=6)
        rng = np.random.default_rng(31)
        X0 = np.stack(
            [
                np.asarray(bench.x0, float)
                + 0.03 * rng.standard_normal(problem.nx)
                for _ in range(3)
            ]
        )
        return bench, problem, X0

    def _solve_with_stall(self, problem, X0, refs, stall_lane, monkeypatch):
        """Run the batched SQP with lane ``stall_lane``'s first QP flagged
        as a stalled, unpolished solve (the deterministic stand-in for a
        stiff lane), exercising the real gather/re-solve/scatter path."""
        orig = firstorder_batch.solve_qp_admm_batch
        calls = {"n": 0}

        def flagging(*args, **kwargs):
            res = orig(*args, **kwargs)
            calls["n"] += 1
            if (
                stall_lane is not None
                and calls["n"] == 1
                and res.x.shape[0] > stall_lane
            ):
                cond = res.stats[stall_lane].conditioning
                cond.stalled = True
                cond.polished = False
            return res

        monkeypatch.setattr(
            firstorder_batch, "solve_qp_admm_batch", flagging
        )
        solver = BatchSolver(problem, qp_method="admm")
        return solver.solve(X0, refs=refs)

    def test_non_stalling_lanes_bit_identical(self, mobile, monkeypatch):
        """The rescue must be surgical: lanes that did not stall produce
        bit-identical iterates whether or not some *other* lane was
        gathered, re-solved, and scattered."""
        bench, problem, X0 = mobile
        refs = [bench.ref] * 3
        plain, _ = self._solve_with_stall(problem, X0, refs, None, monkeypatch)
        rescued, _ = self._solve_with_stall(problem, X0, refs, 1, monkeypatch)
        assert rescued[1].health.method_fallbacks == 1
        assert rescued[1].status == "converged"
        for lane in (0, 2):
            assert rescued[lane].health.method_fallbacks == 0
            assert np.array_equal(rescued[lane].z, plain[lane].z)
            assert rescued[lane].iterations == plain[lane].iterations

    def test_rescued_lane_matches_scalar_reference(self, mobile, monkeypatch):
        bench, problem, X0 = mobile
        refs = [bench.ref] * 3
        rescued, _ = self._solve_with_stall(problem, X0, refs, 1, monkeypatch)
        scalar = bench.make_solver(problem)
        ref = scalar.solve(X0[1], ref=bench.ref)
        assert np.max(np.abs(rescued[1].z - ref.z)) < 1e-2


class TestBatchEquilibration:
    def _mixed_batch(self):
        """Lanes 0/2/3 calm, lane 1 stiff (spread far over the gate)."""
        qps = [
            random_qp(8, 2, 4, 200 + i, skew=1e5 if i == 1 else 1.0)
            for i in range(4)
        ]
        return qps, stack_qps(qps)

    def test_per_lane_gating(self):
        _qps, stacked = self._mixed_batch()
        res = solve_qp_admm_batch(*stacked, ADMM_OPTS)
        conds = [st.conditioning for st in res.stats]
        assert conds[1].equilibrated
        assert conds[1].norm_spread_after < 10.0
        for lane in (0, 2, 3):
            assert not conds[lane].equilibrated

    def test_calm_lanes_bit_identical_to_disabled(self):
        """Gated-off lanes must be untouched by the per-lane scaling —
        bit-identical to a run with equilibration disabled entirely."""
        _qps, stacked = self._mixed_batch()
        on = solve_qp_admm_batch(*stacked, ADMM_OPTS)
        off = solve_qp_admm_batch(
            *stacked, replace(ADMM_OPTS, admm_equilibrate=False)
        )
        for lane in (0, 2, 3):
            assert np.array_equal(on.x[lane], off.x[lane])
            assert on.iterations[lane] == off.iterations[lane]

    def test_equilibration_adds_no_per_iteration_syncs(self):
        """The scaling tensors ride the one-time upload: with equilibration
        engaged, host traffic must stay independent of iteration count."""
        _qps, stacked = self._mixed_batch()

        def syncs(max_it):
            xp = CountingBackend()
            opts = replace(
                ADMM_OPTS, admm_tolerance=0.0, admm_max_iterations=max_it
            )
            solve_qp_admm_batch(*stacked, opts, backend=xp, sync_interval=0)
            return xp.sync_count + xp.upload_count

        assert syncs(5) == syncs(60)


# ---------------------------------------------------------------------------
# Serve-layer method-health demotion (session + telemetry)
# ---------------------------------------------------------------------------


class RescueScriptSolver:
    """Stub solver playing back a per-step count of ADMM->IPM rescues."""

    def __init__(self, problem, rescue_counts):
        self.problem = problem
        self.script = list(rescue_counts)
        self.calls = 0
        self.stats = {}
        self.warm_resets = 0

    def reset_qp_warm(self):
        self.warm_resets += 1

    def solve(self, x_init, ref=None, z_warm=None, nu_warm=None,
              lam_warm=None, budget=None):
        rescues = self.script[min(self.calls, len(self.script) - 1)]
        self.calls += 1
        p = self.problem
        z = p.join(
            np.zeros((p.N + 1, p.nx)), np.zeros((p.N, p.nu))
        )
        health = SolverHealth(method_fallbacks=rescues)
        return IPMResult(
            z=z,
            converged=True,
            iterations=2,
            qp_iterations=6,
            objective=1.0,
            kkt_residual=1e-7,
            nu=None,
            lam=None,
            status="converged",
            solve_time=0.001,
            health=health,
        )


@pytest.fixture(scope="module")
def cartpole_problem():
    bench = build_benchmark("CartPole")
    return bench.transcribe(horizon=5)


def rescue_session(problem, rescue_counts, **cfg):
    cfg.setdefault("robot", "CartPole")
    cfg.setdefault("deadline_s", None)
    cfg.setdefault("degrade_after", 3)
    cfg.setdefault("qp_method", "admm")
    solver = RescueScriptSolver(problem, rescue_counts)
    session = ControlSession(
        "r0", SessionConfig(**cfg), MPCController(solver)
    )
    return session, solver


class TestMethodDemotion:
    X = np.zeros(4)

    def test_streak_of_rescued_solves_demotes(self, cartpole_problem):
        session, solver = rescue_session(cartpole_problem, [1, 1, 1, 0])
        outs = [session.step(self.X) for _ in range(3)]
        assert [o.method_fallbacks for o in outs] == [1, 1, 1]
        assert [o.method_demoted for o in outs] == [False, False, True]
        assert session.qp_method == "ipm"
        assert session.config.qp_method == "admm"  # config is immutable
        assert solver.warm_resets == 1  # hygiene across the method switch

    def test_clean_solve_resets_the_streak(self, cartpole_problem):
        session, _solver = rescue_session(
            cartpole_problem, [1, 1, 0, 1, 1, 0]
        )
        for _ in range(6):
            session.step(self.X)
        assert session.qp_method == "admm"  # never three in a row

    def test_payload_ships_effective_method(self, cartpole_problem):
        session, _solver = rescue_session(cartpole_problem, [1])
        assert session.solve_payload(self.X)["qp_method"] == "admm"
        for _ in range(3):
            session.step(self.X)
        assert session.qp_method == "ipm"
        assert session.solve_payload(self.X)["qp_method"] == "ipm"

    def test_reset_and_restart_repromote(self, cartpole_problem):
        for recover in ("reset", "restart"):
            session, _solver = rescue_session(cartpole_problem, [1])
            for _ in range(3):
                session.step(self.X)
            assert session.qp_method == "ipm"
            getattr(session, recover)()
            assert session.qp_method == "admm"

    def test_ipm_sessions_never_demote(self, cartpole_problem):
        session, solver = rescue_session(
            cartpole_problem, [1], qp_method="ipm"
        )
        for _ in range(5):
            out = session.step(self.X)
            assert not out.method_demoted
        assert session.qp_method == "ipm"
        assert solver.warm_resets == 0


class TestMethodHealthTelemetry:
    def _outcome(self, session, fallbacks, demoted=False):
        out = session.step(np.zeros(4))
        out.method_fallbacks = fallbacks
        out.method_demoted = demoted
        return out

    def test_fleet_counters_accumulate(self, cartpole_problem):
        session, _solver = rescue_session(cartpole_problem, [0])
        metrics = FleetMetrics()
        metrics.observe_step("r0", self._outcome(session, 2))
        metrics.observe_step("r0", self._outcome(session, 1, demoted=True))
        assert metrics.fleet.method_fallbacks == 3
        assert metrics.fleet.method_demotions == 1
        assert metrics.sessions["r0"].method_fallbacks == 3
        d = metrics.to_dict()["fleet"]
        assert d["method_fallbacks"] == 3
        assert d["method_demotions"] == 1

    def test_summary_renders_rescues_only_when_present(self, cartpole_problem):
        session, _solver = rescue_session(cartpole_problem, [0])
        metrics = FleetMetrics()
        metrics.observe_step("r0", self._outcome(session, 0))
        assert "method rescues" not in render_summary(metrics, {})
        metrics.observe_step("r0", self._outcome(session, 4, demoted=True))
        text = render_summary(metrics, {})
        assert "fallbacks=4" in text and "demotions=1" in text


# ---------------------------------------------------------------------------
# Chaos fault kinds + the stalls_rescued recovery invariant
# ---------------------------------------------------------------------------


class TestResilienceFaults:
    def _injector(self, kind, magnitude=None):
        spec = FaultSpec(kind, 0, 4, magnitude=magnitude)
        inj = SessionFaultInjector(FaultSchedule((spec,), seed=1))
        inj.advance(0)
        return inj

    def test_admm_stall_kind_counts_down(self):
        inj = self._injector("admm_stall", magnitude=2)
        assert inj.force_stall()
        assert inj.force_stall()
        assert not inj.force_stall()  # consumed for this tick
        inj.advance(1)
        assert inj.force_stall()  # re-armed next tick
        inj.advance(10)  # window closed
        assert not inj.force_stall()

    def test_illcond_qp_scales_one_row_col(self):
        inj = self._injector("illcond_qp", magnitude=1e5)
        H = spd(6, 9)
        out = inj.transform_qp(H)
        assert out is not H  # pure w.r.t. the input
        assert np.allclose(out, out.T)  # congruence keeps symmetry
        ratio = np.max(np.abs(out), axis=0) / np.max(np.abs(H), axis=0)
        assert np.max(ratio) > 1e4  # one column blew up
        # Deterministic: the same (tick, session, spec) scales the same row.
        inj2 = self._injector("illcond_qp", magnitude=1e5)
        assert np.array_equal(out, inj2.transform_qp(H))

    def test_inactive_faults_are_identity(self):
        inj = self._injector("admm_stall")
        H = spd(5, 2)
        assert inj.transform_qp(H) is H
        inj.advance(99)
        assert not inj.force_stall()

    def test_resilience_builtin_schedule(self):
        sched = builtin_schedule("resilience", ticks=40)
        kinds = {s.kind for s in sched.specs}
        assert "admm_stall" in kinds and "illcond_qp" in kinds
        assert sched.clear_tick <= 24  # recovery window stays observable


class TestResilienceCampaign:
    @pytest.mark.slow
    def test_stall_campaign_recovers_with_rescues(self):
        """The acceptance gate in miniature: a seeded admm_stall campaign
        on the stiff robot ends with zero unrecovered sessions and a
        nonzero fleet rescue count — no silent bad plans."""
        report = run_campaign(
            CampaignConfig(
                robot="Manipulator",
                schedule="resilience",
                sessions=1,
                ticks=10,
                horizon=6,
                deadline_s=None,
                qp_method="admm",
                seed=3,
            )
        )
        assert report.fired.get("admm_stall", 0) > 0
        assert "stalls_rescued" in report.invariants
        assert report.ok, report.violations
        assert report.metrics.fleet.method_fallbacks > 0

    def test_ipm_campaign_skips_stall_invariant(self):
        report = run_campaign(
            CampaignConfig(
                robot="CartPole",
                schedule="smoke",
                sessions=1,
                ticks=12,
                qp_method="ipm",
                seed=0,
            )
        )
        assert "stalls_rescued" not in report.invariants
