"""Smoke tests: the example scripts must run end-to-end.

Only the fast examples run under pytest; the longer flight/detumble
scenarios are exercised manually (they assert their own success criteria).
"""

import subprocess
import sys
from pathlib import Path

import pytest

# runs the example scripts end to end — keep out of the fast lane (-m 'not slow').
pytestmark = pytest.mark.slow

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    return result.stdout


def test_quickstart_reaches_target():
    out = run_example("quickstart.py")
    assert "reached the target" in out
    assert "closed-loop position" in out  # the ASCII plot rendered


def test_dsl_to_accelerator_pipeline():
    out = run_example("dsl_to_accelerator.py")
    assert "end-to-end pipeline complete" in out
    assert "fixed-point simulation" in out
    assert "without compute-enabled interconnect" in out


def test_design_space_exploration_runs():
    result = subprocess.run(
        [
            sys.executable,
            str(EXAMPLES / "design_space_exploration.py"),
            "MobileRobot",
            "16",
        ],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "Compute-unit sweep" in result.stdout
    assert "Bandwidth sweep" in result.stdout
