"""The DSL-defined robots must match the Python-builder-defined benchmarks.

This is the strongest DSL test we have: the same physics written twice
(once in RoboX source, once through the builder API) must agree numerically
in dynamics, bounds, and task structure.
"""

import numpy as np
import pytest

from repro.robots import build_benchmark
from repro.robots.dsl_sources import (
    PENDULUM_DSL,
    load_mobile_robot,
    load_quadrotor,
)
from repro.dsl import compile_program
from repro.symbolic import compile_function

# full DSL-vs-python solver runs — keep out of the fast lane (-m 'not slow').
pytestmark = pytest.mark.slow


def dynamics_fn(model):
    return compile_function(
        list(model.dynamics_exprs),
        list(model.state_vars) + list(model.input_vars),
    )


def rename(values, from_names, to_names):
    mapping = dict(zip(from_names, values))
    return np.array([mapping[n] for n in to_names])


class TestMobileRobotEquivalence:
    @pytest.fixture(scope="class")
    def pair(self):
        return build_benchmark("MobileRobot"), load_mobile_robot()

    def test_same_layout(self, pair):
        bench, dsl = pair
        assert dsl.model.state_names == bench.model.state_names
        assert dsl.model.input_names == bench.model.input_names

    def test_same_bounds(self, pair):
        bench, dsl = pair
        assert dsl.model.input_bounds() == bench.model.input_bounds()

    def test_same_dynamics_numerically(self, pair):
        bench, dsl = pair
        f_py = dynamics_fn(bench.model)
        f_dsl = dynamics_fn(dsl.model)
        rng = np.random.default_rng(0)
        for _ in range(25):
            point = rng.normal(scale=1.0, size=5)
            assert np.allclose(f_py(point), f_dsl(point), atol=1e-12)

    def test_same_task_structure(self, pair):
        bench, dsl = pair
        assert dsl.task.n_penalties == bench.task.n_penalties
        assert dsl.task.n_constraints == bench.task.n_constraints
        py_weights = sorted(p.weight for p in bench.task.penalties)
        dsl_weights = sorted(p.weight for p in dsl.task.penalties)
        assert py_weights == dsl_weights


class TestQuadrotorEquivalence:
    @pytest.fixture(scope="class")
    def pair(self):
        return build_benchmark("Quadrotor"), load_quadrotor()

    def test_same_shape(self, pair):
        bench, dsl = pair
        assert dsl.model.n_states == 12
        assert dsl.model.n_inputs == 4
        assert set(dsl.model.state_names) == set(bench.model.state_names)

    def test_same_dynamics_numerically(self, pair):
        bench, dsl = pair
        f_py = dynamics_fn(bench.model)
        f_dsl = dynamics_fn(dsl.model)
        py_vars = f_py.variables
        dsl_vars = f_dsl.variables
        rng = np.random.default_rng(1)
        for _ in range(25):
            values = rng.uniform(-0.5, 0.5, size=16)
            values[-4:] = rng.uniform(0.5, 2.0, size=4)  # thrusts positive
            env = dict(zip(py_vars, values))
            out_py = f_py(values)
            out_dsl = f_dsl(np.array([env[v] for v in dsl_vars]))
            # Reorder DSL outputs into the builder's state order.
            dsl_by_state = dict(zip(dsl.model.state_names, out_dsl))
            expected = np.array(
                [dsl_by_state[s] for s in bench.model.state_names]
            )
            assert np.allclose(out_py, expected, atol=1e-10)

    def test_same_input_bounds(self, pair):
        bench, dsl = pair
        assert dsl.model.input_bounds() == bench.model.input_bounds()

    def test_same_table_counts(self, pair):
        bench, dsl = pair
        assert dsl.task.n_penalties == bench.task.n_penalties == 10
        assert dsl.task.n_constraints == bench.task.n_constraints == 1

    def test_obstacle_constraint_matches(self, pair):
        bench, dsl = pair
        c_py = bench.task.constraints[0]
        c_dsl = dsl.task.constraints[0]
        assert c_dsl.lower == pytest.approx(c_py.lower)
        env = {f"pos[{i}]": 0.2 * i for i in range(3)}
        assert c_dsl.expr.evaluate(env) == pytest.approx(c_py.expr.evaluate(env))


class TestDSLQuadrotorSolves:
    def test_transcribes_and_steps(self):
        from repro.mpc import MPCController, TranscribedProblem
        from repro.mpc.controller import integrate_plant

        dsl = load_quadrotor()
        p = TranscribedProblem(dsl.model, dsl.task, horizon=8, dt=0.05)
        bench = build_benchmark("Quadrotor")
        ctrl = bench.make_controller(p, max_iterations=25)
        x = np.zeros(12)
        x[2] = 1.0
        d0 = np.linalg.norm(x[:3] - bench.ref)
        for _ in range(6):
            u = ctrl.step(x, ref=bench.ref)
            x = integrate_plant(p, x, u)
        assert np.linalg.norm(x[:3] - bench.ref) < d0


class TestPendulumSource:
    def test_compiles(self):
        result = compile_program(PENDULUM_DSL)
        assert result.model.n_states == 2
        assert result.task.n_penalties == 3
