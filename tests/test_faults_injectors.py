"""Fault schedule and injector semantics: determinism and per-kind effects."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.faults import (
    BUILTIN_SCHEDULES,
    EngineFaultInjector,
    FaultSchedule,
    FaultSpec,
    SessionFaultInjector,
    builtin_schedule,
)
from repro.mpc import SolveBudget


def schedule_of(*specs, seed=0):
    return FaultSchedule(specs=tuple(specs), seed=seed)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown fault kind"):
            FaultSpec("meteor_strike")

    def test_empty_window_rejected(self):
        with pytest.raises(ReproError, match="window"):
            FaultSpec("spike", start=5, stop=5)

    def test_layer_mapping(self):
        assert FaultSpec("spike").layer == "sensor"
        assert FaultSpec("chol_fail").layer == "solver"
        assert FaultSpec("worker_crash").layer == "serve"

    def test_targeting(self):
        spec = FaultSpec("spike", sessions=(0, 2))
        assert spec.targets(0) and spec.targets(2) and not spec.targets(1)
        assert FaultSpec("spike").targets(17)


class TestScheduleDeterminism:
    def test_fires_is_pure_function_of_seed_tick_session(self):
        spec = FaultSpec("spike", start=0, stop=50, probability=0.5)
        a = schedule_of(spec, seed=7)
        b = schedule_of(spec, seed=7)
        pattern_a = [
            (t, s) for t in range(50) for s in range(3) if a.fires(t, s)
        ]
        pattern_b = [
            (t, s) for t in range(50) for s in range(3) if b.fires(t, s)
        ]
        assert pattern_a == pattern_b
        assert 0 < len(pattern_a) < 150  # probabilistic, not all-or-nothing

    def test_different_seed_different_pattern(self):
        spec = FaultSpec("spike", start=0, stop=60, probability=0.5)
        a = schedule_of(spec, seed=1)
        b = schedule_of(spec, seed=2)
        fa = [bool(a.fires(t, 0)) for t in range(60)]
        fb = [bool(b.fires(t, 0)) for t in range(60)]
        assert fa != fb

    def test_injector_payloads_replay(self):
        sched = schedule_of(FaultSpec("nan_state", start=0, stop=5))
        x = np.arange(4.0)
        outs = []
        for _ in range(2):
            inj = SessionFaultInjector(sched, session_index=1)
            inj.advance(2)
            outs.append(inj.corrupt_state(x))
        assert np.array_equal(np.isnan(outs[0]), np.isnan(outs[1]))

    def test_clear_tick(self):
        sched = schedule_of(
            FaultSpec("spike", start=0, stop=4),
            FaultSpec("chol_fail", start=6, stop=9),
        )
        assert sched.clear_tick == 9
        assert not sched.fires(9, 0)
        assert sched.fires(8, 0)


class TestSensorFaults:
    def test_nan_state(self):
        inj = SessionFaultInjector(
            schedule_of(FaultSpec("nan_state", stop=3, magnitude=2))
        )
        inj.advance(0)
        out = inj.corrupt_state(np.zeros(6))
        assert np.isnan(out).sum() == 2

    def test_inf_state(self):
        inj = SessionFaultInjector(schedule_of(FaultSpec("inf_state", stop=3)))
        inj.advance(1)
        out = inj.corrupt_state(np.zeros(4))
        assert np.isinf(out).sum() == 1

    def test_dropout_serves_previous_clean_measurement(self):
        inj = SessionFaultInjector(
            schedule_of(FaultSpec("dropout", start=1, stop=2))
        )
        inj.advance(0)
        first = inj.corrupt_state(np.array([1.0, 2.0]))
        assert np.array_equal(first, [1.0, 2.0])
        inj.advance(1)
        stale = inj.corrupt_state(np.array([9.0, 9.0]))
        assert np.array_equal(stale, [1.0, 2.0])
        inj.advance(2)
        fresh = inj.corrupt_state(np.array([5.0, 5.0]))
        assert np.array_equal(fresh, [5.0, 5.0])

    def test_spike_is_finite_additive_noise(self):
        inj = SessionFaultInjector(
            schedule_of(FaultSpec("spike", stop=3, magnitude=0.1))
        )
        inj.advance(0)
        x = np.ones(5)
        out = inj.corrupt_state(x)
        assert np.all(np.isfinite(out))
        assert not np.array_equal(out, x)

    def test_saturate_clips_input(self):
        inj = SessionFaultInjector(
            schedule_of(FaultSpec("saturate", stop=3, magnitude=0.2))
        )
        inj.advance(0)
        u = inj.corrupt_input(np.array([1.0, -3.0, 0.1]))
        assert np.array_equal(u, [0.2, -0.2, 0.1])

    def test_no_faults_outside_window(self):
        inj = SessionFaultInjector(
            schedule_of(FaultSpec("nan_state", start=5, stop=6))
        )
        inj.advance(0)
        x = np.ones(3)
        assert np.array_equal(inj.corrupt_state(x), x)
        assert np.array_equal(inj.corrupt_input(x), x)


class TestSolverFaults:
    def test_chol_fail_forces_exactly_n_failures(self):
        inj = SessionFaultInjector(
            schedule_of(FaultSpec("chol_fail", stop=2, magnitude=3))
        )
        inj.advance(0)
        fails = [inj.force_failure() for _ in range(5)]
        assert fails == [True, True, True, False, False]
        inj.advance(1)  # the budget refreshes each tick in the window
        assert inj.force_failure()

    def test_budget_starve_replaces_budget(self):
        inj = SessionFaultInjector(
            schedule_of(FaultSpec("budget_starve", stop=2, magnitude=1e-3))
        )
        inj.advance(0)
        replaced = inj.corrupt_budget(SolveBudget(wall_clock=0.5))
        assert replaced.wall_clock == 1e-3
        inj.advance(5)
        untouched = SolveBudget(wall_clock=0.5)
        assert inj.corrupt_budget(untouched) is untouched

    def test_illcond_preserves_symmetry(self):
        inj = SessionFaultInjector(
            schedule_of(FaultSpec("illcond", stop=2, magnitude=1e-6))
        )
        inj.advance(0)
        rng = np.random.default_rng(0)
        M = rng.normal(size=(5, 5))
        A = M @ M.T + 5 * np.eye(5)
        out = inj.transform_matrix(A)
        assert not np.array_equal(out, A)
        assert np.allclose(out, out.T)
        # Congruence transform: conditioning explodes, definiteness doesn't.
        assert np.linalg.cond(out) > 1e3 * np.linalg.cond(A)
        inj.advance(5)
        assert inj.transform_matrix(A) is A


class TestEngineInjector:
    def test_worker_crash_directive_with_tick_offset(self):
        sched = schedule_of(FaultSpec("worker_crash", start=2, stop=3))
        inj = EngineFaultInjector(sched, ["s0", "s1"])
        # The engine's tick counter is 1-based: campaign tick 2 == engine 3.
        assert inj.on_dispatch(2, "s0") is None
        assert inj.on_dispatch(3, "s0") == {"kind": "worker_crash"}
        assert inj.on_dispatch(4, "s0") is None

    def test_slow_directive_carries_delay(self):
        sched = schedule_of(
            FaultSpec("slow_worker", start=0, stop=3, magnitude=0.02)
        )
        inj = EngineFaultInjector(sched, ["s0"])
        assert inj.on_dispatch(1, "s0") == {"kind": "slow", "delay_s": 0.02}

    def test_crash_preempts_slow(self):
        sched = schedule_of(
            FaultSpec("slow_worker", start=0, stop=5),
            FaultSpec("worker_crash", start=0, stop=5),
        )
        inj = EngineFaultInjector(sched, ["s0"])
        assert inj.on_dispatch(1, "s0") == {"kind": "worker_crash"}

    def test_unknown_session_untouched(self):
        sched = schedule_of(FaultSpec("worker_crash", start=0, stop=99))
        inj = EngineFaultInjector(sched, ["s0"])
        assert inj.on_dispatch(1, "ghost") is None

    def test_session_targeting(self):
        sched = schedule_of(
            FaultSpec("worker_crash", start=0, stop=99, sessions=(1,))
        )
        inj = EngineFaultInjector(sched, ["s0", "s1"])
        assert inj.on_dispatch(1, "s0") is None
        assert inj.on_dispatch(1, "s1") is not None


class TestBuiltinSchedules:
    @pytest.mark.parametrize("name", BUILTIN_SCHEDULES)
    def test_builtin_clears_before_sixty_percent(self, name):
        for ticks in (10, 40, 200):
            sched = builtin_schedule(name, ticks=ticks, seed=3)
            assert sched.specs
            assert 0 < sched.clear_tick <= max(2, int(round(0.6 * ticks)))
            assert sched.name == name

    def test_unknown_builtin_rejected(self):
        with pytest.raises(ReproError, match="unknown builtin"):
            builtin_schedule("kraken")

    def test_to_dict_fills_default_magnitudes(self):
        sched = builtin_schedule("smoke", ticks=40)
        doc = sched.to_dict()
        assert doc["name"] == "smoke"
        assert all(s["magnitude"] is not None for s in doc["specs"])
