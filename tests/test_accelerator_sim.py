"""Tests for the micro-program assembler and cycle-driven simulator."""

import numpy as np
import pytest

from repro.accelerator import (
    AcceleratorSimulator,
    BusTransfer,
    CUOp,
    MicroProgram,
    TreeAggregate,
    assemble,
    simulate_phase,
)
from repro.compiler import map_mdfg, translate
from repro.errors import AcceleratorError
from repro.robots import BENCHMARK_NAMES, build_benchmark


def tiny_program():
    """One CU computing (a + b) * 2 via an immediate."""
    prog = MicroProgram(n_cus=1, cus_per_cc=1, cu_ops=[[]])
    prog.input_slots = {"a": (0, 0), "b": (0, 1)}
    prog.cu_ops[0] = [
        CUOp("add", 2, (0, 1)),
        CUOp("mul", 3, (2,), imm=2.0),
    ]
    prog.output_slots = {"out": (0, 3)}
    prog.slots_used = [4]
    return prog


class TestHandwrittenPrograms:
    def test_single_cu_arithmetic(self):
        sim = AcceleratorSimulator()
        res = sim.run(tiny_program(), {"a": 1.5, "b": 2.0})
        assert res.outputs["out"] == pytest.approx(7.0, abs=1e-4)
        assert res.cycles > 0

    def test_missing_input_raises(self):
        sim = AcceleratorSimulator()
        with pytest.raises(AcceleratorError, match="missing"):
            sim.run(tiny_program(), {"a": 1.0})

    def test_bus_transfer(self):
        prog = MicroProgram(n_cus=2, cus_per_cc=2, cu_ops=[[], []])
        prog.input_slots = {"a": (0, 0)}
        prog.transfers = [BusTransfer(0, 0, 1, 0)]
        prog.cu_ops[1] = [CUOp("mul", 1, (0,), imm=3.0)]
        prog.output_slots = {"out": (1, 1)}
        prog.slots_used = [1, 2]
        res = AcceleratorSimulator().run(prog, {"a": 2.0})
        assert res.outputs["out"] == pytest.approx(6.0, abs=1e-4)
        assert res.bus_transfers == 1

    def test_tree_aggregate(self):
        prog = MicroProgram(n_cus=4, cus_per_cc=2, cu_ops=[[] for _ in range(4)])
        prog.input_slots = {f"x{i}": (i, 0) for i in range(4)}
        prog.aggregates = [
            TreeAggregate("add", ((0, 0), (1, 0), (2, 0), (3, 0)), 0, 1)
        ]
        prog.output_slots = {"sum": (0, 1)}
        prog.slots_used = [2, 1, 1, 1]
        res = AcceleratorSimulator().run(
            prog, {"x0": 1.0, "x1": 2.0, "x2": 3.0, "x3": 4.0}
        )
        assert res.outputs["sum"] == pytest.approx(10.0, abs=1e-4)
        assert res.aggregation_waves == 1

    @pytest.mark.parametrize(
        "func, expected", [("min", -2.0), ("max", 3.0), ("mul", -6.0)]
    )
    def test_aggregate_functions(self, func, expected):
        prog = MicroProgram(n_cus=2, cus_per_cc=2, cu_ops=[[], []])
        prog.input_slots = {"a": (0, 0), "b": (1, 0)}
        prog.aggregates = [TreeAggregate(func, ((0, 0), (1, 0)), 0, 1)]
        prog.output_slots = {"out": (0, 1)}
        prog.slots_used = [2, 1]
        res = AcceleratorSimulator().run(prog, {"a": -2.0, "b": 3.0})
        assert res.outputs["out"] == pytest.approx(expected, abs=1e-4)

    def test_nonlinear_via_lut(self):
        import math

        prog = MicroProgram(n_cus=1, cus_per_cc=1, cu_ops=[[]])
        prog.input_slots = {"x": (0, 0)}
        prog.cu_ops[0] = [CUOp("sin", 1, (0,))]
        prog.output_slots = {"out": (0, 1)}
        prog.slots_used = [2]
        res = AcceleratorSimulator().run(prog, {"x": 0.7})
        assert res.outputs["out"] == pytest.approx(math.sin(0.7), abs=1e-4)

    def test_pipeline_latency_visible(self):
        # Two dependent ops cannot finish faster than 2x the CU latency.
        prog = MicroProgram(n_cus=1, cus_per_cc=1, cu_ops=[[]])
        prog.input_slots = {"x": (0, 0)}
        prog.cu_ops[0] = [CUOp("add", 1, (0, 0)), CUOp("add", 2, (1, 1))]
        prog.output_slots = {"out": (0, 2)}
        prog.slots_used = [3]
        res = AcceleratorSimulator().run(prog, {"x": 1.0})
        assert res.cycles >= 6


class TestAssembledPrograms:
    def test_mobile_robot_dynamics_match_reference(self):
        b = build_benchmark("MobileRobot")
        p = b.transcribe(horizon=4)
        inputs = {
            "pos[0]": 0.3,
            "pos[1]": -0.2,
            "angle": 0.5,
            "vel": 0.8,
            "ang_vel": 0.4,
        }
        res, ref = simulate_phase(p, "dynamics", inputs)
        assert ref
        for key, exact in ref.items():
            assert res.outputs[key] == pytest.approx(exact, abs=5e-4)

    @pytest.mark.parametrize("name", ["Quadrotor", "MicroSat", "Manipulator"])
    def test_fixed_point_error_small(self, name):
        """§VIII-A: Q14.17 + 4096-entry LUTs keep errors negligible."""
        b = build_benchmark(name)
        p = b.transcribe(horizon=4)
        res, ref = simulate_phase(p, "dynamics")
        errors = [abs(res.outputs[k] - ref[k]) for k in ref]
        assert max(errors) < 5e-3

    def test_ablation_same_results_more_cycles(self):
        b = build_benchmark("Quadrotor")
        p = b.transcribe(horizon=4)
        inputs = None
        res_on, _ = simulate_phase(p, "dynamics")
        res_off, _ = simulate_phase(
            p, "dynamics", compute_enabled_interconnect=False
        )
        for k in res_on.outputs:
            assert res_on.outputs[k] == pytest.approx(
                res_off.outputs[k], abs=1e-3
            )
        assert res_off.cycles > res_on.cycles
        assert res_off.aggregation_waves == 0
        assert res_on.aggregation_waves > 0

    def test_lut_resolution_degrades_results(self):
        b = build_benchmark("Quadrotor")
        p = b.transcribe(horizon=4)
        res_hi, ref = simulate_phase(p, "dynamics", lut_entries=4096)
        res_lo, _ = simulate_phase(p, "dynamics", lut_entries=32)
        err_hi = max(abs(res_hi.outputs[k] - ref[k]) for k in ref)
        err_lo = max(abs(res_lo.outputs[k] - ref[k]) for k in ref)
        assert err_lo > err_hi

    def test_utilization_spreads_over_cus(self):
        b = build_benchmark("Hexacopter")
        p = b.transcribe(horizon=4)
        res, _ = simulate_phase(p, "dynamics", n_cus=16, cus_per_cc=4)
        assert sum(1 for c in res.ops_per_cu if c > 0) >= 8
