"""Tests for the RoboX DSL parser."""

import pytest

from repro.dsl import parse
from repro.dsl import ast_nodes as ast
from repro.errors import ParseError

MINIMAL = """
System Bot( param k ) {
  state x;
  input u;
  x.dt = u * k;
}
Bot bot(2.0);
"""


class TestTopLevel:
    def test_minimal_program(self):
        prog = parse(MINIMAL)
        assert len(prog.items) == 2
        assert isinstance(prog.items[0], ast.SystemDef)
        assert isinstance(prog.items[1], ast.InstanceDecl)

    def test_reference_decl(self):
        prog = parse("reference tx, ty;")
        decl = prog.items[0]
        assert isinstance(decl, ast.ReferenceDecl)
        assert [d.name for d in decl.names] == ["tx", "ty"]

    def test_task_call(self):
        prog = parse(MINIMAL + "bot.go(1.0);")
        call = prog.items[-1]
        assert isinstance(call, ast.TaskCall)
        assert call.instance == "bot"
        assert call.task == "go"

    def test_garbage_top_level(self):
        with pytest.raises(ParseError):
            parse("42;")

    def test_system_redefinition_is_parseable(self):
        # Semantic analysis rejects it; parsing must accept.
        parse(MINIMAL.replace("Bot bot(2.0);", "") * 2)


class TestDeclarations:
    def test_vector_state(self):
        prog = parse("System S(){ state pos[2], angle; input u; pos[0].dt = u; pos[1].dt = u; angle.dt = u; }")
        decl = prog.items[0].body[0]
        assert decl.kind == "state"
        assert decl.declarators[0].dims == (2,)
        assert decl.declarators[1].dims == ()

    def test_matrix_state(self):
        prog = parse("System S(){ state R[2][2]; input u; }")
        assert prog.items[0].body[0].declarators[0].dims == (2, 2)

    def test_range_declaration(self):
        prog = parse("System S(){ range i[0:3]; state x; input u; }")
        d = prog.items[0].body[0].declarators[0]
        assert d.interval == (0, 3)

    def test_range_requires_interval(self):
        with pytest.raises(ParseError, match="interval"):
            parse("System S(){ range i; }")

    def test_interval_only_for_range(self):
        with pytest.raises(ParseError, match="only valid for range"):
            parse("System S(){ state x[0:2]; }")

    def test_reserved_word_as_name(self):
        with pytest.raises(ParseError, match="reserved"):
            parse("System S(){ state state; }")


class TestAssignments:
    def test_symbolic_field(self):
        prog = parse("System S(){ state x; input u; x.dt = u; }")
        assign = prog.items[0].body[2]
        assert assign.symbolic
        assert assign.target.field == "dt"

    def test_imperative_field(self):
        prog = parse("System S(){ input u; u.upper_bound <= 2.0; }")
        assign = prog.items[0].body[1]
        assert not assign.symbolic

    def test_unknown_field(self):
        with pytest.raises(ParseError, match="unknown field"):
            parse("System S(){ state x; x.dx = 1; }")

    def test_missing_operator(self):
        with pytest.raises(ParseError, match="expected '=' or '<='"):
            parse("System S(){ state x; x.dt 5; }")

    def test_indexed_target(self):
        prog = parse("System S(){ state p[2]; input u; p[0].dt = u; p[1].dt = u; }")
        assign = prog.items[0].body[2]
        assert len(assign.target.indices) == 1


class TestExpressions:
    def parse_expr(self, text):
        prog = parse(f"System S(){{ state x; input u; x.dt = {text}; }}")
        return prog.items[0].body[2].expr

    def test_precedence_mul_over_add(self):
        e = self.parse_expr("1 + 2 * 3")
        assert isinstance(e, ast.BinaryOp) and e.op == "+"
        assert isinstance(e.right, ast.BinaryOp) and e.right.op == "*"

    def test_parentheses(self):
        e = self.parse_expr("(1 + 2) * 3")
        assert e.op == "*"
        assert isinstance(e.left, ast.BinaryOp) and e.left.op == "+"

    def test_power_binds_tightest(self):
        e = self.parse_expr("2 * x ^ 2")
        assert e.op == "*"
        assert isinstance(e.right, ast.BinaryOp) and e.right.op == "^"

    def test_unary_minus(self):
        e = self.parse_expr("-x + 1")
        assert e.op == "+"
        assert isinstance(e.left, ast.UnaryOp)

    def test_function_call(self):
        e = self.parse_expr("cos(x) * u")
        assert isinstance(e.left, ast.FuncCall)
        assert e.left.func == "cos"

    def test_group_op(self):
        prog = parse(
            "System S(){ range i[0:2]; state p[2]; input u; "
            "p[0].dt = sum[i](p[i]); p[1].dt = u; }"
        )
        e = prog.items[0].body[3].expr
        assert isinstance(e, ast.GroupOp)
        assert e.func == "sum"
        assert e.ranges == ("i",)

    def test_norm_group_op(self):
        prog = parse(
            "System S(){ range i[0:2]; state p[2]; input u; "
            "p[0].dt = norm[i](p[i]); p[1].dt = u; }"
        )
        assert prog.items[0].body[3].expr.func == "norm"

    def test_multi_range_group(self):
        prog = parse(
            "System S(){ range i[0:2]; range j[0:2]; state R[2][2]; input u; "
            "R[0][0].dt = sum[i][j](R[i][j]); }"
        )
        e = prog.items[0].body[4].expr
        assert e.ranges == ("i", "j")

    def test_chained_indexing(self):
        e = self.parse_expr("x + u")
        assert isinstance(e, ast.BinaryOp)

    def test_field_in_expression(self):
        # Parsing allows it; semantics reject reading fields.
        prog = parse("System S(){ state x; input u; x.dt = u; }")
        assert prog is not None


class TestTasks:
    def test_task_inside_system(self):
        src = """
        System S( param m ) {
          state x; input u;
          x.dt = u / m;
          Task go( reference target, param w ) {
            penalty p;
            p.running = x - target;
            p.weight <= w;
          }
        }
        """
        prog = parse(src)
        task = prog.items[0].body[-1]
        assert isinstance(task, ast.TaskDef)
        assert task.name == "go"
        assert [p.kind for p in task.params] == ["reference", "param"]

    def test_task_header_rejects_state(self):
        with pytest.raises(ParseError, match="param.*reference|reference"):
            parse("System S(){ Task t( state x ) { } }")

    def test_constraint_fields(self):
        src = """
        System S(){ state x; input u; x.dt = u;
          Task t() {
            constraint c;
            c.running = x * x;
            c.upper_bound <= 4.0;
            c.lower_bound <= 0.5;
          }
        }
        """
        prog = parse(src)
        body = prog.items[0].body[-1].body
        assert body[1].target.field == "running"
        assert body[2].target.field == "upper_bound"


class TestErrorsCarryPositions:
    def test_parse_error_has_line(self):
        try:
            parse("System S(){\n state x\n}")
        except ParseError as exc:
            assert exc.line >= 2
        else:
            pytest.fail("expected ParseError")
