"""Tests for the LUT-based nonlinear function evaluation."""

import math

import numpy as np
import pytest

from repro.accelerator import DEFAULT_LUT_ENTRIES, LookupTable, LUTBank
from repro.accelerator.fixedpoint import FixedPointFormat, from_fixed, to_fixed
from repro.errors import AcceleratorError


@pytest.fixture(scope="module")
def bank():
    return LUTBank()


class TestLookupTable:
    def test_interpolation_exact_at_samples(self):
        t = LookupTable("sq", lambda x: x * x, (0.0, 1.0), entries=11)
        assert t.evaluate(0.5) == pytest.approx(0.25)

    def test_interpolation_between_samples(self):
        t = LookupTable("lin", lambda x: 3 * x, (0.0, 1.0), entries=5)
        # Linear functions are interpolated exactly.
        assert t.evaluate(0.333) == pytest.approx(0.999)

    def test_clamping(self):
        t = LookupTable("sq", lambda x: x * x, (0.0, 1.0), entries=11)
        assert t.evaluate(2.0) == pytest.approx(1.0)
        assert t.evaluate(-5.0) == pytest.approx(0.0)

    def test_needs_two_entries(self):
        with pytest.raises(AcceleratorError):
            LookupTable("bad", math.sin, (0, 1), entries=1)

    def test_invalid_domain(self):
        with pytest.raises(AcceleratorError):
            LookupTable("bad", math.sin, (1.0, 1.0))

    def test_max_abs_error_reported(self):
        t = LookupTable("sin", math.sin, (0.0, math.pi), entries=64)
        err = t.max_abs_error(2001, reference=math.sin)
        assert 0 < err < 1e-2


class TestBankAccuracy:
    """The paper's 4096-entry tables should be accurate to ~1e-5 on the
    functions' core ranges."""

    @pytest.mark.parametrize(
        "func, ref, points",
        [
            ("sin", math.sin, np.linspace(-7, 7, 101)),
            ("cos", math.cos, np.linspace(-7, 7, 101)),
            ("tan", math.tan, np.linspace(-1.2, 1.2, 101)),
            ("atan", math.atan, np.linspace(-20, 20, 101)),
            ("exp", math.exp, np.linspace(-4, 4, 101)),
            ("tanh", math.tanh, np.linspace(-8, 8, 101)),
        ],
    )
    def test_function_accuracy(self, bank, func, ref, points):
        for x in points:
            assert bank.evaluate(func, float(x)) == pytest.approx(
                ref(x), abs=5e-4, rel=1e-3
            )

    def test_sqrt_range_reduction(self, bank):
        for x in (1e-4, 0.5, 2.0, 100.0, 12345.0):
            assert bank.evaluate("sqrt", x) == pytest.approx(
                math.sqrt(x), rel=1e-5
            )

    def test_sqrt_of_zero(self, bank):
        assert bank.evaluate("sqrt", 0.0) == 0.0

    def test_log_range_reduction(self, bank):
        for x in (0.01, 0.5, 1.0, 7.0, 1000.0):
            assert bank.evaluate("log", x) == pytest.approx(math.log(x), abs=1e-5)

    def test_log_nonpositive_raises(self, bank):
        with pytest.raises(AcceleratorError):
            bank.evaluate("log", 0.0)

    def test_sin_periodicity(self, bank):
        x = 1.234
        assert bank.evaluate("sin", x + 4 * math.pi) == pytest.approx(
            bank.evaluate("sin", x), abs=1e-9
        )

    def test_tanh_saturation(self, bank):
        assert bank.evaluate("tanh", 50.0) == 1.0
        assert bank.evaluate("tanh", -50.0) == -1.0

    def test_unknown_function(self, bank):
        with pytest.raises(AcceleratorError):
            bank.evaluate("bessel", 1.0)

    def test_fixed_point_interface(self, bank):
        raw = bank.evaluate_fixed("sin", to_fixed(0.5))
        assert from_fixed(raw) == pytest.approx(math.sin(0.5), abs=1e-4)


class TestEntryCountTradeoff:
    """Fewer entries -> worse accuracy (the precision ablation axis)."""

    def test_error_shrinks_with_entries(self):
        errors = []
        for entries in (64, 512, 4096):
            b = LUTBank(entries)
            xs = np.linspace(0.1, 6.0, 301)
            err = max(abs(b.evaluate("sin", float(x)) - math.sin(x)) for x in xs)
            errors.append(err)
        assert errors[0] > errors[1] > errors[2]

    def test_4096_entries_meet_paper_precision(self):
        # "sufficient to make the effects on convergence negligible":
        # interpolation error well under the Q17 resolution x 16.
        b = LUTBank(4096)
        xs = np.linspace(0, 2 * math.pi, 1001)
        err = max(abs(b.evaluate("sin", float(x)) - math.sin(x)) for x in xs)
        assert err < 16 * 2.0**-17


class TestEndpointInterpolation:
    """Domain endpoints must hit the stored samples exactly — the clamped
    index path (``min(idx, entries - 2)``) is the classic off-by-one spot."""

    def test_first_and_last_entries_are_exact(self):
        t = LookupTable("cube", lambda x: x**3, (-2.0, 3.0), entries=17)
        assert t.evaluate(-2.0) == (-2.0) ** 3
        assert t.evaluate(3.0) == 3.0**3

    def test_interior_sample_points_are_exact(self):
        t = LookupTable("sq", lambda x: x * x, (0.0, 1.0), entries=11)
        for i in range(11):
            x = i / 10.0
            assert t.evaluate(x) == pytest.approx(x * x, abs=1e-15)

    def test_just_inside_the_upper_endpoint(self):
        # One ULP below the top must interpolate on the final segment,
        # not index past it.
        t = LookupTable("lin", lambda x: 2 * x + 1, (0.0, 1.0), entries=9)
        x = math.nextafter(1.0, 0.0)
        assert t.evaluate(x) == pytest.approx(2 * x + 1, abs=1e-12)

    def test_clamping_returns_the_endpoint_samples(self):
        t = LookupTable("tanh", math.tanh, (-3.0, 3.0), entries=33)
        assert t.evaluate(100.0) == t.evaluate(3.0)
        assert t.evaluate(-100.0) == t.evaluate(-3.0)

    def test_two_entry_table_is_a_single_segment(self):
        t = LookupTable("lin", lambda x: 5 * x, (0.0, 2.0), entries=2)
        assert t.evaluate(0.0) == 0.0
        assert t.evaluate(2.0) == 10.0
        assert t.evaluate(1.3) == pytest.approx(6.5)

    def test_bank_range_reduction_boundaries(self, bank):
        # sqrt normalization boundaries: exact powers of 4 map to the
        # table's own endpoints.
        for x in (0.25, 1.0, 4.0, 16.0):
            assert bank.evaluate("sqrt", x) == pytest.approx(math.sqrt(x), rel=1e-9)
        # log normalization boundary: m lands on 1.0, which sits between
        # table samples (domain starts at 2^-9), so interpolation error
        # applies — but must stay at the table's accuracy, not blow up.
        for x in (0.5, 1.0, 2.0, 4.0):
            assert bank.evaluate("log", x) == pytest.approx(math.log(x), abs=1e-6)
        # sin periodicity boundary: x = 2*pi wraps to the table's left edge.
        assert bank.evaluate("sin", 2 * math.pi) == pytest.approx(0.0, abs=1e-9)


class TestConfigurableWidth:
    """The bank quantizes through its format — the precision-sweep axis."""

    def test_coarse_format_coarsens_fixed_eval(self):
        coarse = LUTBank(entries=512, fmt=FixedPointFormat(16, 6))
        fine = LUTBank(entries=512, fmt=FixedPointFormat(32, 17))
        x = 0.77
        err_coarse = abs(
            coarse.fmt.from_fixed(coarse.evaluate_fixed("sin", coarse.fmt.to_fixed(x)))
            - math.sin(x)
        )
        err_fine = abs(
            fine.fmt.from_fixed(fine.evaluate_fixed("sin", fine.fmt.to_fixed(x)))
            - math.sin(x)
        )
        assert err_fine < err_coarse
        assert err_coarse <= 1.5 * coarse.fmt.resolution()

    def test_fixed_eval_saturates_at_format_extremes(self):
        fmt = FixedPointFormat(8, 4)  # max_value = 7.9375
        bank = LUTBank(entries=64, fmt=fmt)
        # exp(6) ~ 403 is far beyond Q3.4's range: the result must clamp
        # to the format's top word, not wrap.
        raw = bank.evaluate_fixed("exp", fmt.to_fixed(6.0))
        assert raw == fmt.max_raw

    def test_default_bank_uses_q14_17(self, bank):
        assert str(bank.fmt) == "Q14.17"
