"""The batched serve backend: group keys, lane scatter, fallbacks, and
batch telemetry."""

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve import EngineConfig, ServeEngine, SessionConfig
from repro.serve.telemetry import render_summary
from tests.test_serve_engine import fleet, stub_session
from tests.test_serve_session import cart  # noqa: F401


def batched_engine(**cfg):
    cfg.setdefault("backend", "batched")
    return ServeEngine(EngineConfig(**cfg))


def make_fleet(engine, specs):
    """specs: list of (robot, horizon); returns sids in order.

    Deadlines are disabled: these tests assert on solver outcomes, not
    wall-clock behavior (deadline semantics are covered separately).
    """
    return [
        engine.create_session(
            SessionConfig(robot=robot, horizon=horizon, deadline_s=None)
        )
        for robot, horizon in specs
    ]


def tick_states(engine, sids):
    inputs = {}
    for sid in sids:
        session = engine.sessions[sid]
        bench, _problem = engine.binding(
            session.config.robot, session.config.horizon
        )
        inputs[sid] = (np.asarray(bench.x0, dtype=float), None)
    return engine.tick(inputs)


class TestConfig:
    def test_batched_with_workers_rejected(self):
        with pytest.raises(ServeError):
            EngineConfig(backend="batched", workers=2)

    def test_unknown_backend_rejected_even_inline(self):
        # Regression: bogus backends used to pass validation when
        # workers == 0 and silently run inline.
        with pytest.raises(ServeError):
            EngineConfig(backend="carrier-pigeon", workers=0)

    def test_batched_accepted(self):
        assert EngineConfig(backend="batched").backend == "batched"

    def test_array_backend_requires_batched(self):
        with pytest.raises(ServeError):
            EngineConfig(backend="thread", array_backend="numpy")
        cfg = EngineConfig(backend="batched", array_backend="numpy:float32")
        assert cfg.array_backend == "numpy:float32"

    def test_array_backend_reaches_the_group_solver(self):
        engine = batched_engine(array_backend="numpy:float32")
        sids = make_fleet(engine, [("MobileRobot", 6)] * 2)
        tick_states(engine, sids)
        solver = engine._batch_solver(("MobileRobot", 6))
        assert solver is not None
        assert solver.xp.dtype_name == "float32"
        assert engine.metrics.batch_solves == 1


class TestGroupKey:
    """Satellite regression: sessions are co-batched **only** on an exact
    (robot, horizon) match — mismatched horizons or robots never share a
    batched solve."""

    def test_mixed_horizons_never_co_batched(self):
        engine = batched_engine()
        sids = make_fleet(
            engine,
            [("MobileRobot", 6), ("MobileRobot", 6), ("MobileRobot", 8)],
        )
        report = tick_states(engine, sids)
        assert len(report.outcomes) == 3
        m = engine.metrics
        # Two group solves (h=6 pair, h=8 singleton) — never one of three.
        assert m.batch_solves == 2
        assert m.max_batch == 2
        assert m.batched_lanes == 3

    def test_mixed_robots_never_co_batched(self):
        engine = batched_engine()
        sids = make_fleet(
            engine, [("MobileRobot", 6), ("CartPole", 6), ("CartPole", 6)]
        )
        tick_states(engine, sids)
        m = engine.metrics
        assert m.batch_solves == 2
        assert m.max_batch == 2

    def test_group_key_is_config_not_shape(self):
        engine = batched_engine()
        s1 = engine.sessions
        sids = make_fleet(engine, [("MobileRobot", 6), ("CartPole", 6)])
        k1 = engine._group_key(engine.sessions[sids[0]])
        k2 = engine._group_key(engine.sessions[sids[1]])
        assert k1 != k2
        assert k1 == ("MobileRobot", 6)


class TestDispatch:
    def test_lanes_get_ok_outcomes(self):
        engine = batched_engine()
        sids = make_fleet(engine, [("MobileRobot", 6)] * 3)
        report = tick_states(engine, sids)
        assert all(o.status == "ok" for o in report.outcomes.values())
        assert engine.metrics.fleet.ok == 3

    def test_matches_inline_backend_outcomes(self):
        specs = [("MobileRobot", 6)] * 3
        batched = batched_engine()
        inline = ServeEngine(EngineConfig())
        b_sids = make_fleet(batched, specs)
        i_sids = make_fleet(inline, specs)
        b_rep = tick_states(batched, b_sids)
        i_rep = tick_states(inline, i_sids)
        for bs, is_ in zip(b_sids, i_sids):
            bo, io = b_rep.outcomes[bs], i_rep.outcomes[is_]
            assert bo.status == io.status
            assert np.allclose(bo.u, io.u, atol=1e-6)

    def test_non_gauss_newton_robot_steps_inline(self):
        engine = batched_engine()
        sids = make_fleet(engine, [("MicroSat", 4)] * 2)
        report = tick_states(engine, sids)
        assert len(report.outcomes) == 2
        # No batched solve happened (hybrid Hessian -> scalar fallback) ...
        assert engine.metrics.batch_solves == 0
        # ... but the sessions still stepped.
        assert engine.metrics.fleet.steps == 2

    def test_stub_sessions_without_binding_step_inline(self, cart):
        engine = batched_engine()
        sids = fleet(cart, engine, 2)
        report = engine.tick({sid: (np.zeros(2), None) for sid in sids})
        assert all(o.status == "ok" for o in report.outcomes.values())
        assert engine.metrics.batch_solves == 0

    def test_bad_state_lane_isolated(self):
        engine = batched_engine()
        sids = make_fleet(engine, [("MobileRobot", 6)] * 3)
        bench, _ = engine.binding("MobileRobot", 6)
        x0 = np.asarray(bench.x0, dtype=float)
        inputs = {sid: (x0.copy(), None) for sid in sids}
        inputs[sids[1]] = (np.full_like(x0, np.nan), None)
        report = engine.tick(inputs)
        assert report.outcomes[sids[1]].reason == "bad_state"
        assert report.outcomes[sids[1]].fallback
        for sid in (sids[0], sids[2]):
            assert report.outcomes[sid].status == "ok"
        # The poisoned lane never entered the batch.
        assert engine.metrics.batched_lanes == 2

    def test_worker_crash_fault_directive(self):
        engine = batched_engine()
        sids = make_fleet(engine, [("MobileRobot", 6)] * 2)

        class Hook:
            def on_dispatch(self, tick, sid):
                return {"kind": "worker_crash"} if sid == sids[0] else None

        engine.fault_hook = Hook()
        report = tick_states(engine, sids)
        assert report.outcomes[sids[0]].reason == "worker_died"
        assert report.outcomes[sids[1]].status == "ok"
        assert engine.metrics.batched_lanes == 1

    def test_warm_start_carries_across_ticks(self):
        engine = batched_engine()
        sids = make_fleet(engine, [("MobileRobot", 6)] * 2)
        r1 = tick_states(engine, sids)
        r2 = tick_states(engine, sids)
        for sid in sids:
            assert r2.outcomes[sid].status == "ok"
            # Warm-started resolve of the same state converges faster.
            assert (
                r2.outcomes[sid].sqp_iterations
                <= r1.outcomes[sid].sqp_iterations
            )


class TestTelemetry:
    def test_batching_block_in_to_dict(self):
        engine = batched_engine()
        sids = make_fleet(engine, [("MobileRobot", 6)] * 2)
        tick_states(engine, sids)
        block = engine.metrics.to_dict()["batching"]
        assert block["batch_solves"] == 1
        assert block["batched_lanes"] == 2
        assert block["mean_batch"] == 2.0
        assert 0.0 < block["batch_efficiency"] <= 1.0
        assert 0.0 < block["sqp_batch_efficiency"] <= 1.0

    def test_summary_line_gated_on_batched_solves(self):
        engine = batched_engine()
        sids = make_fleet(engine, [("MobileRobot", 6)] * 2)
        tick_states(engine, sids)
        text = render_summary(engine.metrics, engine.session_states())
        assert "batching:" in text
        inline = ServeEngine(EngineConfig())
        i_sids = make_fleet(inline, [("MobileRobot", 6)])
        tick_states(inline, i_sids)
        assert "batching:" not in render_summary(
            inline.metrics, inline.session_states()
        )

    def test_collect_solver_stats_includes_batch_solver(self):
        engine = batched_engine()
        sids = make_fleet(engine, [("MobileRobot", 6)] * 2)
        tick_states(engine, sids)
        engine.collect_solver_stats()
        assert engine.metrics.phase_totals["factorizations"] > 0
