"""Tests for serving telemetry: histograms, fleet metrics, JSONL traces."""

import io
import json

import numpy as np
import pytest

from repro.serve import (
    FleetMetrics,
    Histogram,
    SessionMetrics,
    StepOutcome,
    TraceWriter,
    render_summary,
)


def outcome(**kwargs):
    kwargs.setdefault("session_id", "s0")
    kwargs.setdefault("u", np.zeros(1))
    kwargs.setdefault("status", "ok")
    kwargs.setdefault("solve_time", 0.01)
    kwargs.setdefault("sqp_iterations", 2)
    kwargs.setdefault("qp_iterations", 6)
    return StepOutcome(**kwargs)


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0

    def test_basic_stats(self):
        h = Histogram()
        for v in (0.001, 0.01, 0.1):
            h.record(v)
        assert h.count == 3
        assert h.sum == pytest.approx(0.111)
        assert h.max == pytest.approx(0.1)
        assert h.mean == pytest.approx(0.037)

    def test_percentile_ordering_and_bounds(self):
        h = Histogram()
        for v in np.linspace(1e-4, 1e-1, 200):
            h.record(float(v))
        p50, p90, p99 = h.percentile(50), h.percentile(90), h.percentile(99)
        assert p50 <= p90 <= p99 <= h.max

    def test_percentile_never_exceeds_max(self):
        h = Histogram()
        h.record(0.043)  # lands mid-bin; the upper edge is above the max
        assert h.percentile(99) == pytest.approx(0.043)

    def test_out_of_range_values_survive(self):
        h = Histogram(lo=1e-3, hi=1.0)
        h.record(1e-9)  # below the first edge
        h.record(50.0)  # above the last edge
        assert h.count == 2
        assert h.percentile(99) == pytest.approx(50.0)

    def test_merge(self):
        a, b = Histogram(), Histogram()
        a.record(0.01)
        b.record(0.1)
        b.record(0.2)
        a.merge(b)
        assert a.count == 3
        assert a.max == pytest.approx(0.2)
        assert a.sum == pytest.approx(0.31)

    def test_merge_rejects_different_binning(self):
        with pytest.raises(ValueError):
            Histogram().merge(Histogram(bins_per_decade=3))

    def test_to_dict_keys(self):
        d = Histogram().to_dict()
        assert set(d) == {"count", "mean", "p50", "p90", "p99", "max"}


class TestSessionMetrics:
    def test_merge_adds_counters(self):
        a, b = SessionMetrics(), SessionMetrics()
        a.steps, a.ok = 3, 2
        a.fallbacks_shifted = 1
        b.steps, b.ok = 2, 1
        b.fallbacks_hold = 1
        a.merge(b)
        assert a.steps == 5
        assert a.ok == 3
        assert a.fallbacks == 2


class TestFleetMetrics:
    def test_ok_step(self):
        m = FleetMetrics()
        m.observe_step("s0", outcome())
        assert m.fleet.ok == 1
        assert m.session("s0").ok == 1
        assert m.fleet.solve_latency.count == 1
        assert m.fleet.sqp_iterations == 2
        assert m.fleet.qp_iterations == 6

    def test_partial_accept_counted(self):
        m = FleetMetrics()
        m.observe_step("s0", outcome(partial=True, reason="deadline"))
        assert m.fleet.ok == 1
        assert m.fleet.partial_accepts == 1
        assert m.fleet.deadline_misses == 1

    def test_fallback_rungs_split(self):
        m = FleetMetrics()
        m.observe_step(
            "s0",
            outcome(status="fallback_shifted", fallback=True, reason="deadline"),
        )
        m.observe_step(
            "s0",
            outcome(
                status="fallback_hold", fallback=True, reason="solver_error"
            ),
        )
        assert m.fleet.fallbacks_shifted == 1
        assert m.fleet.fallbacks_hold == 1
        assert m.fleet.deadline_misses == 1
        assert m.fleet.solver_errors == 1
        assert m.fleet.ok == 0

    def test_crash_and_degraded_transition(self):
        m = FleetMetrics()
        m.observe_step("s0", outcome(status="crashed", reason="crashed"))
        m.observe_step(
            "s1",
            outcome(
                status="fallback_hold",
                fallback=True,
                reason="diverged",
                degraded_transition=True,
            ),
        )
        assert m.fleet.crashes == 1
        assert m.fleet.divergences == 1
        assert m.fleet.degraded_transitions == 1

    def test_per_session_isolation(self):
        m = FleetMetrics()
        m.observe_step("a", outcome(session_id="a"))
        m.observe_step(
            "b",
            outcome(session_id="b", status="fallback_hold", fallback=True),
        )
        assert m.session("a").ok == 1 and m.session("a").fallbacks == 0
        assert m.session("b").ok == 0 and m.session("b").fallbacks == 1
        assert m.fleet.steps == 2

    def test_solver_phase_absorption(self):
        m = FleetMetrics()
        m.absorb_solver_stats({"factorize_time": 1.5, "factorizations": 7})
        m.absorb_solver_stats({"factorize_time": 0.5, "unrelated_key": 99})
        assert m.phase_totals["factorize_time"] == pytest.approx(2.0)
        assert m.phase_totals["factorizations"] == 7
        assert "unrelated_key" not in m.phase_totals

    def test_to_dict_round_trips_through_json(self):
        m = FleetMetrics()
        m.observe_step("s0", outcome())
        m.observe_tick(deferred=2)
        doc = json.loads(json.dumps(m.to_dict()))
        assert doc["fleet"]["steps"] == 1
        assert doc["deferred_steps"] == 2
        assert "s0" in doc["sessions"]


class TestTraceWriter:
    def test_writes_parseable_jsonl(self):
        buf = io.StringIO()
        with TraceWriter(buf) as trace:
            trace.emit("session", session="s0", robot="Cart")
            trace.emit("step", tick=1, solve_time=np.float64(0.01), ok=np.bool_(True))
            trace.emit("summary", u=np.arange(3))
        lines = [json.loads(l) for l in buf.getvalue().splitlines()]
        assert [l["type"] for l in lines] == ["session", "step", "summary"]
        assert lines[1]["solve_time"] == pytest.approx(0.01)
        assert lines[1]["ok"] is True
        assert lines[2]["u"] == [0, 1, 2]
        assert trace.records == 3

    def test_file_sink(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with TraceWriter(path) as trace:
            trace.emit("tick", tick=1)
        with open(path) as fh:
            assert json.loads(fh.readline())["tick"] == 1

    def test_unserializable_value_raises(self):
        with pytest.raises(TypeError):
            TraceWriter(io.StringIO()).emit("x", bad=object())


class TestRenderSummary:
    def test_contains_the_load_bearing_lines(self):
        m = FleetMetrics()
        m.observe_step("s0", outcome())
        m.observe_step(
            "s1",
            outcome(
                session_id="s1",
                status="fallback_shifted",
                fallback=True,
                reason="deadline",
            ),
        )
        m.observe_tick(deferred=0)
        text = render_summary(m, {"s0": "active", "s1": "degraded"})
        assert "serve summary" in text
        assert "1 active, 1 degraded" in text
        assert "fallbacks=1" in text
        assert "deadline_misses=1" in text
        assert "p50=" in text and "p99=" in text
        assert "banded_factorizations" in text
