"""Tests for the experiments-harness internals: workloads cache, report
rendering, and the FigureResult container."""

import pytest

from repro.compiler import MachineConfig
from repro.experiments import render_figure, render_table
from repro.experiments.figures import FigureResult
from repro.experiments.workloads import (
    PAPER_HORIZON,
    benchmark,
    mdfg,
    problem,
    robox_iteration_seconds,
    schedule,
)


class TestWorkloadCache:
    def test_benchmark_memoized(self):
        assert benchmark("Quadrotor") is benchmark("Quadrotor")

    def test_problem_memoized_per_horizon(self):
        assert problem("MobileRobot", 8) is problem("MobileRobot", 8)
        assert problem("MobileRobot", 8) is not problem("MobileRobot", 16)

    def test_mdfg_memoized(self):
        assert mdfg("MobileRobot", 8) is mdfg("MobileRobot", 8)

    def test_schedule_keyed_by_machine(self):
        a = schedule("MobileRobot", 8, MachineConfig())
        b = schedule("MobileRobot", 8, MachineConfig())
        c = schedule("MobileRobot", 8, MachineConfig(n_cus=16))
        assert a is b
        assert a is not c

    def test_iteration_seconds_positive(self):
        assert robox_iteration_seconds("MobileRobot", 8) > 0

    def test_paper_horizon(self):
        assert PAPER_HORIZON == 32


class TestFigureResult:
    def test_add_series_computes_geomean(self):
        fig = FigureResult("F", "desc")
        fig.add_series("s", {"a": 2.0, "b": 8.0})
        assert fig.geomean["s"] == pytest.approx(4.0)

    def test_series_copied(self):
        values = {"a": 1.0}
        fig = FigureResult("F", "desc")
        fig.add_series("s", values)
        values["a"] = 99.0
        assert fig.series["s"]["a"] == 1.0


class TestRendering:
    def test_render_figure_contains_all_series(self):
        fig = FigureResult("Figure X", "test figure")
        fig.add_series("alpha", {"m": 1.5, "n": 2.5})
        fig.add_series("beta", {"m": 15.0, "n": 150.0})
        text = render_figure(fig)
        assert "Figure X" in text
        assert "alpha" in text and "beta" in text
        assert "1.50x" in text  # two decimals under 10
        assert "15.0x" in text  # one decimal in [10, 100)
        assert "150x" in text  # integer at >= 100

    def test_render_table_alignment(self):
        rows = [
            {"name": "a", "value": 1},
            {"name": "long-name", "value": 23},
        ]
        text = render_table(rows, "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        # all data lines equal width
        assert len(set(len(l) for l in lines[1:])) <= 2

    def test_render_empty_table(self):
        assert render_table([], "empty") == "empty"
