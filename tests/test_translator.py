"""Tests for the Program Translator (problem -> M-DFG)."""

import numpy as np
import pytest

from repro.compiler import NodeType, Translator, translate
from repro.mpc import Penalty, RobotModel, Task, TranscribedProblem, VarSpec
from repro.robots import build_benchmark
from repro.symbolic import Var, sin


@pytest.fixture(scope="module")
def quad_graph():
    p = build_benchmark("Quadrotor").transcribe(horizon=8)
    return p, translate(p)


class TestStructure:
    def test_phases_present(self, quad_graph):
        _, g = quad_graph
        for phase in ("dynamics", "dynamics_jacobian", "cost", "solver"):
            assert phase in g.phases()

    def test_dag_validates(self, quad_graph):
        _, g = quad_graph
        g.validate()

    def test_dynamics_repeat_matches_horizon(self, quad_graph):
        p, g = quad_graph
        scalars = [
            n
            for n in g.by_phase("dynamics")
            if n.type in (NodeType.SCALAR, NodeType.GROUP)
        ]
        assert scalars
        assert all(n.repeat == p.N for n in scalars)

    def test_terminal_phase_repeat_one(self, quad_graph):
        _, g = quad_graph
        nodes = [n for n in g.by_phase("cost_terminal") if n.type == NodeType.SCALAR]
        assert nodes and all(n.repeat == 1 for n in nodes)

    def test_solver_kernels_banded(self, quad_graph):
        _, g = quad_graph
        kernels = [n for n in g.by_phase("solver") if n.type == NodeType.KERNEL]
        kinds = {n.op for n in kernels}
        assert "cholesky_banded" in kinds
        assert "trsolve_banded" in kinds


class TestOpAccounting:
    def test_dynamics_ops_match_compiled_function(self, quad_graph):
        """Group detection must not change the total op count."""
        p, g = quad_graph
        mdfg_ops = sum(g.total_op_counts("dynamics").values())
        compiled_ops = sum(p._F.op_counts.values()) * p.N
        assert mdfg_ops == compiled_ops

    def test_jacobian_ops_match(self, quad_graph):
        from repro.symbolic import count_ops

        p, g = quad_graph
        mdfg_ops = sum(g.total_op_counts("dynamics_jacobian").values())
        # The M-DFG deduplicates subexpressions shared BETWEEN the A and B
        # Jacobians (lower bound), while group aggregation may re-reduce an
        # add-subtree shared by two GROUP roots (small upper overhead) — but
        # never more work than compiling the two functions separately.
        combined = sum(count_ops(list(p._A.exprs + p._B.exprs)).values()) * p.N
        separate = (
            sum(p._A.op_counts.values()) + sum(p._B.op_counts.values())
        ) * p.N
        assert combined <= mdfg_ops <= separate
        assert mdfg_ops <= combined * 1.05  # duplication stays marginal

    def test_info_summary(self, quad_graph):
        p, _ = quad_graph
        info = Translator(p).info()
        assert info.n_nodes > 100
        assert info.kernel_nodes >= 10
        assert info.total_ops > 0


class TestGroupDetection:
    def build(self, width, threshold=3):
        """A model whose dynamics sum `width` inputs."""
        terms = [Var(f"u[{i}]") for i in range(width)]
        total = terms[0]
        for t in terms[1:]:
            total = total + t
        model = RobotModel(
            "Sum",
            states=[VarSpec("x")],
            inputs=[VarSpec(f"u[{i}]") for i in range(width)],
            dynamics={"x": total},
        )
        task = Task("hold", model, penalties=[Penalty("p", Var("x"))])
        p = TranscribedProblem(model, task, horizon=2, dt=0.1, integrator="euler")
        return translate(p, group_threshold=threshold)

    def test_wide_sum_becomes_group(self):
        g = self.build(6)
        groups = [n for n in g.nodes if n.type == NodeType.GROUP]
        assert groups
        assert max(n.width for n in groups) >= 6

    def test_narrow_sum_stays_scalar(self):
        g = self.build(2, threshold=3)
        dyn_groups = [
            n for n in g.by_phase("dynamics") if n.type == NodeType.GROUP
        ]
        assert not dyn_groups

    def test_threshold_respected(self):
        g = self.build(4, threshold=5)
        dyn_groups = [
            n for n in g.by_phase("dynamics") if n.type == NodeType.GROUP
        ]
        assert not dyn_groups

    def test_horizon_scales_solver_not_graph_size(self):
        b = build_benchmark("MobileRobot")
        g8 = translate(b.transcribe(horizon=8))
        g64 = translate(b.transcribe(horizon=64))
        # Stage templates: same node count, different repeat factors.
        expr8 = sum(1 for n in g8.nodes if n.type == NodeType.SCALAR)
        expr64 = sum(1 for n in g64.nodes if n.type == NodeType.SCALAR)
        assert expr8 == expr64
        assert sum(g64.total_op_counts("dynamics").values()) == 8 * sum(
            g8.total_op_counts("dynamics").values()
        )
