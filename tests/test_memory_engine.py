"""Tests for the programmable memory access engine."""

import pytest

from repro.accelerator.memory import (
    BLOCK_WORDS,
    EngineRun,
    MemoryAccessEngine,
    MemoryImage,
)
from repro.compiler.isa import MemInstr, Namespace, encode
from repro.errors import AcceleratorError


def stream(*instrs):
    return [encode(i) for i in instrs] + [encode(MemInstr(kind="end"))]


class TestMemoryImage:
    def test_read_write_roundtrip(self):
        mem = MemoryImage()
        mem.write(Namespace.STATE, 0, 10, [1, 2, 3])
        assert mem.read(Namespace.STATE, 0, 10, 3) == [1, 2, 3]

    def test_blocks_are_independent(self):
        mem = MemoryImage()
        mem.write(Namespace.STATE, 0, 0, [7])
        mem.write(Namespace.STATE, 1, 0, [9])
        assert mem.read(Namespace.STATE, 0, 0, 1) == [7]
        assert mem.read(Namespace.STATE, 1, 0, 1) == [9]

    def test_namespaces_are_independent(self):
        mem = MemoryImage()
        mem.write(Namespace.STATE, 0, 0, [1])
        mem.write(Namespace.GRADIENT, 0, 0, [2])
        assert mem.read(Namespace.STATE, 0, 0, 1) == [1]
        assert mem.read(Namespace.GRADIENT, 0, 0, 1) == [2]

    def test_invalid_namespace(self):
        mem = MemoryImage()
        with pytest.raises(AcceleratorError, match="invalid"):
            mem.read(99, 0, 0, 1)

    def test_block_bounds_enforced(self):
        mem = MemoryImage()
        with pytest.raises(AcceleratorError):
            mem.read(Namespace.STATE, 0, BLOCK_WORDS - 1, 2)
        with pytest.raises(AcceleratorError):
            mem.write(Namespace.STATE, 0, BLOCK_WORDS, [1])

    def test_uninitialized_reads_zero(self):
        assert MemoryImage().read(Namespace.INPUT, 3, 100, 2) == [0, 0]


class TestEngineExecution:
    def test_load_burst(self):
        engine = MemoryAccessEngine()
        engine.memory.write(Namespace.STATE, 0, 0, list(range(8)))
        run = engine.run(
            stream(MemInstr(kind="load", namespace=Namespace.STATE, burst=8))
        )
        assert run.loaded == list(range(8))
        assert run.loads == 1
        assert run.ended

    def test_load_with_offset(self):
        engine = MemoryAccessEngine()
        engine.memory.write(Namespace.STATE, 0, 4, [42, 43])
        run = engine.run(
            stream(
                MemInstr(kind="load", namespace=Namespace.STATE, offset=4, burst=2)
            )
        )
        assert run.loaded == [42, 43]

    def test_shifter_realigns(self):
        engine = MemoryAccessEngine()
        engine.memory.write(Namespace.STATE, 0, 0, [10, 11, 12, 13])
        run = engine.run(
            stream(
                MemInstr(kind="load", namespace=Namespace.STATE, burst=4, shift=1)
            )
        )
        assert run.loaded == [11, 12, 13, 10]
        assert run.shifter_engagements == 1

    def test_store_consumes_queue(self):
        engine = MemoryAccessEngine()
        engine.queue_stores([5, 6, 7])
        run = engine.run(
            stream(
                MemInstr(
                    kind="store", namespace=Namespace.GRADIENT, offset=2, burst=3
                )
            )
        )
        assert run.stores == 1
        assert engine.memory.read(Namespace.GRADIENT, 0, 2, 3) == [5, 6, 7]
        assert engine.store_queue == []

    def test_store_underflow_detected(self):
        engine = MemoryAccessEngine()
        engine.queue_stores([1])
        with pytest.raises(AcceleratorError, match="staged"):
            engine.run(
                stream(
                    MemInstr(kind="store", namespace=Namespace.GRADIENT, burst=4)
                )
            )

    def test_set_block_changes_pointer(self):
        engine = MemoryAccessEngine()
        engine.memory.write(Namespace.STATE, 2, 0, [99])
        run = engine.run(
            stream(
                MemInstr(kind="set_block", namespace=Namespace.STATE, block=2),
                MemInstr(kind="load", namespace=Namespace.STATE, burst=1),
            )
        )
        assert run.loaded == [99]
        assert engine.block_pointer[Namespace.STATE] == 2

    def test_missing_end_of_code(self):
        engine = MemoryAccessEngine()
        with pytest.raises(AcceleratorError, match="End-of-Code"):
            engine.run(
                [encode(MemInstr(kind="load", namespace=Namespace.STATE, burst=1))]
            )

    def test_instructions_after_end_ignored(self):
        engine = MemoryAccessEngine()
        run = engine.run(
            [
                encode(MemInstr(kind="end")),
                encode(MemInstr(kind="load", namespace=Namespace.STATE, burst=4)),
            ]
        )
        assert run.loads == 0


class TestTiming:
    def test_cycles_scale_with_burst(self):
        engine = MemoryAccessEngine(bandwidth_bytes_per_cycle=16.0)
        short = engine.run(
            stream(MemInstr(kind="load", namespace=Namespace.STATE, burst=4))
        )
        long = engine.run(
            stream(MemInstr(kind="load", namespace=Namespace.STATE, burst=32))
        )
        assert long.cycles > short.cycles
        # 32 words x 4 B at 16 B/cycle = 8 cycles
        assert long.cycles == 8

    def test_lower_bandwidth_costs_more(self):
        fast = MemoryAccessEngine(bandwidth_bytes_per_cycle=16.0)
        slow = MemoryAccessEngine(bandwidth_bytes_per_cycle=4.0)
        instr = stream(MemInstr(kind="load", namespace=Namespace.STATE, burst=16))
        assert slow.run(instr).cycles == 4 * fast.run(instr).cycles

    def test_shifter_costs_one_cycle(self):
        engine = MemoryAccessEngine()
        plain = engine.run(
            stream(MemInstr(kind="load", namespace=Namespace.STATE, burst=8))
        )
        shifted = engine.run(
            stream(
                MemInstr(kind="load", namespace=Namespace.STATE, burst=8, shift=2)
            )
        )
        assert shifted.cycles == plain.cycles + 1

    def test_invalid_bandwidth(self):
        with pytest.raises(AcceleratorError):
            MemoryAccessEngine(bandwidth_bytes_per_cycle=0.0)


class TestScheduleIntegration:
    def test_scheduler_stream_executes(self):
        """The memory stream the Controller Compiler emits must run."""
        from repro.compiler import compile_problem
        from repro.robots import build_benchmark

        p = build_benchmark("MobileRobot").transcribe(horizon=4)
        _, _, sched = compile_problem(p)
        engine = MemoryAccessEngine()
        engine.queue_stores([0] * 4096)  # plenty for the final store burst
        run = engine.run(sched.memory_stream)
        assert run.ended
        assert run.loads >= 1
        assert run.stores >= 1
