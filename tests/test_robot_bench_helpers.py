"""Tests for RobotBenchmark's solver/controller factory helpers."""

import numpy as np
import pytest

from repro.mpc import InteriorPointSolver, MPCController
from repro.robots import build_benchmark


class TestMakeSolver:
    def test_applies_recommended_overrides(self):
        b = build_benchmark("AutoVehicle")
        p = b.transcribe(horizon=4)
        solver = b.make_solver(p)
        assert isinstance(solver, InteriorPointSolver)
        assert solver.options.hessian == "hybrid"
        assert solver.options.watchdog == 1

    def test_extra_kwargs_win(self):
        b = build_benchmark("AutoVehicle")
        p = b.transcribe(horizon=4)
        solver = b.make_solver(p, max_iterations=7, hessian="gauss_newton")
        assert solver.options.max_iterations == 7
        assert solver.options.hessian == "gauss_newton"

    def test_defaults_for_plain_benchmark(self):
        b = build_benchmark("MobileRobot")
        p = b.transcribe(horizon=4)
        solver = b.make_solver(p)
        assert solver.options.hessian == "gauss_newton"


class TestMakeController:
    def test_warm_start_policy_wired(self):
        vehicle = build_benchmark("AutoVehicle")
        ctrl = vehicle.make_controller(vehicle.transcribe(horizon=4))
        assert isinstance(ctrl, MPCController)
        assert ctrl.warm_start is False

        quad = build_benchmark("Quadrotor")
        ctrl2 = quad.make_controller(quad.transcribe(horizon=4))
        assert ctrl2.warm_start is True

    def test_controller_uses_given_problem(self):
        b = build_benchmark("MobileRobot")
        p = b.transcribe(horizon=4)
        ctrl = b.make_controller(p)
        assert ctrl.problem is p
