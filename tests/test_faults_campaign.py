"""End-to-end chaos campaigns: recovery invariants across robots and backends.

These are the acceptance tests for the fault-injection harness: a seeded
fault schedule is driven through the full plant -> controller -> serve
stack and the campaign's recovery invariants must all hold — no uncaught
exceptions, every open session back to ``active`` once the schedule
clears, states bounded, and restarts of crashed sessions succeeding.
"""

import numpy as np
import pytest

from repro.errors import SessionStateError
from repro.faults import (
    CampaignConfig,
    FaultSchedule,
    FaultSpec,
    run_campaign,
)
from repro.mpc import MPCController
from repro.serve import ACTIVE, CRASHED, ControlSession, ServeEngine, SessionConfig
from tests.test_serve_session import ScriptedSolver, cart  # noqa: F401

X = np.zeros(2)


class TestCampaignInvariants:
    @pytest.mark.parametrize("robot", ["CartPole", "MobileRobot", "Hexacopter"])
    def test_smoke_schedule_recovers(self, robot):
        rep = run_campaign(
            CampaignConfig(
                robot=robot,
                schedule="smoke",
                sessions=2,
                ticks=30,
                # Generous deadline: this test is about *fault* recovery,
                # not deadline pressure, and MicroSat solves are slow.
                deadline_s=1.0,
                seed=0,
            )
        )
        assert rep.uncaught is None
        assert rep.ok, rep.violations
        assert rep.invariants["no_uncaught_exception"]
        assert rep.invariants["recovered_active"]
        assert rep.invariants["bounded_state"]
        assert rep.invariants["restarts_succeeded"]
        assert rep.recovered_at_tick is not None
        assert sum(rep.fired.values()) > 0
        assert all(state == ACTIVE for state in rep.session_states.values())

    def test_sensor_schedule_surfaces_bad_states(self):
        rep = run_campaign(
            CampaignConfig(robot="CartPole", schedule="sensor", ticks=30, seed=0)
        )
        assert rep.ok, rep.violations
        assert rep.metrics.fleet.bad_states > 0
        assert rep.metrics.fleet.crashes == 0

    def test_solver_schedule_absorbed_without_crashes(self):
        rep = run_campaign(
            CampaignConfig(robot="CartPole", schedule="solver", ticks=30, seed=0)
        )
        assert rep.ok, rep.violations
        assert rep.metrics.fleet.crashes == 0
        # chol_fail / illcond / budget_starve all fired and were absorbed.
        assert any(rep.fired.get(k, 0) > 0 for k in ("chol_fail", "budget_starve"))

    def test_campaign_must_outlast_the_schedule(self):
        sched = FaultSchedule(
            specs=(FaultSpec("spike", start=0, stop=20),), seed=0
        )
        from repro.errors import ServeError

        with pytest.raises(ServeError, match="clear"):
            run_campaign(CampaignConfig(schedule=sched, ticks=10))

    def test_report_is_json_ready(self):
        rep = run_campaign(
            CampaignConfig(robot="CartPole", schedule="smoke", ticks=20, seed=0)
        )
        doc = rep.to_dict()
        assert doc["ok"] == rep.ok
        assert doc["invariants"] == rep.invariants
        assert "fired" in doc and "metrics" in doc
        assert "faults fired" in rep.summary()


@pytest.mark.slow
class TestProcessBackendCampaign:
    def test_worker_kill_respawns_pool_and_recovers(self):
        rep = run_campaign(
            CampaignConfig(
                robot="CartPole",
                schedule="serve",
                sessions=2,
                ticks=40,
                workers=2,
                backend="process",
                seed=0,
            )
        )
        assert rep.ok, rep.violations
        assert rep.fired.get("worker_crash", 0) >= 1
        # A killed worker breaks the whole pool: the engine must notice,
        # charge only the affected sessions one fallback period, and
        # rebuild the pool for the next tick.
        assert rep.metrics.fleet.worker_deaths >= 1
        assert rep.worker_respawns >= 1
        assert rep.metrics.fleet.crashes == 0
        assert all(state == ACTIVE for state in rep.session_states.values())


class TestServe2ShardCampaign:
    def test_shard_crashes_hand_off_and_recover(self):
        # Deterministic shard chaos: session 0's shard is shot twice
        # mid-campaign; the handoff invariant must hold on a 2-shard fleet.
        schedule = FaultSchedule(
            specs=(
                FaultSpec("shard_crash", start=4, stop=6, sessions=(0,)),
                FaultSpec("slow_worker", start=2, stop=5, magnitude=0.001),
            ),
            seed=0,
            name="shard-direct",
        )
        rep = run_campaign(
            CampaignConfig(
                robot="CartPole",
                schedule=schedule,
                sessions=4,
                ticks=20,
                deadline_s=1.0,
                engine="v2",
                shards=2,
                seed=0,
            )
        )
        assert rep.uncaught is None
        assert rep.ok, rep.violations
        # counted on both the session- and engine-side injectors
        assert rep.fired["shard_crash"] > 0
        assert rep.invariants["shard_handoff"]
        assert rep.metrics.shard_handoffs > 0
        assert rep.metrics.shard_respawns >= 1
        assert all(state == ACTIVE for state in rep.session_states.values())

    def test_builtin_shards_schedule_runs_v2(self):
        rep = run_campaign(
            CampaignConfig(
                robot="CartPole",
                schedule="shards",
                sessions=4,
                ticks=30,
                deadline_s=1.0,
                engine="v2",
                shards=2,
                seed=3,
            )
        )
        assert rep.uncaught is None
        assert rep.ok, rep.violations

    def test_v1_rejects_nothing_but_reports_engine(self):
        rep = run_campaign(
            CampaignConfig(
                robot="CartPole", schedule="smoke", ticks=20, seed=0
            )
        )
        assert rep.to_dict()["engine"] == "v1"


class TestCrashedSessionRestart:
    def make(self, cart, script):
        return ControlSession(
            "t0",
            SessionConfig(robot="Cart", degrade_after=3),
            MPCController(ScriptedSolver(cart, script)),
        )

    def test_restart_recovers_crashed_session(self, cart):
        session = self.make(cart, ["ok", "ok"])
        session.step(X)
        session.mark_crashed()
        assert session.state == CRASHED
        out = session.restart()
        assert out.status == "restarted"
        assert session.state == ACTIVE
        after = session.step(X)
        assert after.status == "ok"
        assert np.all(np.isfinite(after.u))

    def test_restart_resets_ladder_and_warm_state(self, cart):
        session = self.make(cart, ["ok", "ok"])
        session.step(X)
        session.mark_crashed()
        session.restart()
        # Ladder back to square one: a fresh failure streak is needed to
        # degrade again.
        assert session.ladder.consecutive == 0
        assert session.controller._warm is None

    def test_restart_of_closed_session_rejected(self, cart):
        session = self.make(cart, ["ok"])
        session.close()
        with pytest.raises(SessionStateError, match="closed"):
            session.restart()

    def test_engine_restart_rejoins_tick_loop(self, cart):
        engine = ServeEngine()
        session = self.make(cart, ["boom", "ok"])
        sid = engine.add_session(session)
        engine.tick({sid: (X, None)})
        assert engine.crashed_sessions() == [sid]
        # Crashed sessions are skipped, not retried.
        report = engine.tick({sid: (X, None)})
        assert not report.outcomes
        engine.restart_session(sid)
        report = engine.tick({sid: (X, None)})
        assert report.outcomes[sid].status == "ok"
        assert engine.crashed_sessions() == []
