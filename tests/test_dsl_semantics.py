"""Tests for RoboX DSL semantic analysis and lowering to the MPC IR."""

import math

import numpy as np
import pytest

from repro.dsl import compile_program
from repro.errors import SemanticError
from repro.symbolic import Var, to_string

PAPER_PROGRAM = """
System MobileRobot( param vel_bound, param ang_bound ) {
  state pos[2], angle;
  input vel, ang_vel;
  pos[0].dt = vel * cos(angle);
  pos[1].dt = vel * sin(angle);
  angle.dt = ang_vel;
  vel.lower_bound <= -vel_bound;
  vel.upper_bound <= vel_bound;
  ang_vel.lower_bound <= -ang_bound;
  ang_vel.upper_bound <= ang_bound;

  Task moveTo( reference desired_x, reference desired_y, param weight, param radius ) {
    penalty target_x, target_y;
    target_x.terminal = pos[0] - desired_x;
    target_y.terminal = pos[1] - desired_y;
    target_x.weight <= weight;
    target_y.weight <= weight;
    range i[0:2];
    constraint pos_bound;
    pos_bound.running = norm[i](pos[i]);
    pos_bound.upper_bound <= radius;
  }
}
reference desired_x;
reference desired_y;
MobileRobot robot(1.0, 2.0);
robot.moveTo(desired_x, desired_y, 10, 5.0);
"""


@pytest.fixture(scope="module")
def paper_result():
    return compile_program(PAPER_PROGRAM)


class TestPaperProgram:
    def test_model_layout(self, paper_result):
        m = paper_result.model
        assert m.state_names == ("pos[0]", "pos[1]", "angle")
        assert m.input_names == ("vel", "ang_vel")

    def test_parameter_substitution(self, paper_result):
        m = paper_result.model
        lo, hi = m.input_bounds()
        assert lo == (-1.0, -2.0)
        assert hi == (1.0, 2.0)

    def test_dynamics_lowered(self, paper_result):
        m = paper_result.model
        assert to_string(m.dynamics["pos[0]"]) == "vel * cos(angle)"
        assert to_string(m.dynamics["angle"]) == "ang_vel"

    def test_task_penalties(self, paper_result):
        t = paper_result.task
        assert t.n_penalties == 2
        p = t.penalties[0]
        assert p.weight == 10.0
        assert p.timing == "terminal"

    def test_norm_constraint(self, paper_result):
        t = paper_result.task
        c = t.constraints[0]
        assert c.upper == 5.0
        value = c.expr.evaluate({"pos[0]": 3.0, "pos[1]": 4.0})
        assert value == pytest.approx(5.0)

    def test_references_tracked(self, paper_result):
        assert paper_result.task.references == ("desired_x", "desired_y")

    def test_group_op_recorded(self, paper_result):
        assert any(g.func == "norm" and g.width == 2 for g in paper_result.group_ops)

    def test_model_is_solvable(self, paper_result):
        from repro.mpc import InteriorPointSolver, TranscribedProblem

        m, t = paper_result.model, paper_result.task
        p = TranscribedProblem(m, t, horizon=8, dt=0.1)
        res = InteriorPointSolver(p).solve(
            np.zeros(3), ref=np.array([0.8, 0.4])
        )
        # Terminal-only penalties converge slowly in KKT terms; what the
        # integration test guards is that the DSL-produced problem is
        # well-posed and the optimized trajectory closes most of the gap.
        assert res.kkt_residual < 5e-3
        xs, _ = p.split(res.z)
        assert np.hypot(xs[-1, 0] - 0.8, xs[-1, 1] - 0.4) < 0.4 * np.hypot(0.8, 0.4)


class TestRangeBroadcast:
    def test_matrix_vector_product(self):
        src = """
        System Lin() {
          state x[2];
          input u[2];
          range i[0:2];
          range j[0:2];
          x[i].dt = sum[j]( (1 + i) * x[j] ) + u[i];
        }
        Lin sys();
        """
        m = compile_program(src).model
        # x[0].dt = (x[0] + x[1]) + u[0]; x[1].dt = 2*(x0+x1)... check numerics
        env = {"x[0]": 1.0, "x[1]": 2.0, "u[0]": 0.5, "u[1]": -0.5}
        assert m.dynamics["x[0]"].evaluate(env) == pytest.approx(3.5)
        assert m.dynamics["x[1]"].evaluate(env) == pytest.approx(5.5)

    def test_sum_expands_to_reduction(self):
        src = """
        System S() {
          state x[4];
          input u;
          range i[0:4];
          x[0].dt = sum[i](x[i]);
          x[1].dt = u; x[2].dt = u; x[3].dt = u;
        }
        S s();
        """
        m = compile_program(src).model
        env = {f"x[{i}]": float(i) for i in range(4)}
        assert m.dynamics["x[0]"].evaluate(env) == pytest.approx(6.0)

    def test_min_max_group_ops(self):
        src = """
        System S() {
          state x[3];
          input u;
          range i[0:3];
          x[0].dt = max[i](x[i]);
          x[1].dt = min[i](x[i]);
          x[2].dt = u;
        }
        S s();
        """
        m = compile_program(src).model
        env = {"x[0]": 1.0, "x[1]": 5.0, "x[2]": -2.0}
        assert m.dynamics["x[0]"].evaluate(env) == pytest.approx(5.0, abs=1e-4)
        assert m.dynamics["x[1]"].evaluate(env) == pytest.approx(-2.0, abs=1e-4)


class TestErrors:
    def check(self, src, match):
        with pytest.raises(SemanticError, match=match):
            compile_program(src)

    def test_undeclared_name(self):
        self.check(
            "System S(){ state x; input u; x.dt = ghost; } S s();",
            "undeclared",
        )

    def test_missing_dynamics(self):
        self.check("System S(){ state x; input u; } S s();", "no .dt")

    def test_duplicate_dynamics(self):
        self.check(
            "System S(){ state x; input u; x.dt = u; x.dt = u; } S s();",
            "duplicate dynamics",
        )

    def test_wrong_arity_instantiation(self):
        self.check(
            "System S( param k ){ state x; input u; x.dt = u; } S s();",
            "expected 1 argument",
        )

    def test_unknown_system(self):
        self.check("Ghost g();", "unknown System")

    def test_unknown_task(self):
        self.check(
            "System S(){ state x; input u; x.dt = u; } S s(); s.fly();",
            "no Task",
        )

    def test_imperative_with_state(self):
        self.check(
            "System S(){ state x; input u; x.dt = u; u.upper_bound <= x; } S s();",
            "imperative",
        )

    def test_symbolic_field_with_imperative_operator(self):
        self.check(
            "System S(){ state x; input u; x.dt <= u; } S s();",
            "requires symbolic",
        )

    def test_weight_requires_imperative(self):
        self.check(
            """System S(){ state x; input u; x.dt = u;
               Task t(){ penalty p; p.running = x; p.weight = 2; } }
               S s(); s.t();""",
            "requires imperative",
        )

    def test_index_out_of_bounds(self):
        self.check(
            "System S(){ state p[2]; input u; p[0].dt = u; p[2].dt = u; } S s();",
            "out of bounds",
        )

    def test_dt_on_input(self):
        self.check(
            "System S(){ state x; input u; x.dt = u; u.dt = x; } S s();",
            "only valid on states",
        )

    def test_reference_argument_must_be_reference(self):
        self.check(
            """System S(){ state x; input u; x.dt = u;
               Task t( reference r ){ penalty p; p.running = x - r; } }
               S s(); s.t(1.0);""",
            "reference arguments",
        )

    def test_penalty_without_expression(self):
        self.check(
            """System S(){ state x; input u; x.dt = u;
               Task t(){ penalty p; } }
               S s(); s.t();""",
            "never assigned",
        )

    def test_redeclaration(self):
        self.check(
            "System S(){ state x; state x; input u; x.dt = u; } S s();",
            "redeclaration",
        )

    def test_empty_range(self):
        self.check(
            "System S(){ range i[2:2]; state x; input u; x.dt = u; } S s();",
            "empty interval",
        )

    def test_equals_mixed_with_bounds(self):
        self.check(
            """System S(){ state x; input u; x.dt = u;
               Task t(){ penalty p; p.running = x;
                 constraint c; c.running = x;
                 c.equals <= 1.0; c.upper_bound <= 2.0; } }
               S s(); s.t();""",
            "mixes",
        )


class TestMultipleInstances:
    def test_two_instances(self):
        src = """
        System S( param k ){ state x; input u; x.dt = u * k; }
        S fast(2.0);
        S slow(0.5);
        """
        result = compile_program(src)
        assert set(result.models) == {"fast", "slow"}
        env = {"x": 0.0, "u": 1.0}
        assert result.models["fast"].dynamics["x"].evaluate(env) == 2.0
        assert result.models["slow"].dynamics["x"].evaluate(env) == 0.5

    def test_single_accessors_reject_multiple(self):
        src = """
        System S(){ state x; input u; x.dt = u; }
        S a();
        S b();
        """
        result = compile_program(src)
        with pytest.raises(SemanticError):
            result.model

    def test_equality_constraint_via_equals(self):
        src = """
        System S(){ state x; input u; x.dt = u;
          Task t(){ penalty p; p.running = x;
            constraint c; c.running = x + u; c.equals <= 1.0; } }
        S s(); s.t();
        """
        t = compile_program(src).task
        c = t.constraints[0]
        assert c.is_equality
        assert c.lower == c.upper == 1.0
