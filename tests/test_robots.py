"""Tests for the six Table III benchmark robots."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.experiments.tables import PAPER_TABLE3
from repro.mpc.controller import integrate_plant
from repro.robots import (
    BENCHMARK_NAMES,
    all_benchmarks,
    build_benchmark,
    table_iii_row,
)
from repro.symbolic import compile_function


class TestRegistry:
    def test_all_six_present(self):
        assert set(BENCHMARK_NAMES) == set(PAPER_TABLE3)

    def test_unknown_name_raises(self):
        with pytest.raises(ReproError, match="unknown benchmark"):
            build_benchmark("WarpDrive")

    def test_all_benchmarks_order(self):
        names = [b.name for b in all_benchmarks()]
        assert names == list(BENCHMARK_NAMES)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
class TestTableIII:
    def test_row_matches_paper(self, name):
        row = table_iii_row(build_benchmark(name))
        expected = PAPER_TABLE3[name]
        assert row["states"] == expected["states"]
        assert row["inputs"] == expected["inputs"]
        assert row["penalties"] == expected["penalties"]
        assert row["constraints"] == expected["constraints"]


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
class TestModels:
    def test_defaults_consistent(self, name):
        b = build_benchmark(name)
        assert b.x0.shape == (b.model.n_states,)
        assert b.ref.shape == (len(b.task.references),)
        assert b.dt > 0

    def test_dynamics_finite_at_default_state(self, name):
        b = build_benchmark(name)
        f = compile_function(
            list(b.model.dynamics_exprs),
            list(b.model.state_vars) + list(b.model.input_vars),
        )
        u = np.array(b.model.trim_inputs())
        out = f(np.concatenate([b.x0, u]))
        assert np.all(np.isfinite(out))

    def test_initial_state_within_bounds(self, name):
        b = build_benchmark(name)
        lo, hi = b.model.state_bounds()
        assert np.all(b.x0 >= np.asarray(lo) - 1e-9)
        assert np.all(b.x0 <= np.asarray(hi) + 1e-9)

    def test_transcribes(self, name):
        b = build_benchmark(name)
        p = b.transcribe(horizon=4)
        assert p.nz == 5 * b.model.n_states + 4 * b.model.n_inputs


class TestPhysics:
    def test_quadrotor_hover_equilibrium(self):
        b = build_benchmark("Quadrotor")
        p = b.transcribe(horizon=2)
        hover = np.array(b.model.trim_inputs())
        x = np.zeros(12)
        out = integrate_plant(p, x, hover, dt=0.1)
        # Hover thrust exactly balances gravity: the state stays put.
        assert np.allclose(out, x, atol=1e-9)

    def test_quadrotor_free_fall(self):
        b = build_benchmark("Quadrotor")
        p = b.transcribe(horizon=2)
        x = np.zeros(12)
        out = integrate_plant(p, x, np.zeros(4), dt=0.1)
        assert out[5] == pytest.approx(-0.981, abs=1e-6)  # vz = -g t

    def test_hexacopter_hover_equilibrium(self):
        b = build_benchmark("Hexacopter")
        p = b.transcribe(horizon=2)
        hover = np.array(b.model.trim_inputs())
        out = integrate_plant(p, np.zeros(12), hover, dt=0.1)
        assert np.allclose(out, np.zeros(12), atol=1e-9)

    def test_mobile_robot_straight_line(self):
        b = build_benchmark("MobileRobot")
        p = b.transcribe(horizon=2)
        x = np.zeros(3)
        out = integrate_plant(p, x, np.array([1.0, 0.0]), dt=0.5)
        assert out[0] == pytest.approx(0.5, abs=1e-9)
        assert out[1] == pytest.approx(0.0, abs=1e-9)

    def test_mobile_robot_turns(self):
        b = build_benchmark("MobileRobot")
        p = b.transcribe(horizon=2)
        out = integrate_plant(p, np.zeros(3), np.array([0.0, 1.0]), dt=0.5)
        assert out[2] == pytest.approx(0.5, abs=1e-9)

    def test_microsat_quaternion_norm_conserved(self):
        b = build_benchmark("MicroSat")
        p = b.transcribe(horizon=2)
        x = b.x0.copy()
        out = integrate_plant(p, x, np.zeros(4), dt=1.0, substeps=16)
        n0 = np.linalg.norm(x[:4])
        n1 = np.linalg.norm(out[:4])
        assert n1 == pytest.approx(n0, abs=1e-6)

    def test_manipulator_gravity_pulls_down(self):
        b = build_benchmark("Manipulator")
        p = b.transcribe(horizon=2)
        # Horizontal arm (q = 0), zero torque: gravity accelerates joints
        # downward (negative velocities appear).
        x = np.zeros(4)
        out = integrate_plant(p, x, np.zeros(2), dt=0.02)
        assert out[2] < 0.0

    def test_vehicle_coasts_straight(self):
        b = build_benchmark("AutoVehicle")
        p = b.transcribe(horizon=2)
        x = np.array([0.0, 0.0, 0.0, 15.0, 0.0, 0.0])
        out = integrate_plant(p, x, np.zeros(2), dt=0.1)
        assert out[0] > 1.0  # moved forward
        assert abs(out[1]) < 1e-6  # no lateral drift
        assert out[3] < 15.0  # drag slows it


class TestSolverIntegration:
    """One quick solve per robot (small horizon to bound runtime)."""

    @pytest.mark.parametrize(
        "name", ["MobileRobot", "Manipulator", "Hexacopter"]
    )
    def test_cold_solve_converges(self, name):
        b = build_benchmark(name)
        p = b.transcribe(horizon=8)
        solver = b.make_solver(p)
        res = solver.solve(b.x0, ref=b.ref)
        assert res.converged, f"{name} kkt={res.kkt_residual:.2e}"

    def test_quadrotor_cold_solve_reaches_engineering_tolerance(self):
        b = build_benchmark("Quadrotor")
        p = b.transcribe(horizon=8)
        solver = b.make_solver(p, max_iterations=60)
        res = solver.solve(b.x0, ref=b.ref)
        assert res.kkt_residual < 5e-3

    def test_microsat_closed_loop_settles(self):
        # The satellite's cold start is its hardest phase; what matters is
        # that the receding-horizon loop detumbles and converges (warm
        # solves settle to a couple of iterations per step).
        b = build_benchmark("MicroSat")
        p = b.transcribe(horizon=8)
        ctrl = b.make_controller(p, max_iterations=30)
        x = b.x0.copy()
        its = []
        for _ in range(10):
            u = ctrl.step(x, ref=b.ref)
            its.append(ctrl.last_result.iterations)
            x = integrate_plant(p, x, u)
        # attitude error shrinks and rates are damped
        assert abs(x[0] - 1.0) < abs(b.x0[0] - 1.0)
        assert np.abs(x[4:7]).max() < np.abs(b.x0[4:7]).max()
        # warm-started solves get cheap
        assert min(its[3:]) <= 6

    def test_quadrotor_closed_loop_moves_to_waypoint(self):
        b = build_benchmark("Quadrotor")
        p = b.transcribe(horizon=8)
        ctrl = b.make_controller(p, max_iterations=25)
        x = b.x0.copy()
        d0 = np.linalg.norm(x[:3] - b.ref)
        for _ in range(8):
            u = ctrl.step(x, ref=b.ref)
            x = integrate_plant(p, x, u)
        assert np.linalg.norm(x[:3] - b.ref) < d0
