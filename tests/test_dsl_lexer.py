"""Tests for the RoboX DSL lexer."""

import pytest

from repro.dsl import tokenize
from repro.dsl.tokens import TokenType
from repro.errors import LexerError


def types(src):
    return [t.type for t in tokenize(src)][:-1]  # strip EOF


def values(src):
    return [t.value for t in tokenize(src)][:-1]


class TestBasics:
    def test_empty_source(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].type == TokenType.EOF

    def test_identifier(self):
        assert types("vel_bound") == [TokenType.IDENT]

    def test_keyword_is_ident_token(self):
        # Keywords are distinguished by the parser, not the lexer.
        assert types("state") == [TokenType.IDENT]

    def test_number_integer(self):
        toks = tokenize("42")
        assert toks[0].type == TokenType.NUMBER
        assert toks[0].value == "42"

    def test_number_decimal(self):
        assert values("3.14") == ["3.14"]

    def test_number_scientific(self):
        assert values("1e-3 2.5E+4") == ["1e-3", "2.5E+4"]

    def test_punctuation(self):
        assert types("( ) { } [ ] , ; : .") == [
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.LBRACE,
            TokenType.RBRACE,
            TokenType.LBRACKET,
            TokenType.RBRACKET,
            TokenType.COMMA,
            TokenType.SEMICOLON,
            TokenType.COLON,
            TokenType.DOT,
        ]

    def test_operators(self):
        assert types("+ - * / ^ = <=") == [
            TokenType.PLUS,
            TokenType.MINUS,
            TokenType.STAR,
            TokenType.SLASH,
            TokenType.CARET,
            TokenType.ASSIGN,
            TokenType.IMPERATIVE,
        ]

    def test_field_access_after_index(self):
        # `pos[0].dt` must lex the dot separately from the number.
        assert types("pos[0].dt") == [
            TokenType.IDENT,
            TokenType.LBRACKET,
            TokenType.NUMBER,
            TokenType.RBRACKET,
            TokenType.DOT,
            TokenType.IDENT,
        ]

    def test_unexpected_character(self):
        with pytest.raises(LexerError, match="unexpected character"):
            tokenize("state @x;")


class TestComments:
    def test_line_comment(self):
        assert values("vel // speed limit\nang") == ["vel", "ang"]

    def test_block_comment(self):
        assert values("a /* b c */ d") == ["a", "d"]

    def test_multiline_block_comment(self):
        assert values("a /* x\ny\nz */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexerError, match="unterminated"):
            tokenize("a /* oops")


class TestPositions:
    def test_line_tracking(self):
        toks = tokenize("a\nb\n  c")
        assert toks[0].line == 1
        assert toks[1].line == 2
        assert toks[2].line == 3
        assert toks[2].column == 3

    def test_column_tracking(self):
        toks = tokenize("ab cd")
        assert toks[0].column == 1
        assert toks[1].column == 4


class TestPaperSnippet:
    def test_system_header(self):
        src = "System MobileRobot( param vel_bound ) {"
        vals = values(src)
        assert vals == ["System", "MobileRobot", "(", "param", "vel_bound", ")", "{"]

    def test_symbolic_assignment(self):
        vals = values("pos[0].dt = vel * cos(angle);")
        assert "=" in vals and "cos" in vals

    def test_imperative_assignment(self):
        vals = values("vel.lower_bound <= -vel_bound;")
        assert "<=" in vals
