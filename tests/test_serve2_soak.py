"""Slow-lane serve2 soak: fleet-scale session churn and sharded chaos.

The fast serve2 suites prove the mechanisms (padding equivalence, EDF
order, shard handoff) on small fleets; this lane proves they *survive
scale*: ten thousand sessions churned through one engine in admission
waves must leave the fleet healthy — the p99 consecutive-deadline-miss
streak stays below the degrade threshold, no session crashes, and no
state leaks between waves — and the batch-efficiency edge over v1 must
hold on a bigger seeded load than the bench uses.  Session count scales
with ``REPRO_SOAK_SESSIONS`` (default 10000).

Run with ``PYTHONPATH=src python -m pytest tests/test_serve2_soak.py -m slow``.
"""

import os

import numpy as np
import pytest

from repro.faults import CampaignConfig, FaultSchedule, FaultSpec, run_campaign
from repro.mpc import MPCController
from repro.serve import (
    ACTIVE,
    DEGRADED,
    ControlSession,
    LoadConfig,
    SessionConfig,
    run_load,
)
from repro.serve2 import AsyncServeEngine, Serve2Config
from tests.test_serve_session import ScriptedSolver, cart  # noqa: F401

pytestmark = pytest.mark.slow

#: total sessions churned through the soak engine (env-overridable so the
#: full 10k run stays a CI/slow-lane decision, not a local-dev tax)
SOAK_SESSIONS = int(os.environ.get("REPRO_SOAK_SESSIONS", "10000"))
WAVE = 500
TICKS_PER_WAVE = 4
DEGRADE_AFTER = 3
#: per-step deadline-miss probability fed to the scripted fleet; at 8% the
#: expected p99 max-streak over 4 steps is 2, comfortably under the ladder
MISS_P = 0.08

X = np.zeros(2)


def _script(rng) -> list:
    return [
        "deadline" if rng.random() < MISS_P else "ok"
        for _ in range(TICKS_PER_WAVE)
    ]


def test_soak_churn_p99_miss_streak_below_degrade(cart):
    """10k sessions in admission waves: p99 miss streak < degrade_after."""
    rng = np.random.default_rng([int(os.environ.get("REPRO_BENCH_SEED", "0")), 0x50A1])
    engine = AsyncServeEngine(
        Serve2Config(max_sessions=WAVE, shards=4, rungs=(8,))
    )
    waves = max(1, SOAK_SESSIONS // WAVE)
    streaks: list = []
    served = 0
    try:
        for wave in range(waves):
            sids = []
            for i in range(WAVE):
                session = ControlSession(
                    f"w{wave}-s{i}",
                    SessionConfig(
                        robot="Cart",
                        deadline_s=0.05,
                        degrade_after=DEGRADE_AFTER,
                    ),
                    MPCController(ScriptedSolver(cart, _script(rng))),
                )
                sids.append(engine.add_session(session))
            # Admission lazily evicts the previous wave's closed sessions,
            # so the table (and shard-affinity map) stays wave-sized
            # forever instead of accreting all 10k.
            assert len(engine.sessions) == WAVE
            assert len(engine._affinity) == WAVE
            streak = {sid: 0 for sid in sids}
            peak = {sid: 0 for sid in sids}
            for _ in range(TICKS_PER_WAVE):
                report = engine.tick({sid: (X, None) for sid in sids})
                assert report.stepped == len(sids)
                for sid, out in report.outcomes.items():
                    if out.reason == "deadline":
                        streak[sid] += 1
                        peak[sid] = max(peak[sid], streak[sid])
                    else:
                        streak[sid] = 0
            assert not engine.crashed_sessions()
            # A tail session that strings degrade_after misses together is
            # *supposed* to degrade — the fleet-health gate is the p99
            # streak below, not zero degradations.  Crashes are never ok.
            assert all(
                state in (ACTIVE, DEGRADED)
                for state in engine.session_states().values()
            )
            streaks.extend(peak.values())
            served += len(sids)
            for sid in sids:
                engine.close_session(sid)
    finally:
        engine.shutdown()

    assert served == waves * WAVE
    p99 = float(np.percentile(streaks, 99))
    assert p99 < DEGRADE_AFTER, (
        f"p99 deadline-miss streak {p99} breached degrade_after="
        f"{DEGRADE_AFTER} over {served} sessions"
    )
    # the engine actually saw the whole churn
    assert engine.metrics.fleet.steps == served * TICKS_PER_WAVE


def test_soak_batch_efficiency_v2_strictly_above_v1():
    """Mixed-robot ragged loadgen soak, identical seeded load on both
    engines: v2 must batch strictly wider, and the fleet must stay
    un-degraded (every miss streak below the ladder)."""
    seed = int(os.environ.get("REPRO_BENCH_SEED", "0"))
    common = dict(
        sessions=16,
        ticks=10,
        robots=("CartPole", "MobileRobot"),
        horizons=(5, 6, 7, 8),
        deadline_s=1.0,
        seed=seed,
        arrival_jitter=0.1,
    )
    v1 = run_load(LoadConfig(engine="v1", backend="batched", **common))
    v2 = run_load(LoadConfig(engine="v2", rungs=(8,), max_batch=16, **common))
    assert not v1.crashed and not v2.crashed
    # jitter is drawn from the same seeded stream: identical arrivals
    assert v1.metrics.fleet.steps == v2.metrics.fleet.steps
    assert v2.metrics.mean_batch > v1.metrics.mean_batch
    assert v2.metrics.padded_lanes > 0
    # no session strung degrade_after misses together under the deadline
    assert v2.metrics.fleet.degraded_transitions == 0


def test_soak_sharded_chaos_process_backend():
    """Shard chaos with *real* worker processes: a shard is shot twice
    mid-campaign and every session must ride the handoff to a survivor,
    with the fleet fully active once the schedule clears."""
    schedule = FaultSchedule(
        specs=(
            FaultSpec("shard_crash", start=6, stop=8, sessions=(0,)),
            FaultSpec("slow_worker", start=3, stop=7, magnitude=0.001),
            FaultSpec("worker_crash", start=10, stop=12, sessions=(1,)),
        ),
        seed=0,
        name="shard-soak",
    )
    rep = run_campaign(
        CampaignConfig(
            robot="CartPole",
            schedule=schedule,
            sessions=6,
            ticks=30,
            deadline_s=1.0,
            engine="v2",
            shards=2,
            shard_backend="process",
            seed=0,
        )
    )
    assert rep.uncaught is None
    assert rep.ok, rep.violations
    assert rep.fired["shard_crash"] > 0
    assert rep.invariants["shard_handoff"]
    assert rep.metrics.shard_handoffs > 0
    assert rep.metrics.shard_respawns >= 1
    assert all(state == ACTIVE for state in rep.session_states.values())
