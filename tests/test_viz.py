"""Tests for the ASCII visualization helpers."""

import pytest

from repro.viz import ascii_bars, ascii_plot, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_length_preserved(self):
        assert len(sparkline(range(37))) == 37


class TestAsciiPlot:
    def test_empty(self):
        assert ascii_plot({}, title="t") == "t"

    def test_contains_title_and_legend(self):
        out = ascii_plot({"kkt": [10, 1, 0.1]}, title="convergence")
        assert out.splitlines()[0] == "convergence"
        assert "* kkt" in out

    def test_multi_series_distinct_marks(self):
        out = ascii_plot({"a": [1, 2], "b": [2, 1]})
        assert "* a" in out and "+ b" in out
        assert "*" in out and "+" in out

    def test_axis_labels(self):
        out = ascii_plot({"s": [0.0, 4.0]})
        assert "4" in out and "0" in out

    def test_logy_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_plot({"s": [1.0, 0.0]}, logy=True)

    def test_logy_renders(self):
        out = ascii_plot({"s": [1e-6, 1e0]}, logy=True)
        assert "(log10)" in out

    def test_plot_width_respected(self):
        out = ascii_plot({"s": [1, 2, 3]}, width=30, height=5)
        body = [l for l in out.splitlines() if "│" in l or "┤" in l]
        assert all(len(l) <= 12 + 30 + 2 for l in body)


class TestAsciiBars:
    def test_empty(self):
        assert ascii_bars({}, title="t") == "t"

    def test_relative_lengths(self):
        out = ascii_bars({"small": 1.0, "big": 10.0}, width=20)
        lines = {l.split("│")[0].strip(): l for l in out.splitlines()}
        assert lines["big"].count("█") > lines["small"].count("█")

    def test_values_printed(self):
        out = ascii_bars({"x": 29.4}, unit="x")
        assert "29.4x" in out
