"""Tests for numeric compilation of expression DAGs."""

import math

import numpy as np
import pytest

from repro.errors import SymbolicError
from repro.symbolic import (
    Const,
    Var,
    compile_function,
    cos,
    diff,
    exp,
    sin,
    sqrt,
)

X = Var("x")
Y = Var("y")


class TestCompileBasics:
    def test_single_output(self):
        f = compile_function([X * X + 1], [X])
        assert f([3.0]) == pytest.approx([10.0])

    def test_multiple_outputs_order(self):
        f = compile_function([X + Y, X - Y, X * Y], [X, Y])
        out = f([5.0, 2.0])
        assert out.tolist() == [7.0, 3.0, 10.0]

    def test_constant_only_output(self):
        f = compile_function([Const(4.0)], [X])
        assert f([0.0]) == pytest.approx([4.0])

    def test_unused_variable_accepted(self):
        f = compile_function([X + 1], [X, Y])
        assert f([1.0, 99.0]) == pytest.approx([2.0])

    def test_unknown_variable_rejected(self):
        with pytest.raises(SymbolicError, match="signature"):
            compile_function([Var("zz") + 1], [X])

    def test_duplicate_signature_rejected(self):
        with pytest.raises(SymbolicError, match="duplicate"):
            compile_function([X], [X, Var("x")])

    def test_wrong_input_length_rejected(self):
        f = compile_function([X + Y], [X, Y])
        with pytest.raises(SymbolicError):
            f([1.0])

    def test_call_dict(self):
        f = compile_function([X - Y], [X, Y])
        assert f.call_dict({"x": 3.0, "y": 1.0}) == pytest.approx([2.0])

    def test_call_dict_missing_binding(self):
        f = compile_function([X], [X])
        with pytest.raises(SymbolicError, match="missing binding"):
            f.call_dict({})

    def test_nonlinear_functions(self):
        f = compile_function([sin(X), cos(X), exp(X), sqrt(X)], [X])
        out = f([0.25])
        assert out == pytest.approx(
            [math.sin(0.25), math.cos(0.25), math.exp(0.25), math.sqrt(0.25)]
        )


class TestSharedSubexpressions:
    def test_shared_node_computed_once(self):
        shared = sin(X)
        f = compile_function([shared + shared, shared * shared], [X])
        # op_counts collapse the DAG: one sin, one add, one mul
        assert f.op_counts == {"sin": 1, "add": 1, "mul": 1}
        s = math.sin(1.2)
        assert f([1.2]) == pytest.approx([2 * s, s * s])

    def test_total_ops(self):
        f = compile_function([X * Y + X], [X, Y])
        assert f.total_ops == 2

    def test_source_is_inspectable(self):
        f = compile_function([X + 1], [X], name="myfunc")
        assert "def myfunc" in f.source


class TestAgainstInterpreter:
    @pytest.mark.parametrize("x0,y0", [(0.5, 1.5), (-1.0, 2.0), (3.0, -0.25)])
    def test_matches_evaluate(self, x0, y0):
        e = sin(X * Y) + exp(X - Y) / (Y * Y + 1) + X**3
        f = compile_function([e], [X, Y])
        assert f([x0, y0])[0] == pytest.approx(e.evaluate({"x": x0, "y": y0}))

    def test_gradient_compilation(self):
        e = sin(X) * Y + X * X
        g = [diff(e, X), diff(e, Y)]
        f = compile_function(g, [X, Y])
        x0, y0 = 0.7, 1.3
        assert f([x0, y0]) == pytest.approx(
            [math.cos(x0) * y0 + 2 * x0, math.sin(x0)]
        )
