"""Tests for move-blocking MPC (the §IX ref. [77] approximation technique)."""

import numpy as np
import pytest

from repro.errors import TranscriptionError
from repro.mpc import InteriorPointSolver, TranscribedProblem
from repro.robots import build_benchmark


@pytest.fixture(scope="module")
def bench():
    return build_benchmark("MobileRobot")


def make(bench, B, N=16):
    return TranscribedProblem(
        bench.model, bench.task, horizon=N, dt=bench.dt, move_block=B
    )


class TestLayout:
    def test_knot_count(self, bench):
        assert make(bench, 1).n_input_knots == 16
        assert make(bench, 2).n_input_knots == 8
        assert make(bench, 3).n_input_knots == 6  # ceil(16 / 3)

    def test_nz_shrinks(self, bench):
        full = make(bench, 1)
        blocked = make(bench, 4)
        assert blocked.nz == full.nz - 12 * bench.model.n_inputs

    def test_invalid_factor(self, bench):
        with pytest.raises(TranscriptionError):
            make(bench, 0)

    def test_input_slice_shared_within_block(self, bench):
        p = make(bench, 4)
        assert p.input_slice(0) == p.input_slice(3)
        assert p.input_slice(4) != p.input_slice(3)

    def test_split_expands_blocks(self, bench):
        p = make(bench, 4)
        z = np.arange(p.nz, dtype=float)
        xs, us = p.split(z)
        assert us.shape == (16, 2)
        assert np.array_equal(us[0], us[3])
        assert not np.array_equal(us[3], us[4])

    def test_join_split_roundtrip(self, bench):
        p = make(bench, 2)
        rng = np.random.default_rng(0)
        z = rng.normal(size=p.nz)
        xs, us = p.split(z)
        assert np.allclose(p.join(xs, us), z)

    def test_variable_scales_length(self, bench):
        p = make(bench, 4)
        assert p.variable_scales().shape == (p.nz,)


class TestDerivativesStayConsistent:
    def test_gradient_matches_fd_with_blocking(self, bench):
        p = make(bench, 4, N=8)
        rng = np.random.default_rng(1)
        z = rng.normal(scale=0.3, size=p.nz)
        grad = p.objective_gradient(z, bench.ref)
        eps = 1e-6
        for i in range(0, p.nz, 3):
            zp, zm = z.copy(), z.copy()
            zp[i] += eps
            zm[i] -= eps
            fd = (p.objective(zp, bench.ref) - p.objective(zm, bench.ref)) / (
                2 * eps
            )
            assert grad[i] == pytest.approx(fd, abs=1e-5)

    def test_equality_jacobian_matches_fd_with_blocking(self, bench):
        p = make(bench, 2, N=6)
        rng = np.random.default_rng(2)
        z = rng.normal(scale=0.3, size=p.nz)
        x0 = np.zeros(3)
        G = p.equality_jacobian(z, bench.ref)
        eps = 1e-6
        for i in range(p.nz):
            zp, zm = z.copy(), z.copy()
            zp[i] += eps
            zm[i] -= eps
            col = (
                p.equality_constraints(zp, x0, bench.ref)
                - p.equality_constraints(zm, x0, bench.ref)
            ) / (2 * eps)
            assert np.allclose(G[:, i], col, atol=1e-5)


class TestSolutionQuality:
    def test_solves_and_inputs_blocked(self, bench):
        p = make(bench, 4)
        res = InteriorPointSolver(p).solve(bench.x0, ref=bench.ref)
        assert res.converged
        _, us = p.split(res.z)
        for blk in range(4):
            base = us[4 * blk]
            for j in range(1, 4):
                assert np.allclose(us[4 * blk + j], base)

    def test_accuracy_degrades_gracefully(self, bench):
        """Blocking trades optimality for size: the objective worsens
        monotonically but only slightly (the paper's 'cost of control
        accuracy' framing)."""
        objectives = {}
        for B in (1, 2, 4):
            p = make(bench, B)
            res = InteriorPointSolver(p).solve(bench.x0, ref=bench.ref)
            assert res.converged
            objectives[B] = res.objective
        assert objectives[1] <= objectives[2] <= objectives[4]
        assert objectives[4] < objectives[1] * 1.05  # within 5%

    def test_blocked_problem_compiles_smaller_solver(self, bench):
        from repro.compiler import compile_problem

        full = compile_problem(make(bench, 1))[2]
        blocked = compile_problem(make(bench, 4))[2]
        assert blocked.cycles_per_iteration < full.cycles_per_iteration
