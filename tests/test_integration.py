"""End-to-end integration tests across the full toolchain.

These exercise the complete paper pipeline in one pass per scenario:
DSL / builder API -> transcription -> SQP+IPM solve -> Program Translator ->
Algorithm-1 mapping -> static schedule -> fixed-point simulation, with
cross-layer consistency checks at each hand-off.
"""

import numpy as np
import pytest

from repro.accelerator import AcceleratorSimulator, assemble
from repro.accelerator.memory import MemoryAccessEngine
from repro.compiler import MachineConfig, compile_problem, map_mdfg, translate
from repro.compiler.microcode import build_microcode
from repro.dsl import compile_program
from repro.mpc import InteriorPointSolver, MPCController, TranscribedProblem
from repro.mpc.controller import integrate_plant
from repro.robots import build_benchmark

# end-to-end solve + compile + simulate pipelines — keep out of the fast lane (-m 'not slow').
pytestmark = pytest.mark.slow

PENDULUM_DSL = """
// Torque-limited pendulum swing-up-ish stabilization, written in the DSL.
System Pendulum( param torque_max ) {
  state theta, omega;
  input torque;
  theta.dt = omega;
  omega.dt = 4.9 * sin(theta) + 2.0 * torque;
  torque.lower_bound <= -torque_max;
  torque.upper_bound <= torque_max;

  Task stabilize( param w_angle, param w_rate ) {
    penalty angle_err, rate_err, effort;
    angle_err.running = theta;
    rate_err.running = omega;
    effort.running = torque;
    angle_err.weight <= w_angle;
    rate_err.weight <= w_rate;
    effort.weight <= 0.05;
  }
}
Pendulum pend(3.0);
pend.stabilize(10.0, 1.0);
"""


class TestDSLPendulumPipeline:
    @pytest.fixture(scope="class")
    def problem(self):
        result = compile_program(PENDULUM_DSL)
        return TranscribedProblem(result.model, result.task, horizon=12, dt=0.05)

    def test_dsl_model_solves_and_stabilizes(self, problem):
        controller = MPCController(InteriorPointSolver(problem))
        x = np.array([0.6, 0.0])  # 34 degrees off upright
        for _ in range(25):
            u = controller.step(x)
            x = integrate_plant(problem, x, u)
        assert abs(x[0]) < 0.05
        assert abs(x[1]) < 0.15

    def test_dsl_model_compiles_to_schedule(self, problem):
        graph, pm, sched = compile_problem(
            problem, MachineConfig(n_cus=16, cus_per_cc=4)
        )
        assert sched.cycles_per_iteration > 0
        assert pm.utilization() > 0
        # Microcode expands without error and stays in lockstep.
        mc = build_microcode(pm)
        assert len(mc.waves) == len(pm.aggregation)

    def test_dsl_dynamics_on_simulated_silicon(self, problem):
        graph = translate(problem)
        pm = map_mdfg(graph, 8, 4)
        program = assemble(graph, pm, "dynamics")
        inputs = {"theta": 0.4, "omega": -0.3, "torque": 1.0}
        sim = AcceleratorSimulator()
        res = sim.run(program, inputs)
        # Compare against the compiled double-precision dynamics.
        exact = problem._F(np.array([0.4, -0.3, 1.0]))
        outs = [
            res.outputs[k]
            for k in sorted(res.outputs, key=lambda s: int(s[4:]))
        ]
        assert np.allclose(outs, exact, atol=5e-4)


class TestBenchmarkPipelines:
    @pytest.mark.parametrize("name", ["MobileRobot", "Quadrotor"])
    def test_solve_then_compile_then_simulate(self, name):
        bench = build_benchmark(name)
        problem = bench.transcribe(horizon=6)

        # 1. the solver produces a dynamically consistent trajectory
        solver = bench.make_solver(problem, max_iterations=40)
        res = solver.solve(bench.x0, ref=bench.ref)
        defects = problem.equality_constraints(res.z, bench.x0, bench.ref)
        assert np.abs(defects).max() < 1e-3

        # 2. the compiler schedules the same problem
        graph, pm, sched = compile_problem(problem)
        assert sched.cycles_per_iteration > 0

        # 3. the memory engine executes the compiled memory stream
        engine = MemoryAccessEngine()
        engine.queue_stores([0] * 64)
        run = engine.run(sched.memory_stream)
        assert run.ended and run.loads >= 1

        # 4. the accelerator evaluates the dynamics at the solved state
        xs, us = problem.split(res.z)
        stage = np.concatenate([xs[0], us[0]])
        inputs = dict(zip(problem._F.variables, stage.tolist()))
        sim_res, _ = (
            __import__("repro.accelerator", fromlist=["simulate_phase"])
            .simulate_phase(problem, "dynamics", inputs)
        )
        exact = problem._F(stage)
        outs = [
            sim_res.outputs[k]
            for k in sorted(sim_res.outputs, key=lambda s: int(s[4:]))
        ]
        assert np.allclose(outs, exact, atol=5e-3)


class TestCrossLayerConsistency:
    def test_mdfg_flops_match_cost_model_inputs(self):
        """The baseline cost model and the scheduler consume the same graph."""
        from repro.baselines import ARM_A57, estimate_iteration_time

        p = build_benchmark("Manipulator").transcribe(horizon=8)
        g = translate(p)
        cost = estimate_iteration_time(g, ARM_A57)
        raw_ops = sum(g.total_op_counts().values())
        # Weighted flops >= raw op count (nonlinears weigh more).
        assert cost.flops >= raw_ops

    def test_schedule_streams_round_trip_isa(self):
        from repro.compiler import decode

        p = build_benchmark("MicroSat").transcribe(horizon=4)
        _, _, sched = compile_problem(p, MachineConfig(n_cus=16, cus_per_cc=4))
        for word in sched.compute_stream:
            assert 0 <= word < 2**32
            decode(word, "compute")
        for word in sched.comm_stream:
            decode(word, "comm")
