"""Tests for the convex-QP interior-point solver, cross-checked against the
independent dense reference implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.baselines import reference_qp_objective, reference_solve_qp
from repro.mpc.qp import QPOptions, solve_qp


def spd(n, seed, scale=1.0):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(n, n))
    return scale * (A @ A.T + n * np.eye(n))


class TestUnconstrained:
    def test_quadratic_minimum(self):
        H = np.diag([2.0, 4.0])
        g = np.array([-2.0, -4.0])
        res = solve_qp(H, g, None, None, None, None)
        assert res.converged
        assert np.allclose(res.x, [1.0, 1.0], atol=1e-6)

    def test_shape_mismatch_raises(self):
        with pytest.raises(SolverError):
            solve_qp(np.eye(3), np.zeros(2), None, None, None, None)


class TestEqualityConstrained:
    def test_projection(self):
        H = 2 * np.eye(2)
        g = np.zeros(2)
        G = np.array([[1.0, 1.0]])
        b = np.array([1.0])
        res = solve_qp(H, g, G, b, None, None)
        assert res.converged
        assert np.allclose(res.x, [0.5, 0.5], atol=1e-8)

    def test_multiplier_stationarity(self):
        n = 6
        H = spd(n, 3)
        g = np.linspace(-1, 1, n)
        G = np.vstack([np.ones(n), np.arange(n, dtype=float)])
        b = np.array([1.0, 2.0])
        res = solve_qp(H, g, G, b, None, None)
        assert res.converged
        # Stationarity: H x + g + G^T nu = 0
        assert np.allclose(H @ res.x + g + G.T @ res.nu, 0.0, atol=1e-6)
        assert np.allclose(G @ res.x, b, atol=1e-8)

    def test_bad_rhs_shape(self):
        with pytest.raises(SolverError):
            solve_qp(np.eye(2), np.zeros(2), np.ones((1, 2)), np.ones(2), None, None)


class TestInequalityConstrained:
    def test_active_bound(self):
        # min (x-2)^2 s.t. x <= 1 -> x = 1, lam = 2
        H = np.array([[2.0]])
        g = np.array([-4.0])
        J = np.array([[1.0]])
        d = np.array([1.0])
        res = solve_qp(H, g, None, None, J, d)
        assert res.converged
        assert res.x[0] == pytest.approx(1.0, abs=1e-6)
        assert res.lam[0] == pytest.approx(2.0, abs=1e-4)

    def test_inactive_bound_zero_multiplier(self):
        H = np.array([[2.0]])
        g = np.array([-4.0])  # minimum at 2
        J = np.array([[1.0]])
        d = np.array([10.0])  # never active
        res = solve_qp(H, g, None, None, J, d)
        assert res.converged
        assert res.x[0] == pytest.approx(2.0, abs=1e-6)
        assert res.lam[0] == pytest.approx(0.0, abs=1e-5)

    def test_box_constrained_matches_reference(self):
        n = 5
        H = spd(n, 11)
        rng = np.random.default_rng(4)
        g = rng.normal(size=n)
        J = np.vstack([np.eye(n), -np.eye(n)])
        d = np.full(2 * n, 0.3)
        res = solve_qp(H, g, None, None, J, d)
        x_ref, _, _ = reference_solve_qp(H, g, None, None, J, d)
        assert res.converged
        assert np.allclose(res.x, x_ref, atol=1e-5)

    def test_slacks_positive(self):
        H = np.eye(3)
        g = -np.ones(3)
        J = np.eye(3)
        d = np.full(3, 0.5)
        res = solve_qp(H, g, None, None, J, d)
        assert np.all(res.slacks >= 0)
        assert np.all(res.lam >= 0)


class TestFullyConstrained:
    def test_matches_reference(self):
        n = 8
        H = spd(n, 21)
        rng = np.random.default_rng(5)
        g = rng.normal(size=n)
        G = rng.normal(size=(2, n))
        b = rng.normal(size=2)
        J = np.vstack([np.eye(n), -np.eye(n)])
        d = np.full(2 * n, 2.0)
        res = solve_qp(H, g, G, b, J, d)
        x_ref, _, _ = reference_solve_qp(H, g, G, b, J, d)
        assert res.converged
        assert np.allclose(res.x, x_ref, atol=1e-5)
        assert reference_qp_objective(H, g, res.x) <= (
            reference_qp_objective(H, g, x_ref) + 1e-6
        )

    def test_equality_feasibility(self):
        n = 6
        H = spd(n, 31)
        g = np.zeros(n)
        G = np.array([[1.0] * n])
        b = np.array([3.0])
        J = np.eye(n)
        d = np.ones(n)
        res = solve_qp(H, g, G, b, J, d)
        assert res.converged
        assert float((G @ res.x)[0]) == pytest.approx(3.0, abs=1e-7)
        assert np.all(res.x <= 1.0 + 1e-6)


class TestOptions:
    def test_invalid_tau(self):
        with pytest.raises(SolverError):
            QPOptions(tau=1.5)

    def test_invalid_max_iterations(self):
        with pytest.raises(SolverError):
            QPOptions(max_iterations=0)

    def test_iteration_cap_respected(self):
        H = spd(20, 7)
        g = np.ones(20)
        J = np.vstack([np.eye(20), -np.eye(20)])
        d = np.full(40, 0.1)
        res = solve_qp(H, g, None, None, J, d, QPOptions(max_iterations=2))
        assert res.iterations <= 2


@given(
    n=st.integers(2, 8),
    seed=st.integers(0, 500),
    box=st.floats(0.2, 3.0),
)
@settings(max_examples=40, deadline=None)
def test_property_box_qp_agrees_with_reference(n, seed, box):
    H = spd(n, seed)
    rng = np.random.default_rng(seed + 1)
    g = rng.normal(size=n)
    J = np.vstack([np.eye(n), -np.eye(n)])
    d = np.full(2 * n, box)
    res = solve_qp(H, g, None, None, J, d)
    x_ref, _, _ = reference_solve_qp(H, g, None, None, J, d)
    assert res.converged
    assert np.allclose(res.x, x_ref, atol=1e-4)
    # The solution respects the box.
    assert np.all(np.abs(res.x) <= box + 1e-6)
