"""Tests for symbolic automatic differentiation, including numeric checks
against central finite differences (the property the KKT system depends on).
"""

import math

import pytest

from repro.errors import DifferentiationError
from repro.symbolic import (
    Const,
    Var,
    acos,
    asin,
    atan,
    cos,
    diff,
    exp,
    gradient,
    hessian,
    jacobian,
    log,
    sin,
    sqrt,
    tan,
    tanh,
)

X = Var("x")
Y = Var("y")


def fd(expr, env, name, eps=1e-6):
    """Central finite difference of expr w.r.t. env[name]."""
    hi = dict(env)
    lo = dict(env)
    hi[name] += eps
    lo[name] -= eps
    return (expr.evaluate(hi) - expr.evaluate(lo)) / (2 * eps)


class TestBasicRules:
    def test_constant_derivative_zero(self):
        assert diff(Const(5.0), X) == Const(0.0)

    def test_var_self_derivative_one(self):
        assert diff(X, X) == Const(1.0)

    def test_var_other_derivative_zero(self):
        assert diff(Y, X) == Const(0.0)

    def test_sum_rule(self):
        assert diff(X + Y, X) == Const(1.0)

    def test_product_rule(self):
        d = diff(X * Y, X)
        assert d == Y

    def test_power_constant_exponent(self):
        d = diff(X**3, X)
        assert d.evaluate({"x": 2.0}) == pytest.approx(12.0)

    def test_quotient_rule(self):
        d = diff(X / Y, Y)
        assert d.evaluate({"x": 2.0, "y": 4.0}) == pytest.approx(-2.0 / 16.0)

    def test_chain_rule(self):
        d = diff(sin(X * X), X)
        x = 0.8
        assert d.evaluate({"x": x}) == pytest.approx(2 * x * math.cos(x * x))

    def test_neg(self):
        assert diff(-X, X) == Const(-1.0)


@pytest.mark.parametrize(
    "builder, x0",
    [
        (lambda v: sin(v), 0.5),
        (lambda v: cos(v), 0.5),
        (lambda v: tan(v), 0.4),
        (lambda v: asin(v), 0.3),
        (lambda v: acos(v), 0.3),
        (lambda v: atan(v), 1.2),
        (lambda v: exp(v), 0.7),
        (lambda v: log(v), 1.5),
        (lambda v: sqrt(v), 2.0),
        (lambda v: tanh(v), 0.9),
        (lambda v: v**2.5, 1.7),
        (lambda v: Const(2.0) ** v, 1.1),
        (lambda v: v**v, 1.3),
        (lambda v: sin(v) * exp(v) / (1 + v * v), 0.6),
    ],
)
def test_derivative_matches_finite_difference(builder, x0):
    expr = builder(X)
    d = diff(expr, X)
    assert d.evaluate({"x": x0}) == pytest.approx(
        fd(expr, {"x": x0}, "x"), rel=1e-5
    )


class TestVectorCalculus:
    def test_gradient_length(self):
        g = gradient(X * Y + X, [X, Y])
        assert len(g) == 2
        assert g[0].evaluate({"x": 1.0, "y": 2.0}) == pytest.approx(3.0)
        assert g[1].evaluate({"x": 1.0, "y": 2.0}) == pytest.approx(1.0)

    def test_jacobian_shape_and_values(self):
        J = jacobian([X * Y, X + Y], [X, Y])
        assert len(J) == 2 and len(J[0]) == 2
        env = {"x": 2.0, "y": 3.0}
        assert J[0][0].evaluate(env) == 3.0
        assert J[0][1].evaluate(env) == 2.0
        assert J[1][0].evaluate(env) == 1.0

    def test_hessian_symmetry(self):
        e = sin(X) * Y * Y + X * X * Y
        H = hessian(e, [X, Y])
        env = {"x": 0.4, "y": 1.2}
        assert H[0][1].evaluate(env) == pytest.approx(H[1][0].evaluate(env))

    def test_hessian_matches_fd(self):
        e = exp(X * Y) + X**3
        H = hessian(e, [X, Y])
        env = {"x": 0.3, "y": 0.7}
        eps = 1e-4

        def grad_x(en):
            return diff(e, X).evaluate(en)

        hi = dict(env)
        lo = dict(env)
        hi["y"] += eps
        lo["y"] -= eps
        fd_xy = (grad_x(hi) - grad_x(lo)) / (2 * eps)
        assert H[0][1].evaluate(env) == pytest.approx(fd_xy, rel=1e-4)

    def test_quadratic_hessian_constant(self):
        e = 3 * X * X + 2 * X * Y + Y * Y
        H = hessian(e, [X, Y])
        assert H[0][0] == Const(6.0)
        assert H[0][1] == Const(2.0)
        assert H[1][1] == Const(2.0)


class TestSimplifiedOutput:
    def test_zero_partial_collapses_to_const_zero(self):
        # Sparsity detection in the transcription layer depends on this.
        d = diff(sin(Y) + Y * Y, X)
        assert d == Const(0.0)

    def test_linear_derivative_is_const(self):
        d = diff(3 * X + Y, X)
        assert d == Const(3.0)


class TestErrors:
    def test_nonpositive_base_power(self):
        with pytest.raises(DifferentiationError):
            diff(Const(-2.0) ** X, X)
