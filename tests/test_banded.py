"""Tests for the banded (sparsity-exploiting) linear-algebra kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.mpc import cholesky
from repro.mpc.banded import (
    banded_backward_substitution,
    banded_cholesky,
    banded_forward_substitution,
    banded_solve,
    bandwidth_of,
    from_banded,
    to_banded,
)


def banded_spd(n, band, seed=0):
    """A random SPD matrix with the given half-bandwidth.

    Off-diagonals are bounded in [-1, 1] and the diagonal exceeds the
    worst-case row sum, so strict diagonal dominance guarantees SPD.
    """
    rng = np.random.default_rng(seed)
    A = np.zeros((n, n))
    for d in range(1, band + 1):
        vals = rng.uniform(-1.0, 1.0, size=n - d)
        idx = np.arange(n - d)
        A[idx + d, idx] = vals
        A[idx, idx + d] = vals
    A += (2.0 * band + 2.0) * np.eye(n)
    return A


class TestStorage:
    def test_roundtrip(self):
        A = banded_spd(8, 2)
        assert np.allclose(from_banded(to_banded(A, 2)), A)

    def test_bandwidth_of(self):
        A = banded_spd(10, 3)
        assert bandwidth_of(A) == 3
        assert bandwidth_of(np.eye(5)) == 0

    def test_non_square_rejected(self):
        with pytest.raises(SolverError):
            to_banded(np.zeros((2, 3)), 1)


class TestBandedCholesky:
    @pytest.mark.parametrize("n,band", [(1, 0), (6, 1), (12, 3), (30, 5)])
    def test_matches_dense(self, n, band):
        A = banded_spd(n, band, seed=n + band)
        L_dense = cholesky(A)
        L_band = banded_cholesky(to_banded(A, band))
        # The banded factor, unpacked, must equal the dense factor's band.
        for d in range(band + 1):
            assert np.allclose(
                L_band[d, : n - d], np.diagonal(L_dense, offset=-d), atol=1e-10
            )

    def test_indefinite_rejected(self):
        A = np.diag([1.0, -1.0])
        with pytest.raises(SolverError, match="pivot"):
            banded_cholesky(to_banded(A, 0))

    def test_regularization(self):
        A = np.zeros((4, 4))
        L = banded_cholesky(to_banded(A, 1), reg=1e-4)
        assert np.allclose(L[0], 1e-2)


class TestBandedSolves:
    @pytest.mark.parametrize("n,band", [(5, 1), (20, 4)])
    def test_solve_matches_dense(self, n, band):
        A = banded_spd(n, band, seed=7)
        rng = np.random.default_rng(1)
        b = rng.normal(size=n)
        x = banded_solve(to_banded(A, band), b)
        assert np.allclose(A @ x, b, atol=1e-8)

    def test_matrix_rhs(self):
        A = banded_spd(10, 2, seed=3)
        B = np.eye(10)[:, :3]
        X = banded_solve(to_banded(A, 2), B)
        assert np.allclose(A @ X, B, atol=1e-8)

    def test_forward_backward_consistency(self):
        A = banded_spd(12, 3, seed=5)
        L = banded_cholesky(to_banded(A, 3))
        b = np.arange(12, dtype=float)
        y = banded_forward_substitution(L, b)
        x = banded_backward_substitution(L, y)
        assert np.allclose(A @ x, b, atol=1e-8)


@given(
    n=st.integers(2, 16),
    band=st.integers(0, 4),
    seed=st.integers(0, 1000),
)
@settings(max_examples=50, deadline=None)
def test_property_banded_solve_roundtrip(n, band, seed):
    band = min(band, n - 1)
    A = banded_spd(n, band, seed=seed)
    rng = np.random.default_rng(seed + 1)
    b = rng.normal(size=n)
    x = banded_solve(to_banded(A, band), b)
    assert np.allclose(A @ x, b, atol=1e-6)


class TestMPCStructure:
    def test_kkt_phi_is_banded_in_stage_order(self):
        """The condensed Hessian of a stage-interleaved MPC problem has the
        half-bandwidth the cost model assumes (~2 nx + nu)."""
        from repro.robots import build_benchmark

        b = build_benchmark("MobileRobot")
        p = b.transcribe(horizon=6)
        z = p.initial_guess(b.x0)
        H = p.objective_gauss_newton(z, b.ref)
        # Permute into stage-interleaved order [x0, u0, x1, u1, ...].
        perm = []
        for k in range(p.N):
            perm.extend(range(p.state_slice(k).start, p.state_slice(k).stop))
            perm.extend(range(p.input_slice(k).start, p.input_slice(k).stop))
        perm.extend(range(p.state_slice(p.N).start, p.state_slice(p.N).stop))
        Hp = H[np.ix_(perm, perm)]
        assert bandwidth_of(Hp, tol=1e-12) <= 2 * p.nx + p.nu
