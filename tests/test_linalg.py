"""Tests for the from-scratch Cholesky and substitution kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import SolverError
from repro.mpc import (
    backward_substitution,
    cholesky,
    cholesky_solve,
    forward_substitution,
    solve_symmetric,
)
from repro.mpc.linalg import flop_counts_cholesky, flop_counts_substitution


def random_spd(n, seed):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(n, n))
    return A @ A.T + n * np.eye(n)


class TestCholesky:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 25])
    def test_reconstruction(self, n):
        A = random_spd(n, seed=n)
        L = cholesky(A)
        assert np.allclose(L @ L.T, A, atol=1e-9)

    def test_lower_triangular(self):
        A = random_spd(6, seed=1)
        L = cholesky(A)
        assert np.allclose(L, np.tril(L))

    def test_identity(self):
        assert np.allclose(cholesky(np.eye(4)), np.eye(4))

    def test_rejects_indefinite(self):
        A = np.diag([1.0, -1.0])
        with pytest.raises(SolverError, match="positive definite"):
            cholesky(A)

    def test_rejects_non_square(self):
        with pytest.raises(SolverError, match="square"):
            cholesky(np.zeros((2, 3)))

    def test_regularization_rescues_semidefinite(self):
        A = np.zeros((3, 3))
        L = cholesky(A, reg=1e-6)
        assert np.allclose(L @ L.T, 1e-6 * np.eye(3), atol=1e-12)

    def test_matches_numpy(self):
        A = random_spd(12, seed=7)
        assert np.allclose(cholesky(A), np.linalg.cholesky(A), atol=1e-9)


class TestSubstitution:
    def test_forward(self):
        L = np.array([[2.0, 0.0], [1.0, 3.0]])
        b = np.array([4.0, 11.0])
        y = forward_substitution(L, b)
        assert np.allclose(L @ y, b)

    def test_backward(self):
        U = np.array([[2.0, 1.0], [0.0, 3.0]])
        b = np.array([5.0, 6.0])
        x = backward_substitution(U, b)
        assert np.allclose(U @ x, b)

    def test_matrix_rhs(self):
        L = np.tril(random_spd(5, seed=3))
        B = np.arange(10.0).reshape(5, 2)
        Y = forward_substitution(L, B)
        assert Y.shape == (5, 2)
        assert np.allclose(L @ Y, B)

    def test_zero_diagonal_raises(self):
        L = np.array([[0.0, 0.0], [1.0, 1.0]])
        with pytest.raises(SolverError, match="zero diagonal"):
            forward_substitution(L, np.ones(2))

    def test_backward_zero_diagonal_raises(self):
        U = np.array([[1.0, 1.0], [0.0, 0.0]])
        with pytest.raises(SolverError, match="zero diagonal"):
            backward_substitution(U, np.ones(2))


class TestSolvers:
    @pytest.mark.parametrize("n", [1, 4, 15])
    def test_cholesky_solve(self, n):
        A = random_spd(n, seed=n + 100)
        x_true = np.linspace(-1, 1, n)
        b = A @ x_true
        L = cholesky(A)
        assert np.allclose(cholesky_solve(L, b), x_true, atol=1e-8)

    def test_solve_symmetric(self):
        A = random_spd(9, seed=42)
        b = np.ones(9)
        x = solve_symmetric(A, b)
        assert np.allclose(A @ x, b, atol=1e-8)

    def test_solve_matrix_rhs(self):
        A = random_spd(6, seed=5)
        B = np.eye(6)
        X = solve_symmetric(A, B)
        assert np.allclose(A @ X, B, atol=1e-8)  # X = A^-1


@given(
    n=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_property_solve_roundtrip(n, seed):
    A = random_spd(n, seed)
    rng = np.random.default_rng(seed + 1)
    b = rng.normal(size=n)
    x = solve_symmetric(A, b)
    assert np.allclose(A @ x, b, atol=1e-6)


class TestFlopCounts:
    def test_cholesky_counts_scale_cubically(self):
        c8 = flop_counts_cholesky(8)
        c16 = flop_counts_cholesky(16)
        assert c16["mul"] / c8["mul"] > 6  # ~8x for n^3/3

    def test_cholesky_sqrt_once_per_column(self):
        assert flop_counts_cholesky(10)["sqrt"] == 10

    def test_substitution_counts(self):
        c = flop_counts_substitution(10, nrhs=3)
        assert c["div"] == 30
        assert c["mul"] == 3 * 45

    @pytest.mark.parametrize("n", [1, 2, 5, 8])
    def test_cholesky_counts_match_instrumented_factorization(self, n):
        """The closed-form counts must equal an op-counting factorization."""
        A = random_spd(n, seed=n)
        counts = {"mul": 0, "add": 0, "div": 0, "sqrt": 0}
        L = np.zeros_like(A)
        for j in range(n):
            acc = A[j, j]
            for k in range(j):
                acc -= L[j, k] * L[j, k]
                counts["mul"] += 1
                counts["add"] += 1
            L[j, j] = np.sqrt(acc)
            counts["sqrt"] += 1
            for i in range(j + 1, n):
                acc = A[i, j]
                for k in range(j):
                    acc -= L[i, k] * L[j, k]
                    counts["mul"] += 1
                    counts["add"] += 1
                L[i, j] = acc / L[j, j]
                counts["div"] += 1
        assert np.allclose(L, cholesky(A), atol=1e-12)
        assert counts == flop_counts_cholesky(n)
