"""Tests for the infix expression printer, including the DSL round trip:
parsing a printed expression through the DSL grammar yields the same tree.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl import parse
from repro.dsl.semantics import _Analyzer  # round-trip helper below
from repro.symbolic import Const, Var, cos, simplify, sin, sqrt, to_string


class TestRendering:
    def test_constants(self):
        assert to_string(Const(3.0)) == "3"
        assert to_string(Const(2.5)) == "2.5"
        assert to_string(Const(-4.0)) == "-4"

    def test_variables(self):
        assert to_string(Var("pos[0]")) == "pos[0]"

    def test_precedence_no_redundant_parens(self):
        x, y = Var("x"), Var("y")
        assert to_string(x + y * 2) == "x + y * 2"
        assert to_string((x + y) * 2) == "(x + y) * 2"

    def test_subtraction_right_assoc_parens(self):
        x, y, z = Var("x"), Var("y"), Var("z")
        assert to_string(x - (y - z)) == "x - (y - z)"
        assert to_string((x - y) - z) == "x - y - z"

    def test_division_parens(self):
        x, y, z = Var("x"), Var("y"), Var("z")
        assert to_string(x / (y * z)) == "x / (y * z)"

    def test_power_uses_caret(self):
        x = Var("x")
        assert to_string(x**2) == "x ^ 2"

    def test_nested_power_parens(self):
        x = Var("x")
        assert to_string((x**2) ** 3) == "(x ^ 2) ^ 3"

    def test_negation(self):
        x = Var("x")
        assert to_string(-x) == "-x"
        assert to_string(-(x + 1)) == "-(x + 1)"

    def test_function_calls(self):
        x = Var("x")
        assert to_string(sin(x) * cos(x)) == "sin(x) * cos(x)"
        assert to_string(sqrt(x + 1)) == "sqrt(x + 1)"


def roundtrip(expr_text: str):
    """Parse an expression string via the DSL grammar and lower it."""
    src = f"System S(){{ state x, y, z; input u; x.dt = {expr_text}; y.dt = u; z.dt = u; }} S s();"
    result = _analyze(src)
    return result.models["s"].dynamics["x"]


def _analyze(src):
    from repro.dsl import compile_program

    return compile_program(src)


class TestDSLRoundTrip:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda x, y: x + y * 2,
            lambda x, y: (x - y) / (x + 3),
            lambda x, y: sin(x) * cos(y) + 1,
            lambda x, y: -x + sqrt(y * y + 1),
            lambda x, y: x * y - y * 2 + 0.5,
        ],
    )
    def test_print_parse_same_value(self, builder):
        x, y = Var("x"), Var("y")
        expr = simplify(builder(x, y))
        reparsed = roundtrip(to_string(expr))
        env = {"x": 0.7, "y": -0.4, "z": 0.0, "u": 0.0}
        assert reparsed.evaluate(env) == pytest.approx(expr.evaluate(env), rel=1e-12)


_leaf = st.one_of(
    st.floats(min_value=0.1, max_value=5, allow_nan=False).map(
        lambda v: Const(round(v, 3))
    ),
    st.sampled_from([Var("x"), Var("y")]),
)


def _combine(children):
    a, b = children
    builders = [
        lambda: a + b,
        lambda: a - b,
        lambda: a * b,
        lambda: a / (b + 6),  # keep denominators away from zero
        lambda: sin(a),
        lambda: cos(b),
    ]
    return st.sampled_from(range(len(builders))).map(lambda i: builders[i]())


_expr = st.recursive(_leaf, lambda inner: st.tuples(inner, inner).flatmap(_combine), max_leaves=12)


@given(e=_expr, x=st.floats(0.1, 2.0), y=st.floats(0.1, 2.0))
@settings(max_examples=60, deadline=None)
def test_property_dsl_roundtrip_preserves_value(e, x, y):
    text = to_string(simplify(e))
    reparsed = roundtrip(text)
    env = {"x": x, "y": y, "z": 0.0, "u": 0.0}
    assert reparsed.evaluate(env) == pytest.approx(
        simplify(e).evaluate(env), rel=1e-9, abs=1e-9
    )
