"""Padding equivalence: a horizon-h solve inside a horizon-H bucket must
reproduce the native horizon-h plan (the serve2 correctness cornerstone)."""

import numpy as np
import pytest

from repro.errors import ServeError
from repro.mpc.task import TERMINAL, Constraint, Task
from repro.robots import build_benchmark
from repro.serve2.bucketing import DEFAULT_RUNGS, HorizonBuckets
from repro.serve2.padding import (
    PAD_RUN,
    PAD_TERM,
    PaddedBinding,
    crop_result,
    gate_columns,
    pad_reference,
    pad_warm_start,
    padded_task,
)


def _native_ref(bench):
    return bench.ref if bench.ref.size else None


def _solve_pair(robot, horizon, bucket):
    """(native result, cropped padded result, native problem)."""
    bench = build_benchmark(robot)
    native = bench.transcribe(horizon=horizon)
    binding = PaddedBinding(bench, bucket)
    native_result = bench.make_solver(native).solve(bench.x0, ref=_native_ref(bench))
    ref_pad = pad_reference(_native_ref(bench), native.nref, horizon, bucket)
    padded_result = binding.scalar_solver.solve(bench.x0, ref=ref_pad)
    return native_result, binding.crop(padded_result, native), native


class TestBuckets:
    def test_default_rungs_round_up(self):
        b = HorizonBuckets()
        assert b.bucket_for(5) == 8
        assert b.bucket_for(8) == 8
        assert b.bucket_for(9) == 16
        assert b.bucket_for(1) == 1

    def test_past_top_rung_is_identity(self):
        b = HorizonBuckets(rungs=(4, 8))
        assert b.bucket_for(13) == 13

    def test_padding_waste(self):
        b = HorizonBuckets()
        assert b.padding_waste(8) == 0.0
        assert b.padding_waste(6) == pytest.approx(2 / 8)

    def test_rungs_validated(self):
        with pytest.raises(ServeError):
            HorizonBuckets(rungs=())
        with pytest.raises(ServeError):
            HorizonBuckets(rungs=(0, 4))
        with pytest.raises(ServeError):
            HorizonBuckets().bucket_for(0)


class TestGates:
    def test_gate_columns(self):
        g = gate_columns(8, 5)
        assert g.shape == (9, 2)
        np.testing.assert_array_equal(g[:, 0], [1, 1, 1, 1, 1, 0, 0, 0, 0])
        np.testing.assert_array_equal(g[:, 1], [0, 0, 0, 0, 0, 1, 0, 0, 0])

    def test_gate_columns_unpadded(self):
        g = gate_columns(4, 4)
        np.testing.assert_array_equal(g[:, 0], [1, 1, 1, 1, 0])
        np.testing.assert_array_equal(g[:, 1], [0, 0, 0, 0, 1])

    def test_horizon_must_fit(self):
        with pytest.raises(ServeError):
            gate_columns(4, 5)

    def test_pad_reference_broadcasts_flat_ref(self):
        ref = pad_reference(np.array([1.0, 2.0]), 2, 3, 4)
        assert ref.shape == (5, 4)
        np.testing.assert_array_equal(ref[:, 0], np.ones(5))
        np.testing.assert_array_equal(ref[:, 2], [1, 1, 1, 0, 0])

    def test_pad_reference_no_refs(self):
        ref = pad_reference(None, 0, 2, 4)
        assert ref.shape == (5, 2)


class TestPaddedTask:
    def test_appends_gate_references(self):
        bench = build_benchmark("CartPole")
        task = padded_task(bench.task)
        assert task.references[-2:] == (PAD_RUN, PAD_TERM)

    def test_terminal_terms_get_running_copies(self):
        bench = build_benchmark("MobileRobot")
        task = padded_task(bench.task)
        native_terminal = [p.name for p in bench.task.terminal_penalties]
        running_names = {p.name for p in task.running_penalties}
        for name in native_terminal:
            assert f"{name}__pad_stage" in running_names

    def test_equality_constraints_rejected(self):
        bench = build_benchmark("CartPole")
        eq = Constraint("pin", bench.model.state_vars[0], 0.0, 0.0, TERMINAL)
        task = Task(
            "eq_task",
            bench.model,
            bench.task.penalties,
            constraints=(eq,),
            references=bench.task.references,
        )
        with pytest.raises(ServeError):
            padded_task(task)


class TestWarmAndCrop:
    def test_pad_warm_roundtrip(self):
        bench = build_benchmark("CartPole")
        native = bench.transcribe(horizon=5)
        binding = PaddedBinding(bench, 8)
        z = native.initial_guess(bench.x0)
        z_pad = pad_warm_start(z, native, binding.problem)
        assert z_pad.shape == (binding.problem.nz,)
        xs_p, us_p = binding.problem.split(z_pad)
        xs_n, us_n = native.split(z)
        np.testing.assert_array_equal(xs_p[:6], xs_n)
        np.testing.assert_array_equal(us_p[:5], us_n)
        # tail rolls the dynamics out under trim (same policy as the
        # native cold-start guess), so the pad boundary has no defect
        u_trim = np.array(bench.model.trim_inputs())
        np.testing.assert_array_equal(us_p[5:], np.tile(u_trim, (3, 1)))
        x_next = binding.problem._F.call_positional(
            *xs_n[-1].tolist(), *u_trim.tolist()
        )
        lo, hi = bench.model.state_bounds()
        np.testing.assert_allclose(
            xs_p[6], np.clip(x_next, np.maximum(lo, -1e6), np.minimum(hi, 1e6))
        )
        assert np.all(np.isfinite(xs_p))

    def test_crop_shapes_and_scalars(self):
        bench = build_benchmark("CartPole")
        native = bench.transcribe(horizon=5)
        binding = PaddedBinding(bench, 8)
        ref_pad = pad_reference(_native_ref(bench), native.nref, 5, 8)
        res = binding.scalar_solver.solve(bench.x0, ref=ref_pad)
        cropped = crop_result(res, binding.problem, native)
        assert cropped.z.shape == (native.nz,)
        assert cropped.nu.shape == (native.n_eq,)
        assert cropped.lam.shape == (native.n_ineq,)
        assert cropped.status == res.status
        assert cropped.iterations == res.iterations


# Horizons chosen where the robot's *native* solve converges (the
# quadrotor needs h >= 8); rungs need not be powers of two, so the
# quadrotor case pads 8 -> 10 instead of 8 -> 16.
EQUIV_CASES = [
    ("CartPole", 6, 8),
    ("MobileRobot", 6, 8),
    ("Quadrotor", 8, 10),
]


class TestPaddedEquivalence:
    @pytest.mark.parametrize("robot,horizon,bucket", EQUIV_CASES)
    def test_padded_bucket_matches_native(self, robot, horizon, bucket):
        native_result, cropped, native = _solve_pair(robot, horizon, bucket)
        assert native_result.converged
        assert cropped.converged
        scale = max(1.0, float(np.max(np.abs(native_result.z))))
        err = float(np.max(np.abs(cropped.z - native_result.z))) / scale
        assert err < 5e-4, f"{robot}: padded-vs-native error {err:.2e}"

    def test_unpadded_rung_matches_native(self):
        native_result, cropped, _ = _solve_pair("CartPole", horizon=8, bucket=8)
        scale = max(1.0, float(np.max(np.abs(native_result.z))))
        err = float(np.max(np.abs(cropped.z - native_result.z))) / scale
        assert err < 5e-5

    def test_first_input_matches(self):
        # the quantity the plant actually receives
        native_result, cropped, native = _solve_pair(
            "MobileRobot", horizon=5, bucket=8
        )
        _, us_n = native.split(native_result.z)
        _, us_p = native.split(cropped.z)
        np.testing.assert_allclose(us_p[0], us_n[0], atol=1e-4)


class TestPaddedBatchLane:
    def test_batch_solver_built_for_gauss_newton(self):
        bench = build_benchmark("CartPole")
        binding = PaddedBinding(bench, 8)
        assert binding.batchable

    def test_mixed_horizon_lanes_match_scalar(self):
        """Two sessions at h=5 and h=8 co-batched in one bucket-8 solve
        must each match their own native scalar solve."""
        bench = build_benchmark("CartPole")
        binding = PaddedBinding(bench, 8)
        payloads = []
        natives = {}
        for h in (5, 8):
            native = bench.transcribe(horizon=h)
            natives[h] = native
            payloads.append(
                {
                    "x": bench.x0,
                    "ref": pad_reference(_native_ref(bench), native.nref, h, 8),
                    "deadline_s": None,
                }
            )
        results, report = binding.batch_solver.solve_payloads(payloads)
        assert report.lanes == 2
        for (h, native), res in zip(natives.items(), results):
            cropped = crop_result(res, binding.problem, native)
            ref_n = _native_ref(bench)
            native_res = bench.make_solver(native).solve(bench.x0, ref=ref_n)
            scale = max(1.0, float(np.max(np.abs(native_res.z))))
            err = float(np.max(np.abs(cropped.z - native_res.z))) / scale
            assert err < 5e-4, f"h={h}: batched padded error {err:.2e}"


def test_default_rungs_cover_paper_horizons():
    b = HorizonBuckets(DEFAULT_RUNGS)
    for h in (5, 10, 20, 32, 60):
        assert b.bucket_for(h) >= h
