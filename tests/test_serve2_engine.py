"""AsyncServeEngine tests: the v1-compatible tick facade, co-batching,
admission/backpressure, fault directives, and shard handoff (inline mode)."""

import asyncio

import numpy as np
import pytest

from repro.errors import AdmissionError, ServeError
from repro.mpc import MPCController
from repro.serve import ControlSession, SessionConfig
from repro.serve2 import AsyncServeEngine, Serve2Config
from tests.test_serve_session import ScriptedSolver, cart  # noqa: F401

X = np.zeros(2)


def stub_session(cart, sid, script, **cfg):
    cfg.setdefault("robot", "Cart")
    cfg.setdefault("degrade_after", 3)
    solver = ScriptedSolver(cart, script)
    return ControlSession(sid, SessionConfig(**cfg), MPCController(solver))


def stub_fleet(cart, engine, n, script=("ok",), **cfg):
    return [
        engine.add_session(stub_session(cart, f"s{i}", list(script), **cfg))
        for i in range(n)
    ]


@pytest.fixture
def engines():
    made = []

    def make(**kwargs):
        engine = AsyncServeEngine(Serve2Config(**kwargs))
        made.append(engine)
        return engine

    yield make
    for engine in made:
        engine.shutdown()


class OneShotHook:
    """Chaos stub: emit one directive on the first dispatch, then None."""

    def __init__(self, directive):
        self.directive = directive
        self.calls = 0

    def on_dispatch(self, tick, session_id):
        self.calls += 1
        return self.directive if self.calls == 1 else None


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_sessions": 0},
            {"max_batch": 0},
            {"max_queue": 0},
            {"shards": 0},
            {"shard_backend": "carrier-pigeon"},
            {"qp_method": "sorcery"},
            {"rungs": ()},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ServeError):
            Serve2Config(**kwargs)


class TestAdmission:
    def test_capacity_enforced(self, cart, engines):
        engine = engines(max_sessions=2)
        stub_fleet(cart, engine, 2)
        with pytest.raises(AdmissionError):
            engine.add_session(stub_session(cart, "s9", ["ok"]))

    def test_closing_frees_a_slot(self, cart, engines):
        engine = engines(max_sessions=2)
        sids = stub_fleet(cart, engine, 2)
        engine.close_session(sids[0])
        engine.add_session(stub_session(cart, "s9", ["ok"]))

    def test_duplicate_id_rejected(self, cart, engines):
        engine = engines()
        engine.add_session(stub_session(cart, "dup", ["ok"]))
        with pytest.raises(ServeError):
            engine.add_session(stub_session(cart, "dup", ["ok"]))

    def test_sessions_pinned_round_robin(self, cart, engines):
        engine = engines(shards=2)
        sids = stub_fleet(cart, engine, 4)
        assert [engine.shard_of(sid) for sid in sids] == [0, 1, 0, 1]


class TestTickFacade:
    def test_steps_every_session_with_input(self, cart, engines):
        engine = engines()
        sids = stub_fleet(cart, engine, 3)
        report = engine.tick({sid: (X, None) for sid in sids})
        assert report.stepped == 3
        assert all(o.status == "ok" for o in report.outcomes.values())
        assert engine.metrics.fleet.steps == 3
        assert engine.metrics.fleet.ok == 3

    def test_closed_sessions_are_skipped(self, cart, engines):
        engine = engines()
        sids = stub_fleet(cart, engine, 2)
        engine.close_session(sids[1])
        report = engine.tick({sid: (X, None) for sid in sids})
        assert set(report.outcomes) == {sids[0]}

    def test_stub_robots_fall_back_to_scalar_lanes(self, cart, engines):
        """'Cart' has no registry benchmark, so its groups step
        scalar-inline and the fallback reason is recorded."""
        engine = engines()
        sids = stub_fleet(cart, engine, 2)
        engine.tick({sid: (X, None) for sid in sids})
        assert engine.metrics.group_fallbacks["unbatchable_binding"] >= 2

    def test_queue_cap_sheds(self, cart, engines):
        engine = engines(max_queue=1)
        sids = stub_fleet(cart, engine, 3)
        report = engine.tick({sid: (X, None) for sid in sids})
        statuses = [o.status for o in report.outcomes.values()]
        assert statuses.count("ok") == 1
        assert engine.metrics.fleet.sheds == 2

    def test_expired_deadline_is_shed_at_dispatch(self, cart, engines):
        engine = engines()
        [sid] = stub_fleet(cart, engine, 1, deadline_s=1e-9)
        report = engine.tick({sid: (X, None)})
        assert report.outcomes[sid].reason == "shed"

    def test_late_shedding_can_be_disabled(self, cart, engines):
        engine = engines(shed_late=False)
        [sid] = stub_fleet(cart, engine, 1, deadline_s=1e-9)
        report = engine.tick({sid: (X, None)})
        assert report.outcomes[sid].status == "ok"


class TestFaultDirectives:
    def test_worker_crash_costs_one_ladder_step(self, cart, engines):
        engine = engines()
        sids = stub_fleet(cart, engine, 2)
        engine.fault_hook = OneShotHook({"kind": "worker_crash"})
        report = engine.tick({sid: (X, None) for sid in sids})
        reasons = [o.reason for o in report.outcomes.values()]
        assert reasons.count("worker_died") == 1
        report = engine.tick({sid: (X, None) for sid in sids})
        assert all(o.status == "ok" for o in report.outcomes.values())

    def test_shard_crash_hands_sessions_off(self, cart, engines):
        engine = engines(shards=2)
        sids = stub_fleet(cart, engine, 4)
        victims = [sid for sid in sids if engine.shard_of(sid) == 0]
        engine.fault_hook = OneShotHook({"kind": "shard_crash"})
        report = engine.tick({sid: (X, None) for sid in sids})
        # shard 0's lanes paid one worker_died step; shard 1's solved
        assert {report.outcomes[sid].reason for sid in victims} == {"worker_died"}
        assert engine.metrics.shard_handoffs == len(victims)
        assert engine.metrics.shard_respawns == 1
        assert engine.worker_respawns == 1
        assert all(engine.shard_of(sid) == 1 for sid in victims)
        report = engine.tick({sid: (X, None) for sid in sids})
        assert all(o.status == "ok" for o in report.outcomes.values())


class TestRealRobotBatching:
    def test_same_bucket_sessions_cobatch(self, engines):
        engine = engines(rungs=(8,))
        sids = [
            engine.create_session(
                SessionConfig(robot="CartPole", horizon=h, deadline_s=None)
            )
            for h in (5, 6, 8)
        ]
        bench, _ = engine.binding("CartPole", 5)
        report = engine.tick({sid: (bench.x0, bench.ref) for sid in sids})
        assert report.stepped == 3
        assert all(o.status == "ok" for o in report.outcomes.values())
        # all three horizons padded into one bucket-8 group solve
        assert engine.metrics.batch_solves == 1
        assert engine.metrics.batched_lanes == 3
        assert engine.metrics.padded_lanes == 2  # h=8 lane is exact-fit

    def test_async_submit_api(self, engines):
        engine = engines(rungs=(8,))
        sids = [
            engine.create_session(
                SessionConfig(robot="CartPole", horizon=5, deadline_s=None)
            )
            for _ in range(2)
        ]
        bench, _ = engine.binding("CartPole", 5)

        async def drive():
            return await asyncio.gather(
                *(engine.submit(sid, bench.x0, bench.ref) for sid in sids)
            )

        outcomes = engine._loop.run_until_complete(drive())
        assert all(o.status == "ok" for o in outcomes)
        assert engine.metrics.batch_solves == 1
        assert engine.metrics.batched_lanes == 2

    def test_padded_step_matches_native_v1_step(self, engines):
        """The padded-bucket outcome must carry the same plan a native v1
        solve produces (the end-to-end equivalence check)."""
        from repro.serve import EngineConfig, ServeEngine

        cfg = SessionConfig(robot="CartPole", horizon=5, deadline_s=None)
        v2 = engines(rungs=(8,))
        sid2 = v2.create_session(cfg)
        bench, _ = v2.binding("CartPole", 5)
        out2 = v2.tick({sid2: (bench.x0, bench.ref)}).outcomes[sid2]
        v1 = ServeEngine(EngineConfig())
        try:
            sid1 = v1.create_session(cfg)
            out1 = v1.tick({sid1: (bench.x0, bench.ref)}).outcomes[sid1]
        finally:
            v1.shutdown()
        np.testing.assert_allclose(out2.u, out1.u, atol=1e-4)
