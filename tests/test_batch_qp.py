"""Batched interior-point QP: lane-wise agreement with the scalar solver
and the active-mask (continuous batching) freeze semantics."""

import numpy as np
import pytest

from repro.batch import solve_qp_batch
from repro.mpc.qp import QPOptions, solve_qp
from repro.robots import build_benchmark


def spd(n, seed, scale=1.0):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(n, n))
    return scale * (A @ A.T + n * np.eye(n))


def random_qp(n, p, m, seed):
    rng = np.random.default_rng(seed)
    H = spd(n, seed)
    g = rng.normal(size=n)
    G = rng.normal(size=(p, n)) if p else None
    b = rng.normal(size=p) if p else None
    J = rng.normal(size=(m, n)) if m else None
    d = rng.normal(size=m) + 1.0 if m else None
    return H, g, G, b, J, d


def stack_qps(qps):
    cols = list(zip(*qps))
    return tuple(
        None if c[0] is None else np.stack(c) for c in cols
    )


class TestLaneAgreement:
    @pytest.mark.parametrize("p,m", [(0, 0), (2, 0), (0, 4), (2, 4)])
    def test_matches_scalar_per_lane(self, p, m):
        n, B = 8, 5
        qps = [random_qp(n, p, m, 50 + i) for i in range(B)]
        H, g, G, b, J, d = stack_qps(qps)
        res = solve_qp_batch(H, g, G, b, J, d)
        assert res.x.shape == (B, n)
        for i in range(B):
            ref = solve_qp(*qps[i])
            assert res.status[i] == "converged"
            assert ref.converged
            assert np.allclose(res.x[i], ref.x, atol=1e-6)
            if p:
                assert np.allclose(res.nu[i], ref.nu, atol=1e-5)
            if m:
                assert np.allclose(res.lam[i], ref.lam, atol=1e-5)

    def test_robot_subproblem_banded(self):
        bench = build_benchmark("MobileRobot")
        problem = bench.transcribe(horizon=6)
        solver = bench.make_solver(problem)
        (H, g, G, b, J, d, bw), _perm = solver.first_qp_subproblem(
            bench.x0, bench.ref
        )
        assert bw is not None
        B = 3
        rng = np.random.default_rng(9)
        g_lanes = np.stack([g + 1e-3 * rng.standard_normal(g.shape) for _ in range(B)])
        res = solve_qp_batch(
            np.stack([H] * B),
            g_lanes,
            np.stack([G] * B),
            np.stack([b] * B),
            np.stack([J] * B),
            np.stack([d] * B),
            bandwidth=bw,
        )
        for i in range(B):
            ref = solve_qp(H, g_lanes[i], G, b, J, d, bandwidth=bw)
            assert res.status[i] == "converged"
            assert np.allclose(res.x[i], ref.x, atol=1e-6)
        # The shared band hint must reach the batched kernels.
        assert all(st.banded_factorizations > 0 for st in res.stats)

    def test_per_lane_qpstats(self):
        qps = [random_qp(6, 2, 3, i) for i in range(3)]
        res = solve_qp_batch(*stack_qps(qps))
        assert len(res.stats) == 3
        for st, its in zip(res.stats, res.iterations):
            assert st.factorizations >= its
            assert st.factorize_time >= 0.0
            assert st.factor_flops > 0


class TestActiveMask:
    """Satellite: mixed-outcome batches report correct per-lane statuses
    and leave frozen lanes bit-identical to their freeze point."""

    def _mixed_batch(self, caps=None):
        # Shared structure (n=1, m=2), three very different fates:
        #   lane 0 converges, lane 1 is infeasible (diverges),
        #   lane 2 is iteration-capped (budget_exhausted).
        H = np.stack([[[2.0]]] * 3)
        g = np.stack([[0.0]] * 3)
        J = np.stack([[[1.0], [-1.0]]] * 3)
        d = np.stack(
            [
                [10.0, 10.0],  # inactive bounds: converges instantly
                [-1.0, -1.0],  # x <= -1 and x >= 1: infeasible
                [0.5, 0.5],  # active bounds: needs several iterations
            ]
        )
        return H, g, None, None, J, d

    def test_statuses_per_lane(self):
        H, g, G, b, J, d = self._mixed_batch()
        caps = np.array([50, 50, 2])
        res = solve_qp_batch(H, g, G, b, J, d, iteration_caps=caps)
        assert res.status[0] == "converged"
        assert res.status[1] == "diverged"
        assert res.status[2] == "budget_exhausted"
        assert res.converged.tolist() == [True, False, False]
        assert res.iterations[2] == 2
        # The iteration-capped lane was *not* stopped by a wall-clock
        # deadline, so the deadline flag (the SQP discard-direction rule)
        # stays off: its truncated direction is still usable.
        assert not res.budget_exhausted[2]

    def test_frozen_lanes_bit_identical(self):
        H, g, G, b, J, d = self._mixed_batch()
        caps = np.array([50, 50, 2])
        res = solve_qp_batch(
            H, g, G, b, J, d, iteration_caps=caps, record_freeze=True
        )
        assert res.freeze is not None
        for lane in range(3):
            snap = res.freeze[lane]
            assert np.array_equal(res.x[lane], snap["x"])
            assert np.array_equal(res.nu[lane], snap["nu"])
            assert np.array_equal(res.lam[lane], snap["lam"])
            assert np.array_equal(res.slacks[lane], snap["slacks"])

    def test_early_freeze_does_not_perturb_survivors(self):
        # The converging lane must produce the same answer whether it is
        # batched with doomed lanes or solved in a clean batch.
        H, g, G, b, J, d = self._mixed_batch()
        caps = np.array([50, 50, 2])
        mixed = solve_qp_batch(H, g, G, b, J, d, iteration_caps=caps)
        clean = solve_qp_batch(H[:1], g[:1], None, None, J[:1], d[:1])
        assert np.array_equal(mixed.x[0], clean.x[0])

    def test_deadline_freezes_all_active(self):
        qps = [random_qp(6, 0, 3, 70 + i) for i in range(3)]
        H, g, G, b, J, d = stack_qps(qps)
        from time import perf_counter

        res = solve_qp_batch(H, g, G, b, J, d, deadline=perf_counter())
        assert all(st == "budget_exhausted" for st in res.status)
        # Deadline stops *do* set the budget flag: the SQP layer discards
        # these directions, matching the scalar solver's contract.
        assert res.budget_exhausted.all()

    def test_nonfinite_lane_fails_without_poisoning(self):
        qps = [random_qp(5, 2, 2, 80 + i) for i in range(3)]
        H, g, G, b, J, d = stack_qps(qps)
        g = g.copy()
        g[1, 0] = np.nan
        res = solve_qp_batch(H, g, G, b, J, d)
        assert res.status[1] == "failed"
        assert res.iterations[1] == 0
        for i in (0, 2):
            ref = solve_qp(*qps[i])
            assert res.status[i] == "converged"
            assert np.allclose(res.x[i], ref.x, atol=1e-6)

    def test_batch_efficiency_telemetry(self):
        H, g, G, b, J, d = self._mixed_batch()
        res = solve_qp_batch(H, g, G, b, J, d)
        bs = res.batch
        assert bs.lane_slots >= bs.lane_iterations > 0
        assert 0.0 < bs.efficiency <= 1.0
        # Mixed completion times => some slots must have idled.
        assert bs.efficiency < 1.0
