"""Differential property suite: fused codegen vs interpreted evaluation.

The codegen contract is *bit-safety relative to a namespace*: a fused
function executed under the same primitive namespace as the per-function
interpreters must produce bit-identical outputs — not merely close ones.
This suite pins that contract over randomly generated expression DAGs
covering the full op surface (every ``_MATH_FUNCS`` transcendental, every
infix elementary, unary neg), with shared subexpressions across output
groups plus pass-through-variable and bare-constant outputs:

* fused Python source under ``math`` vs :class:`CompiledFunction`, scalar;
* :class:`FusedKernel` under each registered array backend vs the
  per-function :class:`VectorizedFunction`, on ``(N,)`` and ``(B, N)``
  columns (torch/cupy/jax skip with a reason when not importable);
* the C tier vs the interpreted scalar on seeded DAGs (one compiler
  invocation for the whole module; skipped when no compiler is present).
"""

import math
import struct

import numpy as np
import pytest

from repro.batch.backend import available_backends
from repro.batch.transcription import VectorizedFunction
from repro.codegen import (
    FunctionGroup,
    FusedKernel,
    build_ir,
    c_available,
    emit_fused_module,
    emit_python_function,
)
from repro.codegen.store import StoredModule
from repro.symbolic.compile import _INFIX, _MATH_FUNCS, compile_function
from repro.symbolic.expr import OPS, Call, Const, Var

hyp = pytest.importorskip("hypothesis", reason="property suite needs hypothesis")
from hypothesis import assume, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

UNARY_OPS = tuple(sorted(_MATH_FUNCS)) + ("neg",)
BINARY_OPS = tuple(sorted(_INFIX))
ALL_OPS = UNARY_OPS + BINARY_OPS

_finite = st.floats(
    min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False
)


def _bits(x: float) -> bytes:
    return struct.pack("<d", float(x))


@st.composite
def dags(draw):
    """A random DAG plus output groups drawn from its shared node pool.

    Nodes are built bottom-up over earlier nodes, so sampling operands
    from the pool naturally produces shared subexpressions; outputs are
    sampled from the same pool, so groups can share internal nodes and
    can return raw variables (pass-through) or bare constants.
    """
    n_vars = draw(st.integers(min_value=1, max_value=3))
    variables = [Var(f"x{i}") for i in range(n_vars)]
    pool = list(variables)
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        pool.append(Const(draw(_finite)))
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        op = OPS[draw(st.sampled_from(ALL_OPS))]
        args = tuple(
            pool[draw(st.integers(min_value=0, max_value=len(pool) - 1))]
            for _ in range(op.arity)
        )
        pool.append(Call(op, args))
    groups = []
    for gi in range(draw(st.integers(min_value=1, max_value=3))):
        exprs = tuple(
            pool[draw(st.integers(min_value=0, max_value=len(pool) - 1))]
            for _ in range(draw(st.integers(min_value=1, max_value=3)))
        )
        groups.append(FunctionGroup(name=f"g{gi}", exprs=exprs))
    return variables, groups


def _interpreted(variables, groups):
    return [
        compile_function(list(g.exprs), variables, name=f"oracle_{g.name}")
        for g in groups
    ]


def _oracle_at(compiled, point):
    """Evaluate every group at ``point``; None = domain error (discard)."""
    try:
        outs = [fn(point) for fn in compiled]
    except (ValueError, OverflowError, ZeroDivisionError, TypeError):
        # domain error, overflow, or a complex result from a
        # negative-base fractional pow — not a representable evaluation
        return None
    if not all(np.all(np.isfinite(o)) for o in outs):
        return None
    return outs


@given(dag=dags(), data=st.data())
@settings(max_examples=200, deadline=None)
def test_fused_python_bit_identical_to_interpreted_scalar(dag, data):
    variables, groups = dag
    point = [data.draw(_finite, label=v.name) for v in variables]
    expected = _oracle_at(_interpreted(variables, groups), point)
    assume(expected is not None)

    ir = build_ir("fused", groups, [v.name for v in variables])
    namespace = dict(_MATH_FUNCS)
    exec(compile(emit_python_function(ir), "<fused>", "exec"), namespace)
    outs = namespace["fused"](*point)

    assert len(outs) == ir.layout.n_outputs
    for g, exp in zip(ir.layout.groups, expected):
        got = outs[g.start : g.start + g.count]
        assert len(got) == len(exp)
        for a, b in zip(got, exp.tolist()):
            assert _bits(a) == _bits(b), f"group {g.name}: {a!r} != {b!r}"


@pytest.mark.parametrize("backend", ["numpy", "torch", "cupy", "jax"])
@given(dag=dags(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_fused_kernel_bit_identical_to_vectorized(backend, dag, data):
    if backend not in available_backends():
        pytest.skip(f"array backend {backend!r} is not importable here")
    variables, groups = dag
    var_names = [v.name for v in variables]
    compiled = _interpreted(variables, groups)

    module = emit_fused_module([("fused", groups, var_names)])
    stored = StoredModule(
        key="0" * 64, source=module.source, layouts=module.layouts, meta={}
    )
    kern = FusedKernel(stored, backend)
    try:
        oracles = [VectorizedFunction(fn, backend) for fn in compiled]
    except Exception:
        # a backend missing a ufunc twin must refuse fused binding the
        # same way; nothing further to compare
        assume(False)

    n = data.draw(st.integers(min_value=1, max_value=5), label="N")
    lanes = data.draw(st.integers(min_value=0, max_value=2), label="extra-dims")
    shape = (2,) * lanes + (n,)
    cols = [
        np.array(
            data.draw(
                st.lists(
                    _finite,
                    min_size=int(np.prod(shape)),
                    max_size=int(np.prod(shape)),
                ),
                label=v,
            ),
            dtype=float,
        ).reshape(shape)
        for v in var_names
    ]

    fused_groups = kern.call("fused", [kern.xp.asarray(c) for c in cols])
    for g, oracle in zip(module.layouts["fused"].groups, oracles):
        want = oracle([kern.xp.asarray(c) for c in cols])
        got = fused_groups[g.name]
        a = np.ascontiguousarray(kern.xp.to_host(got))
        b = np.ascontiguousarray(kern.xp.to_host(want))
        assert a.shape == b.shape == shape + (g.count,)
        assert a.tobytes() == b.tobytes(), f"group {g.name} diverged"


def _seeded_dag(seed: int):
    """Deterministic DAG exercising the full op surface (for the C tier)."""
    rng = np.random.default_rng(seed)
    variables = [Var(f"x{i}") for i in range(3)]
    pool = list(variables) + [Const(0.5), Const(-1.25)]
    for _ in range(30):
        op = OPS[ALL_OPS[int(rng.integers(len(ALL_OPS)))]]
        args = tuple(
            pool[int(rng.integers(len(pool)))] for _ in range(op.arity)
        )
        pool.append(Call(op, args))
    groups = [
        FunctionGroup(name="mixed", exprs=tuple(pool[-4:])),
        FunctionGroup(name="passthrough", exprs=(variables[0], Const(2.0))),
    ]
    return variables, groups


@pytest.mark.skipif(not c_available(), reason="no C compiler / cffi here")
def test_c_kernel_bit_identical_to_interpreted(tmp_path):
    from repro.codegen import ArtifactStore
    from repro.codegen.cbackend import build_c_kernel
    from repro.codegen.emit import module_fingerprint

    functions = []
    oracles = {}
    for seed in (7, 11, 13):
        variables, groups = _seeded_dag(seed)
        name = f"fused_s{seed}"
        functions.append((name, groups, [v.name for v in variables]))
        oracles[name] = (variables, groups, _interpreted(variables, groups))
    module = emit_fused_module(functions)
    key = module_fingerprint(module, extra=("test",))
    kern = build_c_kernel(module.irs, key, ArtifactStore(tmp_path))

    rng = np.random.default_rng(0)
    checked = 0
    for name, (variables, groups, compiled) in oracles.items():
        for _ in range(50):
            point = rng.uniform(-2.0, 2.0, size=len(variables))
            expected = _oracle_at(compiled, point)
            if expected is None:
                continue
            cols = [np.array([v]) for v in point.tolist()]
            fused = kern.call(name, cols)
            for g, exp in zip(groups, expected):
                got = fused[g.name][0]
                for a, b in zip(got.tolist(), exp.tolist()):
                    assert _bits(a) == _bits(b), f"{name}/{g.name}: {a} != {b}"
                    checked += 1
    assert checked > 100  # the domain filter must not eat the sample


def test_constant_and_passthrough_outputs_broadcast():
    """Bare-constant / pass-through outputs follow VectorizedFunction shape
    semantics: broadcast to the column shape, stacked on a trailing axis."""
    x = Var("x")
    groups = [FunctionGroup(name="g0", exprs=(Const(3.5), x, x + Const(0.0)))]
    module = emit_fused_module([("fused", groups, ["x"])])
    stored = StoredModule(
        key="1" * 64, source=module.source, layouts=module.layouts, meta={}
    )
    kern = FusedKernel(stored)
    cols = [np.array([1.0, 2.0, 4.0])]
    out = kern.call("fused", cols)["g0"]
    assert out.shape == (3, 3)
    np.testing.assert_array_equal(out[:, 0], [3.5, 3.5, 3.5])
    np.testing.assert_array_equal(out[:, 1], cols[0])
    np.testing.assert_array_equal(out[:, 2], cols[0])


def test_full_op_surface_is_emittable_and_exact():
    """Every op in the registry that the interpreters accept must round-trip
    through the fused emitter with bit-identical scalar results."""
    x, y = Var("x"), Var("y")
    exprs = []
    for opn in UNARY_OPS:
        exprs.append(Call(OPS[opn], (Const(0.25) * x + Const(0.5),)))
    for opn in BINARY_OPS:
        exprs.append(Call(OPS[opn], (x + Const(1.5), y + Const(2.0))))
    groups = [FunctionGroup(name="all", exprs=tuple(exprs))]
    variables = [x, y]
    compiled = compile_function(exprs, variables, name="oracle")

    ir = build_ir("fused", groups, ["x", "y"])
    namespace = dict(_MATH_FUNCS)
    exec(compile(emit_python_function(ir), "<fused>", "exec"), namespace)
    for point in ([0.3, 0.7], [-0.2, 0.1], [0.9, -0.4]):
        expected = compiled(point)
        outs = namespace["fused"](*point)
        for a, b in zip(outs, expected.tolist()):
            assert _bits(a) == _bits(b)
