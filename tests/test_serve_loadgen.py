"""Load-generator tests: seeded jitter/mix determinism, horizon rotation,
and v1/v2 engine routing."""

import pytest

from repro.errors import ServeError
from repro.serve.loadgen import LoadConfig, resolve_seed, run_load


def quick(**kwargs):
    kwargs.setdefault("sessions", 3)
    kwargs.setdefault("ticks", 2)
    kwargs.setdefault("robots", ("CartPole",))
    kwargs.setdefault("horizon", 5)
    kwargs.setdefault("deadline_s", None)
    kwargs.setdefault("x0_noise", 0.0)
    return LoadConfig(**kwargs)


class TestSeedResolution:
    def test_explicit_seed_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SEED", "7")
        assert resolve_seed(3) == 3

    def test_env_seed_used_when_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SEED", "7")
        assert resolve_seed(None) == 7
        monkeypatch.delenv("REPRO_BENCH_SEED")
        assert resolve_seed(None) == 0


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"arrival_jitter": -0.1},
            {"arrival_jitter": 1.0},
            {"robot_mix": "shuffle"},
            {"engine": "v3"},
            {"horizons": ()},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ServeError):
            LoadConfig(**kwargs)


class TestJitterAndMix:
    def test_jitter_skips_some_arrivals_deterministically(self):
        cfg = quick(ticks=4, arrival_jitter=0.5, seed=0)
        a = run_load(cfg)
        b = run_load(cfg)
        full = run_load(quick(ticks=4, seed=0))
        assert a.metrics.fleet.steps == b.metrics.fleet.steps
        assert a.metrics.fleet.steps < full.metrics.fleet.steps

    def test_jitter_stream_does_not_perturb_x0_draws(self):
        base = run_load(quick(x0_noise=0.02, seed=1))
        jittered = run_load(quick(x0_noise=0.02, seed=1, arrival_jitter=0.3))
        # same seed -> same fleet; only attendance differs
        assert set(base.session_states) == set(jittered.session_states)

    def test_sampled_robot_mix_is_seeded(self):
        cfg = quick(
            sessions=6,
            robots=("CartPole", "MobileRobot"),
            robot_mix="sample",
            seed=2,
        )
        a = run_load(cfg)
        b = run_load(cfg)
        assert a.metrics.fleet.steps == b.metrics.fleet.steps
        assert set(a.session_states) == set(b.session_states)


class TestHorizonsAndEngines:
    def test_horizons_cycle_across_sessions(self):
        report = run_load(quick(sessions=4, horizons=(5, 6)))
        assert report.ok
        assert report.metrics.fleet.steps == 8

    def test_v2_engine_cobatches_mixed_horizons(self):
        report = run_load(
            quick(sessions=4, horizons=(5, 6), engine="v2", rungs=(8,))
        )
        assert report.ok
        assert report.to_dict()["engine"] == "v2"
        assert report.metrics.batch_solves >= 1
        assert report.metrics.mean_batch > 1.0  # bucketing actually co-batched

    def test_v2_sharded_run(self):
        report = run_load(quick(sessions=4, engine="v2", shards=2))
        assert report.ok
        assert report.metrics.fleet.steps == 8
