"""Array-backend seam: registry/selection semantics, cross-backend parity
of the batched QP path, masked-lockstep agreement with the host gather
loop, and the no-per-iteration-host-sync acceptance gate."""

import numpy as np
import pytest

from repro.batch import (
    ArrayBackend,
    BatchLinearizer,
    BatchSolver,
    CountingBackend,
    available_backends,
    get_backend,
    register_backend,
    solve_qp_batch,
)
from repro.batch.backend import HOST, NumpyBackend
from repro.errors import SolverError
from repro.mpc.qp import QPOptions
from repro.robots import build_benchmark

def _backend_params(names):
    return [
        pytest.param(
            name,
            marks=()
            if name in available_backends()
            else pytest.mark.skip(reason=f"{name} not importable here"),
        )
        for name in names
    ]


ALL_BACKENDS = _backend_params(("numpy", "torch", "cupy"))
#: jax joins only the seam-pure consumers (the masked-lockstep QP loop);
#: BatchSolver's host scatter updates need mutable arrays, which jax's
#: immutable arrays cannot provide (see JaxBackend's docstring).
QP_BACKENDS = _backend_params(("numpy", "torch", "cupy", "jax"))


def spd(n, seed, scale=1.0):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(n, n))
    return scale * (A @ A.T + n * np.eye(n))


def random_qp(n, p, m, seed):
    rng = np.random.default_rng(seed)
    H = spd(n, seed)
    g = rng.normal(size=n)
    G = rng.normal(size=(p, n)) if p else None
    b = rng.normal(size=p) if p else None
    J = rng.normal(size=(m, n)) if m else None
    d = rng.normal(size=m) + 1.0 if m else None
    return H, g, G, b, J, d


def stack_qps(qps):
    cols = list(zip(*qps))
    return tuple(None if c[0] is None else np.stack(c) for c in cols)


def qp_batch(B=5, n=8, p=2, m=4, seed=50):
    return stack_qps([random_qp(n, p, m, seed + i) for i in range(B)])


class TestRegistry:
    def test_numpy_always_registered_and_default(self):
        assert "numpy" in available_backends()
        xp = get_backend()
        assert xp.name == "numpy"
        assert xp.dtype_name == "float64"
        assert not xp.is_device

    def test_instance_passthrough(self):
        xp = NumpyBackend()
        assert get_backend(xp) is xp

    def test_dtype_suffix_and_caching(self):
        xp32 = get_backend("numpy:float32")
        assert xp32.dtype_name == "float32"
        assert xp32.asarray([1.0]).dtype == np.float32
        assert get_backend("numpy:float32") is xp32
        assert get_backend("numpy") is not xp32

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAY_BACKEND", "numpy:float32")
        assert get_backend().dtype_name == "float32"

    def test_unknown_backend_raises(self):
        with pytest.raises(SolverError):
            get_backend("tpu")

    def test_unknown_dtype_raises(self):
        with pytest.raises(SolverError):
            NumpyBackend("float16")

    def test_register_custom_backend(self):
        register_backend("custom-test", NumpyBackend)
        try:
            assert "custom-test" in available_backends()
            assert isinstance(get_backend("custom-test"), NumpyBackend)
        finally:
            from repro.batch import backend as backend_mod

            backend_mod._FACTORIES.pop("custom-test")
            backend_mod._INSTANCES.pop(("custom-test", "float64"), None)

    def test_dtype_tokens(self):
        xp = get_backend("numpy")
        assert xp.zeros((2,), dtype="int").dtype == np.int64
        assert xp.zeros((2,), dtype="bool").dtype == np.bool_
        assert xp.zeros((2,)).dtype == np.float64


class TestCrossBackendParity:
    """Every registered backend must agree with the numpy reference on
    the batched QP path (absent accelerators skip with a reason)."""

    @pytest.mark.parametrize("name", QP_BACKENDS)
    def test_qp_parity(self, name):
        H, g, G, b, J, d = qp_batch()
        ref = solve_qp_batch(H, g, G, b, J, d)
        res = solve_qp_batch(H, g, G, b, J, d, backend=name)
        assert list(res.status) == list(ref.status)
        assert np.array_equal(
            np.asarray(res.iterations), np.asarray(ref.iterations)
        )
        assert np.allclose(res.x, ref.x, atol=1e-6)
        assert np.allclose(res.nu, ref.nu, atol=1e-5)
        assert np.allclose(res.lam, ref.lam, atol=1e-5)

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_sqp_parity(self, name):
        bench = build_benchmark("MobileRobot")
        problem = bench.transcribe(horizon=4)
        rng = np.random.default_rng(9)
        B = 3
        X0 = np.stack(
            [
                np.asarray(bench.x0, float)
                + 0.03 * rng.standard_normal(problem.nx)
                for _ in range(B)
            ]
        )
        ref_results, _ = BatchSolver(problem).solve(
            X0, refs=[bench.ref] * B
        )
        results, _ = BatchSolver(problem, backend=name).solve(
            X0, refs=[bench.ref] * B
        )
        for got, ref in zip(results, ref_results):
            assert got.status == ref.status
            assert got.iterations == ref.iterations
            assert np.allclose(got.z, ref.z, atol=1e-6)


class TestMaskedLockstep:
    """The device strategy (exercised through a CountingBackend, so no
    GPU is needed) must agree with the host gather loop lane by lane."""

    def test_statuses_iterations_and_solutions_agree(self):
        H, g, G, b, J, d = qp_batch(B=6, seed=70)
        H[3] = np.nan  # a poisoned lane must freeze as failed in both
        ref = solve_qp_batch(H, g, G, b, J, d)
        res = solve_qp_batch(
            H, g, G, b, J, d, backend=CountingBackend()
        )
        assert list(res.status) == list(ref.status)
        assert np.array_equal(
            np.asarray(res.iterations), np.asarray(ref.iterations)
        )
        healthy = [i for i, s in enumerate(ref.status) if s == "converged"]
        assert np.allclose(res.x[healthy], ref.x[healthy], atol=1e-6)

    def test_per_lane_qpstats_agree(self):
        bench = build_benchmark("MobileRobot")
        problem = bench.transcribe(horizon=5)
        solver = bench.make_solver(problem)
        (H, g, G, b, J, d, bw), _perm = solver.first_qp_subproblem(
            bench.x0, bench.ref
        )
        stack = lambda M: np.repeat(np.asarray(M)[None], 3, axis=0)
        args = tuple(None if M is None else stack(M) for M in (H, g, G, b, J, d))
        ref = solve_qp_batch(*args, bandwidth=bw)
        res = solve_qp_batch(*args, bandwidth=bw, backend=CountingBackend())
        for qs, rs in zip(res.stats, ref.stats):
            assert qs.mode == rs.mode
            assert qs.phi_bandwidth == rs.phi_bandwidth
            assert qs.schur_bandwidth == rs.schur_bandwidth
            assert qs.factorizations == rs.factorizations
            assert qs.banded_factorizations == rs.banded_factorizations
            assert qs.factor_flops == rs.factor_flops
            assert qs.substitute_flops == rs.substitute_flops

    def test_lockstep_freeze_snapshots_are_the_final_state(self):
        # Frozen lanes are where-masked out of every update, so the
        # snapshot recorded at freeze time must equal the lane's returned
        # state bit for bit.
        H, g, G, b, J, d = qp_batch(B=4, seed=80)
        caps = np.array([2, 50, 4, 50])  # stagger the freeze points
        res = solve_qp_batch(
            H, g, G, b, J, d,
            iteration_caps=caps,
            record_freeze=True,
            backend=CountingBackend(),
        )
        assert res.freeze
        for lane, snap in res.freeze.items():
            assert np.array_equal(snap["x"], res.x[lane])
            assert np.array_equal(snap["nu"], res.nu[lane])
            assert np.array_equal(snap["lam"], res.lam[lane])

    def test_no_per_iteration_host_sync(self):
        # The acceptance gate: with sync_interval=0 the download count
        # must not grow with the iteration count — the device loop is
        # strictly sync-free until the single result materialization.
        H, g, G, b, J, d = qp_batch(B=4, seed=90)

        def syncs(max_iterations):
            xp = CountingBackend()
            solve_qp_batch(
                H, g, G, b, J, d,
                QPOptions(max_iterations=max_iterations),
                backend=xp,
                sync_interval=0,
            )
            return xp.sync_count

        assert syncs(5) == syncs(60)

    def test_sync_interval_bounds_early_exit_downloads(self):
        H, g, G, b, J, d = qp_batch(B=4, seed=91)
        xp = CountingBackend()
        solve_qp_batch(H, g, G, b, J, d, backend=xp, sync_interval=4)
        base = CountingBackend()
        solve_qp_batch(H, g, G, b, J, d, backend=base, sync_interval=0)
        # early-exit checks are one scalar each, every 4 iterations
        assert base.sync_count <= xp.sync_count <= base.sync_count + 16


class TestFloat32:
    def test_float32_qp_close_to_float64(self):
        H, g, G, b, J, d = qp_batch(B=3, seed=60)
        ref = solve_qp_batch(H, g, G, b, J, d)
        res = solve_qp_batch(H, g, G, b, J, d, backend="numpy:float32")
        assert res.x.dtype == np.float32
        assert np.allclose(res.x, ref.x, atol=5e-2)

    def test_float32_linearizer_close(self):
        bench = build_benchmark("CartPole")
        problem = bench.transcribe(horizon=4)
        lin64 = BatchLinearizer(problem)
        lin32 = BatchLinearizer(problem, backend="numpy:float32")
        X0 = np.repeat(np.asarray(bench.x0, float)[None], 2, axis=0)
        Z = lin64.initial_guess(X0)
        R64 = lin64.normalize_ref([bench.ref] * 2, 2)
        R32 = lin32.normalize_ref([bench.ref] * 2, 2)
        g64 = lin64.objective_gradient(Z, R64)
        g32 = lin32.objective_gradient(Z, R32)
        assert g32.dtype == np.float32
        assert np.allclose(g32, g64, atol=1e-3)


class TestSeamCompleteness:
    def test_counting_backend_counts_crossings(self):
        xp = CountingBackend()
        a = xp.from_host([1.0, 2.0])
        assert xp.upload_count == 1
        xp.to_host(a)
        xp.scalar(xp.all(a > 0.0))  # np.bool_ is not a host scalar yet
        assert xp.sync_count == 2
        # an already-extracted Python scalar is free
        xp.scalar(1.5)
        assert xp.sync_count == 2

    def test_base_namespace_is_numpy_semantics(self):
        xp = get_backend("numpy")
        assert isinstance(xp, ArrayBackend)
        a = xp.asarray([[1.0, 2.0], [3.0, 4.0]])
        assert np.array_equal(
            xp.transpose_last2(a), np.asarray(a).T
        )
        assert xp.scalar(xp.max(a)) == 4.0
        assert HOST is get_backend("numpy")
