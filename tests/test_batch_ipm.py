"""Batched SQP driver: per-lane agreement with the scalar solver,
per-lane budgets, warm-start validation, and the GN-only guard."""

import numpy as np
import pytest

from repro.batch import BatchSolver
from repro.errors import SolverError, StateValidationError
from repro.mpc.budget import SolveBudget
from repro.robots import build_benchmark


@pytest.fixture(scope="module")
def mobile():
    bench = build_benchmark("MobileRobot")
    problem = bench.transcribe(horizon=6)
    scalar = bench.make_solver(problem)
    return bench, problem, scalar


def lane_states(bench, problem, B, seed=0, noise=0.03):
    rng = np.random.default_rng(seed)
    return np.stack(
        [
            np.asarray(bench.x0, float) + noise * rng.standard_normal(problem.nx)
            for _ in range(B)
        ]
    )


class TestAgainstScalar:
    def test_lanes_match_scalar_solver(self, mobile):
        bench, problem, scalar = mobile
        batch = BatchSolver(problem, scalar.options)
        B = 4
        X0 = lane_states(bench, problem, B)
        results, report = batch.solve(X0, refs=[bench.ref] * B)
        assert report.lanes == B
        for i in range(B):
            ref = scalar.solve(X0[i], ref=bench.ref)
            got = results[i]
            assert got.status == ref.status
            assert got.iterations == ref.iterations
            assert np.allclose(got.z, ref.z, atol=1e-7)
            assert got.kkt_residual == pytest.approx(
                ref.kkt_residual, rel=1e-3, abs=1e-9
            )

    def test_stats_accumulate_scalar_keys(self, mobile):
        bench, problem, scalar = mobile
        batch = BatchSolver(problem, scalar.options)
        X0 = lane_states(bench, problem, 2)
        batch.solve(X0, refs=[bench.ref] * 2)
        assert batch.stats["solves"] == 2
        assert batch.stats["sqp_iterations"] > 0
        assert batch.stats["factorizations"] > 0
        assert set(scalar.stats) <= set(batch.stats)


class TestGuards:
    def test_rejects_non_gauss_newton(self):
        bench = build_benchmark("MicroSat")  # hybrid-Hessian overrides
        problem = bench.transcribe(horizon=4)
        scalar = bench.make_solver(problem)
        assert scalar.options.hessian != "gauss_newton"
        with pytest.raises(SolverError):
            BatchSolver(problem, scalar.options)

    def test_nonfinite_state_raises(self, mobile):
        bench, problem, scalar = mobile
        batch = BatchSolver(problem, scalar.options)
        X0 = lane_states(bench, problem, 2)
        X0[1, 0] = np.nan
        with pytest.raises(StateValidationError):
            batch.solve(X0, refs=[bench.ref] * 2)

    def test_bad_warm_shape_raises(self, mobile):
        bench, problem, scalar = mobile
        batch = BatchSolver(problem, scalar.options)
        X0 = lane_states(bench, problem, 2)
        with pytest.raises(SolverError):
            batch.solve(
                X0,
                refs=[bench.ref] * 2,
                z_warm=[None, np.zeros(3)],
            )

    def test_nonfinite_warm_reseeds_lane(self, mobile):
        bench, problem, scalar = mobile
        batch = BatchSolver(problem, scalar.options)
        X0 = lane_states(bench, problem, 2)
        bad = np.full(problem.nz, np.nan)
        results, _ = batch.solve(
            X0, refs=[bench.ref] * 2, z_warm=[None, bad]
        )
        assert results[1].health.warm_start_reseeded
        assert not results[0].health.warm_start_reseeded
        assert np.all(np.isfinite(results[1].z))


class TestPerLaneBudgets:
    def test_sqp_iteration_cap_freezes_lane(self, mobile):
        bench, problem, scalar = mobile
        batch = BatchSolver(problem, scalar.options)
        B = 3
        X0 = lane_states(bench, problem, B, seed=2)
        budgets = [None, SolveBudget(sqp_iterations=2), None]
        results, _ = batch.solve(X0, refs=[bench.ref] * B, budgets=budgets)
        capped = results[1]
        assert capped.iterations <= 2
        if not capped.converged:
            assert capped.status == "budget_exhausted"
        # Unbudgeted lanes are unaffected by their neighbour's cap.
        free = scalar.solve(X0[0], ref=bench.ref)
        assert results[0].iterations == free.iterations

    def test_expired_deadline_budget_status(self, mobile):
        bench, problem, scalar = mobile
        batch = BatchSolver(problem, scalar.options)
        X0 = lane_states(bench, problem, 2, seed=3)
        budgets = [SolveBudget(wall_clock=0.0), None]
        results, _ = batch.solve(X0, refs=[bench.ref] * 2, budgets=budgets)
        assert results[0].status == "budget_exhausted"
        assert not results[0].converged
        assert results[1].converged

    def test_solve_payloads_adapter(self, mobile):
        bench, problem, scalar = mobile
        batch = BatchSolver(problem, scalar.options)
        X0 = lane_states(bench, problem, 2, seed=4)
        payloads = [
            {
                "x": X0[i],
                "ref": bench.ref,
                "z_warm": None,
                "nu_warm": None,
                "lam_warm": None,
                "deadline_s": None,
                "max_sqp_iterations": None,
                "max_qp_iterations": None,
            }
            for i in range(2)
        ]
        results, report = batch.solve_payloads(payloads)
        assert len(results) == 2 and report.lanes == 2
        for i in range(2):
            ref = scalar.solve(X0[i], ref=bench.ref)
            assert np.allclose(results[i].z, ref.z, atol=1e-7)

    def test_report_efficiency_bounds(self, mobile):
        bench, problem, scalar = mobile
        batch = BatchSolver(problem, scalar.options)
        X0 = lane_states(bench, problem, 3, seed=5)
        _, report = batch.solve(X0, refs=[bench.ref] * 3)
        assert 0.0 < report.sqp_efficiency <= 1.0
        assert 0.0 < report.qp_efficiency <= 1.0
        assert report.sqp_lane_slots % report.lanes == 0
