"""Tests for the RobotModel / Task intermediate representation."""

import math

import pytest

from repro.errors import ModelError, TaskError
from repro.mpc import Constraint, Penalty, RobotModel, Task, VarSpec
from repro.symbolic import Var, sin


def simple_model(**kwargs):
    x, v, u = Var("x"), Var("v"), Var("u")
    return RobotModel(
        "Cart",
        states=[VarSpec("x"), VarSpec("v", -2.0, 2.0)],
        inputs=[VarSpec("u", -1.0, 1.0, trim=0.5)],
        dynamics={"x": v, "v": u},
        **kwargs,
    )


class TestVarSpec:
    def test_bounds_validated(self):
        with pytest.raises(ModelError):
            VarSpec("x", lower=1.0, upper=-1.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            VarSpec("")

    def test_is_bounded(self):
        assert not VarSpec("a").is_bounded
        assert VarSpec("a", upper=1.0).is_bounded
        assert VarSpec("a", lower=0.0).is_bounded

    def test_clipped_trim(self):
        assert VarSpec("u", 0.0, 1.0, trim=5.0).clipped_trim == 1.0
        assert VarSpec("u", -1.0, 1.0, trim=-9.0).clipped_trim == -1.0
        assert VarSpec("u", -1.0, 1.0, trim=0.3).clipped_trim == 0.3


class TestRobotModel:
    def test_layout(self):
        m = simple_model()
        assert m.n_states == 2
        assert m.n_inputs == 1
        assert m.state_names == ("x", "v")
        assert m.state_index("v") == 1
        assert m.input_index("u") == 0

    def test_unknown_state_index(self):
        with pytest.raises(ModelError):
            simple_model().state_index("zzz")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelError, match="duplicate"):
            RobotModel(
                "Bad",
                states=[VarSpec("x"), VarSpec("x")],
                inputs=[VarSpec("u")],
                dynamics={"x": Var("u")},
            )

    def test_missing_dynamics_rejected(self):
        with pytest.raises(ModelError, match="without dynamics"):
            RobotModel(
                "Bad",
                states=[VarSpec("x"), VarSpec("v")],
                inputs=[VarSpec("u")],
                dynamics={"x": Var("v")},
            )

    def test_extra_dynamics_rejected(self):
        with pytest.raises(ModelError, match="unknown states"):
            RobotModel(
                "Bad",
                states=[VarSpec("x")],
                inputs=[VarSpec("u")],
                dynamics={"x": Var("u"), "ghost": Var("u")},
            )

    def test_undeclared_variable_in_dynamics(self):
        with pytest.raises(ModelError, match="undeclared"):
            RobotModel(
                "Bad",
                states=[VarSpec("x")],
                inputs=[VarSpec("u")],
                dynamics={"x": Var("mystery")},
            )

    def test_needs_states_and_inputs(self):
        with pytest.raises(ModelError):
            RobotModel("Bad", states=[], inputs=[VarSpec("u")], dynamics={})
        with pytest.raises(ModelError):
            RobotModel(
                "Bad", states=[VarSpec("x")], inputs=[], dynamics={"x": Var("x")}
            )

    def test_bounds_and_trim(self):
        m = simple_model()
        lo, hi = m.input_bounds()
        assert lo == (-1.0,) and hi == (1.0,)
        assert m.trim_inputs() == (0.5,)
        assert m.n_bound_constraints() == 4  # v two-sided + u two-sided

    def test_dynamics_exprs_ordered(self):
        m = simple_model()
        exprs = m.dynamics_exprs
        assert exprs[0] == Var("v")
        assert exprs[1] == Var("u")


class TestPenaltyConstraint:
    def test_penalty_timing_validated(self):
        with pytest.raises(TaskError):
            Penalty("p", Var("x"), timing="sometimes")

    def test_penalty_negative_weight(self):
        with pytest.raises(TaskError):
            Penalty("p", Var("x"), weight=-1.0)

    def test_constraint_needs_a_bound(self):
        with pytest.raises(TaskError, match="no finite bound"):
            Constraint("c", Var("x"))

    def test_constraint_bound_order(self):
        with pytest.raises(TaskError):
            Constraint("c", Var("x"), lower=2.0, upper=1.0)

    def test_equality_constraint(self):
        c = Constraint("c", Var("x"), lower=1.0, upper=1.0)
        assert c.is_equality
        assert c.n_inequality_rows() == 0

    def test_two_sided_rows(self):
        c = Constraint("c", Var("x"), lower=-1.0, upper=1.0)
        assert c.n_inequality_rows() == 2

    def test_one_sided_rows(self):
        assert Constraint("c", Var("x"), upper=1.0).n_inequality_rows() == 1


class TestTask:
    def test_grouping(self):
        m = simple_model()
        t = Task(
            "t",
            m,
            penalties=[
                Penalty("run", Var("u"), timing="running"),
                Penalty("term", Var("x"), timing="terminal"),
            ],
            constraints=[Constraint("c", Var("x"), upper=5.0, timing="terminal")],
        )
        assert len(t.running_penalties) == 1
        assert len(t.terminal_penalties) == 1
        assert len(t.terminal_constraints) == 1
        assert t.n_penalties == 2
        assert t.n_constraints == 1

    def test_requires_penalties(self):
        with pytest.raises(TaskError, match="no penalty"):
            Task("t", simple_model(), penalties=[])

    def test_duplicate_names(self):
        m = simple_model()
        with pytest.raises(TaskError, match="duplicate"):
            Task(
                "t",
                m,
                penalties=[Penalty("p", Var("x")), Penalty("p", Var("v"))],
            )

    def test_undeclared_variable(self):
        m = simple_model()
        with pytest.raises(TaskError, match="undeclared"):
            Task("t", m, penalties=[Penalty("p", Var("nope"))])

    def test_reference_allowed_when_declared(self):
        m = simple_model()
        t = Task(
            "t",
            m,
            penalties=[Penalty("p", Var("x") - Var("target"))],
            references=["target"],
        )
        assert t.references == ("target",)

    def test_pure_reference_penalty_rejected(self):
        m = simple_model()
        with pytest.raises(TaskError, match="at least one state or input"):
            Task(
                "t",
                m,
                penalties=[Penalty("p", Var("target") * 2.0)],
                references=["target"],
            )

    def test_terminal_input_rejected(self):
        m = simple_model()
        with pytest.raises(TaskError, match="terminal"):
            Task(
                "t",
                m,
                penalties=[Penalty("p", Var("u"), timing="terminal")],
            )
