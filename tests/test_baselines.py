"""Tests for the baseline platform models and reference solvers."""

import numpy as np
import pytest

from repro.baselines import (
    ALL_PLATFORMS,
    ARM_A57,
    CPU_PLATFORMS,
    GPU_PLATFORMS,
    GTX_650_TI,
    TEGRA_X2,
    TESLA_K40,
    XEON_E3,
    estimate_iteration_time,
    reference_kkt_step,
    reference_solve_qp,
    working_set_bytes,
)
from repro.compiler import translate
from repro.errors import BaselineError
from repro.robots import build_benchmark


@pytest.fixture(scope="module")
def quad_graph():
    return translate(build_benchmark("Quadrotor").transcribe(horizon=8))


class TestPlatformSpecs:
    def test_table_iv_inventory(self):
        assert len(CPU_PLATFORMS) == 2
        assert len(GPU_PLATFORMS) == 3
        assert set(ALL_PLATFORMS) == {
            "ARM Cortex A57",
            "Intel Xeon E3",
            "Tegra X2",
            "GTX 650 Ti",
            "Tesla K40",
        }

    def test_table_iv_clock_frequencies(self):
        assert ARM_A57.frequency_ghz == 2.0
        assert XEON_E3.frequency_ghz == 3.6
        assert TEGRA_X2.frequency_ghz == 0.854
        assert GTX_650_TI.frequency_ghz == 0.928
        assert TESLA_K40.frequency_ghz == 0.875

    def test_table_iv_core_counts(self):
        assert TEGRA_X2.cores == 256
        assert GTX_650_TI.cores == 768
        assert TESLA_K40.cores == 2880

    def test_table_iv_tdp(self):
        assert XEON_E3.tdp_w == 84.0
        assert GTX_650_TI.tdp_w == 110.0
        assert TESLA_K40.tdp_w == 235.0

    def test_derived_power_consistent_with_tdp(self):
        # The derived active powers should sit at or below ~105% of TDP.
        for spec in ALL_PLATFORMS.values():
            assert spec.active_power_w <= 1.05 * max(spec.tdp_w, spec.active_power_w * 0)  # noqa: E501
            assert spec.active_power_w > 0

    def test_peak_flops_ordering(self):
        assert TESLA_K40.peak_gflops > GTX_650_TI.peak_gflops > TEGRA_X2.peak_gflops
        assert XEON_E3.peak_gflops > ARM_A57.peak_gflops


class TestCostModel:
    def test_costs_positive(self, quad_graph):
        for spec in ALL_PLATFORMS.values():
            cost = estimate_iteration_time(quad_graph, spec)
            assert cost.seconds > 0
            assert cost.flops > 0

    def test_faster_platform_is_faster(self, quad_graph):
        t_arm = estimate_iteration_time(quad_graph, ARM_A57).seconds
        t_xeon = estimate_iteration_time(quad_graph, XEON_E3).seconds
        assert t_xeon < t_arm

    def test_calibration_scales_linearly(self, quad_graph):
        base = estimate_iteration_time(quad_graph, ARM_A57, calibration=1.0)
        double = estimate_iteration_time(quad_graph, ARM_A57, calibration=2.0)
        assert double.seconds == pytest.approx(2 * base.seconds)

    def test_bad_calibration(self, quad_graph):
        with pytest.raises(BaselineError):
            estimate_iteration_time(quad_graph, ARM_A57, calibration=0.0)

    def test_gpu_overhead_dominates_small_problems(self):
        g = translate(build_benchmark("MobileRobot").transcribe(horizon=8))
        cost = estimate_iteration_time(g, TEGRA_X2)
        assert cost.overhead_seconds > cost.compute_seconds

    def test_working_set_grows_with_horizon(self):
        b = build_benchmark("Hexacopter")
        small = working_set_bytes(translate(b.transcribe(horizon=8)))
        large = working_set_bytes(translate(b.transcribe(horizon=64)))
        assert large > 4 * small

    def test_cache_spill_detected_at_large_horizon(self):
        b = build_benchmark("Hexacopter")
        g = translate(b.transcribe(horizon=512))
        cost = estimate_iteration_time(g, ARM_A57)
        assert cost.cache_spilled


class TestReferenceSolvers:
    def test_kkt_step_solves_saddle(self):
        rng = np.random.default_rng(0)
        n, p = 6, 2
        A = rng.normal(size=(n, n))
        Phi = A @ A.T + n * np.eye(n)
        G = rng.normal(size=(p, n))
        r1 = rng.normal(size=n)
        r2 = rng.normal(size=p)
        dx, dnu = reference_kkt_step(Phi, G, r1, r2)
        assert np.allclose(Phi @ dx + G.T @ dnu, r1, atol=1e-9)
        assert np.allclose(G @ dx, r2, atol=1e-9)

    def test_reference_qp_equality_only(self):
        H = 2 * np.eye(2)
        g = np.zeros(2)
        G = np.array([[1.0, 1.0]])
        b = np.array([2.0])
        x, nu, lam = reference_solve_qp(H, g, G, b, None, None)
        assert np.allclose(x, [1.0, 1.0], atol=1e-9)
        assert lam.size == 0

    def test_reference_qp_with_inequalities(self):
        H = np.array([[2.0]])
        g = np.array([-8.0])
        J = np.array([[1.0]])
        d = np.array([1.0])
        x, _, lam = reference_solve_qp(H, g, None, None, J, d)
        assert x[0] == pytest.approx(1.0, abs=1e-6)
        assert lam[0] > 0
