"""Tests for the SQP + interior-point NLP solver."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.mpc import (
    Constraint,
    IPMOptions,
    InteriorPointSolver,
    Penalty,
    RobotModel,
    Task,
    TranscribedProblem,
    VarSpec,
)
from repro.symbolic import Var, cos, sin


@pytest.fixture(scope="module")
def cart_problem():
    x, v, u = Var("x"), Var("v"), Var("u")
    model = RobotModel(
        "Cart",
        states=[VarSpec("x"), VarSpec("v", -2.0, 2.0)],
        inputs=[VarSpec("u", -1.0, 1.0)],
        dynamics={"x": v, "v": u},
    )
    task = Task(
        "park",
        model,
        penalties=[
            Penalty("pos", x - 1.0, 5.0, "running"),
            Penalty("vel", v, 0.5, "running"),
            Penalty("effort", u, 0.05, "running"),
        ],
    )
    return TranscribedProblem(model, task, horizon=10, dt=0.1)


@pytest.fixture(scope="module")
def unicycle_problem():
    px, py, th = Var("px"), Var("py"), Var("th")
    v, w = Var("v"), Var("w")
    model = RobotModel(
        "Unicycle",
        states=[VarSpec("px"), VarSpec("py"), VarSpec("th")],
        inputs=[VarSpec("v", -1.0, 1.0), VarSpec("w", -2.0, 2.0)],
        dynamics={"px": v * cos(th), "py": v * sin(th), "th": w},
    )
    task = Task(
        "goto",
        model,
        penalties=[
            Penalty("gx", px - Var("tx"), 10.0, "running"),
            Penalty("gy", py - Var("ty"), 10.0, "running"),
            Penalty("ev", v, 0.05, "running"),
            Penalty("ew", w, 0.05, "running"),
        ],
        references=["tx", "ty"],
    )
    return TranscribedProblem(model, task, horizon=12, dt=0.1)


class TestOptions:
    def test_bad_max_iterations(self):
        with pytest.raises(SolverError):
            IPMOptions(max_iterations=0)

    def test_bad_armijo(self):
        with pytest.raises(SolverError):
            IPMOptions(armijo=2.0)


class TestLinearProblem:
    def test_converges(self, cart_problem):
        solver = InteriorPointSolver(cart_problem)
        res = solver.solve(np.array([0.0, 0.0]))
        assert res.converged
        assert res.kkt_residual < 1e-4

    def test_drives_to_target(self, cart_problem):
        solver = InteriorPointSolver(cart_problem)
        res = solver.solve(np.array([0.0, 0.0]))
        xs, us = cart_problem.split(res.z)
        # With |u| <= 1 from rest, x(1 s) <= 0.5; the optimizer should get
        # close to that kinematic limit and still be moving toward x = 1.
        assert xs[-1, 0] > 0.4
        assert xs[-1, 1] > 0.0
        # Input bounds are respected.
        assert np.all(us <= 1.0 + 1e-6)
        assert np.all(us >= -1.0 - 1e-6)

    def test_initial_state_pinned(self, cart_problem):
        solver = InteriorPointSolver(cart_problem)
        x0 = np.array([0.3, -0.2])
        res = solver.solve(x0)
        xs, _ = cart_problem.split(res.z)
        assert np.allclose(xs[0], x0, atol=1e-8)

    def test_dynamics_feasibility_at_solution(self, cart_problem):
        solver = InteriorPointSolver(cart_problem)
        x0 = np.zeros(2)
        res = solver.solve(x0)
        g = cart_problem.equality_constraints(res.z, x0)
        assert np.abs(g).max() < 1e-5

    def test_statistics_tracked(self, cart_problem):
        solver = InteriorPointSolver(cart_problem)
        solver.solve(np.zeros(2))
        solver.solve(np.array([0.5, 0.0]))
        assert solver.stats["solves"] == 2
        assert solver.stats["qp_iterations"] > 0

    def test_warm_start_shape_checked(self, cart_problem):
        solver = InteriorPointSolver(cart_problem)
        with pytest.raises(SolverError):
            solver.solve(np.zeros(2), z_warm=np.zeros(3))


class TestNonlinearProblem:
    def test_converges(self, unicycle_problem):
        solver = InteriorPointSolver(unicycle_problem)
        res = solver.solve(np.zeros(3), ref=np.array([1.0, 0.5]))
        assert res.converged

    def test_moves_toward_target(self, unicycle_problem):
        solver = InteriorPointSolver(unicycle_problem)
        res = solver.solve(np.zeros(3), ref=np.array([1.0, 0.5]))
        xs, _ = unicycle_problem.split(res.z)
        d0 = np.hypot(1.0, 0.5)
        d_end = np.hypot(xs[-1, 0] - 1.0, xs[-1, 1] - 0.5)
        assert d_end < 0.5 * d0

    def test_warm_start_speeds_convergence(self, unicycle_problem):
        solver = InteriorPointSolver(unicycle_problem)
        ref = np.array([1.0, 0.5])
        cold = solver.solve(np.zeros(3), ref=ref)
        warm = solver.solve(
            np.zeros(3), ref=ref, z_warm=cold.z, nu_warm=cold.nu, lam_warm=cold.lam
        )
        assert warm.iterations <= cold.iterations

    def test_hessian_modes_agree_on_solution(self, unicycle_problem):
        ref = np.array([1.0, 0.5])
        gn = InteriorPointSolver(
            unicycle_problem, IPMOptions(hessian="gauss_newton")
        ).solve(np.zeros(3), ref=ref)
        hy = InteriorPointSolver(
            unicycle_problem, IPMOptions(hessian="hybrid")
        ).solve(np.zeros(3), ref=ref)
        # Both modes land on the same optimum (the hybrid's convergence
        # *flag* can lag on this problem, but the objective must match).
        assert gn.converged
        assert gn.objective == pytest.approx(hy.objective, rel=1e-4)

    def test_residual_history_monotone_tail(self, unicycle_problem):
        solver = InteriorPointSolver(unicycle_problem)
        res = solver.solve(np.zeros(3), ref=np.array([1.0, 0.5]))
        # The last residual is the minimum of the tail (converged runs end
        # on their best iterate).
        assert res.residual_history[-1] == min(res.residual_history[-3:])


class TestConstraintActivity:
    def test_active_state_constraint_respected(self):
        # Ask the cart to overshoot a wall: the x <= 0.5 constraint binds.
        x, v, u = Var("x"), Var("v"), Var("u")
        model = RobotModel(
            "Cart",
            states=[VarSpec("x", -5.0, 0.5), VarSpec("v", -2.0, 2.0)],
            inputs=[VarSpec("u", -1.0, 1.0)],
            dynamics={"x": v, "v": u},
        )
        task = Task(
            "overshoot",
            model,
            penalties=[Penalty("pos", x - 2.0, 10.0, "running")],
        )
        p = TranscribedProblem(model, task, horizon=10, dt=0.2)
        solver = InteriorPointSolver(p)
        res = solver.solve(np.zeros(2))
        xs, _ = p.split(res.z)
        # States beyond knot 0 obey the wall (small soft-constraint slack).
        assert np.all(xs[1:, 0] <= 0.5 + 1e-3)
        # And the wall is actually reached (constraint active).
        assert xs[:, 0].max() > 0.4
