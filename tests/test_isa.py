"""Round-trip and validation tests for the 32-bit RoboX ISA."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import (
    AggFunction,
    AluFunction,
    CommInstr,
    ComputeInstr,
    MemInstr,
    Namespace,
    decode,
    encode,
)
from repro.errors import ISAError


class TestComputeEncoding:
    def test_scalar_queue_roundtrip(self):
        instr = ComputeInstr(
            function="mul",
            dest_ns=Namespace.INTERM,
            src1_ns=Namespace.STATE,
            src1_index=3,
            src1_pop=True,
            src2_ns=Namespace.INPUT,
            src2_index=5,
            src2_pop=False,
        )
        assert decode(encode(instr), "compute") == instr

    def test_scalar_immediate_roundtrip(self):
        instr = ComputeInstr(
            function="add",
            dest_ns=Namespace.GRADIENT,
            src1_ns=Namespace.INTERM,
            src1_index=1,
            immediate=200,
        )
        assert decode(encode(instr), "compute") == instr

    def test_vector_queue_roundtrip(self):
        instr = ComputeInstr(
            function="mul",
            dest_ns=Namespace.HESSIAN,
            src1_ns=Namespace.STATE,
            src1_index=0,
            src2_ns=Namespace.STATE,
            src2_index=1,
            vector=True,
            repeat=37,
        )
        assert decode(encode(instr), "compute") == instr

    def test_vector_immediate_roundtrip(self):
        instr = ComputeInstr(
            function="div",
            dest_ns=Namespace.INTERM,
            src1_ns=Namespace.INTERM,
            src1_index=2,
            vector=True,
            immediate=9,
            repeat=15,
        )
        assert decode(encode(instr), "compute") == instr

    def test_nonlinear_functions_encode(self):
        for fn in ("sin", "cos", "sqrt", "exp", "tanh"):
            instr = ComputeInstr(
                function=fn, dest_ns=0, src1_ns=Namespace.STATE, src1_index=0
            )
            assert decode(encode(instr), "compute").function == fn

    def test_unknown_function_rejected(self):
        with pytest.raises(ISAError):
            ComputeInstr(function="fma", dest_ns=0, src1_ns=0).encode()

    def test_field_overflow_rejected(self):
        with pytest.raises(ISAError, match="does not fit"):
            ComputeInstr(
                function="add", dest_ns=0, src1_ns=0, src1_index=99
            ).encode()

    def test_word_is_32bit(self):
        instr = ComputeInstr(function="add", dest_ns=7, src1_ns=7, src1_index=7)
        assert 0 <= encode(instr) < 2**32


class TestCommEncoding:
    @pytest.mark.parametrize(
        "kind",
        ["unicast", "cu_multicast", "cc_multicast", "broadcast", "cu_agg", "cc_agg"],
    )
    def test_roundtrip_all_kinds(self, kind):
        instr = CommInstr(
            kind=kind,
            src_cu=3,
            src_cc=17,
            dest_cu=5,
            dest_cc=9,
            mask=0xA5,
            agg="max",
        )
        assert decode(encode(instr), "comm") == instr

    def test_aggregation_functions(self):
        for func in ("add", "mul", "min", "max"):
            instr = CommInstr(kind="cc_agg", agg=func)
            assert decode(encode(instr), "comm").agg == func

    def test_unknown_kind(self):
        with pytest.raises(ISAError):
            CommInstr(kind="teleport").encode()


class TestMemEncoding:
    def test_load_roundtrip(self):
        instr = MemInstr(
            kind="load", namespace=Namespace.STATE, offset=12345, shift=7, burst=16
        )
        assert decode(encode(instr), "memory") == instr

    def test_store_roundtrip(self):
        instr = MemInstr(kind="store", namespace=Namespace.GRADIENT, offset=77, burst=4)
        assert decode(encode(instr), "memory") == instr

    def test_set_block_roundtrip(self):
        instr = MemInstr(kind="set_block", namespace=Namespace.REFERENCE, block=13)
        assert decode(encode(instr), "memory") == instr

    def test_end_marker(self):
        instr = MemInstr(kind="end")
        assert decode(encode(instr), "memory").kind == "end"

    def test_offset_overflow(self):
        with pytest.raises(ISAError):
            MemInstr(kind="load", offset=1 << 17).encode()


class TestDecodeValidation:
    def test_oversized_word(self):
        with pytest.raises(ISAError):
            decode(2**32, "compute")

    def test_unknown_category(self):
        with pytest.raises(ISAError):
            decode(0, "quantum")


@given(
    function=st.sampled_from(sorted(set(AluFunction.NAMES.values()))),
    dest=st.integers(0, 6),
    s1=st.integers(0, 6),
    i1=st.integers(0, 7),
    pop1=st.booleans(),
    s2=st.integers(0, 6),
    i2=st.integers(0, 7),
    pop2=st.booleans(),
)
@settings(max_examples=150, deadline=None)
def test_property_compute_roundtrip(function, dest, s1, i1, pop1, s2, i2, pop2):
    instr = ComputeInstr(
        function=function,
        dest_ns=dest,
        src1_ns=s1,
        src1_index=i1,
        src1_pop=pop1,
        src2_ns=s2,
        src2_index=i2,
        src2_pop=pop2,
    )
    assert decode(encode(instr), "compute") == instr


@given(
    kind=st.sampled_from(["load", "store"]),
    ns=st.integers(0, 7),
    offset=st.integers(0, 2**16 - 1),
    shift=st.integers(0, 31),
    burst=st.integers(1, 32),
)
@settings(max_examples=150, deadline=None)
def test_property_memory_roundtrip(kind, ns, offset, shift, burst):
    instr = MemInstr(kind=kind, namespace=ns, offset=offset, shift=shift, burst=burst)
    assert decode(encode(instr), "memory") == instr
