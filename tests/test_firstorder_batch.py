"""First-order QP subsystem, batched path: lane parity with the scalar
ADMM, the sync-free device-residency gate (CountingBackend), per-lane
iteration caps and poisoned-lane freezing, batched warm starts, the
``BatchSolver(qp_method="admm")`` seam, and cross-backend parity."""

from dataclasses import replace
from time import perf_counter

import numpy as np
import pytest

from repro.batch import BatchSolver, CountingBackend, available_backends
from repro.errors import SolverError
from repro.firstorder import solve_qp_admm, solve_qp_admm_batch
from repro.mpc.qp import QPOptions
from repro.robots import build_benchmark

ADMM_OPTS = QPOptions(
    method="admm",
    polish=False,
    admm_tolerance=1e-9,
    admm_max_iterations=20000,
)

QP_BACKENDS = [
    pytest.param(
        name,
        marks=()
        if name in available_backends()
        else pytest.mark.skip(reason=f"{name} not importable here"),
    )
    for name in ("numpy", "torch", "cupy", "jax")
]


def spd(n, seed, scale=1.0):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(n, n))
    return scale * (A @ A.T + n * np.eye(n))


def random_qp(n, p, m, seed):
    rng = np.random.default_rng(seed)
    H = spd(n, seed)
    g = rng.normal(size=n)
    G = rng.normal(size=(p, n)) if p else None
    b = rng.normal(size=p) if p else None
    J = rng.normal(size=(m, n)) if m else None
    d = rng.normal(size=m) + 1.0 if m else None
    return H, g, G, b, J, d


def stack_qps(qps):
    cols = list(zip(*qps))
    return tuple(None if c[0] is None else np.stack(c) for c in cols)


def qp_batch(B=4, n=8, p=2, m=4, seed=200):
    qps = [random_qp(n, p, m, seed + i) for i in range(B)]
    return qps, stack_qps(qps)


class TestLaneParity:
    @pytest.mark.parametrize("p,m", [(0, 0), (2, 0), (0, 4), (2, 4)])
    def test_matches_scalar_admm_per_lane(self, p, m):
        qps, stacked = qp_batch(p=p, m=m)
        res = solve_qp_admm_batch(*stacked, ADMM_OPTS)
        for i, qp in enumerate(qps):
            ref = solve_qp_admm(*qp, ADMM_OPTS)
            assert res.status[i] == "converged"
            assert ref.converged
            assert np.allclose(res.x[i], ref.x, atol=1e-5)

    def test_stats_report_cached_factorizations(self):
        _qps, stacked = qp_batch()
        res = solve_qp_admm_batch(*stacked, ADMM_OPTS)
        for st in res.stats:
            assert st.mode == "admm"
            # setup + a bounded number of rho-checkpoint rebuilds, never
            # one per iteration
            assert 1 <= st.factorizations <= 4


class TestDeviceResidency:
    def test_loop_is_sync_free_between_checkpoints(self):
        """With checkpoints disabled, host traffic is independent of the
        iteration count: more iterations must not mean more syncs."""
        _qps, stacked = qp_batch()

        def syncs(max_it):
            xp = CountingBackend()
            opts = replace(
                ADMM_OPTS, admm_tolerance=0.0, admm_max_iterations=max_it
            )
            solve_qp_admm_batch(*stacked, opts, backend=xp, sync_interval=0)
            return xp.sync_count + xp.upload_count

        assert syncs(5) == syncs(60)

    def test_checkpoint_traffic_is_bounded_by_interval(self):
        _qps, stacked = qp_batch()
        xp = CountingBackend()
        opts = replace(
            ADMM_OPTS, admm_tolerance=0.0, admm_max_iterations=100
        )
        solve_qp_admm_batch(*stacked, opts, backend=xp, sync_interval=25)
        xp2 = CountingBackend()
        solve_qp_admm_batch(*stacked, opts, backend=xp2, sync_interval=0)
        # 4 checkpoints' worth of extra traffic, not 100 iterations' worth.
        extra = (xp.sync_count + xp.upload_count) - (
            xp2.sync_count + xp2.upload_count
        )
        assert 0 < extra <= 4 * 12


class TestLaneFates:
    def test_iteration_caps_report_budget_exhausted(self):
        _qps, stacked = qp_batch()
        res = solve_qp_admm_batch(
            *stacked, ADMM_OPTS, iteration_caps=[3, 10_000, 3, 10_000]
        )
        assert res.status[0] == "budget_exhausted"
        assert res.status[2] == "budget_exhausted"
        assert res.status[1] == res.status[3] == "converged"
        assert res.iterations[0] == 3
        assert np.all(np.isfinite(res.x))

    def test_deadline_freezes_whole_batch(self):
        _qps, stacked = qp_batch()
        res = solve_qp_admm_batch(
            *stacked, ADMM_OPTS, deadline=perf_counter()
        )
        assert all(s == "budget_exhausted" for s in res.status)
        assert np.all(res.budget_exhausted)

    def test_poisoned_lane_freezes_others_converge(self):
        qps, stacked = qp_batch()
        H = stacked[0].copy()
        H[1] = np.nan
        res = solve_qp_admm_batch(H, *stacked[1:], ADMM_OPTS)
        assert res.status[1] == "failed"
        for i in (0, 2, 3):
            ref = solve_qp_admm(*qps[i], ADMM_OPTS)
            assert res.status[i] == "converged"
            assert np.allclose(res.x[i], ref.x, atol=1e-5)

    def test_max_iterations_without_caps(self):
        _qps, stacked = qp_batch()
        res = solve_qp_admm_batch(
            *stacked, replace(ADMM_OPTS, admm_max_iterations=2)
        )
        assert all(s == "max_iterations" for s in res.status)


class TestBatchedWarmStart:
    def test_warm_restart_converges_fast(self):
        _qps, stacked = qp_batch()
        cold = solve_qp_admm_batch(*stacked, ADMM_OPTS)
        assert cold.warm is not None
        rewarm = solve_qp_admm_batch(*stacked, ADMM_OPTS, warm=cold.warm)
        assert all(s == "converged" for s in rewarm.status)
        assert int(np.max(rewarm.iterations)) <= max(
            8, int(np.max(cold.iterations)) // 4
        )
        assert np.allclose(rewarm.x, cold.x, atol=1e-6)

    def test_malformed_warm_ignored(self):
        _qps, stacked = qp_batch()
        bad = {"x": np.zeros((2, 3)), "z": np.zeros((2, 2)),
               "y": np.zeros((2, 2)), "rho": np.zeros((2,))}
        res = solve_qp_admm_batch(*stacked, ADMM_OPTS, warm=bad)
        assert all(s == "converged" for s in res.status)


class TestCrossBackendParity:
    @pytest.mark.parametrize("name", QP_BACKENDS)
    def test_admm_parity(self, name):
        """Every registered backend must agree with the numpy reference
        on the batched ADMM path (absent accelerators skip with a
        reason).  The loop is seam-pure — matmul + clamp + where — so it
        runs even on immutable-array backends like jax."""
        _qps, stacked = qp_batch()
        ref = solve_qp_admm_batch(*stacked, ADMM_OPTS)
        res = solve_qp_admm_batch(*stacked, ADMM_OPTS, backend=name)
        assert list(res.status) == list(ref.status)
        assert np.array_equal(
            np.asarray(res.iterations), np.asarray(ref.iterations)
        )
        assert np.allclose(res.x, ref.x, atol=1e-6)


class TestBatchSolverSeam:
    @pytest.fixture(scope="class")
    def mobile(self):
        bench = build_benchmark("MobileRobot")
        problem = bench.transcribe(horizon=6)
        return bench, problem

    def test_invalid_method_rejected(self, mobile):
        _bench, problem = mobile
        with pytest.raises(SolverError):
            BatchSolver(problem, qp_method="sgd")

    def test_lanes_match_scalar_admm_sqp(self, mobile):
        bench, problem = mobile
        rng = np.random.default_rng(31)
        B = 3
        X0 = np.stack(
            [
                np.asarray(bench.x0, float)
                + 0.03 * rng.standard_normal(problem.nx)
                for _ in range(B)
            ]
        )
        scalar = bench.make_solver(problem)
        scalar.options = replace(
            scalar.options, qp=replace(scalar.options.qp, method="admm")
        )
        batch = BatchSolver(problem, qp_method="admm")
        results, report = batch.solve(X0, refs=[bench.ref] * B)
        assert report.lanes == B
        for i, got in enumerate(results):
            ref = scalar.solve(X0[i], ref=bench.ref)
            assert got.status == "converged"
            assert ref.status == "converged"
            assert np.max(np.abs(got.z - ref.z)) < 1e-2
