"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve", "MobileRobot"])
        assert args.horizon == 16
        assert args.steps == 10

    def test_compile_flags(self):
        args = build_parser().parse_args(
            ["compile", "Quadrotor", "--cus", "64", "--no-interconnect"]
        )
        assert args.cus == 64
        assert args.no_interconnect

    def test_table_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "7"])

    def test_figure_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "3"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "MobileRobot" in out and "Hexacopter" in out

    def test_table3(self, capsys):
        assert main(["table", "3"]) == 0
        assert "penalties" in capsys.readouterr().out

    def test_table4(self, capsys):
        assert main(["table", "4"]) == 0
        out = capsys.readouterr().out
        assert "RoboX" in out and "Tesla K40" in out

    def test_solve_runs_closed_loop(self, capsys):
        code = main(["solve", "MobileRobot", "--horizon", "8", "--steps", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "final state" in out
        assert out.count("step") >= 3

    def test_solve_unknown_benchmark(self, capsys):
        assert main(["solve", "WarpDrive"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_compile_prints_schedule(self, capsys):
        code = main(
            ["compile", "MobileRobot", "--horizon", "8", "--cus", "16",
             "--cus-per-cc", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cycles / IPM iteration" in out
        assert "M-DFG nodes" in out

    def test_compile_ablation_flag(self, capsys):
        main(
            ["compile", "MobileRobot", "--horizon", "8", "--cus", "16",
             "--cus-per-cc", "4"]
        )
        base = capsys.readouterr().out
        main(
            ["compile", "MobileRobot", "--horizon", "8", "--cus", "16",
             "--cus-per-cc", "4", "--no-interconnect"]
        )
        ablated = capsys.readouterr().out

        def cycles(text):
            line = next(l for l in text.splitlines() if "cycles" in l)
            return float(line.split(":")[1].strip().replace(",", ""))

        assert cycles(ablated) > cycles(base)

    def test_compile_unknown_benchmark(self, capsys):
        assert main(["compile", "WarpDrive"]) == 2
