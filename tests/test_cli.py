"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve", "MobileRobot"])
        assert args.horizon == 16
        assert args.steps == 10

    def test_compile_flags(self):
        args = build_parser().parse_args(
            ["compile", "Quadrotor", "--cus", "64", "--no-interconnect"]
        )
        assert args.cus == 64
        assert args.no_interconnect

    def test_table_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "7"])

    def test_figure_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "3"])

    def test_serve_sim_defaults(self):
        args = build_parser().parse_args(["serve-sim"])
        assert args.sessions == 20
        assert args.ticks == 20
        assert args.deadline_ms == 50.0
        assert args.workers == 0
        assert args.backend == "thread"
        assert args.robots is None
        assert not args.json

    def test_serve_sim_backend_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-sim", "--backend", "mpi"])

    def test_serve_sim_qp_method(self):
        args = build_parser().parse_args(["serve-sim"])
        assert args.qp_method == "ipm"
        args = build_parser().parse_args(
            ["serve-sim", "--qp-method", "admm"]
        )
        assert args.qp_method == "admm"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-sim", "--qp-method", "sgd"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "MobileRobot" in out and "Hexacopter" in out

    def test_table3(self, capsys):
        assert main(["table", "3"]) == 0
        assert "penalties" in capsys.readouterr().out

    def test_table4(self, capsys):
        assert main(["table", "4"]) == 0
        out = capsys.readouterr().out
        assert "RoboX" in out and "Tesla K40" in out

    def test_solve_runs_closed_loop(self, capsys):
        code = main(["solve", "MobileRobot", "--horizon", "8", "--steps", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "final state" in out
        assert out.count("step") >= 3

    def test_solve_unknown_benchmark(self, capsys):
        assert main(["solve", "WarpDrive"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_solve_json_output_parses(self, capsys):
        code = main(
            ["solve", "MobileRobot", "--horizon", "8", "--steps", "3", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["benchmark"] == "MobileRobot"
        assert doc["horizon"] == 8
        assert len(doc["steps"]) == 3
        step = doc["steps"][0]
        assert {
            "step",
            "objective",
            "iterations",
            "qp_iterations",
            "converged",
            "status",
            "kkt_residual",
            "solve_time_s",
            "input",
        } <= set(step)
        assert step["solve_time_s"] > 0
        totals = doc["totals"]
        assert totals["solves"] == 3
        assert totals["sqp_iterations"] >= 3
        assert totals["converged_steps"] == sum(
            1 for s in doc["steps"] if s["converged"]
        )
        assert len(doc["final_state"]) > 0

    def test_compile_prints_schedule(self, capsys):
        code = main(
            ["compile", "MobileRobot", "--horizon", "8", "--cus", "16",
             "--cus-per-cc", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cycles / IPM iteration" in out
        assert "M-DFG nodes" in out

    def test_compile_ablation_flag(self, capsys):
        main(
            ["compile", "MobileRobot", "--horizon", "8", "--cus", "16",
             "--cus-per-cc", "4"]
        )
        base = capsys.readouterr().out
        main(
            ["compile", "MobileRobot", "--horizon", "8", "--cus", "16",
             "--cus-per-cc", "4", "--no-interconnect"]
        )
        ablated = capsys.readouterr().out

        def cycles(text):
            line = next(l for l in text.splitlines() if "cycles" in l)
            return float(line.split(":")[1].strip().replace(",", ""))

        assert cycles(ablated) > cycles(base)

    def test_compile_unknown_benchmark(self, capsys):
        assert main(["compile", "WarpDrive"]) == 2


class TestServeSim:
    def test_unknown_robot_rejected(self, capsys):
        assert main(["serve-sim", "--robots", "WarpDrive,MobileRobot"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_small_fleet_completes(self, capsys, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        code = main(
            [
                "serve-sim",
                "--sessions",
                "2",
                "--ticks",
                "2",
                "--robots",
                "MobileRobot",
                "--horizon",
                "6",
                "--deadline-ms",
                "200",
                "--trace",
                trace,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serve summary" in out
        assert "sessions:        2" in out
        assert "solve latency" in out
        # JSONL trace: 2 session records + 4 steps + 2 ticks + 1 summary.
        with open(trace) as fh:
            records = [json.loads(line) for line in fh]
        types = [r["type"] for r in records]
        assert types.count("session") == 2
        assert types.count("step") == 4
        assert types.count("tick") == 2
        assert types.count("summary") == 1

    def test_admm_fleet_completes(self, capsys):
        code = main(
            [
                "serve-sim",
                "--sessions",
                "1",
                "--ticks",
                "2",
                "--robots",
                "MobileRobot",
                "--horizon",
                "5",
                "--deadline-ms",
                "500",
                "--qp-method",
                "admm",
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["crashed"] == []
        assert doc["metrics"]["fleet"]["steps"] == 2

    def test_json_report(self, capsys):
        code = main(
            [
                "serve-sim",
                "--sessions",
                "1",
                "--ticks",
                "1",
                "--robots",
                "MobileRobot",
                "--horizon",
                "6",
                "--deadline-ms",
                "200",
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["sessions"] == 1
        assert doc["crashed"] == []
        assert doc["metrics"]["fleet"]["steps"] == 1


class TestBackends:
    def test_lists_variants_and_conform_paths(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "numpy" in out and "(selected)" in out
        assert "numpy, numpy:float32, numpy:float64" in out
        # numpy owns the unsuffixed batch paths, never the accelerators'.
        assert "batch_qp" in out and "batch_admm" in out
        assert "batch_qp_torch" not in out.split("absent")[0]
        # Absent accelerators are reported, jax included.
        for name in ("torch", "cupy", "jax"):
            from repro.batch import available_backends

            if name not in available_backends():
                assert f"{name}" in out and "absent" in out


class TestConform:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["conform", "run"])
        assert args.cases == 25 and args.seed == 0
        assert args.paths is None and args.robots is None
        assert args.out_dir == "conform/failures"
        assert not args.no_shrink and not args.json

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["conform"])

    def test_paths_listing(self, capsys):
        assert main(["conform", "paths"]) == 0
        out = capsys.readouterr().out
        assert "dense_kkt" in out and "[baseline]" in out
        assert "accel_sim" in out
        assert "admm_qp" in out and "batch_admm" in out

    def test_paths_family_filter(self, capsys):
        assert main(["conform", "paths", "--family", "qp"]) == 0
        out = capsys.readouterr().out
        assert "dense_kkt" in out and "admm_qp" in out
        assert "accel_sim" not in out

    def test_paths_unknown_family_exits_2(self, capsys):
        assert main(["conform", "paths", "--family", "qqp"]) == 2
        err = capsys.readouterr().err
        assert "qp" in err and "dynamics" in err

    def test_run_small_budget(self, capsys, tmp_path):
        code = main(
            [
                "conform",
                "run",
                "--cases",
                "2",
                "--seed",
                "0",
                "--robots",
                "MobileRobot",
                "--paths",
                "dense_kkt,banded_kkt",
                "--out-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pass=2" in out and "fail=0" in out

    def test_run_json_report(self, capsys, tmp_path):
        code = main(
            [
                "conform",
                "run",
                "--cases",
                "1",
                "--robots",
                "CartPole",
                "--paths",
                "float_dynamics,accel_sim",
                "--out-dir",
                str(tmp_path),
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["counts"]["pass"] == 1
        assert doc["fixed_point"] == {"word_bits": 32, "fraction_bits": 17}

    def test_run_unknown_path_exits_2(self, capsys, tmp_path):
        code = main(
            ["conform", "run", "--paths", "warp_drive", "--out-dir", str(tmp_path)]
        )
        assert code == 2
        assert "unknown path" in capsys.readouterr().err

    def test_bad_fxp_bits_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "conform",
                    "run",
                    "--cases",
                    "1",
                    "--fxp-bits",
                    "banana",
                    "--out-dir",
                    str(tmp_path),
                ]
            )

    def test_replay_missing_file_exits_2(self, capsys, tmp_path):
        code = main(["conform", "replay", str(tmp_path / "nope.json")])
        assert code == 2
        assert "not found" in capsys.readouterr().err
