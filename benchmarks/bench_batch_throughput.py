"""Batched vs scalar MPC solve throughput (the `repro.batch` tentpole).

Sweeps batch size B over {1, 4, 16, 64} on two robots, solving B
perturbed instances of the benchmark problem cold-start through

* the scalar path: one :class:`InteriorPointSolver` solve per instance
  (what the serve engine's inline backend does), and
* the batched path: one :class:`BatchSolver` call over all B lanes.

Reported figure of merit is solves/sec; the acceptance gate is the
batched path at B=16 clearing 2x the scalar path on at least one robot.

Deliberately free of pytest-benchmark: the CI batch-smoke job runs on a
bare numpy+pytest install, so timing is plain ``perf_counter`` over a
fixed, seeded instance set (see conftest's randomness policy).
"""

from time import perf_counter

import numpy as np
import pytest

from conftest import banner, make_rng
from repro.batch import BatchSolver, available_backends, solve_qp_batch
from repro.robots import build_benchmark

BATCH_SIZES = (1, 4, 16, 64)
#: Device-scale lane counts for the per-backend QP sweep (slow lane).
LARGE_BATCH_SIZES = (256, 1024, 4096)
ROBOTS = (("MobileRobot", 8), ("CartPole", 20))
X0_NOISE = 0.02


def _instances(bench, problem, B, rng):
    x0 = np.asarray(bench.x0, dtype=float)
    return np.stack(
        [x0 + X0_NOISE * rng.standard_normal(problem.nx) for _ in range(B)]
    )


def _measure(robot, horizon, bench, problem, scalar, batch, ref, B, rng):
    X0 = _instances(bench, problem, B, rng)
    refs = [ref] * B if ref is not None else None

    t0 = perf_counter()
    results, report = batch.solve(X0, refs=refs)
    t_batch = perf_counter() - t0

    t0 = perf_counter()
    s_results = [scalar.solve(X0[i], ref=ref) for i in range(B)]
    t_scalar = perf_counter() - t0

    # Same fates lane-for-lane, or the comparison is meaningless.
    agree = sum(r.status == s.status for r, s in zip(results, s_results))
    return {
        "robot": robot,
        "horizon": horizon,
        "B": B,
        "batch_sps": B / t_batch,
        "scalar_sps": B / t_scalar,
        "speedup": t_scalar / t_batch,
        "qp_efficiency": report.qp_efficiency,
        "status_agree": agree / B,
    }


def _setup(robot, horizon, offset):
    bench = build_benchmark(robot)
    problem = bench.transcribe(horizon=horizon)
    scalar = bench.make_solver(problem)
    batch = BatchSolver(problem, scalar.options)
    ref = bench.ref if problem.nref else None
    rng = make_rng(offset=900 + offset)

    # Warm both code paths once (imports, caches) off the clock.
    warm = _instances(bench, problem, 2, rng)
    batch.solve(warm, refs=[ref] * 2 if ref is not None else None)
    scalar.solve(warm[0], ref=ref)
    return bench, problem, scalar, batch, ref, rng


def run_sweep():
    rows = []
    for offset, (robot, horizon) in enumerate(ROBOTS):
        ctx = _setup(robot, horizon, offset)
        for B in BATCH_SIZES:
            rows.append(_measure(robot, horizon, *ctx[:5], B, ctx[5]))
    return rows


def remeasure_at(B):
    """Fresh B-lane measurement per robot (retry lane for the CI gate)."""
    rows = []
    for offset, (robot, horizon) in enumerate(ROBOTS):
        ctx = _setup(robot, horizon, 100 + offset)
        rows.append(_measure(robot, horizon, *ctx[:5], B, ctx[5]))
    return rows


def test_batch_throughput():
    rows = run_sweep()
    banner("repro.batch: batched vs scalar solve throughput")
    print(
        f"{'robot':>12} {'N':>3} {'B':>4} {'batch/s':>9} {'scalar/s':>9} "
        f"{'speedup':>8} {'qp_eff':>7} {'agree':>6}"
    )
    for r in rows:
        print(
            f"{r['robot']:>12} {r['horizon']:>3} {r['B']:>4} "
            f"{r['batch_sps']:>9.1f} {r['scalar_sps']:>9.1f} "
            f"{r['speedup']:>7.2f}x {r['qp_efficiency']:>6.0%} "
            f"{r['status_agree']:>6.0%}"
        )

    # Batched and scalar solves must meet the same fate on (nearly) every
    # lane; roundoff may flip a borderline lane's final iteration.
    for r in rows:
        assert r["status_agree"] >= 0.9, r

    # Acceptance gate: >= 2x over the scalar inline path at B=16 on at
    # least one robot.  One fresh re-measure before failing — a transient
    # co-tenant on a shared runner can depress a single timing window.
    at_16 = [r for r in rows if r["B"] == 16]
    best = max(r["speedup"] for r in at_16)
    if best < 2.0:
        retry = remeasure_at(16)
        for r in retry:
            print(
                f"retry {r['robot']:>12} B=16: {r['speedup']:.2f}x "
                f"({r['batch_sps']:.1f} vs {r['scalar_sps']:.1f} solves/s)"
            )
        best = max(best, max(r["speedup"] for r in retry))
    assert best >= 2.0, f"batched speedup at B=16 only {best:.2f}x"

    # Throughput must not collapse as B grows on the fast robot.
    mobile = [r for r in rows if r["robot"] == "MobileRobot"]
    assert mobile[-1]["batch_sps"] > mobile[0]["batch_sps"]


def _qp_stack(B, rng):
    """B perturbed replicas of MobileRobot's first QP subproblem.

    A full SQP solve at B=4096 is minutes of CPU; one QP iteration-capped
    batch is the device-scale unit of work the backends actually differ
    on, and it keeps the slow lane under a minute per backend.
    """
    bench = build_benchmark("MobileRobot")
    problem = bench.transcribe(horizon=8)
    solver = bench.make_solver(problem)
    (H, g, G, b, J, d, bw), _perm = solver.first_qp_subproblem(
        bench.x0, bench.ref
    )
    rep = lambda M: np.repeat(np.asarray(M, dtype=float)[None], B, axis=0)
    g_stack = rep(g)
    g_stack += 0.01 * rng.standard_normal(g_stack.shape)
    args = tuple(
        None if M is None else rep(M) for M in (H, G, b, J, d)
    )
    return (args[0], g_stack) + args[1:], bw


@pytest.mark.slow
def test_backend_throughput_large_batches():
    """Device-scale QP sweep: B in {256, 1024, 4096}, one column per
    registered array backend (numpy always; torch/cupy when importable)."""
    backends = available_backends()
    rng = make_rng(offset=950)

    rows = []
    for B in LARGE_BATCH_SIZES:
        qp_args, bw = _qp_stack(B, rng)
        row = {"B": B}
        for name in backends:
            # One off-the-clock warm call per (backend, B) for allocator
            # and kernel-compile effects, then the timed solve.
            solve_qp_batch(*qp_args, bandwidth=bw, backend=name)
            t0 = perf_counter()
            res = solve_qp_batch(*qp_args, bandwidth=bw, backend=name)
            row[name] = B / (perf_counter() - t0)
            row[f"{name}_converged"] = sum(
                s == "converged" for s in res.status
            ) / B
        rows.append(row)

    banner("repro.batch: per-backend QP throughput at device-scale B")
    head = f"{'B':>6}" + "".join(f" {n + ' qp/s':>16}" for n in backends)
    print(head)
    for row in rows:
        print(
            f"{row['B']:>6}"
            + "".join(f" {row[n]:>16.1f}" for n in backends)
        )
    absent = [n for n in ("torch", "cupy") if n not in backends]
    if absent:
        print(f"(not importable here, columns omitted: {', '.join(absent)})")

    for row in rows:
        for name in backends:
            assert row[f"{name}_converged"] >= 0.99, (name, row)
    # Vectorization must keep paying off: per-lane cost at B=4096 must
    # not exceed 3x the per-lane cost at B=256 on any backend.
    for name in backends:
        assert rows[-1][name] > rows[0][name] / 3.0, name
