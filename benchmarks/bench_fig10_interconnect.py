"""Figure 10: ablation of the compute-enabled on-chip interconnect (N=1024)."""

import pytest

from conftest import banner
from repro.experiments import figure10, render_figure


def test_figure10(benchmark):
    fig = benchmark.pedantic(figure10, rounds=1, iterations=1)
    banner("Figure 10: Compute-enabled interconnect ablation (N = 1024)")
    print(render_figure(fig))
    print(
        "\npaper reference: 25.2x average without vs 38.7x with the "
        "interconnect ALUs (~35% average performance increase)"
    )
    with_ic = fig.geomean["With Compute-Enabled Interconnect"]
    without = fig.geomean["Without Compute-Enabled Interconnect"]
    assert with_ic > without
    gain = with_ic / without
    assert 1.15 < gain < 1.7, f"interconnect gain {gain:.2f}x out of range"
    for b in fig.series["With Compute-Enabled Interconnect"]:
        assert (
            fig.series["With Compute-Enabled Interconnect"][b]
            > fig.series["Without Compute-Enabled Interconnect"][b]
        ), f"interconnect must help {b}"
