"""Micro-benchmarks of the from-scratch solver kernels.

Times the actual Python implementations of the Eq. 6 pipeline pieces (the
same kernels the paper maps onto the accelerator): Cholesky factorization,
the triangular substitutions, and one full QP interior-point solve.
"""

import numpy as np
import pytest
from conftest import make_rng

from repro.mpc import cholesky, cholesky_solve, forward_substitution
from repro.mpc.qp import solve_qp
from repro.robots import build_benchmark


def spd(n, seed=0):
    rng = make_rng(seed)
    A = rng.normal(size=(n, n))
    return A @ A.T + n * np.eye(n)


@pytest.mark.parametrize("n", [32, 128])
def test_cholesky(benchmark, n):
    A = spd(n)
    L = benchmark(cholesky, A)
    assert np.allclose(L @ L.T, A, atol=1e-8)


@pytest.mark.parametrize("n", [32, 128])
def test_triangular_solve(benchmark, n):
    A = spd(n, seed=1)
    L = cholesky(A)
    b = np.ones(n)
    y = benchmark(forward_substitution, L, b)
    assert np.allclose(L @ y, b, atol=1e-8)


def test_kkt_solve(benchmark):
    """Factor + two substitutions: the per-IPM-iteration core of Eq. 6."""
    n = 96
    A = spd(n, seed=2)
    b = np.ones(n)

    def kkt():
        L = cholesky(A)
        return cholesky_solve(L, b)

    x = benchmark(kkt)
    assert np.allclose(A @ x, b, atol=1e-7)


def test_banded_cholesky_asymptotics(benchmark):
    """The sparsity-exploiting factorization the cost model assumes:
    O(n band^2) instead of O(n^3)."""
    from repro.mpc.banded import banded_cholesky, to_banded

    n, band = 256, 8
    rng = make_rng(9)
    A = np.zeros((n, n))
    for d in range(1, band + 1):
        vals = rng.uniform(-1.0, 1.0, size=n - d)
        idx = np.arange(n - d)
        A[idx + d, idx] = vals
        A[idx, idx + d] = vals
    A += (2.0 * band + 2.0) * np.eye(n)
    Ab = to_banded(A, band)
    L = benchmark(banded_cholesky, Ab)
    assert L.shape == (band + 1, n)


def test_qp_subproblem(benchmark):
    """One Mehrotra IPM solve of a box-constrained QP (SQP inner loop)."""
    n = 60
    H = spd(n, seed=3)
    g = np.linspace(-1, 1, n)
    J = np.vstack([np.eye(n), -np.eye(n)])
    d = np.full(2 * n, 0.5)
    res = benchmark(solve_qp, H, g, None, None, J, d)
    assert res.converged


def test_full_mpc_iteration(benchmark):
    """One warm SQP iteration of the MobileRobot benchmark at N = 32."""
    b = build_benchmark("MobileRobot")
    p = b.transcribe(horizon=32)
    solver = b.make_solver(p, max_iterations=1)
    cold = b.make_solver(p).solve(b.x0, ref=b.ref)

    def one_iteration():
        return solver.solve(b.x0, ref=b.ref, z_warm=cold.z)

    res = benchmark(one_iteration)
    assert res.iterations == 1


def banded_spd(n, band, seed=9):
    rng = make_rng(seed)
    A = np.zeros((n, n))
    for off in range(1, band + 1):
        vals = rng.uniform(-1.0, 1.0, size=n - off)
        idx = np.arange(n - off)
        A[idx + off, idx] = vals
        A[idx, idx + off] = vals
    A += (2.0 * band + 2.0) * np.eye(n)
    return A


@pytest.mark.parametrize("band", [8, 24])
def test_blocked_banded_factor(benchmark, band):
    """The blocked banded factorization the QP hot loop runs per iteration
    (tile Cholesky + precomputed tile inverses)."""
    from repro.mpc.banded import BandedCholeskyFactor, to_banded

    n = 512
    Ab = to_banded(banded_spd(n, band), band)
    F = benchmark(BandedCholeskyFactor, Ab)
    assert F.n == n


def test_blocked_banded_multi_rhs_solve(benchmark):
    """Banded solve against a wide RHS block — the Schur-complement
    assembly Phi^-1 G^T that dominates the dense path's substitutions."""
    from repro.mpc.banded import BandedCholeskyFactor, to_banded

    n, band, nrhs = 512, 16, 128
    A = banded_spd(n, band, seed=11)
    F = BandedCholeskyFactor(to_banded(A, band))
    B = np.linspace(-1.0, 1.0, n * nrhs).reshape(n, nrhs)
    X = benchmark(F.solve, B)
    assert np.allclose(A @ X, B, atol=1e-7)
