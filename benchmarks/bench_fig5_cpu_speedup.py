"""Figure 5: speedup of Xeon E3 and RoboX over the ARM A57 baseline (N=32)."""

import pytest

from conftest import banner
from repro.experiments import figure5, render_figure


def test_figure5(benchmark):
    fig = benchmark.pedantic(figure5, rounds=1, iterations=1)
    banner("Figure 5: Speedup over ARM A57 baseline (N = 32)")
    print(render_figure(fig))
    print(
        "\npaper reference: RoboX geomean 29.4x (range 6.2x-79.1x), "
        "Xeon ~4x, MobileRobot lowest, Hexacopter among the highest"
    )
    assert fig.geomean["RoboX"] == pytest.approx(29.4, rel=0.02)
    assert fig.geomean["Xeon"] == pytest.approx(29.4 / 7.3, rel=0.05)
    robox = fig.series["RoboX"]
    assert robox["MobileRobot"] == min(robox.values())
    top_two = sorted(robox, key=robox.get, reverse=True)[:2]
    assert {"Hexacopter", "Quadrotor"} & set(top_two)
