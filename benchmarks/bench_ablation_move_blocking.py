"""Ablation: move-blocking MPC (paper §IX, ref. [77]).

The paper classes move blocking among the "algorithmic approximation
techniques [that] deliver faster performance at the cost of control
accuracy" and notes RoboX is orthogonal to them.  This bench quantifies the
trade on the accelerator: per-iteration cycles vs. objective degradation as
the blocking factor grows.
"""

import pytest

from conftest import banner
from repro.compiler import compile_problem
from repro.mpc import InteriorPointSolver, TranscribedProblem
from repro.robots import build_benchmark

FACTORS = (1, 2, 4, 8)


def run_sweep():
    bench = build_benchmark("MobileRobot")
    rows = []
    for B in FACTORS:
        p = TranscribedProblem(
            bench.model, bench.task, horizon=32, dt=bench.dt, move_block=B
        )
        res = InteriorPointSolver(p).solve(bench.x0, ref=bench.ref)
        _, _, sched = compile_problem(p)
        rows.append(
            {
                "block": B,
                "nz": p.nz,
                "objective": res.objective,
                "converged": res.converged,
                "cycles": sched.cycles_per_iteration,
            }
        )
    return rows


def test_move_blocking_ablation(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    banner("Ablation: move blocking (MobileRobot, N = 32)")
    print(f"{'B':>3} {'nz':>5} {'objective':>12} {'cycles/iter':>14} {'vs B=1':>8}")
    base = rows[0]["cycles"]
    for r in rows:
        print(
            f"{r['block']:>3} {r['nz']:>5} {r['objective']:>12.4f} "
            f"{r['cycles']:>14,.0f} {base / r['cycles']:>7.2f}x"
        )
    print(
        "\npaper framing: approximation buys solver speed at a small control-"
        "accuracy cost; RoboX composes with it (the blocked problem compiles "
        "to a smaller solver template)"
    )
    assert all(r["converged"] for r in rows)
    objectives = [r["objective"] for r in rows]
    cycles = [r["cycles"] for r in rows]
    # Cost degrades monotonically but stays within 10%; cycles shrink.
    assert objectives == sorted(objectives)
    assert objectives[-1] < objectives[0] * 1.10
    assert cycles[-1] < cycles[0]
