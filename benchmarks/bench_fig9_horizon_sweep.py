"""Figure 9: RoboX speedup over the ARM A57 vs. prediction horizon."""

import pytest

from conftest import banner
from repro.experiments import HORIZON_SWEEP, figure9, render_figure


def test_figure9(benchmark):
    fig = benchmark.pedantic(
        figure9, kwargs={"horizons": HORIZON_SWEEP}, rounds=1, iterations=1
    )
    banner("Figure 9: RoboX speedup over ARM A57 vs. prediction horizon")
    print(render_figure(fig))
    print(
        "\npaper reference: geomean grows from 29.4x at 32 steps to 38.7x at "
        "1024 steps; the Hexacopter shows the greatest change"
    )
    g32 = fig.geomean["32 steps"]
    g1024 = fig.geomean["1024 steps"]
    assert g32 == pytest.approx(29.4, rel=0.02)
    assert g1024 > g32, "speedup must grow with the horizon"
    assert g1024 / g32 > 1.15
    # The big 12-state UAV models gain from longer horizons (more exposed
    # parallelism + the ARM's cache spill); the tiny MobileRobot gains least.
    growth = {
        b: fig.series["1024 steps"][b] / fig.series["32 steps"][b]
        for b in fig.series["32 steps"]
    }
    ranked = sorted(growth, key=growth.get, reverse=True)
    assert {"Hexacopter", "Quadrotor"} & set(ranked[:3])
    assert growth["Hexacopter"] > growth["MobileRobot"]
    assert growth["MobileRobot"] == min(growth.values())
