"""Table IV: specifications of the baselines and RoboX."""

from conftest import banner
from repro.experiments import render_table, table4


def test_table4(benchmark):
    rows = benchmark(table4)
    banner("Table IV: Specifications of the baselines and RoboX")
    print(render_table(rows))
    robox = next(r for r in rows if r["platform"] == "RoboX")
    assert robox["cores"] == 256
    assert robox["clock_ghz"] == 1.0
    assert robox["tdp_w"] == 3.4
    assert robox["technology_nm"] == 45
    assert robox["lut_entries"] == 4096
    names = {r["platform"] for r in rows}
    assert names == {
        "ARM Cortex A57",
        "Intel Xeon E3",
        "Tegra X2",
        "GTX 650 Ti",
        "Tesla K40",
        "RoboX",
    }
