"""IPM-vs-ADMM throughput crossover for batched QP solving.

The first-order subsystem (`repro.firstorder`) trades per-iteration cost
for iteration count: one batched ADMM iteration is a handful of matmuls
and clamps against a cached inverse, while one batched IPM iteration
re-factors the KKT system.  The crossover question is *where* the cheap
iterations win: as batch size B grows the matmul-only inner loop
amortizes better, and as the tolerance loosens ADMM stops earlier while
the IPM's factorization floor stays put.

This bench sweeps B x tolerance on perturbed replicas of MobileRobot's
first SQP subproblem and reports qp/s for both methods per registered
array backend.  The acceptance gate is ADMM exceeding IPM throughput at
B=256 / tol=1e-3 on the numpy backend — the operating point the serving
tier's batched path targets for large fleets.

Deliberately free of pytest-benchmark (the CI smoke jobs run on a bare
numpy+pytest install); timings are plain ``perf_counter`` over fixed,
seeded instance sets (see conftest's randomness policy).
"""

from dataclasses import replace
from time import perf_counter

import numpy as np
import pytest

from conftest import banner, make_rng
from repro.batch import available_backends, solve_qp_batch
from repro.firstorder import solve_qp_admm, solve_qp_admm_batch
from repro.robots import build_benchmark

#: stiff robots for the equilibration table — large inertia ratios and
#: mixed unit scales push the stacked-data norm spread past the gate
STIFF_ROBOTS = ("Manipulator", "Humanoid")

#: fast-lane sweep; large-B points live in the slow lane below
BATCH_SIZES = (16, 64, 256)
LARGE_BATCH_SIZES = (1024, 4096)
TOLERANCES = (1e-3, 1e-5)
#: acceptance operating point: (B, tolerance) where ADMM must beat IPM
GATE_POINT = (256, 1e-3)


def _qp_stack(B, rng):
    """B perturbed replicas of MobileRobot's first QP subproblem."""
    bench = build_benchmark("MobileRobot")
    problem = bench.transcribe(horizon=8)
    solver = bench.make_solver(problem)
    (H, g, G, b, J, d, bw), _perm = solver.first_qp_subproblem(
        bench.x0, bench.ref
    )
    rep = lambda M: np.repeat(np.asarray(M, dtype=float)[None], B, axis=0)
    g_stack = rep(g)
    g_stack += 0.01 * rng.standard_normal(g_stack.shape)
    args = tuple(None if M is None else rep(M) for M in (H, G, b, J, d))
    return (args[0], g_stack) + args[1:], bw, solver.options.qp


def _measure_point(B, tol, backend, rng):
    """One (B, tolerance, backend) cell: qp/s for both methods."""
    qp_args, bw, base_opts = _qp_stack(B, rng)
    ipm_opts = replace(base_opts, tolerance=tol, polish=False)
    admm_opts = replace(
        base_opts, method="admm", polish=False, admm_tolerance=tol
    )

    # One off-the-clock warm call per method (allocator, kernel compiles).
    solve_qp_batch(*qp_args, ipm_opts, bandwidth=bw, backend=backend)
    t0 = perf_counter()
    ipm = solve_qp_batch(*qp_args, ipm_opts, bandwidth=bw, backend=backend)
    ipm_sps = B / (perf_counter() - t0)

    solve_qp_admm_batch(*qp_args, admm_opts, backend=backend)
    t0 = perf_counter()
    admm = solve_qp_admm_batch(*qp_args, admm_opts, backend=backend)
    admm_sps = B / (perf_counter() - t0)

    conv = lambda res: sum(s == "converged" for s in res.status) / B
    return {
        "B": B,
        "tol": tol,
        "backend": backend,
        "ipm_sps": ipm_sps,
        "admm_sps": admm_sps,
        "ratio": admm_sps / ipm_sps,
        "ipm_conv": conv(ipm),
        "admm_conv": conv(admm),
    }


def run_sweep(batch_sizes, offset=0):
    rows = []
    for backend in available_backends():
        for B in batch_sizes:
            for tol in TOLERANCES:
                rng = make_rng(offset=970 + offset)
                rows.append(_measure_point(B, tol, backend, rng))
    return rows


def _print_table(rows, title):
    banner(title)
    print(
        f"{'backend':>8} {'B':>6} {'tol':>7} {'ipm qp/s':>10} "
        f"{'admm qp/s':>10} {'admm/ipm':>9} {'ipm conv':>9} {'admm conv':>9}"
    )
    for r in rows:
        print(
            f"{r['backend']:>8} {r['B']:>6} {r['tol']:>7.0e} "
            f"{r['ipm_sps']:>10.1f} {r['admm_sps']:>10.1f} "
            f"{r['ratio']:>8.2f}x {r['ipm_conv']:>9.0%} {r['admm_conv']:>9.0%}"
        )


def test_qp_crossover():
    rows = run_sweep(BATCH_SIZES)
    _print_table(rows, "repro.firstorder: IPM vs ADMM throughput crossover")

    # Both solvers must actually solve the instances they are timed on.
    for r in rows:
        assert r["ipm_conv"] >= 0.99, r
        assert r["admm_conv"] >= 0.99, r

    # Acceptance gate: at the serving tier's large-fleet operating point
    # (B=256, tol=1e-3, numpy), the matmul-only ADMM iteration must beat
    # the factorization-bound IPM.  One fresh re-measure before failing —
    # a transient co-tenant can depress a single timing window.
    gB, gtol = GATE_POINT
    gate = [
        r
        for r in rows
        if r["backend"] == "numpy" and r["B"] == gB and r["tol"] == gtol
    ]
    assert gate, "gate point missing from sweep"
    ratio = gate[0]["ratio"]
    if ratio <= 1.0:
        retry = _measure_point(gB, gtol, "numpy", make_rng(offset=971))
        print(
            f"retry numpy B={gB} tol={gtol:.0e}: "
            f"{retry['admm_sps']:.1f} vs {retry['ipm_sps']:.1f} qp/s"
        )
        ratio = max(ratio, retry["ratio"])
    assert ratio > 1.0, (
        f"ADMM only {ratio:.2f}x of IPM at B={gB}, tol={gtol:.0e}"
    )

    # The crossover must move ADMM's way as B grows: its relative
    # advantage at the largest fast-lane B must beat the smallest.
    for tol in TOLERANCES:
        series = [
            r for r in rows if r["backend"] == "numpy" and r["tol"] == tol
        ]
        assert series[-1]["ratio"] > series[0]["ratio"] / 3.0, series


def _first_subproblem(robot, horizon=6):
    bench = build_benchmark(robot)
    problem = bench.transcribe(horizon=horizon)
    solver = bench.make_solver(problem)
    (H, g, G, b, J, d, _bw), _perm = solver.first_qp_subproblem(
        bench.x0, bench.ref
    )
    return (H, g, G, b, J, d), solver.options.qp


def _stiff_rows():
    """Pre/post-equilibration ADMM iteration counts on the stiff robots.

    Iteration counts (not wall time) are the honest metric here: the Ruiz
    sweeps are one-time setup work, so the win is entirely in how many
    first-order iterations the scaled problem needs — a deterministic
    number, safe to gate CI on.
    """
    rows = []
    for robot in STIFF_ROBOTS:
        qp_args, base = _first_subproblem(robot)
        for tol in TOLERANCES:
            opts_off = replace(
                base,
                method="admm",
                polish=False,
                admm_tolerance=tol,
                admm_equilibrate=False,
                admm_max_iterations=100_000,
            )
            off = solve_qp_admm(*qp_args, opts_off)
            on = solve_qp_admm(
                *qp_args, replace(opts_off, admm_equilibrate=True)
            )
            status = lambda res: (
                "converged"
                if res.converged
                else ("stalled" if res.stats.conditioning.stalled else "max_iter")
            )
            cond = on.stats.conditioning
            rows.append({
                "robot": robot,
                "tol": tol,
                "pre_it": off.iterations,
                "pre_status": status(off),
                "post_it": on.iterations,
                "post_status": status(on),
                "spread_before": cond.norm_spread_before,
                "spread_after": cond.norm_spread_after,
            })
    return rows


def test_stiff_robot_equilibration():
    """Ruiz equilibration must collapse ADMM iterations on stiff robots."""
    rows = _stiff_rows()
    banner("repro.firstorder: ADMM iterations on stiff robots, pre/post Ruiz")
    print(
        f"{'robot':>12} {'tol':>7} {'pre it':>8} {'pre status':>12} "
        f"{'post it':>8} {'post status':>12} {'norm spread':>18}"
    )
    for r in rows:
        print(
            f"{r['robot']:>12} {r['tol']:>7.0e} {r['pre_it']:>8d} "
            f"{r['pre_status']:>12} {r['post_it']:>8d} "
            f"{r['post_status']:>12} "
            f"{r['spread_before']:>8.1e} -> {r['spread_after']:.1e}"
        )

    for r in rows:
        # The gate saw a genuinely stiff problem and fixed its scaling.
        assert r["spread_before"] > 100.0, r
        assert r["spread_after"] < r["spread_before"] / 10.0, r
        # Fewer first-order iterations on the scaled problem, always.
        assert r["post_it"] < r["pre_it"], r
        # At the serving tier's control-grade tolerance the scaled solve
        # must actually converge (unscaled Humanoid stalls here).
        if r["tol"] == 1e-3:
            assert r["post_status"] == "converged", r


@pytest.mark.slow
def test_qp_crossover_large_batches():
    """Device-scale crossover points (B in {1024, 4096}) per backend."""
    rows = run_sweep(LARGE_BATCH_SIZES, offset=5)
    _print_table(
        rows, "repro.firstorder: IPM vs ADMM crossover at device-scale B"
    )
    absent = [n for n in ("torch", "cupy") if n not in available_backends()]
    if absent:
        print(f"(not importable here, rows omitted: {', '.join(absent)})")
    for r in rows:
        assert r["admm_conv"] >= 0.99, r
        # At device scale the cheap iteration must dominate outright.
        if r["tol"] == 1e-3:
            assert r["ratio"] > 1.0, r


if __name__ == "__main__":
    _print_table(
        run_sweep(BATCH_SIZES),
        "repro.firstorder: IPM vs ADMM throughput crossover",
    )
    test_stiff_robot_equilibration()
