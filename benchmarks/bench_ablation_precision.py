"""Ablation: fixed-point wordsize / LUT resolution (§VIII-A design choice).

The paper: "we found 32-bit fixed-point with 17 fractional bits and
4096-entry LUTs were sufficient to make the effects on convergence
negligible."  This bench quantifies the dynamics-evaluation error of the
functional simulator across LUT sizes, confirming 4096 entries sit below the
solver's practical tolerance while small tables do not.
"""

import pytest

from conftest import banner
from repro.accelerator import simulate_phase
from repro.robots import build_benchmark

LUT_SIZES = (16, 64, 512, 4096)

#: a flight condition that actually exercises the trig tables (large tilt,
#: nonzero rates) — near-zero inputs would make every table look perfect
_INPUTS = {
    "pos[0]": 0.4,
    "pos[1]": -0.7,
    "pos[2]": 1.3,
    "vel[0]": 0.9,
    "vel[1]": -0.5,
    "vel[2]": 0.2,
    "roll": 0.45,
    "pitch": -0.38,
    "yaw": 1.1,
    "w[0]": 0.6,
    "w[1]": -0.8,
    "w[2]": 0.3,
    "f[0]": 1.4,
    "f[1]": 1.1,
    "f[2]": 1.3,
    "f[3]": 1.2,
}


def run_error_sweep():
    bench = build_benchmark("Quadrotor")
    problem = bench.transcribe(horizon=4)
    rows = []
    for entries in LUT_SIZES:
        res, ref = simulate_phase(
            problem, "dynamics", inputs=dict(_INPUTS), lut_entries=entries
        )
        err = max(abs(res.outputs[k] - ref[k]) for k in ref)
        rows.append((entries, err))
    return rows


def test_precision_ablation(benchmark):
    rows = benchmark.pedantic(run_error_sweep, rounds=1, iterations=1)
    banner("Ablation: LUT entries vs. fixed-point dynamics error (Quadrotor)")
    print(f"{'LUT entries':>12} {'max |error|':>14}")
    for entries, err in rows:
        print(f"{entries:>12} {err:>14.3e}")
    print(
        "\npaper reference: 4096 entries + Q14.17 make convergence effects "
        "negligible"
    )
    errors = dict(rows)
    assert errors[4096] < 1e-3
    assert errors[16] > errors[4096]
    # Coarse tables are at least an order of magnitude worse.
    assert errors[16] > 5 * errors[4096]
