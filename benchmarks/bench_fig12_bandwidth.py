"""Figure 12: sensitivity of RoboX speedup to off-chip memory bandwidth."""

import pytest

from conftest import banner
from repro.experiments import BANDWIDTH_SWEEP, figure12, render_figure


def test_figure12(benchmark):
    fig = benchmark.pedantic(
        figure12, kwargs={"factors": BANDWIDTH_SWEEP}, rounds=1, iterations=1
    )
    banner("Figure 12: Speedup over ARM A57 vs. off-chip bandwidth (N = 1024)")
    print(render_figure(fig))
    print(
        "\npaper reference: larger robot models are most bandwidth-sensitive "
        "(Hexacopter spans 46.1x-94.3x across the sweep) with diminishing "
        "returns at high bandwidth"
    )
    geo = {f: fig.geomean[f"{f:g} x"] for f in BANDWIDTH_SWEEP}
    values = [geo[f] for f in sorted(geo)]
    for a, b in zip(values, values[1:]):
        assert b >= a * 0.99, "speedup must not drop with more bandwidth"
    # Diminishing returns: the 1x -> 4x gain is smaller than 0.25x -> 1x.
    assert geo[4.0] / geo[1.0] < geo[1.0] / geo[0.25]
    # Hexacopter among the most sensitive, MobileRobot the least.
    sens = {
        b: fig.series["4 x"][b] / fig.series["0.25 x"][b]
        for b in fig.series["0.25 x"]
    }
    ranked = sorted(sens, key=sens.get, reverse=True)
    assert "Hexacopter" in ranked[:2]
    assert sens["MobileRobot"] == min(sens.values())
