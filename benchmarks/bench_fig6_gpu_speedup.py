"""Figure 6: speedup of the GPUs and RoboX over the GTX 650 Ti (N=32)."""

import pytest

from conftest import banner
from repro.experiments import figure6, render_figure


def test_figure6(benchmark):
    fig = benchmark.pedantic(figure6, rounds=1, iterations=1)
    banner("Figure 6: Speedup over GTX 650 Ti baseline (N = 32)")
    print(render_figure(fig))
    print(
        "\npaper reference: RoboX geomean 2.0x over GTX (range 1.63x-2.74x), "
        "3.5x over Tegra, but 1.3x SLOWER than the 2880-core Tesla K40"
    )
    assert fig.geomean["RoboX"] == pytest.approx(2.0, rel=0.02)
    # RoboX / Tegra = 2.0 / (Tegra/GTX)
    assert fig.geomean["RoboX"] / fig.geomean["Tegra X2"] == pytest.approx(
        3.5, rel=0.05
    )
    # The K40 outruns RoboX on raw speed (efficiency is Figure 8's story).
    assert fig.geomean["Tesla K40"] > fig.geomean["RoboX"]
    for b, v in fig.series["RoboX"].items():
        assert v > fig.series["Tegra X2"][b], f"RoboX must beat Tegra on {b}"
