"""Figure 8: performance-per-watt of the GPUs and RoboX over the GTX 650 Ti."""

import pytest

from conftest import banner
from repro.experiments import figure8, render_figure


def test_figure8(benchmark):
    fig = benchmark.pedantic(figure8, rounds=1, iterations=1)
    banner("Figure 8: Performance-per-Watt over GTX 650 Ti baseline (N = 32)")
    print(render_figure(fig))
    print(
        "\npaper reference: RoboX geomean 65.5x over GTX (range 52.5x-88.4x); "
        "7.8x over the Tegra X2; 71.8x over the Tesla K40 — despite the K40's "
        "raw-speed win, RoboX dominates under a power budget"
    )
    assert fig.geomean["RoboX"] == pytest.approx(65.5, rel=0.05)
    assert fig.geomean["RoboX"] / fig.geomean["Tegra X2"] == pytest.approx(
        7.8, rel=0.15
    )
    for series in ("Tegra X2", "Tesla K40"):
        assert fig.geomean["RoboX"] > fig.geomean[series]
