"""Linearize-phase speedup from ahead-of-time fused kernel codegen.

The SQP linearize block issues six evaluation calls per iteration
(gradient, Gauss-Newton blocks, both constraint stacks and both
Jacobians).  Interpreted, each call walks per-stage compiled functions in
a Python loop — ``6 x N`` dispatches per iteration.  The fused path
evaluates one horizon-unrolled generated kernel per request family and
serves the follow-up calls at the same point from the point cache, so the
whole block costs roughly one fused evaluation.

This bench times the full six-call block on the Quadrotor at N=30 (the
paper's long-horizon operating point) at a set of distinct seeded
linearization points — mirroring how the SQP loop revisits each iterate —
and reports interpreted vs fused wall time.

Acceptance gates:

* fast lane (CI, bare numpy install): fused ``on`` — whichever tier that
  resolves to — must be >= 2x the interpreted path;
* slow lane (``-m slow``, needs a C compiler): the C tier must be >= 5x.

Free of pytest-benchmark; plain ``perf_counter`` over seeded points (see
conftest's randomness policy).
"""

from time import perf_counter

import numpy as np
import pytest

from conftest import banner, make_rng
from repro.codegen import c_available
from repro.robots import build_benchmark

ROBOT = "Quadrotor"
HORIZON = 30
POINTS = 12
REPEATS = 3


def _setup():
    bench = build_benchmark(ROBOT)
    problem = bench.transcribe(horizon=HORIZON)
    rng = make_rng(offset=990)
    x0 = np.asarray(bench.x0, dtype=float)
    pts = [
        problem.initial_guess(x0 + 0.05 * rng.standard_normal(problem.nx))
        + 0.02 * rng.standard_normal(problem.nz)
        for _ in range(POINTS)
    ]
    return bench, problem, x0, pts


def _linearize_block(problem, z, x0, ref):
    problem.objective_gradient(z, ref)
    problem.objective_gauss_newton(z, ref)
    problem.equality_constraints(z, x0, ref)
    problem.equality_jacobian(z, ref)
    problem.inequality_constraints(z, ref)
    problem.inequality_jacobian(z, ref)


def _time_mode(problem, mode, pts, x0, ref):
    problem.set_codegen(mode)
    # warm pass off the clock: kernel build/compile + allocator effects
    _linearize_block(problem, pts[0], x0, ref)
    best = float("inf")
    for _ in range(REPEATS):
        t0 = perf_counter()
        for z in pts:
            _linearize_block(problem, z, x0, ref)
        best = min(best, perf_counter() - t0)
    kernel = problem.codegen_stats().kernel
    return best, kernel


def _report(rows):
    banner(f"fused linearize codegen: {ROBOT} N={HORIZON}, {POINTS} points")
    base = rows["off"][0]
    print(f"{'mode':>8} {'kernel':>12} {'time':>9} {'speedup':>8}")
    for mode, (t, kernel) in rows.items():
        print(f"{mode:>8} {kernel:>12} {t * 1e3:>7.1f}ms {base / t:>7.2f}x")


def test_linearize_codegen_speedup():
    bench, problem, x0, pts = _setup()
    rows = {
        "off": _time_mode(problem, "off", pts, x0, bench.ref),
        "on": _time_mode(problem, "on", pts, x0, bench.ref),
    }
    _report(rows)
    assert rows["off"][1] == "interpreted"
    assert rows["on"][1] in ("fused-numpy", "fused-c")

    ratio = rows["off"][0] / rows["on"][0]
    if ratio < 2.0:
        # one fresh re-measure before failing: a transient co-tenant can
        # depress a single timing window
        rows["on"] = _time_mode(problem, "on", pts, x0, bench.ref)
        rows["off"] = _time_mode(problem, "off", pts, x0, bench.ref)
        ratio = rows["off"][0] / rows["on"][0]
        _report(rows)
    assert ratio >= 2.0, f"fused linearize only {ratio:.2f}x over interpreted"


@pytest.mark.slow
def test_linearize_codegen_c_tier_speedup():
    if not c_available():
        pytest.skip("no C compiler / cffi here")
    bench, problem, x0, pts = _setup()
    rows = {
        "off": _time_mode(problem, "off", pts, x0, bench.ref),
        "c": _time_mode(problem, "c", pts, x0, bench.ref),
    }
    _report(rows)
    assert rows["c"][1] == "fused-c"
    ratio = rows["off"][0] / rows["c"][0]
    if ratio < 5.0:
        rows["c"] = _time_mode(problem, "c", pts, x0, bench.ref)
        rows["off"] = _time_mode(problem, "off", pts, x0, bench.ref)
        ratio = rows["off"][0] / rows["c"][0]
        _report(rows)
    assert ratio >= 5.0, f"C tier only {ratio:.2f}x over interpreted"
