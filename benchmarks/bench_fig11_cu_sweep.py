"""Figure 11: sensitivity of RoboX speedup to the number of Compute Units."""

import pytest

from conftest import banner
from repro.experiments import CU_SWEEP, figure11, render_figure


def test_figure11(benchmark):
    fig = benchmark.pedantic(
        figure11, kwargs={"cu_counts": CU_SWEEP}, rounds=1, iterations=1
    )
    banner("Figure 11: Speedup over ARM A57 vs. number of CUs (N = 1024)")
    print(render_figure(fig))
    print(
        "\npaper reference: near-linear growth that plateaus around 256 CUs "
        "(diminishing returns beyond); MobileRobot saturates earliest"
    )
    geo = {n: fig.geomean[f"{n} CUs"] for n in CU_SWEEP}
    # Monotone non-decreasing through the sweep.
    values = [geo[n] for n in CU_SWEEP]
    for a, b in zip(values, values[1:]):
        assert b >= a * 0.99
    # Early scaling strong, late scaling weak (the plateau).
    assert geo[64] / geo[8] > 3.0
    assert geo[1024] / geo[256] < 1.25
    # MobileRobot saturates earliest: its 64->1024 CU gain is the smallest.
    gains = {
        b: fig.series["1024 CUs"][b] / fig.series["64 CUs"][b]
        for b in fig.series["64 CUs"]
    }
    assert gains["MobileRobot"] == min(gains.values())
