"""Serving-runtime throughput benchmark.

Measures what the serving layer adds on top of raw solver time: fleet
steps/second for a deadline-budgeted mixed fleet, the per-step overhead of
the session/engine machinery versus calling the controller directly, and the
effect of the thread pool on a multi-session tick.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_serve_throughput.py -q``.
"""

import numpy as np
import pytest

from repro.robots import build_benchmark
from repro.serve import EngineConfig, LoadConfig, ServeEngine, SessionConfig, run_load

ROBOT = "MobileRobot"
HORIZON = 6
DEADLINE = 0.2


def make_engine(sessions, **cfg):
    engine = ServeEngine(EngineConfig(max_sessions=sessions, **cfg))
    sids = [
        engine.create_session(
            SessionConfig(robot=ROBOT, horizon=HORIZON, deadline_s=DEADLINE)
        )
        for _ in range(sessions)
    ]
    bench, _ = engine.binding(ROBOT, HORIZON)
    inputs = {sid: (np.asarray(bench.x0, dtype=float), None) for sid in sids}
    # Warm every session once so the benchmark measures steady-state ticks.
    engine.tick(inputs)
    return engine, inputs


def test_single_session_step_overhead(benchmark):
    """Session-layer overhead on one warm budgeted step."""
    engine, inputs = make_engine(1)
    report = benchmark(engine.tick, inputs)
    assert report.stepped == 1
    assert not engine.crashed_sessions()
    engine.shutdown()


@pytest.mark.parametrize("sessions", [4, 8])
def test_fleet_tick_inline(benchmark, sessions):
    engine, inputs = make_engine(sessions)
    report = benchmark(engine.tick, inputs)
    assert report.stepped == sessions
    engine.shutdown()


def test_fleet_tick_threaded(benchmark):
    engine, inputs = make_engine(8, workers=4, backend="thread")
    report = benchmark(engine.tick, inputs)
    assert report.stepped == 8
    engine.shutdown()


def test_controller_step_baseline(benchmark):
    """Raw controller step (no serving layer) — the overhead reference."""
    bench = build_benchmark(ROBOT)
    problem = bench.transcribe(horizon=HORIZON)
    controller = bench.make_controller(problem)
    x0 = np.asarray(bench.x0, dtype=float)
    controller.step(x0, ref=bench.ref)  # warm up

    u = benchmark(controller.step, x0, ref=bench.ref)
    assert np.all(np.isfinite(u))


def test_load_run_throughput(benchmark):
    """End-to-end steps/second through run_load (plant included)."""
    config = LoadConfig(
        sessions=6,
        ticks=4,
        robots=(ROBOT,),
        horizon=HORIZON,
        deadline_s=DEADLINE,
        seed=0,
    )
    report = benchmark.pedantic(run_load, args=(config,), rounds=1, iterations=1)
    assert report.ok
    assert report.metrics.fleet.steps == 24
