"""Table III: benchmarks and their model/task parameters."""

import pytest

from conftest import banner
from repro.experiments import PAPER_TABLE3, render_table, table3


def test_table3(benchmark):
    rows = benchmark(table3)
    banner("Table III: Benchmarks and their model/task parameters")
    print(render_table(rows))
    print("\npaper reference: identical counts (exact reproduction target)")
    for row in rows:
        expected = PAPER_TABLE3[row["name"]]
        for key in ("states", "inputs", "penalties", "constraints"):
            assert row[key] == expected[key], (row["name"], key)
