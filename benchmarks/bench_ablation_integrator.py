"""Ablation: Euler vs. RK4 discretization (solver-template design choice).

The RoboX Program Translator fixes the discretization method as part of the
invariant solver template (§VII); DESIGN.md calls the choice out for
ablation.  RK4 buys integration accuracy at ~4x the dynamics-evaluation work
per stage; this bench quantifies both sides:

* one-step prediction error on the 12-state Quadrotor at an aggressive
  flight condition (no solving required — pure integrator accuracy),
* closed-loop target miss on the MobileRobot (fast solves keep the bench
  quick), and
* accelerator cycles of the dynamics phase for each template.
"""

import numpy as np
import pytest

from conftest import banner
from repro.compiler import compile_problem
from repro.mpc import MPCController, TranscribedProblem
from repro.mpc.controller import integrate_plant
from repro.robots import build_benchmark


def run_comparison():
    quad = build_benchmark("Quadrotor")
    mobile = build_benchmark("MobileRobot")
    rows = []
    for integrator in ("euler", "rk4"):
        qp = TranscribedProblem(
            quad.model, quad.task, horizon=4, dt=quad.dt, integrator=integrator
        )
        # One-step prediction error away from hover (where any integrator
        # is exact): tilted, translating, rotating.
        x_probe = quad.x0.copy()
        x_probe[3:6] = (0.8, -0.5, 0.3)
        x_probe[6:8] = (0.3, -0.25)
        x_probe[9:12] = (0.7, -0.6, 0.4)
        u_probe = np.array(quad.model.trim_inputs()) * 1.2
        pred = qp._F(np.concatenate([x_probe, u_probe]))
        truth = integrate_plant(qp, x_probe, u_probe, substeps=64)
        one_step = float(np.abs(pred - truth).max())

        # Closed loop on the fast benchmark.
        mp = TranscribedProblem(
            mobile.model, mobile.task, horizon=12, dt=mobile.dt,
            integrator=integrator,
        )
        ctrl = mobile.make_controller(mp, max_iterations=25)
        x = mobile.x0.copy()
        for _ in range(20):
            u = ctrl.step(x, ref=mobile.ref)
            x = integrate_plant(mp, x, u, substeps=8)
        miss = float(np.hypot(x[0] - mobile.ref[0], x[1] - mobile.ref[1]))

        _, _, sched = compile_problem(qp)
        rows.append(
            {
                "integrator": integrator,
                "one_step_err": one_step,
                "closed_loop_miss": miss,
                "dynamics_cycles": sched.phase("dynamics").cycles,
                "total_cycles": sched.cycles_per_iteration,
            }
        )
    return rows


def test_integrator_ablation(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    banner("Ablation: Euler vs RK4 solver template")
    print(
        f"{'integrator':>10} {'1-step err (quad)':>18} {'loop miss (mobile)':>19} "
        f"{'dyn cycles':>11} {'total cycles':>13}"
    )
    for r in rows:
        print(
            f"{r['integrator']:>10} {r['one_step_err']:>18.2e} "
            f"{r['closed_loop_miss']:>19.4f} {r['dynamics_cycles']:>11,.0f} "
            f"{r['total_cycles']:>13,.0f}"
        )
    euler, rk4 = rows
    # RK4 is far more accurate per step...
    assert rk4["one_step_err"] < 0.1 * euler["one_step_err"]
    # ...and costs more dynamics work on the accelerator.
    assert rk4["dynamics_cycles"] > euler["dynamics_cycles"]
    # Both controllers still reach the target region.
    assert euler["closed_loop_miss"] < 0.3
    assert rk4["closed_loop_miss"] < 0.3
