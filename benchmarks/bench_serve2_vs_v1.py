"""serve2 vs serve v1: batch efficiency under identical seeded load.

The v1 engine can only fuse lanes whose sessions share an exact
``(robot, horizon)`` binding, so a fleet with ragged horizons fragments
into many small group solves.  The v2 engine pads every lane up to its
horizon-bucket rung first, which re-joins the fragments into wide batches
— that is the whole economic argument for continuous batching, and this
bench measures it head-to-head on the *same* seeded load (same arrival
pattern, same robots, same per-session horizons).

Run with
``PYTHONPATH=src python -m pytest benchmarks/bench_serve2_vs_v1.py -q``.
"""

from repro.serve import LoadConfig, run_load

from conftest import BENCH_SEED

ROBOT = "CartPole"
SESSIONS = 12
TICKS = 6
#: ragged on purpose: four distinct horizons cycled over twelve sessions
HORIZONS = (5, 6, 7, 8)
DEADLINE = 1.0


def _load(engine: str, **extra) -> LoadConfig:
    return LoadConfig(
        sessions=SESSIONS,
        ticks=TICKS,
        robots=(ROBOT,),
        horizons=HORIZONS,
        deadline_s=DEADLINE,
        seed=BENCH_SEED,
        engine=engine,
        **extra,
    )


def _describe(tag, report):
    m = report.metrics
    print(
        f"  {tag:14s} steps={m.fleet.steps:4d} ok={m.fleet.ok:4d} "
        f"batch_solves={m.batch_solves:4d} batched_lanes={m.batched_lanes:4d} "
        f"mean_batch={m.mean_batch:5.2f}"
    )
    return m


def test_v2_batches_wider_than_v1_on_ragged_horizons():
    """v2 must beat v1's batch efficiency on an identical ragged fleet."""
    v1 = run_load(_load("v1", backend="batched"))
    v2 = run_load(_load("v2", rungs=(8,), max_batch=SESSIONS))

    print("\nserve2 vs v1, identical seeded ragged load "
          f"({SESSIONS} sessions, horizons {HORIZONS}, seed {BENCH_SEED})")
    m1 = _describe("v1 (batched)", v1)
    m2 = _describe("v2 (bucketed)", v2)

    # Both fleets served every request without crashing.
    assert not v1.crashed and not v2.crashed
    assert m1.fleet.steps == m2.fleet.steps

    # v1 fragments into one group per distinct horizon; v2 pads everything
    # into the single 8-rung and fuses it.  Strictly-greater is the
    # acceptance bar, but the expected gap is ~len(HORIZONS)x.
    assert m2.mean_batch > m1.mean_batch
    assert m2.batch_solves < m1.batch_solves
    # Padding is actually happening (horizons 5/6/7 pad to 8).
    assert m2.padded_lanes > 0


def test_v2_matching_horizons_has_no_padding_overhead():
    """On a uniform fleet the engines batch identically and v2 pads
    nothing — bucketing costs nothing when it isn't needed."""
    uniform = dict(horizons=(8,))
    v1 = run_load(
        LoadConfig(
            sessions=SESSIONS,
            ticks=3,
            robots=(ROBOT,),
            deadline_s=DEADLINE,
            seed=BENCH_SEED,
            engine="v1",
            backend="batched",
            **uniform,
        )
    )
    v2 = run_load(
        LoadConfig(
            sessions=SESSIONS,
            ticks=3,
            robots=(ROBOT,),
            deadline_s=DEADLINE,
            seed=BENCH_SEED,
            engine="v2",
            rungs=(8,),
            max_batch=SESSIONS,
            **uniform,
        )
    )
    print("\nuniform-horizon control:")
    m1 = _describe("v1 (batched)", v1)
    m2 = _describe("v2 (bucketed)", v2)
    assert m2.padded_lanes == 0
    assert m2.mean_batch >= m1.mean_batch
