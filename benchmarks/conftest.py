"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper, prints the
reproduced rows next to the paper's reference values, and asserts the shape
properties that define a successful reproduction.
"""

from __future__ import annotations


def banner(title: str) -> None:
    line = "=" * len(title)
    print(f"\n{line}\n{title}\n{line}")
