"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper, prints the
reproduced rows next to the paper's reference values, and asserts the shape
properties that define a successful reproduction.

Randomness policy: benches never touch NumPy's global RNG.  All random
problem data comes from :func:`make_rng`, which derives an explicit
``numpy.random.Generator`` from the harness seed (``REPRO_BENCH_SEED`` in
the environment, default 0) plus a per-call-site offset — so bench inputs
are identical run-to-run and comparable against the conformance harness's
seeded cases, while still being perturbable fleet-wide via one knob.
"""

from __future__ import annotations

import os

import numpy as np

#: Harness-wide base seed; override with REPRO_BENCH_SEED=<int>.
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


def make_rng(offset: int = 0) -> np.random.Generator:
    """An explicit, reproducible generator for one bench call site.

    ``offset`` decorrelates call sites sharing the base seed (pass a small
    distinct constant per site, as the former per-site magic seeds did).
    """
    return np.random.default_rng(BENCH_SEED + offset)


def banner(title: str) -> None:
    line = "=" * len(title)
    print(f"\n{line}\n{title}\n{line}")
