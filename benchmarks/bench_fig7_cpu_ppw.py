"""Figure 7: performance-per-watt of Xeon and RoboX over the ARM A57."""

import pytest

from conftest import banner
from repro.experiments import figure7, render_figure


def test_figure7(benchmark):
    fig = benchmark.pedantic(figure7, rounds=1, iterations=1)
    banner("Figure 7: Performance-per-Watt over ARM A57 baseline (N = 32)")
    print(render_figure(fig))
    print(
        "\npaper reference: RoboX geomean 22.1x (range 4.5x-65.3x); "
        "the Xeon E3 is 0.28x (its speed costs disproportionate power)"
    )
    assert fig.geomean["RoboX"] == pytest.approx(22.1, rel=0.05)
    assert fig.geomean["Xeon"] == pytest.approx(0.28, abs=0.02)
    # RoboX wins on efficiency on every benchmark.
    for b, v in fig.series["RoboX"].items():
        assert v > 1.0, f"RoboX must beat the ARM on PPW for {b}"
