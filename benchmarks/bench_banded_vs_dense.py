"""Banded vs. dense KKT factorization on the QP hot loop.

The acceptance benchmark of the stage-ordered banded solve path: solve the
quadrotor's first SQP subproblem (horizon N >= 30) once through the banded
kernels and once through the dense ones, on byte-identical QP data, and
report per-phase wall time plus measured-vs-cost-model flops from
:class:`repro.mpc.qp.QPStats`.  The banded path must be at least 3x faster
and — with the active-set polish — land on the same solution to 1e-8.
"""

from dataclasses import replace
from time import perf_counter

import numpy as np

from conftest import banner
from repro.mpc.banded import (
    flop_counts_banded_cholesky,
    flop_counts_banded_substitution,
)
from repro.mpc.qp import solve_qp
from repro.robots import build_benchmark

HORIZON = 30
REPEATS = 2  # best-of to damp scheduler noise


def _best_time(fn):
    best, out = float("inf"), None
    for _ in range(REPEATS):
        t0 = perf_counter()
        out = fn()
        best = min(best, perf_counter() - t0)
    return best, out


def test_banded_vs_dense_quadrotor():
    bench = build_benchmark("Quadrotor")
    problem = bench.transcribe(horizon=HORIZON)
    solver = bench.make_solver(problem)
    qp_args, qperm = solver.first_qp_subproblem(bench.x0, bench.ref)
    H, g, G, b, J, d, bw = qp_args
    opt = replace(solver.options.qp, polish=True)

    t_banded, res_b = _best_time(
        lambda: solve_qp(H, g, G, b, J, d, opt, bandwidth=bw)
    )
    t_dense, res_d = _best_time(lambda: solve_qp(H, g, G, b, J, d, opt))

    banner(f"Quadrotor first SQP subproblem, N={HORIZON} (n={H.shape[0]})")
    for label, t, r in (("banded", t_banded, res_b), ("dense", t_dense, res_d)):
        s = r.stats
        print(
            f"{label:>7s}: {t * 1e3:8.1f} ms  it={r.iterations:3d}  "
            f"mode={s.mode:6s}  factor {s.factorize_time * 1e3:7.1f} ms / "
            f"{s.factor_flops / 1e6:8.1f} Mflop   substitute "
            f"{s.substitute_time * 1e3:7.1f} ms / "
            f"{s.substitute_flops / 1e6:8.1f} Mflop"
        )
    print(
        f"speedup: {t_dense / t_banded:.2f}x wall, "
        f"{res_d.stats.factor_flops / res_b.stats.factor_flops:.1f}x factor "
        f"flops, bandwidths phi={res_b.stats.phi_bandwidth} "
        f"schur={res_b.stats.schur_bandwidth} (ceiling {bw})"
    )

    # Both paths converge to the same polished solution.
    assert res_b.converged and res_d.converged
    scale = 1.0 + float(np.max(np.abs(res_d.x)))
    assert float(np.max(np.abs(res_b.x - res_d.x))) <= 1e-8 * scale

    # The banded path actually ran banded and is >= 3x faster.
    assert res_b.stats.mode in ("banded", "mixed")
    assert res_b.stats.banded_factorizations > 0
    assert res_d.stats.mode == "dense"
    assert t_dense / t_banded >= 3.0

def test_flop_meter_matches_cost_model():
    """The metered flop totals equal the closed-form kernel cost model and
    show the O(n^3) -> O(n b^2) drop against the dense path."""
    bench = build_benchmark("Quadrotor")
    problem = bench.transcribe(horizon=HORIZON)
    solver = bench.make_solver(problem)
    qp_args, _ = solver.first_qp_subproblem(bench.x0, bench.ref)
    H, g, G, b, J, d, bw = qp_args
    opt = replace(solver.options.qp, max_iterations=3)

    res_b = solve_qp(H, g, G, b, J, d, opt, bandwidth=bw)
    res_d = solve_qp(H, g, G, b, J, d, opt)
    assert res_b.stats.factorizations == res_d.stats.factorizations

    # Without polish or retries the loop factorizes Phi (n x n, at the
    # measured Phi bandwidth) and the Schur complement (p x p, at its
    # measured bandwidth) exactly once per iteration.
    n, p = H.shape[0], G.shape[0]
    its = res_b.stats.factorizations // 2
    expected = its * (
        sum(flop_counts_banded_cholesky(n, res_b.stats.phi_bandwidth).values())
        + sum(
            flop_counts_banded_cholesky(
                p, res_b.stats.schur_bandwidth
            ).values()
        )
    )
    assert res_b.stats.retries == 0
    assert res_b.stats.factor_flops == expected
    assert res_b.stats.substitute_flops > sum(
        flop_counts_banded_substitution(n, res_b.stats.phi_bandwidth).values()
    )

    # Dense factorization flops dominate the banded ones by an order of
    # magnitude at this size (n=641, band ~ 27).
    assert res_d.stats.factor_flops > 10 * res_b.stats.factor_flops
