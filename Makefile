PYTEST := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python -m pytest
REPRO  := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python -m repro

.PHONY: test-fast test-slow test-all test-cov bench serve-smoke serve2-smoke chaos-smoke conform-smoke batch-smoke admm-smoke resilience-smoke codegen-smoke lint

# Quick unit/property lane — skips the long closed-loop / experiment suites.
test-fast:
	$(PYTEST) -q -m "not slow"

# Only the long suites (closed-loop rollouts, paper experiment tables).
test-slow:
	$(PYTEST) -q -m slow

# Everything: the tier-1 verification lane (see ROADMAP.md).
test-all:
	$(PYTEST) -q

# Solver micro-benchmarks and the banded-vs-dense acceptance bench.
bench:
	$(PYTEST) -q benchmarks/bench_solver_kernels.py benchmarks/bench_banded_vs_dense.py

# Serving-runtime smoke: a small deadline-budgeted fleet must complete with
# zero crashed sessions (non-zero exit otherwise).
serve-smoke:
	$(REPRO) serve-sim --sessions 10 --ticks 20 --seed 0

# serve2 smoke: the continuous-batching engine end to end.  Unit pyramid
# (padding equivalence, EDF scheduler, engine, shards), a ragged-horizon
# sharded fleet that must finish with zero crashed sessions, the padded
# conform family against the golden ledger, a seeded shard-chaos campaign
# whose handoff invariant must hold, and the v2-beats-v1 batch-efficiency
# gate.  Traces and shrunk repro files land in conform/failures/ for the
# CI artifact upload.
serve2-smoke:
	mkdir -p conform/failures
	$(PYTEST) -q -m "not slow" tests/test_serve2_padding.py tests/test_serve2_scheduler.py tests/test_serve2_engine.py tests/test_serve2_shard.py
	$(REPRO) serve-sim --engine v2 --sessions 10 --ticks 10 --robots CartPole,MobileRobot --horizons 5,6,8 --rungs 8 --shards 2 --deadline-ms 250 --seed 0 --trace conform/failures/serve2-trace.jsonl
	$(REPRO) conform run --cases 8 --seed 0 --paths native_horizon,padded_horizon --out-dir conform/failures
	$(REPRO) chaos --robot cartpole --schedule shards --engine v2 --shards 2 --sessions 4 --ticks 30 --deadline-ms 1000 --seed 3 --trace conform/failures/serve2-chaos-trace.jsonl
	$(PYTEST) -q benchmarks/bench_serve2_vs_v1.py

# Chaos smoke: a short cartpole fault campaign (sensor + solver faults)
# must pass every recovery invariant (non-zero exit otherwise).
chaos-smoke:
	$(REPRO) chaos --robot cartpole --schedule smoke --sessions 3 --ticks 30 --seed 0

# Differential conformance smoke: a small seeded budget covering every robot
# and every registered numeric path must sit within the golden tolerance
# ledger (conform/tolerances.json); failures shrink to replayable files
# under conform/failures/ and exit non-zero.
conform-smoke:
	$(REPRO) conform run --cases 12 --seed 0 --out-dir conform/failures

# Batched-solving smoke: the B in {1,4,16,64} throughput sweep must clear
# 2x over the scalar path at B=16 on at least one robot, and a small fleet
# on the batched serve backend must complete with zero crashed sessions.
batch-smoke:
	$(PYTEST) -q benchmarks/bench_batch_throughput.py
	$(REPRO) serve-sim --sessions 8 --ticks 10 --robots MobileRobot --horizon 8 --deadline-ms 250 --backend batched --seed 0

# First-order solver smoke: the scalar and numpy-batched ADMM conform paths
# must sit within the golden ledger against the dense_kkt oracle, and the
# IPM-vs-ADMM crossover bench must clear its throughput gate (ADMM beating
# IPM qp/s at B=256, tol=1e-3, numpy backend).
admm-smoke:
	$(REPRO) conform run --cases 8 --seed 0 --paths dense_kkt,admm_qp,batch_admm --out-dir conform/failures
	$(PYTEST) -q benchmarks/bench_qp_crossover.py -m "not slow"

# Solver-resilience smoke: a seeded admm_stall/illcond_qp campaign on the
# stiff Manipulator with an ADMM fleet must pass every recovery invariant --
# including stalls_rescued: each forced stall is answered by the rescue
# ladder (ADMM->IPM retry), never a silent bad plan.  Deadline budgeting is
# disabled (--deadline-ms 0) so rescues run to completion.  A stiff-robot
# conform replay then pins the equilibrated ADMM paths to the golden ledger.
resilience-smoke:
	mkdir -p conform/failures
	$(REPRO) chaos --robot manipulator --schedule resilience --qp-method admm --sessions 1 --ticks 10 --horizon 6 --deadline-ms 0 --seed 3 --trace conform/failures/resilience-trace.jsonl
	$(REPRO) conform run --cases 8 --seed 0 --robots Manipulator,Humanoid --paths dense_kkt,admm_qp,batch_admm --out-dir conform/failures

# Fused-codegen smoke: the differential equivalence property suite, the
# artifact-store/linearizer suites, the conform linearize family against the
# interpreted oracle, and the fast-lane speedup gate (fused >= 2x interpreted
# on the Quadrotor N=30 linearize block; the >= 5x C-tier gate runs under
# `-m slow` where a compiler is guaranteed).
codegen-smoke:
	$(PYTEST) -q tests/test_codegen_equivalence.py tests/test_codegen_store.py tests/test_codegen_linearizer.py
	$(REPRO) conform run --cases 8 --seed 0 --paths interp_linearize,codegen_linearize --out-dir conform/failures
	$(PYTEST) -q benchmarks/bench_linearize_codegen.py -m "not slow"

# Fast lane under coverage with the CI floor (requires pytest-cov, which the
# CI workflow installs; not part of the core dev dependencies).  The floor
# sits just below the measured fast-lane statement coverage (~91%) so any
# sizeable untested addition fails CI without flaking on small diffs.
test-cov:
	$(PYTEST) -q -m "not slow" --cov=repro --cov-fail-under=$(or $(COV_FLOOR),85)

# Lint: the batch hot path (linalg/qp/ipm/transcription) must route every
# array op through the backend seam -- bare numpy there pins work to the
# host and silently reintroduces per-iteration device transfers.
lint:
	python scripts/check_no_bare_numpy.py
