#!/usr/bin/env python
"""Ad-hoc load generator for the serving runtime.

Drives a large mixed-robot fleet through :func:`repro.serve.run_load` — the
same entry point behind ``repro serve-sim`` — with presets sized for load
experiments rather than smoke tests.  The default scenario is the ISSUE
acceptance workload: 100+ sessions of mixed robots against the plant
integrator with per-step deadlines.

Examples::

    PYTHONPATH=src python scripts/serve_loadgen.py
    PYTHONPATH=src python scripts/serve_loadgen.py --sessions 200 --ticks 50 \
        --workers 4 --trace /tmp/fleet.jsonl
    PYTHONPATH=src python scripts/serve_loadgen.py --preset smoke
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.robots import BENCHMARK_NAMES
from repro.serve import DEFAULT_ROBOTS, LoadConfig, run_load

#: named scenarios: (sessions, ticks, deadline_s)
PRESETS = {
    "smoke": (10, 20, 0.05),
    "acceptance": (100, 50, 0.05),
    "stress": (250, 50, 0.02),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="acceptance",
        help="scenario sizing (overridden by explicit flags)",
    )
    parser.add_argument("--sessions", type=int, default=None)
    parser.add_argument("--ticks", type=int, default=None)
    parser.add_argument(
        "--robots",
        default=",".join(DEFAULT_ROBOTS),
        help="comma-separated benchmark names cycled across sessions",
    )
    parser.add_argument("--horizon", type=int, default=8)
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-step solve deadline (default: the preset's)",
    )
    parser.add_argument("--degrade-after", type=int, default=3)
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--backend", choices=("thread", "process"), default="thread")
    parser.add_argument("--tick-budget-ms", type=float, default=None)
    parser.add_argument("--trace", default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    sessions, ticks, deadline_s = PRESETS[args.preset]
    if args.sessions is not None:
        sessions = args.sessions
    if args.ticks is not None:
        ticks = args.ticks
    if args.deadline_ms is not None:
        deadline_s = args.deadline_ms / 1e3 if args.deadline_ms > 0 else None

    robots = tuple(r.strip() for r in args.robots.split(",") if r.strip())
    unknown = [r for r in robots if r not in BENCHMARK_NAMES]
    if unknown:
        print(
            f"unknown benchmark(s): {', '.join(unknown)}; choose from "
            f"{', '.join(BENCHMARK_NAMES)}",
            file=sys.stderr,
        )
        return 2

    config = LoadConfig(
        sessions=sessions,
        ticks=ticks,
        robots=robots,
        horizon=args.horizon,
        deadline_s=deadline_s,
        degrade_after=args.degrade_after,
        seed=args.seed,
        workers=args.workers,
        backend=args.backend,
        tick_budget_s=args.tick_budget_ms / 1e3 if args.tick_budget_ms else None,
        trace_path=args.trace,
    )
    print(
        f"load: {sessions} sessions x {ticks} ticks, robots={','.join(robots)}, "
        f"deadline={deadline_s if deadline_s is None else f'{deadline_s * 1e3:g}ms'}, "
        f"workers={args.workers} ({args.backend})",
        file=sys.stderr,
    )
    report = run_load(config)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
        print(
            f"wall time:       {report.wall_time_s:.1f}s "
            f"({report.metrics.fleet.steps / max(report.wall_time_s, 1e-9):.1f} "
            "solves/s)"
        )
        if report.plant_resets:
            print(f"plant resets:    {report.plant_resets}")
    if report.crashed:
        print(f"CRASHED sessions: {', '.join(report.crashed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
