#!/usr/bin/env python
"""Lint: the batch hot path must not touch numpy directly.

Every array op in ``src/repro/batch/{linalg,qp,ipm,transcription}.py``
has to route through the array-backend seam (``repro.batch.backend``) so
the same code runs device-resident under cupy/torch.  A bare
``import numpy`` or ``np.`` call in those modules silently pins the op to
the host and reintroduces per-iteration transfers, so it is a lint error,
not a style nit.  ``backend.py`` itself is the one place numpy is allowed:
it *is* the host reference implementation.

Grep-based on purpose: no AST deps, runs on the bare CI install, and the
failure message points at the exact offending line.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
HOT_PATH = [
    REPO / "src" / "repro" / "batch" / name
    for name in ("linalg.py", "qp.py", "ipm.py", "transcription.py")
] + [
    # the batched first-order (ADMM) loop is device-resident by the same
    # contract; its host-side setup lives in firstorder/admm.py, which —
    # like backend.py — is allowed bare numpy
    REPO / "src" / "repro" / "firstorder" / "batch.py",
    # the fused-codegen batch kernel executes generated modules against
    # whatever backend the caller bound — a bare numpy call here would pin
    # the fused batch linearization to the host
    REPO / "src" / "repro" / "codegen" / "kernel.py",
]

#: anything that binds or uses numpy directly
PATTERNS = (
    re.compile(r"^\s*import\s+numpy\b"),
    re.compile(r"^\s*from\s+numpy\b"),
    re.compile(r"(?<![\w.])np\s*\."),
    re.compile(r"(?<![\w.])numpy\s*\."),
)


def offending_lines(path: Path):
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        code = line.split("#", 1)[0]  # comments may mention numpy freely
        for pat in PATTERNS:
            if pat.search(code):
                yield lineno, line.strip()
                break


def main() -> int:
    failures = []
    for path in HOT_PATH:
        if not path.exists():
            print(f"missing hot-path module: {path}", file=sys.stderr)
            return 2
        failures.extend(
            (path, lineno, line) for lineno, line in offending_lines(path)
        )
    if failures:
        print(
            "bare numpy in the batch hot path (route through the backend "
            "seam, see src/repro/batch/backend.py):",
            file=sys.stderr,
        )
        for path, lineno, line in failures:
            rel = path.relative_to(REPO)
            print(f"  {rel}:{lineno}: {line}", file=sys.stderr)
        return 1
    print(f"ok: no bare numpy in {len(HOT_PATH)} batch hot-path modules")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
