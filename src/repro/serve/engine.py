"""Multi-session batch engine: tick loop, worker pool, backpressure.

The engine multiplexes many :class:`~repro.serve.session.ControlSession`
objects through a shared tick loop, the way a batched MPC server amortizes
solver cost over a fleet:

* **Admission control** — a hard ``max_sessions`` cap; ``create_session``
  raises :class:`~repro.errors.AdmissionError` once full, so overload is
  rejected at the front door instead of degrading every tenant.
* **Dispatch** — each tick steps the ready sessions through one of three
  backends: ``inline`` (serial, deterministic), ``thread``
  (``concurrent.futures.ThreadPoolExecutor`` — solves overlap wherever
  numpy drops the GIL), or ``process``
  (``ProcessPoolExecutor`` over *picklable solve payloads*: the session's
  warm state travels by value, workers keep a per-process solver cache
  keyed by (robot, horizon), and only the result arrays come back).
* **Backpressure** — when a tick's wall time overruns ``tick_budget_s``,
  the per-tick batch limit shrinks proportionally (and re-grows on
  headroom); sessions beyond the limit are *deferred*, not dropped, and a
  round-robin queue guarantees every session is served within a bounded
  number of ticks.
* **Telemetry** — every step feeds :class:`~repro.serve.telemetry.FleetMetrics`
  and (optionally) a JSONL :class:`~repro.serve.telemetry.TraceWriter`.

Shared transcriptions: sessions binding the same (robot, horizon) share one
:class:`TranscribedProblem` — the compiled derivative functions are pure, so
this is safe across threads and is what makes 100-session fleets cheap to
build.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter, sleep
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import (
    AdmissionError,
    ReproError,
    ServeError,
    StateValidationError,
)
from repro.mpc.budget import SolveBudget
from repro.serve.session import CLOSED, ControlSession, SessionConfig, StepOutcome
from repro.serve.telemetry import FleetMetrics, TraceWriter

__all__ = [
    "EngineConfig",
    "TickReport",
    "ServeEngine",
    "remote_solve",
    "prime_worker_cache",
]


@dataclass(frozen=True)
class EngineConfig:
    """Engine-wide policy knobs."""

    #: admission-control cap on concurrently open sessions
    max_sessions: int = 256
    #: 0 = inline execution; > 0 = pool of this many workers
    workers: int = 0
    #: "thread" / "process" (pools, only engaged when ``workers > 0``) or
    #: "batched" (in-process vectorized group solves, ``workers`` must be 0)
    backend: str = "thread"
    #: soft per-tick wall budget driving backpressure (None = no limit)
    tick_budget_s: Optional[float] = None
    #: backpressure never shrinks the batch below this many sessions/tick
    min_batch: int = 1
    #: array backend for the batched dispatch path, e.g. "torch" or
    #: "numpy:float32" (None = REPRO_ARRAY_BACKEND env, then numpy)
    array_backend: Optional[str] = None
    #: inner QP solver for the batched dispatch path: "ipm" or "admm"
    #: (engine-wide; scalar/worker paths follow each session's own
    #: ``SessionConfig.qp_method``)
    qp_method: str = "ipm"
    #: fused-kernel codegen mode for linearization, engine-wide default for
    #: sessions built through :meth:`ControlEngine.open_session`
    codegen: str = "auto"

    def __post_init__(self):
        if self.qp_method not in ("ipm", "admm"):
            raise ServeError(
                f"qp_method must be 'ipm' or 'admm', got {self.qp_method!r}"
            )
        if self.codegen not in ("auto", "on", "off", "numpy", "c"):
            raise ServeError(
                f"codegen must be one of auto/on/off/numpy/c, got {self.codegen!r}"
            )
        if self.max_sessions < 1:
            raise ServeError("max_sessions must be >= 1")
        if self.workers < 0:
            raise ServeError("workers must be >= 0")
        if self.backend not in ("thread", "process", "batched"):
            raise ServeError(f"unknown backend {self.backend!r}")
        if self.backend == "batched" and self.workers:
            raise ServeError(
                "backend='batched' solves in-process; workers must be 0"
            )
        if self.array_backend is not None and self.backend != "batched":
            raise ServeError(
                "array_backend only applies to backend='batched'"
            )
        if self.min_batch < 1:
            raise ServeError("min_batch must be >= 1")


@dataclass
class TickReport:
    """What one engine tick did."""

    index: int
    outcomes: Dict[str, StepOutcome] = field(default_factory=dict)
    #: sessions with inputs this tick that backpressure pushed to the next
    deferred: List[str] = field(default_factory=list)
    duration_s: float = 0.0
    batch_limit: int = 0

    @property
    def stepped(self) -> int:
        return len(self.outcomes)


class ServeEngine:
    """Owns the session table, the worker pool, and the tick loop."""

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        trace: Optional[TraceWriter] = None,
    ):
        self.config = config or EngineConfig()
        self.sessions: Dict[str, ControlSession] = {}
        self.metrics = FleetMetrics()
        self.trace = trace
        self._tick_index = 0
        self._next_id = 0
        #: round-robin service order (fairness under backpressure)
        self._rr: Deque[str] = deque()
        self._batch_limit: Optional[int] = None  # None = unlimited
        self._pool = None
        #: worker pools discarded and rebuilt after a worker death
        self.worker_respawns = 0
        #: optional :class:`repro.faults.EngineFaultInjector`-style hook:
        #: ``on_dispatch(tick, session_id)`` -> None or a directive dict
        #: ({"kind": "worker_crash"} / {"kind": "slow", "delay_s": ...})
        self.fault_hook = None
        #: shared transcriptions: (robot, horizon) -> (benchmark, problem)
        self._problem_cache: Dict[Tuple[str, int], Tuple[object, object]] = {}
        #: batched backend: (robot, horizon) -> BatchSolver, or None when
        #: the binding cannot batch (non-Gauss-Newton Hessian model) and
        #: its sessions fall back to scalar inline solves
        self._batch_solvers: Dict[Tuple[str, int], Optional[object]] = {}

    # -- session lifecycle ------------------------------------------------------
    def create_session(
        self, config: SessionConfig, session_id: Optional[str] = None
    ) -> str:
        """Admit and build a new session; raises :class:`AdmissionError`
        when the fleet is at ``max_sessions``."""
        self._admit()
        if session_id is None:
            session_id = f"s{self._next_id:04d}"
            self._next_id += 1
        if session_id in self.sessions:
            raise ServeError(f"session id {session_id!r} already exists")
        key = (config.robot, config.horizon)
        if key not in self._problem_cache:
            from repro.robots import build_benchmark

            bench = build_benchmark(config.robot)
            problem = bench.transcribe(horizon=config.horizon)
            if self.config.codegen != "auto":
                # engine-wide default; a session's own SessionConfig.codegen
                # still wins inside from_benchmark
                problem.set_codegen(self.config.codegen)
            self._problem_cache[key] = (bench, problem)
        bench, problem = self._problem_cache[key]
        session = ControlSession.from_benchmark(
            session_id, config, bench=bench, problem=problem
        )
        self._register(session)
        return session_id

    def add_session(self, session: ControlSession) -> str:
        """Admit a pre-built session (tests inject stub-solver sessions here)."""
        self._admit()
        if session.session_id in self.sessions:
            raise ServeError(f"session id {session.session_id!r} already exists")
        self._register(session)
        return session.session_id

    def _admit(self) -> None:
        # Fast path for large fleets: open sessions can never outnumber
        # the table, so a table under the cap needs no O(n) scan.
        if len(self.sessions) < self.config.max_sessions:
            return
        # At cap, lazily evict closed sessions (and their round-robin
        # slots): a churned fleet must not grow the table without bound —
        # that is a leak at soak scale, not bookkeeping.  Crashed sessions
        # stay: they are restartable.
        closed = [s for s, ses in self.sessions.items() if ses.state == CLOSED]
        for sid in closed:
            del self.sessions[sid]
        if closed:
            gone = set(closed)
            self._rr = deque(sid for sid in self._rr if sid not in gone)
        if len(self.sessions) < self.config.max_sessions:
            return
        open_count = sum(1 for s in self.sessions.values() if s.serving)
        if open_count >= self.config.max_sessions:
            raise AdmissionError(
                f"engine at capacity ({self.config.max_sessions} sessions)"
            )

    def _register(self, session: ControlSession) -> None:
        self.sessions[session.session_id] = session
        self._rr.append(session.session_id)
        if self.trace is not None:
            self.trace.emit(
                "session",
                session=session.session_id,
                robot=session.config.robot,
                horizon=session.config.horizon,
                deadline_s=session.config.deadline_s,
            )

    def binding(self, robot: str, horizon: int) -> Tuple[object, object]:
        """The shared ``(benchmark, problem)`` pair for a robot/horizon
        binding (built on first use by :meth:`create_session`)."""
        try:
            return self._problem_cache[(robot, horizon)]
        except KeyError:
            raise ServeError(
                f"no sessions bound to ({robot!r}, horizon={horizon})"
            ) from None

    def get_session(self, session_id: str) -> ControlSession:
        try:
            return self.sessions[session_id]
        except KeyError:
            raise ServeError(f"unknown session {session_id!r}") from None

    def reset_session(self, session_id: str) -> None:
        self.get_session(session_id).reset()

    def restart_session(self, session_id: str) -> None:
        """Recover a crashed session back to ``active`` (see
        :meth:`ControlSession.restart`); it rejoins the tick loop on the
        next input."""
        self.get_session(session_id).restart()

    def close_session(self, session_id: str) -> None:
        self.get_session(session_id).close()

    def session_states(self) -> Dict[str, str]:
        return {sid: s.state for sid, s in self.sessions.items()}

    def crashed_sessions(self) -> List[str]:
        return [sid for sid, s in self.sessions.items() if s.state == "crashed"]

    # -- tick loop ----------------------------------------------------------------
    def tick(
        self,
        inputs: Dict[str, Tuple[np.ndarray, Optional[np.ndarray]]],
    ) -> TickReport:
        """Step every ready session that has an input this tick.

        Args:
            inputs: session_id -> ``(x_measured, ref-or-None)``.

        Sessions beyond the current backpressure batch limit are deferred
        (reported, served first next tick); closed/crashed sessions are
        silently skipped.
        """
        t0 = perf_counter()
        self._tick_index += 1
        report = TickReport(index=self._tick_index)

        ready = self._schedule(inputs, report)
        if ready:
            self._dispatch(ready, inputs, report)

        report.duration_s = perf_counter() - t0
        report.batch_limit = (
            self._batch_limit
            if self._batch_limit is not None
            else len(self.sessions) or 1
        )
        self._apply_backpressure(report)
        self.metrics.observe_tick(len(report.deferred))
        if self.trace is not None:
            self.trace.emit(
                "tick",
                tick=report.index,
                duration_s=report.duration_s,
                stepped=report.stepped,
                deferred=len(report.deferred),
                batch_limit=report.batch_limit,
            )
        return report

    def _schedule(self, inputs, report: TickReport) -> List[str]:
        """Pick this tick's batch in round-robin order, defer the overflow."""
        limit = (
            self._batch_limit if self._batch_limit is not None else len(inputs)
        )
        ready: List[str] = []
        scanned = 0
        n = len(self._rr)
        while scanned < n:
            sid = self._rr[0]
            self._rr.rotate(-1)
            scanned += 1
            session = self.sessions.get(sid)
            if session is None or not session.serving or sid not in inputs:
                continue
            if len(ready) < limit:
                ready.append(sid)
            else:
                report.deferred.append(sid)
        # A full scan leaves the deque in its original order; demote the
        # sessions served this tick so deferred ones are at the front next
        # tick — this is what bounds any session's wait under backpressure.
        for sid in ready:
            self._rr.remove(sid)
            self._rr.append(sid)
        return ready

    def _dispatch(self, ready: List[str], inputs, report: TickReport) -> None:
        cfg = self.config
        if cfg.backend == "batched":
            self._dispatch_batched(ready, inputs, report)
        elif cfg.workers and cfg.backend == "process":
            self._dispatch_process(ready, inputs, report)
        elif cfg.workers:
            self._dispatch_threads(ready, inputs, report)
        else:
            for sid in ready:
                x, ref = inputs[sid]
                self._record(
                    sid,
                    self._step_with_fault(sid, x, ref, self._fault_directive(sid)),
                    report,
                )

    def _fault_directive(self, sid: str) -> Optional[Dict[str, object]]:
        if self.fault_hook is None:
            return None
        return self.fault_hook.on_dispatch(self._tick_index, sid)

    def _step_with_fault(self, sid: str, x, ref, directive) -> StepOutcome:
        """Inline/thread step with the serve-layer fault semantics: a
        ``worker_crash`` directive is one lost solve (the session pays a
        ladder step, exactly like a dead process worker), ``slow`` delays
        the solve by the injected latency."""
        if directive is not None:
            kind = directive.get("kind")
            if kind == "worker_crash":
                return self.sessions[sid].fail_step("worker_died")
            if kind == "slow":
                sleep(float(directive.get("delay_s", 0.0)))
        return self._step_guarded(sid, x, ref)

    def _step_guarded(self, sid: str, x, ref) -> StepOutcome:
        """One session step; anything escaping the session's own handling
        (i.e. a bug, not a solver failure) crashes only that session."""
        session = self.sessions[sid]
        try:
            return session.step(x, ref=ref)
        except ReproError:
            raise  # lifecycle misuse is the caller's bug — do not mask it
        except Exception:
            return session.mark_crashed()

    def _dispatch_threads(self, ready, inputs, report) -> None:
        from concurrent.futures import ThreadPoolExecutor

        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="serve-worker",
            )
        # Fault directives are drawn on the dispatcher thread (the hook is
        # not required to be thread-safe); only the step itself overlaps.
        futures = {
            sid: self._pool.submit(
                self._step_with_fault,
                sid,
                inputs[sid][0],
                inputs[sid][1],
                self._fault_directive(sid),
            )
            for sid in ready
        }
        for sid, fut in futures.items():
            self._record(sid, fut.result(), report)

    def _dispatch_process(self, ready, inputs, report) -> None:
        from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

        if self._pool is None:
            # Pre-populate the worker cache in this process first: with the
            # fork start method the children inherit the compiled problems
            # for free instead of re-transcribing per worker.
            for (robot, horizon), (bench, problem) in self._problem_cache.items():
                variants = {
                    (s.config.qp_method, s.config.codegen)
                    for s in self.sessions.values()
                    if (s.config.robot, s.config.horizon) == (robot, horizon)
                } or {("ipm", "auto")}
                for method, codegen in variants:
                    prime_worker_cache(
                        robot,
                        horizon,
                        bench,
                        problem,
                        qp_method=method,
                        codegen=codegen,
                    )
            self._pool = ProcessPoolExecutor(max_workers=self.config.workers)
        futures = {}
        broken = False
        for sid in ready:
            x, ref = inputs[sid]
            payload = self.sessions[sid].solve_payload(x, ref=ref)
            directive = self._fault_directive(sid)
            if directive is not None:
                payload["fault"] = directive
            if not broken:
                try:
                    futures[sid] = self._pool.submit(remote_solve, payload)
                    continue
                except BrokenExecutor:
                    broken = True
            # Pool already known-broken: this solve is lost, the session
            # pays one ladder step and the pool is rebuilt after the tick.
            self._record(
                sid, self.sessions[sid].fail_step("worker_died"), report
            )
        for sid, fut in futures.items():
            session = self.sessions[sid]
            try:
                outcome = session.absorb(fut.result())
            except ReproError:
                raise
            except BrokenExecutor:
                # A worker died mid-solve.  That is a *solve* failure, not a
                # session failure: the session keeps its warm start (the
                # worker never mutated it), serves the degradation ladder,
                # and the pool is discarded and lazily respawned.
                broken = True
                outcome = session.fail_step("worker_died")
            except Exception:
                outcome = session.mark_crashed()
            self._record(sid, outcome, report)
        if broken:
            self._discard_pool()

    # -- batched backend ------------------------------------------------------
    @staticmethod
    def _group_key(session: ControlSession) -> Tuple[str, int]:
        """The co-batching key: sessions are solved together **only** when
        they share both robot type and horizon.  Anything else would stack
        structurally different KKT systems into one lane layout and produce
        silently wrong trajectories, so the key is explicit — never derived
        from array shapes, which can coincide across different robots."""
        return (session.config.robot, session.config.horizon)

    def _batch_solver(self, key: Tuple[str, int]):
        """The shared :class:`~repro.batch.ipm.BatchSolver` for a group key
        (``None`` = the binding cannot batch; scalar inline fallback)."""
        if key not in self._batch_solvers:
            if key not in self._problem_cache:
                # Externally-built sessions (add_session) carry their own
                # solver; without a shared binding they step scalar-inline.
                self._batch_solvers[key] = None
            else:
                from repro.batch import BatchSolver

                bench, problem = self._problem_cache[key]
                scalar = bench.make_solver(problem)
                try:
                    self._batch_solvers[key] = BatchSolver(
                        problem,
                        scalar.options,
                        backend=self.config.array_backend,
                        qp_method=self.config.qp_method,
                    )
                except ReproError:
                    # e.g. a hybrid/exact-Hessian robot (MicroSat): its solve
                    # is stage-sequential, so its sessions step scalar-inline.
                    self._batch_solvers[key] = None
        return self._batch_solvers[key]

    def _dispatch_batched(self, ready, inputs, report) -> None:
        """Group ready sessions by (robot, horizon), solve each group in
        one batched call, and scatter lane results back through each
        session's own classification/degradation ladder."""
        groups: Dict[Tuple[str, int], List[str]] = {}
        for sid in ready:
            directive = self._fault_directive(sid)
            if directive is not None:
                kind = directive.get("kind")
                if kind == "worker_crash":
                    # One lost solve, same contract as a dead pool worker.
                    self._record(
                        sid, self.sessions[sid].fail_step("worker_died"), report
                    )
                    continue
                if kind == "slow":
                    sleep(float(directive.get("delay_s", 0.0)))
            groups.setdefault(self._group_key(self.sessions[sid]), []).append(sid)
        for key, sids in groups.items():
            self._solve_group(key, sids, inputs, report)

    def _solve_group(self, key, sids, inputs, report) -> None:
        solver = self._batch_solver(key)
        if solver is None:
            # No batched solver for this (robot, horizon) — every lane in
            # the group steps scalar-inline; record why so operators can
            # tell an unbatchable fleet from a batching regression.
            self.metrics.observe_group_fallback("unbatchable_binding", len(sids))
            for sid in sids:
                x, ref = inputs[sid]
                self._record(sid, self._step_guarded(sid, x, ref), report)
            return
        lanes: List[str] = []
        payloads = []
        for sid in sids:
            session = self.sessions[sid]
            x, ref = inputs[sid]
            if session.qp_method != session.config.qp_method:
                # The method-health ladder demoted this session: its solves
                # must not re-enter the shared batch (whose solver still
                # runs the configured method) — step it scalar-inline with
                # its own, already-rebound solver instead.
                self.metrics.observe_group_fallback("method_demoted", 1)
                self._record(sid, self._step_guarded(sid, x, ref), report)
                continue
            payload = session.solve_payload(x, ref=ref)
            bad = not np.all(np.isfinite(payload["x"])) or (
                payload["ref"] is not None
                and not np.all(np.isfinite(payload["ref"]))
            )
            if bad:
                # Poisoned measurement/reference: reject before it enters
                # the batch (one bad lane must not abort the group solve);
                # the warm start survives, as on the inline path.
                self._record(sid, session.fail_step("bad_state"), report)
                continue
            lanes.append(sid)
            payloads.append(payload)
        if not lanes:
            return
        try:
            results, batch_report = solver.solve_payloads(payloads)
        except ReproError:
            # Solver-level rejection of the whole group: each session pays
            # one ladder step and drops its (implicated) warm start.
            self.metrics.observe_group_fallback("group_solver_error", len(lanes))
            for sid in lanes:
                self._record(
                    sid,
                    self.sessions[sid].fail_step("solver_error", reset_warm=True),
                    report,
                )
            return
        except Exception:
            self.metrics.observe_group_fallback("group_crashed", len(lanes))
            for sid in lanes:
                self._record(sid, self.sessions[sid].mark_crashed(), report)
            return
        self.metrics.observe_batch(len(lanes), batch_report)
        for sid, result in zip(lanes, results):
            session = self.sessions[sid]
            try:
                outcome = session.absorb_result(result)
            except ReproError:
                raise
            except Exception:
                outcome = session.mark_crashed()
            self._record(sid, outcome, report)

    def _discard_pool(self) -> None:
        """Throw away a broken worker pool; the next process dispatch
        rebuilds (and re-primes) it lazily."""
        pool, self._pool = self._pool, None
        self.worker_respawns += 1
        if pool is not None:
            try:
                # No wait (the pool is broken) and no cancel_futures (all
                # futures were already consumed above).
                pool.shutdown(wait=False)
            except Exception:
                pass
        if self.trace is not None:
            self.trace.emit("worker_pool", respawns=self.worker_respawns)

    def _record(self, sid: str, outcome: StepOutcome, report: TickReport) -> None:
        report.outcomes[sid] = outcome
        self.metrics.observe_step(sid, outcome)
        if self.trace is not None:
            self.trace.emit("step", tick=report.index, **outcome.to_record())

    def _apply_backpressure(self, report: TickReport) -> None:
        budget = self.config.tick_budget_s
        if budget is None or not report.stepped:
            return
        if report.duration_s > budget:
            # Overrun: shrink the next batch proportionally to the overshoot.
            scaled = int(report.stepped * budget / report.duration_s)
            self._batch_limit = max(self.config.min_batch, scaled)
        elif report.duration_s < 0.5 * budget and self._batch_limit is not None:
            # Headroom: re-grow geometrically until the limit disappears.
            grown = self._batch_limit * 2
            if grown >= len(self.sessions):
                self._batch_limit = None
            else:
                self._batch_limit = grown

    # -- teardown -------------------------------------------------------------
    def collect_solver_stats(self) -> None:
        """Fold every session's cumulative solver phase stats into the
        fleet metrics (call once, at end of run)."""
        for session in self.sessions.values():
            self.metrics.absorb_solver_stats(session.solver_stats())
        for solver in self._batch_solvers.values():
            if solver is not None:
                self.metrics.absorb_solver_stats(solver.stats)

    def shutdown(self) -> None:
        """Close all serving sessions and stop the worker pool."""
        for session in self.sessions.values():
            if session.serving:
                session.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# -- worker-side solve (process backend) ----------------------------------------

#: per-process cache: (robot, horizon, qp_method, codegen) -> (benchmark,
#: problem, solver) — the QP method and codegen mode are part of the
#: solver's identity, so sessions with different methods never share a
#: worker-side solver (or its ADMM-internal warm state / fused kernels)
_WORKER_CACHE: Dict[Tuple[str, int, str, str], Tuple[object, object, object]] = {}


def prime_worker_cache(
    robot: str,
    horizon: int,
    bench=None,
    problem=None,
    qp_method: str = "ipm",
    codegen: str = "auto",
) -> None:
    """Populate this process's solver cache (parent-side, pre-fork)."""
    key = (robot, horizon, qp_method, codegen)
    if key in _WORKER_CACHE:
        return
    if bench is None:
        from repro.robots import build_benchmark

        bench = build_benchmark(robot)
    if problem is None:
        problem = bench.transcribe(horizon=horizon)
    if codegen != "auto":
        problem.set_codegen(codegen)
    # warm the fused kernels pre-fork: a cold C compile belongs in the
    # prime, not inside a worker's first deadline-budgeted solve
    problem.codegen_kernels()
    solver = bench.make_solver(problem)
    if qp_method != "ipm":
        from repro.serve.session import apply_qp_method

        apply_qp_method(solver, qp_method)
    _WORKER_CACHE[key] = (bench, problem, solver)


def remote_solve(payload: Dict[str, object]) -> Dict[str, object]:
    """Execute one picklable solve payload (runs inside a pool worker).

    The payload carries the full per-step state (measurement, references,
    warm start, budget); the worker is stateless apart from its solver
    cache, so any worker can serve any session.  The reply is a plain dict
    of arrays/scalars — also picklable — that
    :meth:`ControlSession.absorb` folds back into the session.

    An optional ``payload["fault"]`` directive (from the chaos harness)
    is honored before the solve: ``worker_crash`` hard-kills this worker
    process — exactly the failure mode the engine must survive — and
    ``slow`` sleeps for the injected latency.
    """
    try:
        fault = payload.get("fault")
        if fault:
            kind = fault.get("kind")
            if kind == "worker_crash":
                os._exit(3)  # no cleanup: simulate an OOM-kill / segfault
            elif kind == "slow":
                sleep(float(fault.get("delay_s", 0.0)))
        robot = str(payload["robot"])
        horizon = int(payload["horizon"])
        qp_method = str(payload.get("qp_method") or "ipm")
        codegen = str(payload.get("codegen") or "auto")
        prime_worker_cache(robot, horizon, qp_method=qp_method, codegen=codegen)
        _, _, solver = _WORKER_CACHE[(robot, horizon, qp_method, codegen)]
        budget = None
        if (
            payload.get("deadline_s") is not None
            or payload.get("max_sqp_iterations") is not None
            or payload.get("max_qp_iterations") is not None
        ):
            budget = SolveBudget(
                wall_clock=payload.get("deadline_s"),
                sqp_iterations=payload.get("max_sqp_iterations"),
                qp_iterations=payload.get("max_qp_iterations"),
            )
        result = solver.solve(
            payload["x"],
            ref=payload.get("ref"),
            z_warm=payload.get("z_warm"),
            nu_warm=payload.get("nu_warm"),
            lam_warm=payload.get("lam_warm"),
            budget=budget,
        )
        return {
            "ok": True,
            "error": None,
            "z": result.z,
            "nu": result.nu,
            "lam": result.lam,
            "converged": result.converged,
            "iterations": result.iterations,
            "qp_iterations": result.qp_iterations,
            "objective": result.objective,
            "kkt_residual": result.kkt_residual,
            "status": result.status,
            "solve_time": result.solve_time,
            "health": (
                result.health.to_dict() if result.health is not None else None
            ),
        }
    except StateValidationError as exc:
        # Rejected input, not a solver failure: the session must NOT drop
        # its warm start over this.
        return {
            "ok": False,
            "kind": "bad_state",
            "error": str(exc),
            "solve_time": None,
            "health": exc.health.to_dict() if exc.health is not None else None,
        }
    except ReproError as exc:
        return {
            "ok": False,
            "kind": "solver_error",
            "error": str(exc),
            "solve_time": None,
        }
