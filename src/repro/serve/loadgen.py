"""Load generator: drive a mixed-robot session fleet against the plant.

This is the serving analogue of :meth:`MPCController.simulate`: each session
gets its own ground-truth plant (the RK4 :class:`PlantIntegrator` over the
continuous dynamics), its initial state perturbed around the benchmark's
``x0``, and the engine ticks the whole fleet — deadline-budgeted solves,
fallbacks, backpressure and all.  ``repro serve-sim`` is a thin CLI wrapper
around :func:`run_load`; the standalone script ``scripts/serve_loadgen.py``
drives the same entry point for ad-hoc load experiments.

Plant states that leave the finite range (a fleet member hovering through a
long degraded stretch can drift arbitrarily) are re-seeded at the
benchmark's ``x0`` and counted, so one runaway plant cannot poison a run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ServeError
from repro.mpc.controller import PlantIntegrator
from repro.serve.engine import EngineConfig, ServeEngine
from repro.serve.session import SessionConfig
from repro.serve.telemetry import FleetMetrics, TraceWriter, render_summary

__all__ = ["LoadConfig", "LoadReport", "run_load", "resolve_seed"]


def resolve_seed(seed: Optional[int]) -> int:
    """An explicit seed wins; otherwise ``REPRO_BENCH_SEED`` (default 0),
    so seeded benchmark runs and the load generator draw from one knob."""
    if seed is not None:
        return int(seed)
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))

#: default mixed-robot rotation: one cheap, one mid, one heavy solver, so a
#: budgeted run exercises healthy sessions, warm-up misses, and sustained
#: degradation in a single fleet
DEFAULT_ROBOTS = ("MobileRobot", "MicroSat", "Quadrotor")


@dataclass(frozen=True)
class LoadConfig:
    """One load-generation scenario."""

    sessions: int = 20
    ticks: int = 20
    robots: Sequence[str] = DEFAULT_ROBOTS
    horizon: int = 8
    #: per-session horizon rotation (cycled); None = every session at
    #: ``horizon``.  Mixed horizons are what serve2's bucketing co-batches.
    horizons: Optional[Sequence[int]] = None
    #: per-step solve deadline in seconds (None disables budgeting)
    deadline_s: Optional[float] = 0.05
    degrade_after: int = 3
    #: scale of the N(0,1) perturbation added to each benchmark x0
    x0_noise: float = 0.02
    #: None resolves from ``REPRO_BENCH_SEED`` (default 0) at run time
    seed: Optional[int] = None
    #: probability a session sits a tick out (its own seeded stream, so
    #: jitter on/off never perturbs the x0 draws)
    arrival_jitter: float = 0.0
    #: "cycle" assigns robots round-robin; "sample" draws each session's
    #: robot from ``robots`` with a seeded RNG
    robot_mix: str = "cycle"
    #: "v1" (tick-batched ServeEngine) or "v2" (async continuous batching)
    engine: str = "v1"
    #: serve2 knobs (engine="v2" only)
    shards: int = 1
    shard_backend: str = "inline"
    rungs: Optional[Sequence[int]] = None
    max_batch: int = 64
    max_queue: Optional[int] = None
    workers: int = 0
    backend: str = "thread"
    #: array backend for backend="batched" (None = env / numpy default)
    array_backend: Optional[str] = None
    #: inner QP solver for every fleet session: "ipm" or "admm"
    qp_method: str = "ipm"
    #: fused-kernel codegen mode for every fleet session
    codegen: str = "auto"
    tick_budget_s: Optional[float] = None
    #: plant RK4 sub-steps per control interval
    substeps: int = 2
    trace_path: Optional[str] = None

    def __post_init__(self):
        if self.sessions < 1:
            raise ServeError("sessions must be >= 1")
        if self.ticks < 1:
            raise ServeError("ticks must be >= 1")
        if not self.robots:
            raise ServeError("robots must be non-empty")
        if self.horizons is not None and not self.horizons:
            raise ServeError("horizons must be non-empty (or None)")
        if not 0.0 <= self.arrival_jitter < 1.0:
            raise ServeError("arrival_jitter must be in [0, 1)")
        if self.robot_mix not in ("cycle", "sample"):
            raise ServeError(f"unknown robot_mix {self.robot_mix!r}")
        if self.engine not in ("v1", "v2"):
            raise ServeError(f"unknown engine {self.engine!r}")


@dataclass
class LoadReport:
    """Outcome of one load run."""

    config: LoadConfig
    metrics: FleetMetrics
    session_states: Dict[str, str]
    crashed: List[str]
    plant_resets: int
    wall_time_s: float
    trace_path: Optional[str] = None
    #: per-tick (duration_s, stepped, deferred) triples
    tick_log: List[Tuple[float, int, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no session crashed (the serve-smoke gate)."""
        return not self.crashed

    def summary(self) -> str:
        return render_summary(self.metrics, self.session_states)

    def to_dict(self) -> Dict[str, object]:
        return {
            "engine": self.config.engine,
            "sessions": self.config.sessions,
            "ticks": self.config.ticks,
            "robots": list(self.config.robots),
            "horizon": self.config.horizon,
            "deadline_s": self.config.deadline_s,
            "crashed": list(self.crashed),
            "plant_resets": self.plant_resets,
            "wall_time_s": self.wall_time_s,
            "session_states": dict(self.session_states),
            "metrics": self.metrics.to_dict(),
        }


def _build_engine(config: LoadConfig, trace):
    if config.engine == "v2":
        from repro.serve2 import DEFAULT_RUNGS, AsyncServeEngine, Serve2Config

        return AsyncServeEngine(
            Serve2Config(
                max_sessions=config.sessions,
                rungs=(
                    tuple(config.rungs)
                    if config.rungs is not None
                    else DEFAULT_RUNGS
                ),
                max_batch=config.max_batch,
                max_queue=config.max_queue,
                shards=config.shards,
                shard_backend=config.shard_backend,
                qp_method=config.qp_method,
                codegen=config.codegen,
                array_backend=config.array_backend,
            ),
            trace=trace,
        )
    return ServeEngine(
        EngineConfig(
            max_sessions=config.sessions,
            workers=config.workers,
            backend=config.backend,
            array_backend=config.array_backend,
            qp_method=config.qp_method,
            codegen=config.codegen,
            tick_budget_s=config.tick_budget_s,
        ),
        trace=trace,
    )


def run_load(config: LoadConfig) -> LoadReport:
    """Build the fleet, tick it ``config.ticks`` times, return the report."""
    seed = resolve_seed(config.seed)
    rng = np.random.default_rng(seed)
    # Dedicated streams so turning jitter or robot sampling on never
    # perturbs the x0 noise draws — identical fleets stay comparable.
    jitter_rng = np.random.default_rng([seed, 0x1177])
    mix_rng = np.random.default_rng([seed, 0x5EED])
    trace = (
        TraceWriter(config.trace_path) if config.trace_path is not None else None
    )
    engine = _build_engine(config, trace)

    t0 = perf_counter()
    plants: Dict[Tuple[str, int], PlantIntegrator] = {}
    x: Dict[str, np.ndarray] = {}
    x0_of: Dict[str, np.ndarray] = {}
    dt_of: Dict[str, float] = {}
    plant_of: Dict[str, PlantIntegrator] = {}
    plant_resets = 0

    for i in range(config.sessions):
        if config.robot_mix == "sample":
            robot = str(mix_rng.choice(list(config.robots)))
        else:
            robot = config.robots[i % len(config.robots)]
        horizon = (
            int(config.horizons[i % len(config.horizons)])
            if config.horizons is not None
            else config.horizon
        )
        sid = engine.create_session(
            SessionConfig(
                robot=robot,
                horizon=horizon,
                deadline_s=config.deadline_s,
                degrade_after=config.degrade_after,
                qp_method=config.qp_method,
                codegen=config.codegen,
            )
        )
        bench, problem = engine.binding(robot, horizon)
        key = (robot, horizon)
        if key not in plants:
            plants[key] = PlantIntegrator(problem)
        plant_of[sid] = plants[key]
        x0 = np.asarray(bench.x0, dtype=float)
        x0_of[sid] = x0
        x[sid] = x0 + config.x0_noise * rng.standard_normal(x0.shape)
        dt_of[sid] = problem.dt

    tick_log: List[Tuple[float, int, int]] = []
    for _ in range(config.ticks):
        serving = {
            sid: (x[sid], None)
            for sid, session in engine.sessions.items()
            if session.serving
        }
        if not serving:
            break
        inputs = serving
        if config.arrival_jitter:
            inputs = {
                sid: v
                for sid, v in serving.items()
                if jitter_rng.random() >= config.arrival_jitter
            }
            if not inputs:
                continue  # everyone sat this tick out; the fleet lives on
        report = engine.tick(inputs)
        tick_log.append(
            (report.duration_s, report.stepped, len(report.deferred))
        )
        for sid, outcome in report.outcomes.items():
            x_next = plant_of[sid].advance(
                x[sid], outcome.u, dt_of[sid], config.substeps
            )
            if not np.all(np.isfinite(x_next)):
                x_next = x0_of[sid].copy()
                plant_resets += 1
            x[sid] = x_next

    engine.collect_solver_stats()
    states = engine.session_states()
    crashed = engine.crashed_sessions()
    wall = perf_counter() - t0

    result = LoadReport(
        config=config,
        metrics=engine.metrics,
        session_states=states,
        crashed=crashed,
        plant_resets=plant_resets,
        wall_time_s=wall,
        trace_path=config.trace_path,
        tick_log=tick_log,
    )
    if trace is not None:
        trace.emit(
            "summary",
            wall_time_s=wall,
            crashed=crashed,
            plant_resets=plant_resets,
            **{"fleet": engine.metrics.fleet.to_dict()},
        )
        trace.close()
    engine.shutdown()
    return result
