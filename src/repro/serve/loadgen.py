"""Load generator: drive a mixed-robot session fleet against the plant.

This is the serving analogue of :meth:`MPCController.simulate`: each session
gets its own ground-truth plant (the RK4 :class:`PlantIntegrator` over the
continuous dynamics), its initial state perturbed around the benchmark's
``x0``, and the engine ticks the whole fleet — deadline-budgeted solves,
fallbacks, backpressure and all.  ``repro serve-sim`` is a thin CLI wrapper
around :func:`run_load`; the standalone script ``scripts/serve_loadgen.py``
drives the same entry point for ad-hoc load experiments.

Plant states that leave the finite range (a fleet member hovering through a
long degraded stretch can drift arbitrarily) are re-seeded at the
benchmark's ``x0`` and counted, so one runaway plant cannot poison a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ServeError
from repro.mpc.controller import PlantIntegrator
from repro.serve.engine import EngineConfig, ServeEngine
from repro.serve.session import SessionConfig
from repro.serve.telemetry import FleetMetrics, TraceWriter, render_summary

__all__ = ["LoadConfig", "LoadReport", "run_load"]

#: default mixed-robot rotation: one cheap, one mid, one heavy solver, so a
#: budgeted run exercises healthy sessions, warm-up misses, and sustained
#: degradation in a single fleet
DEFAULT_ROBOTS = ("MobileRobot", "MicroSat", "Quadrotor")


@dataclass(frozen=True)
class LoadConfig:
    """One load-generation scenario."""

    sessions: int = 20
    ticks: int = 20
    robots: Sequence[str] = DEFAULT_ROBOTS
    horizon: int = 8
    #: per-step solve deadline in seconds (None disables budgeting)
    deadline_s: Optional[float] = 0.05
    degrade_after: int = 3
    #: scale of the N(0,1) perturbation added to each benchmark x0
    x0_noise: float = 0.02
    seed: int = 0
    workers: int = 0
    backend: str = "thread"
    #: array backend for backend="batched" (None = env / numpy default)
    array_backend: Optional[str] = None
    #: inner QP solver for every fleet session: "ipm" or "admm"
    qp_method: str = "ipm"
    #: fused-kernel codegen mode for every fleet session
    codegen: str = "auto"
    tick_budget_s: Optional[float] = None
    #: plant RK4 sub-steps per control interval
    substeps: int = 2
    trace_path: Optional[str] = None

    def __post_init__(self):
        if self.sessions < 1:
            raise ServeError("sessions must be >= 1")
        if self.ticks < 1:
            raise ServeError("ticks must be >= 1")
        if not self.robots:
            raise ServeError("robots must be non-empty")


@dataclass
class LoadReport:
    """Outcome of one load run."""

    config: LoadConfig
    metrics: FleetMetrics
    session_states: Dict[str, str]
    crashed: List[str]
    plant_resets: int
    wall_time_s: float
    trace_path: Optional[str] = None
    #: per-tick (duration_s, stepped, deferred) triples
    tick_log: List[Tuple[float, int, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no session crashed (the serve-smoke gate)."""
        return not self.crashed

    def summary(self) -> str:
        return render_summary(self.metrics, self.session_states)

    def to_dict(self) -> Dict[str, object]:
        return {
            "sessions": self.config.sessions,
            "ticks": self.config.ticks,
            "robots": list(self.config.robots),
            "horizon": self.config.horizon,
            "deadline_s": self.config.deadline_s,
            "crashed": list(self.crashed),
            "plant_resets": self.plant_resets,
            "wall_time_s": self.wall_time_s,
            "session_states": dict(self.session_states),
            "metrics": self.metrics.to_dict(),
        }


def run_load(config: LoadConfig) -> LoadReport:
    """Build the fleet, tick it ``config.ticks`` times, return the report."""
    rng = np.random.default_rng(config.seed)
    trace = (
        TraceWriter(config.trace_path) if config.trace_path is not None else None
    )
    engine = ServeEngine(
        EngineConfig(
            max_sessions=config.sessions,
            workers=config.workers,
            backend=config.backend,
            array_backend=config.array_backend,
            qp_method=config.qp_method,
            codegen=config.codegen,
            tick_budget_s=config.tick_budget_s,
        ),
        trace=trace,
    )

    t0 = perf_counter()
    plants: Dict[Tuple[str, int], PlantIntegrator] = {}
    x: Dict[str, np.ndarray] = {}
    x0_of: Dict[str, np.ndarray] = {}
    dt_of: Dict[str, float] = {}
    plant_of: Dict[str, PlantIntegrator] = {}
    plant_resets = 0

    for i in range(config.sessions):
        robot = config.robots[i % len(config.robots)]
        sid = engine.create_session(
            SessionConfig(
                robot=robot,
                horizon=config.horizon,
                deadline_s=config.deadline_s,
                degrade_after=config.degrade_after,
                qp_method=config.qp_method,
                codegen=config.codegen,
            )
        )
        bench, problem = engine.binding(robot, config.horizon)
        key = (robot, config.horizon)
        if key not in plants:
            plants[key] = PlantIntegrator(problem)
        plant_of[sid] = plants[key]
        x0 = np.asarray(bench.x0, dtype=float)
        x0_of[sid] = x0
        x[sid] = x0 + config.x0_noise * rng.standard_normal(x0.shape)
        dt_of[sid] = problem.dt

    tick_log: List[Tuple[float, int, int]] = []
    for _ in range(config.ticks):
        inputs = {
            sid: (x[sid], None)
            for sid, session in engine.sessions.items()
            if session.serving
        }
        if not inputs:
            break
        report = engine.tick(inputs)
        tick_log.append(
            (report.duration_s, report.stepped, len(report.deferred))
        )
        for sid, outcome in report.outcomes.items():
            x_next = plant_of[sid].advance(
                x[sid], outcome.u, dt_of[sid], config.substeps
            )
            if not np.all(np.isfinite(x_next)):
                x_next = x0_of[sid].copy()
                plant_resets += 1
            x[sid] = x_next

    engine.collect_solver_stats()
    states = engine.session_states()
    crashed = engine.crashed_sessions()
    wall = perf_counter() - t0

    result = LoadReport(
        config=config,
        metrics=engine.metrics,
        session_states=states,
        crashed=crashed,
        plant_resets=plant_resets,
        wall_time_s=wall,
        trace_path=config.trace_path,
        tick_log=tick_log,
    )
    if trace is not None:
        trace.emit(
            "summary",
            wall_time_s=wall,
            crashed=crashed,
            plant_resets=plant_resets,
            **{"fleet": engine.metrics.fleet.to_dict()},
        )
        trace.close()
    engine.shutdown()
    return result
