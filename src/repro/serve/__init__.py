"""repro.serve — multi-session MPC serving runtime.

RoboX deploys the solver as an *online* controller (§III): every control
period must produce an input, on time, for every robot being served.  This
package is the serving substrate around the offline solver stack:

* :mod:`repro.serve.session` — per-session controller state with a
  create/step/reset/close lifecycle and the graceful-degradation policy
  (deadline miss / solver error / divergence → fallback ladder → degraded).
* :mod:`repro.serve.policy` — the fallback ladder itself (shifted previous
  plan, then hover/hold).
* :mod:`repro.serve.engine` — the batch engine: admission control, a
  round-robin tick loop with backpressure, and inline / thread / process
  execution backends over picklable solve payloads.
* :mod:`repro.serve.telemetry` — per-session and fleet counters, log-spaced
  latency histograms, JSONL traces, and the text summary.
* :mod:`repro.serve.loadgen` — mixed-robot fleet simulation against the
  ground-truth plant integrator (the ``repro serve-sim`` backend).

Deadline semantics live one layer down, in
:class:`repro.mpc.budget.SolveBudget`: a budgeted solve stops early with
``status == "budget_exhausted"`` instead of raising; *this* package decides
what to serve when that happens.
"""

from repro.serve.engine import (
    EngineConfig,
    ServeEngine,
    TickReport,
    prime_worker_cache,
    remote_solve,
)
from repro.serve.loadgen import DEFAULT_ROBOTS, LoadConfig, LoadReport, run_load
from repro.serve.policy import FallbackAction, FallbackLadder, HOLD, SHIFTED_PLAN
from repro.serve.session import (
    ACTIVE,
    CLOSED,
    CRASHED,
    DEGRADED,
    ControlSession,
    SessionConfig,
    StepOutcome,
)
from repro.serve.telemetry import (
    FleetMetrics,
    Histogram,
    SessionMetrics,
    TraceWriter,
    render_summary,
)

__all__ = [
    "ACTIVE",
    "DEGRADED",
    "CLOSED",
    "CRASHED",
    "SHIFTED_PLAN",
    "HOLD",
    "FallbackAction",
    "FallbackLadder",
    "SessionConfig",
    "StepOutcome",
    "ControlSession",
    "EngineConfig",
    "TickReport",
    "ServeEngine",
    "remote_solve",
    "prime_worker_cache",
    "Histogram",
    "SessionMetrics",
    "FleetMetrics",
    "TraceWriter",
    "render_summary",
    "DEFAULT_ROBOTS",
    "LoadConfig",
    "LoadReport",
    "run_load",
]
