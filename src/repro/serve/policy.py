"""Graceful-degradation policy: the fallback ladder.

An online MPC session must emit *an* input every control period even when
the solver cannot: the deadline fires mid-solve, the QP diverges, or the
linearization throws.  The ladder encodes the standard receding-horizon
recovery sequence:

1. **Shifted previous plan** — the last successful solve produced an input
   trajectory ``u_0..u_{N-1}``; ``u_0`` was applied when it was computed, so
   a miss one period later applies ``u_1``, a second consecutive miss
   ``u_2``, and so on.  The open-loop tail of a recent plan is the best
   model-consistent guess available without solving.
2. **Hold input** — once the stored plan is exhausted (or none exists yet),
   emit the configured hover/neutral input (zeros by default: every Table
   III benchmark expresses inputs as deviations where zero is the safe
   neutral action).

The ladder also tracks *consecutive* fallbacks — the session layer marks a
session degraded once the count crosses its threshold, and one successful
solve fully re-arms the ladder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ServeError

__all__ = ["FallbackAction", "FallbackLadder", "SHIFTED_PLAN", "HOLD"]

#: fallback rung names (also the ``StepOutcome.status`` values)
SHIFTED_PLAN = "fallback_shifted"
HOLD = "fallback_hold"


@dataclass(frozen=True)
class FallbackAction:
    """One rung of the ladder: the input to apply and which rung it came from."""

    input: np.ndarray
    rung: str  # SHIFTED_PLAN or HOLD


class FallbackLadder:
    """Tracks the last good plan and serves degraded inputs from it."""

    def __init__(self, n_inputs: int, hover: Optional[np.ndarray] = None):
        if n_inputs < 1:
            raise ServeError("FallbackLadder needs n_inputs >= 1")
        self.n_inputs = int(n_inputs)
        #: neutral input served when no plan tail is left
        self.hover = (
            np.zeros(self.n_inputs)
            if hover is None
            else np.asarray(hover, dtype=float).copy()
        )
        if self.hover.shape != (self.n_inputs,):
            raise ServeError(
                f"hover input has shape {self.hover.shape}, "
                f"expected ({self.n_inputs},)"
            )
        self._plan: Optional[np.ndarray] = None  # (N, nu) from the last solve
        self._shift = 0
        #: consecutive fallbacks since the last successful solve
        self.consecutive = 0
        #: lifetime fallback count
        self.total = 0

    def record_success(self, input_plan: np.ndarray) -> None:
        """Arm the ladder with a fresh solved input trajectory ``(N, nu)``.

        Call with the plan whose first input is being applied *now*; a
        fallback next period starts from index 1.
        """
        plan = np.asarray(input_plan, dtype=float)
        if plan.ndim != 2 or plan.shape[1] != self.n_inputs:
            raise ServeError(
                f"input plan has shape {plan.shape}, expected (N, {self.n_inputs})"
            )
        self._plan = plan.copy()
        self._shift = 0
        self.consecutive = 0

    def fallback(self) -> FallbackAction:
        """Serve the next rung: shifted plan while it lasts, then hold."""
        self.consecutive += 1
        self.total += 1
        if self._plan is not None:
            self._shift += 1
            if self._shift < self._plan.shape[0]:
                return FallbackAction(self._plan[self._shift].copy(), SHIFTED_PLAN)
        return FallbackAction(self.hover.copy(), HOLD)

    @property
    def plan_remaining(self) -> int:
        """Unused tail length of the stored plan (0 when exhausted/absent)."""
        if self._plan is None:
            return 0
        return max(0, self._plan.shape[0] - 1 - self._shift)

    def reset(self) -> None:
        """Forget the stored plan and all counters except the lifetime total."""
        self._plan = None
        self._shift = 0
        self.consecutive = 0
