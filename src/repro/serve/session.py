"""Per-session MPC state: lifecycle, budgeted stepping, degradation.

A :class:`ControlSession` owns everything one robot's control loop needs on
the serving side: the :class:`~repro.mpc.controller.MPCController` (and with
it the warm-start state), the robot/task binding resolved through
:mod:`repro.robots.registry`, the per-step :class:`~repro.mpc.budget.SolveBudget`,
and the :class:`~repro.serve.policy.FallbackLadder`.

Lifecycle: ``active`` → (``degraded`` ↔ ``active``) → ``closed``; the engine
may also force ``crashed`` when a step raises something outside the
:class:`~repro.errors.ReproError` hierarchy.  ``step`` never raises for
solver-side failures — every control period produces a
:class:`StepOutcome` carrying the input to apply plus full observability.

Two execution paths produce identical outcomes:

* ``step(x, ref)`` — solve inline (the engine's ``inline``/``thread``
  backends).
* ``solve_payload(x, ref)`` / ``absorb(remote)`` — build a picklable solve
  request, ship it to a worker process, and fold the picklable reply back
  into the session (the ``process`` backend; see
  :func:`repro.serve.engine.remote_solve`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Dict, Optional

import numpy as np

from repro.errors import (
    ReproError,
    ServeError,
    SessionStateError,
    StateValidationError,
)
from repro.mpc.budget import SolveBudget
from repro.mpc.controller import MPCController
from repro.mpc.health import SolverHealth
from repro.mpc.ipm import IPMResult
from repro.serve.policy import FallbackLadder

__all__ = [
    "ACTIVE",
    "DEGRADED",
    "CLOSED",
    "CRASHED",
    "SessionConfig",
    "StepOutcome",
    "ControlSession",
    "apply_qp_method",
]

ACTIVE = "active"
DEGRADED = "degraded"
CLOSED = "closed"
CRASHED = "crashed"


def _health_dict(result: Optional[IPMResult]) -> Optional[Dict[str, object]]:
    health = getattr(result, "health", None)
    return health.to_dict() if isinstance(health, SolverHealth) else None


def apply_qp_method(solver, method: str) -> None:
    """Rebind a scalar solver's inner QP method in place.

    Options are immutable dataclasses, so this swaps the whole options
    object; the solver reads them afresh on every solve.  No-ops on stub
    solvers (no ``options``) and when the method already matches.
    """
    options = getattr(solver, "options", None)
    if options is None or getattr(options.qp, "method", method) == method:
        return
    solver.options = replace(options, qp=replace(options.qp, method=method))


@dataclass(frozen=True)
class SessionConfig:
    """Declarative binding of one session (picklable)."""

    #: Table III benchmark name (resolved via ``repro.robots.registry``)
    robot: str
    #: MPC horizon for this session's transcription
    horizon: int = 8
    #: per-step wall-clock solve budget in seconds (None = unbounded)
    deadline_s: Optional[float] = 0.05
    #: optional per-step SQP / total-QP iteration caps (budget AND-combined)
    max_sqp_iterations: Optional[int] = None
    max_qp_iterations: Optional[int] = None
    #: consecutive fallbacks before the session is marked degraded
    degrade_after: int = 3
    #: KKT residual above which a "successful" solve is treated as divergent
    divergence_kkt: float = 1e6
    #: rung 0 of the degradation policy: a budget-exhausted solve whose KKT
    #: residual is already below this control-grade threshold is *served*
    #: (real-time-iteration style) instead of triggering the fallback
    #: ladder — the Gauss-Newton tail is linear, so a warm fleet hovers
    #: just above the solver's own tolerance without being any worse to fly
    accept_kkt: float = 1e-2
    #: override the benchmark's warm-start recommendation (None = keep it)
    warm_start: Optional[bool] = None
    #: inner QP solver for this session's solves: "ipm" (Mehrotra
    #: interior-point, the default) or "admm" (the first-order solver of
    #: :mod:`repro.firstorder` — cached factorization, RTI-friendly
    #: warm-started iterations)
    qp_method: str = "ipm"
    #: linearize-phase codegen mode for this session's problem: "auto"
    #: (size-gated on-with-fallback, the default), "on", "off", or a pinned
    #: tier "numpy" / "c" — see :mod:`repro.codegen`
    codegen: str = "auto"

    def __post_init__(self):
        if self.qp_method not in ("ipm", "admm"):
            raise ServeError(
                f"qp_method must be 'ipm' or 'admm', got {self.qp_method!r}"
            )
        if self.codegen not in ("auto", "on", "off", "numpy", "c"):
            raise ServeError(
                f"codegen must be one of 'auto', 'on', 'off', 'numpy', 'c'; "
                f"got {self.codegen!r}"
            )

    def budget(self) -> Optional[SolveBudget]:
        if (
            self.deadline_s is None
            and self.max_sqp_iterations is None
            and self.max_qp_iterations is None
        ):
            return None
        return SolveBudget(
            wall_clock=self.deadline_s,
            sqp_iterations=self.max_sqp_iterations,
            qp_iterations=self.max_qp_iterations,
        )


@dataclass
class StepOutcome:
    """Everything one control period produced, for the client and telemetry."""

    session_id: str
    #: the input to apply this period (always finite)
    u: np.ndarray
    #: "ok" | "fallback_shifted" | "fallback_hold" | "crashed" | "restarted"
    status: str
    #: True when ``u`` came from the degradation ladder
    fallback: bool = False
    #: failure cause when not "ok": "deadline" | "solver_error" |
    #: "diverged" | "bad_state" | "worker_died" | "crashed" (None on success)
    reason: Optional[str] = None
    #: wall time of the solve attempt (None when no solve ran, e.g. crash)
    solve_time: Optional[float] = None
    sqp_iterations: int = 0
    qp_iterations: int = 0
    converged: bool = False
    objective: Optional[float] = None
    kkt_residual: Optional[float] = None
    #: session lifecycle state *after* this step
    session_state: str = ACTIVE
    #: this step pushed the session from active into degraded
    degraded_transition: bool = False
    #: consecutive fallbacks after this step (0 on success)
    consecutive_fallbacks: int = 0
    #: served via rung 0: budget exhausted but the iterate was already
    #: control-grade (KKT below the session's ``accept_kkt``)
    partial: bool = False
    #: :meth:`~repro.mpc.health.SolverHealth.to_dict` of the solve's
    #: numerical-health report (None when no solve ran or the solver does
    #: not report health, e.g. injected stubs)
    health: Optional[Dict[str, object]] = None
    #: ADMM subproblems this step's solve handed to the IPM rescue path
    #: (copied out of ``health`` so telemetry can count without digging)
    method_fallbacks: int = 0
    #: this step demoted the session's effective ``qp_method`` to "ipm"
    #: (``degrade_after`` consecutive solves needed the rescue path)
    method_demoted: bool = False

    def to_record(self) -> Dict[str, object]:
        """Flat JSONL-trace representation (drops the input vector)."""
        return {
            "session": self.session_id,
            "status": self.status,
            "fallback": self.fallback,
            "reason": self.reason,
            "solve_time": self.solve_time,
            "sqp_iterations": self.sqp_iterations,
            "qp_iterations": self.qp_iterations,
            "converged": self.converged,
            "partial": self.partial,
            "session_state": self.session_state,
            "consecutive_fallbacks": self.consecutive_fallbacks,
            "method_fallbacks": self.method_fallbacks,
            "method_demoted": self.method_demoted,
            "health": self.health,
        }


class ControlSession:
    """One client's receding-horizon control loop, serving-side."""

    def __init__(
        self,
        session_id: str,
        config: SessionConfig,
        controller: MPCController,
        ref: Optional[np.ndarray] = None,
        hover: Optional[np.ndarray] = None,
    ):
        self.session_id = session_id
        self.config = config
        self.controller = controller
        self.problem = controller.problem
        #: default reference served when the client does not supply one
        self.ref = None if ref is None else np.asarray(ref, dtype=float).copy()
        if self.ref is not None and self.ref.size == 0:
            self.ref = None
        self.ladder = FallbackLadder(self.problem.nu, hover=hover)
        self.state = ACTIVE
        self.steps = 0
        #: effective inner QP method; starts at the configured one and is
        #: demoted to "ipm" when ``degrade_after`` consecutive solves needed
        #: the ADMM->IPM rescue ladder (the configured method is clearly the
        #: wrong tool for this robot).  ``reset``/``restart`` re-promote.
        self.qp_method = config.qp_method
        self._rescue_streak = 0
        if config.warm_start is not None:
            controller.warm_start = config.warm_start

    @classmethod
    def from_benchmark(
        cls,
        session_id: str,
        config: SessionConfig,
        bench=None,
        problem=None,
    ) -> "ControlSession":
        """Build a session from the robot registry (binding by name).

        ``bench``/``problem`` may be supplied to share one transcription
        across many sessions of the same (robot, horizon) — transcription
        compiles the symbolic derivatives and is by far the expensive part.
        """
        from repro.robots import build_benchmark

        if bench is None:
            bench = build_benchmark(config.robot)
        if problem is None:
            problem = bench.transcribe(horizon=config.horizon)
        if config.codegen != "auto":
            problem.set_codegen(config.codegen)
        # Build the fused kernels now (this may invoke the C compiler on a
        # cold artifact store): session construction is off the deadline
        # clock, the first tick is not.
        problem.codegen_kernels()
        controller = bench.make_controller(problem)
        if config.qp_method != "ipm":
            apply_qp_method(controller.solver, config.qp_method)
        return cls(session_id, config, controller, ref=bench.ref)

    # -- lifecycle ------------------------------------------------------------
    @property
    def serving(self) -> bool:
        """True while the session accepts steps (active or degraded)."""
        return self.state in (ACTIVE, DEGRADED)

    def reset(self) -> None:
        """Clear warm starts and the ladder; re-activate a degraded session."""
        self._require_serving("reset")
        self.controller.reset()
        self.ladder.reset()
        self._repromote()
        self.state = ACTIVE

    def close(self) -> None:
        """Terminal: further steps raise :class:`SessionStateError`."""
        if self.state == CRASHED:
            raise SessionStateError(
                f"session {self.session_id!r} crashed; close is a no-op"
            )
        self.controller.reset()
        self.state = CLOSED

    def restart(self) -> StepOutcome:
        """Recover a crashed (or degraded) session: drop all warm state,
        reset the degradation ladder, and return to ``active``.

        This is the operator-facing escape hatch paired with
        :meth:`mark_crashed` — a crash is terminal for the *step loop*, not
        for the session slot.  Only ``closed`` is unrecoverable.
        """
        if self.state == CLOSED:
            raise SessionStateError(
                f"cannot restart closed session {self.session_id!r}"
            )
        self.controller.reset()
        self.ladder.reset()
        self._repromote()
        self.state = ACTIVE
        return StepOutcome(
            session_id=self.session_id,
            u=self.ladder.hover.copy(),
            status="restarted",
            session_state=ACTIVE,
        )

    def _repromote(self) -> None:
        """Restore the configured ``qp_method`` after a demotion (operator
        reset/restart is an explicit vote of confidence in the binding)."""
        self._rescue_streak = 0
        if self.qp_method != self.config.qp_method:
            self.qp_method = self.config.qp_method
            apply_qp_method(self.controller.solver, self.qp_method)

    def fail_step(
        self,
        reason: str,
        solve_time: Optional[float] = None,
        reset_warm: bool = False,
    ) -> StepOutcome:
        """Record an externally-detected failure as one fallback period.

        The engine calls this when the failure happened *outside* the
        session — e.g. a pool worker died mid-solve (``worker_died``).  The
        session pays one rung of the degradation ladder but keeps its warm
        start unless ``reset_warm`` says the iterate is implicated.
        """
        self._require_serving("step")
        if reset_warm:
            self.controller.reset()
        return self._fallback_outcome(reason, solve_time, None)

    def mark_crashed(self) -> StepOutcome:
        """Record an unhandled failure (called by the engine) and emit the
        terminal outcome: hover input, ``crashed`` state."""
        self.state = CRASHED
        return StepOutcome(
            session_id=self.session_id,
            u=self.ladder.hover.copy(),
            status="crashed",
            fallback=False,
            reason="crashed",
            session_state=CRASHED,
            consecutive_fallbacks=self.ladder.consecutive,
        )

    def _require_serving(self, op: str) -> None:
        if not self.serving:
            raise SessionStateError(
                f"cannot {op} session {self.session_id!r} in state {self.state!r}"
            )

    # -- stepping (inline path) -----------------------------------------------
    def step(
        self, x_measured: np.ndarray, ref: Optional[np.ndarray] = None
    ) -> StepOutcome:
        """One control period: budgeted solve, degradation ladder on failure."""
        self._require_serving("step")
        use_ref = self.ref if ref is None else ref
        t0 = perf_counter()
        try:
            u = self.controller.step(
                x_measured, ref=use_ref, budget=self.config.budget()
            )
        except StateValidationError as exc:
            # The *input* was garbage (NaN/Inf measurement or reference);
            # the solve never started, so the warm start is untouched and
            # stays valid for the next clean measurement.
            return self._fallback_outcome(
                "bad_state",
                perf_counter() - t0,
                None,
                health=exc.health.to_dict() if exc.health is not None else None,
            )
        except ReproError:
            # Solver-side failure: the warm start is implicated — drop it so
            # the next attempt starts clean, then serve the ladder.
            self.controller.reset()
            return self._fallback_outcome(
                "solver_error", perf_counter() - t0, None
            )
        return self._classify(u, self.controller.last_result, perf_counter() - t0)

    # -- stepping (remote/worker path) ----------------------------------------
    def solve_payload(
        self, x_measured: np.ndarray, ref: Optional[np.ndarray] = None
    ) -> Dict[str, object]:
        """Picklable solve request for :func:`repro.serve.engine.remote_solve`.

        Carries the session's warm-start state by value; the worker owns no
        session state, so the same worker pool serves any session mix.
        """
        self._require_serving("step")
        c = self.controller
        use_ref = self.ref if ref is None else ref
        return {
            "session_id": self.session_id,
            "robot": self.config.robot,
            "horizon": self.config.horizon,
            "x": np.asarray(x_measured, dtype=float),
            "ref": None if use_ref is None else np.asarray(use_ref, dtype=float),
            "z_warm": c._warm if c.warm_start else None,
            "nu_warm": c._nu_warm if c.warm_start else None,
            "lam_warm": c._lam_warm if c.warm_start else None,
            "deadline_s": self.config.deadline_s,
            "max_sqp_iterations": self.config.max_sqp_iterations,
            "max_qp_iterations": self.config.max_qp_iterations,
            # the *effective* method: a demoted session ships "ipm" to the
            # worker pool even though its config still says "admm"
            "qp_method": self.qp_method,
            "codegen": self.config.codegen,
        }

    def absorb(self, remote: Dict[str, object]) -> StepOutcome:
        """Fold a worker's reply (from :func:`remote_solve`) into the session."""
        self._require_serving("step")
        solve_time = float(remote.get("solve_time") or 0.0)
        if not remote.get("ok"):
            reason = str(remote.get("kind") or "solver_error")
            if reason != "bad_state":
                # Solver-side failure implicates the warm start; a rejected
                # input does not (the solve never started).
                self.controller.reset()
            return self._fallback_outcome(
                reason, solve_time, None, health=remote.get("health")
            )
        result = IPMResult(
            z=np.asarray(remote["z"], dtype=float),
            converged=bool(remote["converged"]),
            iterations=int(remote["iterations"]),
            qp_iterations=int(remote["qp_iterations"]),
            objective=float(remote["objective"]),
            kkt_residual=float(remote["kkt_residual"]),
            nu=None if remote["nu"] is None else np.asarray(remote["nu"]),
            lam=None if remote["lam"] is None else np.asarray(remote["lam"]),
            status=str(remote["status"]),
            solve_time=solve_time,
            health=SolverHealth.from_dict(remote.get("health")),
        )
        return self.absorb_result(result, solve_time)

    def absorb_result(
        self, result: IPMResult, solve_time: Optional[float] = None
    ) -> StepOutcome:
        """Fold an in-process :class:`IPMResult` into the session.

        The batched backend solves a whole session group in one call and
        scatters each lane's result back here: adopt the iterate as the
        next warm start, then run the same classification ladder as an
        inline or worker solve.
        """
        self._require_serving("step")
        elapsed = result.solve_time if solve_time is None else solve_time
        u = self.controller.adopt(result)
        return self._classify(u, result, elapsed)

    # -- shared outcome logic ---------------------------------------------------
    def _classify(
        self, u: np.ndarray, result: IPMResult, elapsed: float
    ) -> StepOutcome:
        if (
            not np.all(np.isfinite(u))
            or not np.isfinite(result.objective)
            or result.status == "diverged"
        ):
            # A divergent iterate poisons the warm start — drop it too.
            # (A "diverged" status means the solver itself bailed on a
            # poisoned/unfactorizable subproblem even if the returned
            # iterate still prints as finite.)
            self.controller.reset()
            return self._fallback_outcome("diverged", elapsed, result)
        if result.status == "budget_exhausted" and not result.converged:
            # Rung 0: a partial solve that is already control-grade
            # (KKT below ``accept_kkt``) is served as-is.
            if result.kkt_residual > self.config.accept_kkt:
                # Keep the (finite) partial iterate as the next warm start,
                # so real-time-iteration progress accumulates across
                # misses, but *serve* the trusted ladder input.  Checked
                # before the divergence threshold: a truncated solve
                # legitimately reports a huge (or never-evaluated, i.e.
                # infinite) residual without having diverged.
                return self._fallback_outcome("deadline", elapsed, result)
        if result.kkt_residual > self.config.divergence_kkt:
            self.controller.reset()
            return self._fallback_outcome("diverged", elapsed, result)

        self.ladder.record_success(self.problem.split(result.z)[1])
        self.steps += 1
        self.state = ACTIVE  # a good solve recovers a degraded session
        return self._track_method_health(StepOutcome(
            session_id=self.session_id,
            u=u,
            status="ok",
            solve_time=elapsed,
            sqp_iterations=result.iterations,
            qp_iterations=result.qp_iterations,
            converged=result.converged,
            objective=result.objective,
            kkt_residual=result.kkt_residual,
            session_state=self.state,
            partial=result.status == "budget_exhausted" and not result.converged,
            health=_health_dict(result),
        ))

    def _fallback_outcome(
        self,
        reason: str,
        elapsed: Optional[float],
        result: Optional[IPMResult],
        health: Optional[Dict[str, object]] = None,
    ) -> StepOutcome:
        action = self.ladder.fallback()
        self.steps += 1
        transition = False
        if (
            self.state == ACTIVE
            and self.ladder.consecutive >= self.config.degrade_after
        ):
            self.state = DEGRADED
            transition = True
        return self._track_method_health(StepOutcome(
            session_id=self.session_id,
            u=action.input,
            status=action.rung,
            fallback=True,
            reason=reason,
            solve_time=elapsed,
            sqp_iterations=result.iterations if result is not None else 0,
            qp_iterations=result.qp_iterations if result is not None else 0,
            converged=False,
            objective=result.objective if result is not None else None,
            kkt_residual=result.kkt_residual if result is not None else None,
            session_state=self.state,
            degraded_transition=transition,
            consecutive_fallbacks=self.ladder.consecutive,
            health=health if health is not None else _health_dict(result),
        ))

    def _track_method_health(self, outcome: StepOutcome) -> StepOutcome:
        """Fold the solve's rescue count into the outcome and run the
        method-demotion ladder.

        ``degrade_after`` *consecutive* solves that each needed at least one
        ADMM->IPM rescue demote the session's effective ``qp_method`` to
        "ipm" — every subproblem is already paying for both solvers, so the
        first-order attempt is pure overhead.  Any rescue-free solve resets
        the streak.  The solver-internal ADMM warm state is dropped on
        demotion (warm-start hygiene across the method switch).
        """
        if outcome.health:
            outcome.method_fallbacks = int(
                outcome.health.get("method_fallbacks", 0) or 0
            )
        if self.qp_method != "admm":
            return outcome
        if outcome.method_fallbacks > 0:
            self._rescue_streak += 1
            if self._rescue_streak >= self.config.degrade_after:
                self.qp_method = "ipm"
                apply_qp_method(self.controller.solver, "ipm")
                reset_warm = getattr(
                    self.controller.solver, "reset_qp_warm", None
                )
                if callable(reset_warm):
                    reset_warm()
                self._rescue_streak = 0
                outcome.method_demoted = True
        else:
            self._rescue_streak = 0
        return outcome

    def solver_stats(self) -> Dict[str, float]:
        """The wrapped solver's cumulative per-phase stats (may be empty
        for injected stub solvers)."""
        return dict(getattr(self.controller.solver, "stats", {}) or {})
