"""Serving-runtime telemetry: counters, latency histograms, JSONL traces.

Observability mirrors what the solver already exposes offline
(:class:`~repro.mpc.qp.QPStats` phase times, iteration counts) and lifts it
to the fleet level: per-session and aggregate counters for solve outcomes
and the degradation ladder, log-spaced latency histograms with approximate
percentiles, and a line-per-event JSONL trace writer the load generator and
``repro serve-sim`` use to persist runs for offline analysis.

Everything here is dependency-free (numpy + stdlib) and mergeable:
histograms and metric blocks support ``merge`` so sharded engines can be
aggregated later.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, IO, List, Optional, Union

import numpy as np

__all__ = [
    "Histogram",
    "SessionMetrics",
    "FleetMetrics",
    "TraceWriter",
    "render_summary",
]


class Histogram:
    """Fixed log-spaced histogram (seconds by default: 10 us .. 100 s).

    Values below the first edge land in bin 0, values above the last edge
    in the overflow bin.  Percentiles are approximate (upper edge of the
    bin containing the requested rank) — standard serving-metrics behavior.
    """

    def __init__(
        self,
        lo: float = 1e-5,
        hi: float = 100.0,
        bins_per_decade: int = 5,
    ):
        decades = np.log10(hi) - np.log10(lo)
        n_edges = int(round(decades * bins_per_decade)) + 1
        self.edges = np.logspace(np.log10(lo), np.log10(hi), n_edges)
        self.counts = np.zeros(n_edges + 1, dtype=np.int64)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def record(self, value: float) -> None:
        v = float(value)
        idx = int(np.searchsorted(self.edges, v, side="right"))
        self.counts[idx] += 1
        self.count += 1
        self.sum += v
        if v > self.max:
            self.max = v

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (q in [0, 100])."""
        if self.count == 0:
            return 0.0
        rank = (q / 100.0) * self.count
        cum = np.cumsum(self.counts)
        idx = int(np.searchsorted(cum, rank, side="left"))
        if idx >= len(self.edges):
            return self.max
        # Upper bin edge, clamped so a percentile never exceeds the true max.
        return float(min(self.edges[idx], self.max))

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if other.counts.shape != self.counts.shape:
            raise ValueError("cannot merge histograms with different binning")
        self.counts += other.counts
        self.count += other.count
        self.sum += other.sum
        self.max = max(self.max, other.max)

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max,
        }


@dataclass
class SessionMetrics:
    """Counters and latency for one control session."""

    steps: int = 0
    ok: int = 0
    #: "ok" steps served from a budget-exhausted but control-grade iterate
    partial_accepts: int = 0
    fallbacks_shifted: int = 0
    fallbacks_hold: int = 0
    deadline_misses: int = 0
    solver_errors: int = 0
    divergences: int = 0
    #: steps rejected up front for non-finite measurements/references
    bad_states: int = 0
    #: solves lost to a dying pool worker (session survived on the ladder)
    worker_deaths: int = 0
    #: requests dropped by admission control / load shedding (serve2)
    sheds: int = 0
    crashes: int = 0
    degraded_transitions: int = 0
    #: ADMM subproblems re-solved by the IPM rescue ladder (the solves
    #: still succeeded — this counts the extra work, not failures)
    method_fallbacks: int = 0
    #: sessions demoted from "admm" to "ipm" after ``degrade_after``
    #: consecutive rescued solves
    method_demotions: int = 0
    sqp_iterations: int = 0
    qp_iterations: int = 0
    solve_latency: Histogram = field(default_factory=Histogram)

    @property
    def fallbacks(self) -> int:
        return self.fallbacks_shifted + self.fallbacks_hold

    def merge(self, other: "SessionMetrics") -> None:
        self.steps += other.steps
        self.ok += other.ok
        self.partial_accepts += other.partial_accepts
        self.fallbacks_shifted += other.fallbacks_shifted
        self.fallbacks_hold += other.fallbacks_hold
        self.deadline_misses += other.deadline_misses
        self.solver_errors += other.solver_errors
        self.divergences += other.divergences
        self.bad_states += other.bad_states
        self.worker_deaths += other.worker_deaths
        self.sheds += other.sheds
        self.crashes += other.crashes
        self.degraded_transitions += other.degraded_transitions
        self.method_fallbacks += other.method_fallbacks
        self.method_demotions += other.method_demotions
        self.sqp_iterations += other.sqp_iterations
        self.qp_iterations += other.qp_iterations
        self.solve_latency.merge(other.solve_latency)

    def to_dict(self) -> Dict[str, object]:
        return {
            "steps": self.steps,
            "ok": self.ok,
            "partial_accepts": self.partial_accepts,
            "fallbacks": self.fallbacks,
            "fallbacks_shifted": self.fallbacks_shifted,
            "fallbacks_hold": self.fallbacks_hold,
            "deadline_misses": self.deadline_misses,
            "solver_errors": self.solver_errors,
            "divergences": self.divergences,
            "bad_states": self.bad_states,
            "worker_deaths": self.worker_deaths,
            "sheds": self.sheds,
            "crashes": self.crashes,
            "degraded_transitions": self.degraded_transitions,
            "method_fallbacks": self.method_fallbacks,
            "method_demotions": self.method_demotions,
            "sqp_iterations": self.sqp_iterations,
            "qp_iterations": self.qp_iterations,
            "solve_latency": self.solve_latency.to_dict(),
        }


#: solver.stats keys aggregated into the fleet phase-time block
_PHASE_KEYS = (
    "linearize_time",
    "factorize_time",
    "substitute_time",
    "factor_flops",
    "substitute_flops",
    "factorizations",
    "banded_factorizations",
)


class FleetMetrics:
    """Per-session metrics plus the fleet aggregate."""

    def __init__(self):
        self.sessions: Dict[str, SessionMetrics] = {}
        self.fleet = SessionMetrics()
        #: aggregated :class:`QPStats`-style phase observability across the
        #: fleet's solvers (wall seconds / exact kernel flops)
        self.phase_totals: Dict[str, float] = {k: 0 for k in _PHASE_KEYS}
        self.ticks = 0
        self.deferred_steps = 0
        #: batched-backend telemetry: group solves, lanes, and occupancy
        self.batch_solves = 0
        self.batched_lanes = 0
        self.max_batch = 0
        self.sqp_lane_iterations = 0
        self.sqp_lane_slots = 0
        self.qp_lane_iterations = 0
        self.qp_lane_slots = 0
        #: scalar-inline group fallbacks by reason -> lanes affected (was
        #: previously invisible: group-level rejections looked identical
        #: to lane-level ones in the summary)
        self.group_fallbacks: Dict[str, int] = {}
        #: serve2 continuous-batching telemetry
        self.padded_lanes = 0
        self.shard_handoffs = 0
        self.shard_respawns = 0
        #: seconds of deadline slack left when a request was dispatched
        self.deadline_headroom = Histogram()
        #: fraction of a padded lane's stages spent on padding (0 when a
        #: session's horizon sits exactly on a bucket rung)
        self.padding_waste = Histogram(lo=1e-3, hi=1.0)
        #: lanes filled / max_batch per group solve
        self.bucket_occupancy = Histogram(lo=1e-2, hi=1.0)

    def session(self, session_id: str) -> SessionMetrics:
        if session_id not in self.sessions:
            self.sessions[session_id] = SessionMetrics()
        return self.sessions[session_id]

    def observe_step(self, session_id: str, outcome) -> None:
        """Fold one :class:`~repro.serve.session.StepOutcome` in."""
        for target in (self.session(session_id), self.fleet):
            target.steps += 1
            if outcome.fallback:
                if outcome.status == "fallback_hold":
                    target.fallbacks_hold += 1
                else:
                    target.fallbacks_shifted += 1
            elif outcome.status == "crashed":
                target.crashes += 1
            else:
                target.ok += 1
                if outcome.partial:
                    target.partial_accepts += 1
            if outcome.reason == "deadline":
                target.deadline_misses += 1
            elif outcome.reason == "solver_error":
                target.solver_errors += 1
            elif outcome.reason == "diverged":
                target.divergences += 1
            elif outcome.reason == "bad_state":
                target.bad_states += 1
            elif outcome.reason == "worker_died":
                target.worker_deaths += 1
            elif outcome.reason == "shed":
                target.sheds += 1
            if outcome.degraded_transition:
                target.degraded_transitions += 1
            target.method_fallbacks += getattr(outcome, "method_fallbacks", 0)
            if getattr(outcome, "method_demoted", False):
                target.method_demotions += 1
            target.sqp_iterations += outcome.sqp_iterations
            target.qp_iterations += outcome.qp_iterations
            if outcome.solve_time is not None:
                target.solve_latency.record(outcome.solve_time)

    def observe_tick(self, deferred: int) -> None:
        self.ticks += 1
        self.deferred_steps += deferred

    def observe_batch(self, lanes: int, report) -> None:
        """Fold one batched group solve's occupancy report in.

        ``report`` is a :class:`~repro.batch.ipm.BatchSolveReport`;
        efficiency = worked lane-iterations / available lane-slots, the
        continuous-batching utilization of the solver.
        """
        self.batch_solves += 1
        self.batched_lanes += lanes
        self.max_batch = max(self.max_batch, lanes)
        self.sqp_lane_iterations += report.sqp_lane_iterations
        self.sqp_lane_slots += report.sqp_lane_slots
        self.qp_lane_iterations += report.qp_lane_iterations
        self.qp_lane_slots += report.qp_lane_slots

    @property
    def mean_batch(self) -> float:
        return self.batched_lanes / self.batch_solves if self.batch_solves else 0.0

    @property
    def batch_efficiency(self) -> float:
        """Fraction of QP lane-slots doing useful work (active-mask yield)."""
        return (
            self.qp_lane_iterations / self.qp_lane_slots
            if self.qp_lane_slots
            else 1.0
        )

    @property
    def sqp_batch_efficiency(self) -> float:
        return (
            self.sqp_lane_iterations / self.sqp_lane_slots
            if self.sqp_lane_slots
            else 1.0
        )

    def observe_group_fallback(self, reason: str, lanes: int) -> None:
        """Record a batched group falling back to scalar-inline solves."""
        self.group_fallbacks[reason] = self.group_fallbacks.get(reason, 0) + lanes

    def observe_dispatch(self, headroom_s: float, padding_waste: float) -> None:
        """Record one dispatched request's deadline slack and lane padding.

        ``headroom_s`` may be ``inf`` (no wall-clock budget); only finite
        slack is histogrammed.
        """
        if math.isfinite(headroom_s):
            self.deadline_headroom.record(max(headroom_s, 0.0))
        if padding_waste > 0.0:
            self.padded_lanes += 1
            self.padding_waste.record(padding_waste)

    def absorb_solver_stats(self, stats: Dict[str, float]) -> None:
        """Accumulate one solver's cumulative per-phase stats."""
        for key in _PHASE_KEYS:
            self.phase_totals[key] += stats.get(key, 0)

    def merge(self, other: "FleetMetrics") -> None:
        """Fold another fleet's metrics in (shard aggregation)."""
        for sid, m in other.sessions.items():
            self.session(sid).merge(m)
        self.fleet.merge(other.fleet)
        for key in _PHASE_KEYS:
            self.phase_totals[key] += other.phase_totals[key]
        self.ticks += other.ticks
        self.deferred_steps += other.deferred_steps
        self.batch_solves += other.batch_solves
        self.batched_lanes += other.batched_lanes
        self.max_batch = max(self.max_batch, other.max_batch)
        self.sqp_lane_iterations += other.sqp_lane_iterations
        self.sqp_lane_slots += other.sqp_lane_slots
        self.qp_lane_iterations += other.qp_lane_iterations
        self.qp_lane_slots += other.qp_lane_slots
        for reason, lanes in other.group_fallbacks.items():
            self.group_fallbacks[reason] = (
                self.group_fallbacks.get(reason, 0) + lanes
            )
        self.padded_lanes += other.padded_lanes
        self.shard_handoffs += other.shard_handoffs
        self.shard_respawns += other.shard_respawns
        self.deadline_headroom.merge(other.deadline_headroom)
        self.padding_waste.merge(other.padding_waste)
        self.bucket_occupancy.merge(other.bucket_occupancy)

    def to_dict(self) -> Dict[str, object]:
        return {
            "fleet": self.fleet.to_dict(),
            "ticks": self.ticks,
            "deferred_steps": self.deferred_steps,
            "phase_totals": dict(self.phase_totals),
            "batching": {
                "batch_solves": self.batch_solves,
                "batched_lanes": self.batched_lanes,
                "mean_batch": self.mean_batch,
                "max_batch": self.max_batch,
                "sqp_lane_iterations": self.sqp_lane_iterations,
                "sqp_lane_slots": self.sqp_lane_slots,
                "sqp_batch_efficiency": self.sqp_batch_efficiency,
                "qp_lane_iterations": self.qp_lane_iterations,
                "qp_lane_slots": self.qp_lane_slots,
                "batch_efficiency": self.batch_efficiency,
            },
            "group_fallbacks": dict(sorted(self.group_fallbacks.items())),
            "serve2": {
                "padded_lanes": self.padded_lanes,
                "shard_handoffs": self.shard_handoffs,
                "shard_respawns": self.shard_respawns,
                "deadline_headroom": self.deadline_headroom.to_dict(),
                "padding_waste": self.padding_waste.to_dict(),
                "bucket_occupancy": self.bucket_occupancy.to_dict(),
            },
            "sessions": {
                sid: m.to_dict() for sid, m in sorted(self.sessions.items())
            },
        }


class TraceWriter:
    """Line-per-event JSONL trace of a serving run.

    Accepts a path or an open text stream.  Each record is one flat JSON
    object with a ``type`` discriminator (``session``, ``step``, ``tick``,
    ``summary``).  Non-JSON-native values (numpy scalars/arrays) are
    converted on the way out.
    """

    def __init__(self, sink: Union[str, IO[str]]):
        if isinstance(sink, str):
            self._fh: IO[str] = open(sink, "w", encoding="utf-8")
            self._owns = True
            self.path: Optional[str] = sink
        else:
            self._fh = sink
            self._owns = False
            self.path = getattr(sink, "name", None)
        self.records = 0

    def emit(self, record_type: str, **fields) -> None:
        record = {"type": record_type}
        record.update(fields)
        self._fh.write(json.dumps(record, default=_jsonable) + "\n")
        self.records += 1

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _jsonable(value):
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    raise TypeError(f"not JSON serializable: {type(value)!r}")


def render_summary(metrics: FleetMetrics, states: Dict[str, str]) -> str:
    """Human-readable end-of-run summary (the `serve-sim` footer).

    Args:
        metrics: the fleet metrics to render.
        states: session_id -> lifecycle state (for the census line).
    """
    f = metrics.fleet
    lat = f.solve_latency
    census: Dict[str, int] = {}
    for state in states.values():
        census[state] = census.get(state, 0) + 1
    census_line = ", ".join(f"{n} {s}" for s, n in sorted(census.items()))
    lines: List[str] = []
    lines.append("serve summary")
    lines.append("=" * 13)
    lines.append(f"sessions:        {len(states)} ({census_line})")
    lines.append(
        f"ticks:           {metrics.ticks} "
        f"(deferred steps: {metrics.deferred_steps})"
    )
    lines.append(
        f"steps:           {f.steps}  ok={f.ok} "
        f"(partial={f.partial_accepts})  fallbacks={f.fallbacks} "
        f"(shifted={f.fallbacks_shifted}, hold={f.fallbacks_hold})"
    )
    lines.append(
        f"failure causes:  deadline_misses={f.deadline_misses}  "
        f"solver_errors={f.solver_errors}  divergences={f.divergences}  "
        f"bad_states={f.bad_states}  worker_deaths={f.worker_deaths}  "
        f"sheds={f.sheds}  crashes={f.crashes}"
    )
    lines.append(f"degraded events: {f.degraded_transitions}")
    if f.method_fallbacks or f.method_demotions:
        lines.append(
            f"method rescues:  fallbacks={f.method_fallbacks}  "
            f"demotions={f.method_demotions}"
        )
    lines.append(
        "solve latency:   "
        f"p50={lat.percentile(50) * 1e3:.1f}ms  "
        f"p90={lat.percentile(90) * 1e3:.1f}ms  "
        f"p99={lat.percentile(99) * 1e3:.1f}ms  "
        f"max={lat.max * 1e3:.1f}ms  mean={lat.mean * 1e3:.1f}ms"
    )
    lines.append(
        f"iterations:      sqp={f.sqp_iterations}  qp={f.qp_iterations}"
    )
    if metrics.batch_solves:
        lines.append(
            "batching:        "
            f"solves={metrics.batch_solves}  "
            f"mean_batch={metrics.mean_batch:.1f}  "
            f"max_batch={metrics.max_batch}  "
            f"sqp_eff={metrics.sqp_batch_efficiency:.0%}  "
            f"qp_eff={metrics.batch_efficiency:.0%}"
        )
    if metrics.group_fallbacks:
        causes = "  ".join(
            f"{reason}={lanes}"
            for reason, lanes in sorted(metrics.group_fallbacks.items())
        )
        lines.append(f"group fallbacks: {causes}")
    if metrics.deadline_headroom.count or metrics.padded_lanes:
        hr = metrics.deadline_headroom
        occ = metrics.bucket_occupancy
        lines.append(
            "serve2:          "
            f"padded_lanes={metrics.padded_lanes}  "
            f"waste_mean={metrics.padding_waste.mean:.0%}  "
            f"occupancy_p50={occ.percentile(50):.0%}  "
            f"headroom_p1={hr.percentile(1) * 1e3:.1f}ms  "
            f"handoffs={metrics.shard_handoffs}  "
            f"respawns={metrics.shard_respawns}"
        )
    pt = metrics.phase_totals
    lines.append(
        "solver phases:   "
        f"linearize={pt['linearize_time']:.2f}s  "
        f"factorize={pt['factorize_time']:.2f}s  "
        f"substitute={pt['substitute_time']:.2f}s  "
        f"banded_factorizations={int(pt['banded_factorizations'])}"
        f"/{int(pt['factorizations'])}"
    )
    return "\n".join(lines)
