"""Robot model IR: states, control inputs, bounds, and continuous dynamics.

This is the common intermediate representation produced by both frontends
(the RoboX DSL in :mod:`repro.dsl` and the Python builder API) and consumed
by the transcription layer and the accelerator compiler.  It corresponds to
the paper's ``System`` component (§IV-A): a set of named scalar states and
inputs, per-variable physical bounds, and one symbolic time-derivative
expression per state (the canonical nonlinear dynamics ``xdot = f(x, u)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.symbolic import Expr, Var, as_expr, variables_of

__all__ = ["VarSpec", "RobotModel"]

_INF = math.inf


@dataclass(frozen=True)
class VarSpec:
    """A scalar state or input with optional physical bounds.

    Vector DSL variables (``state pos[2]``) are flattened into one spec per
    element with canonical names like ``pos[0]``.

    ``trim`` is the steady-operating value used for cold-start trajectory
    initialization (e.g. hover thrust for a UAV rotor); it is clipped into
    the bounds when used.
    """

    name: str
    lower: float = -_INF
    upper: float = _INF
    trim: float = 0.0

    def __post_init__(self):
        if not self.name:
            raise ModelError("variable name must be non-empty")
        if self.lower > self.upper:
            raise ModelError(
                f"{self.name}: lower bound {self.lower} exceeds upper {self.upper}"
            )

    @property
    def clipped_trim(self) -> float:
        return min(max(self.trim, self.lower), self.upper)

    @property
    def is_bounded(self) -> bool:
        return self.lower > -_INF or self.upper < _INF

    @property
    def var(self) -> Var:
        return Var(self.name)


class RobotModel:
    """A robot ``System``: states, inputs, and symbolic dynamics.

    Args:
        name: robot name (e.g. ``"Quadrotor"``).
        states: ordered state specs; order defines the state-vector layout.
        inputs: ordered input specs; order defines the input-vector layout.
        dynamics: mapping ``state name -> d(state)/dt`` symbolic expression.
            Every state must have exactly one entry; expressions may reference
            only declared states and inputs.
        params: constant parameters already folded into the dynamics, kept
            for introspection and reporting.
    """

    def __init__(
        self,
        name: str,
        states: Sequence[VarSpec],
        inputs: Sequence[VarSpec],
        dynamics: Dict[str, Expr],
        params: Optional[Dict[str, float]] = None,
        rollout_guess: bool = True,
    ):
        self.name = name
        self.states: Tuple[VarSpec, ...] = tuple(states)
        self.inputs: Tuple[VarSpec, ...] = tuple(inputs)
        self.params: Dict[str, float] = dict(params or {})
        #: whether an open-loop trim rollout is a sensible cold-start guess
        #: (False for open-loop unstable plants like a gravity-loaded arm)
        self.rollout_guess = bool(rollout_guess)

        self._validate_names()
        self.dynamics: Dict[str, Expr] = {
            k: as_expr(v) for k, v in dynamics.items()
        }
        self._validate_dynamics()

    # -- layout ----------------------------------------------------------------
    @property
    def n_states(self) -> int:
        return len(self.states)

    @property
    def n_inputs(self) -> int:
        return len(self.inputs)

    @property
    def state_names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.states)

    @property
    def input_names(self) -> Tuple[str, ...]:
        return tuple(u.name for u in self.inputs)

    @property
    def state_vars(self) -> Tuple[Var, ...]:
        return tuple(s.var for s in self.states)

    @property
    def input_vars(self) -> Tuple[Var, ...]:
        return tuple(u.var for u in self.inputs)

    def state_index(self, name: str) -> int:
        try:
            return self.state_names.index(name)
        except ValueError:
            raise ModelError(f"{self.name}: unknown state {name!r}") from None

    def input_index(self, name: str) -> int:
        try:
            return self.input_names.index(name)
        except ValueError:
            raise ModelError(f"{self.name}: unknown input {name!r}") from None

    @property
    def dynamics_exprs(self) -> Tuple[Expr, ...]:
        """Time derivatives ordered to match the state layout."""
        return tuple(self.dynamics[s.name] for s in self.states)

    # -- bound helpers ---------------------------------------------------------
    def state_bounds(self) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        return (
            tuple(s.lower for s in self.states),
            tuple(s.upper for s in self.states),
        )

    def input_bounds(self) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        return (
            tuple(u.lower for u in self.inputs),
            tuple(u.upper for u in self.inputs),
        )

    def trim_inputs(self) -> Tuple[float, ...]:
        """Steady-operating input vector (clipped into bounds)."""
        return tuple(u.clipped_trim for u in self.inputs)

    def n_bound_constraints(self) -> int:
        """Number of scalar inequality rows contributed by variable bounds."""
        count = 0
        for spec in self.states + self.inputs:
            if spec.lower > -_INF:
                count += 1
            if spec.upper < _INF:
                count += 1
        return count

    # -- validation ------------------------------------------------------------
    def _validate_names(self) -> None:
        names: List[str] = [s.name for s in self.states] + [
            u.name for u in self.inputs
        ]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise ModelError(f"{self.name}: duplicate variable names {sorted(dupes)}")
        if not self.states:
            raise ModelError(f"{self.name}: a robot model needs at least one state")
        if not self.inputs:
            raise ModelError(f"{self.name}: a robot model needs at least one input")

    def _validate_dynamics(self) -> None:
        missing = set(self.state_names) - set(self.dynamics)
        if missing:
            raise ModelError(
                f"{self.name}: states without dynamics: {sorted(missing)}"
            )
        extra = set(self.dynamics) - set(self.state_names)
        if extra:
            raise ModelError(
                f"{self.name}: dynamics given for unknown states: {sorted(extra)}"
            )
        allowed = set(self.state_names) | set(self.input_names)
        for state_name, expr in self.dynamics.items():
            for v in variables_of([expr]):
                if v.name not in allowed:
                    raise ModelError(
                        f"{self.name}: dynamics of {state_name!r} references "
                        f"undeclared variable {v.name!r}"
                    )

    def __repr__(self) -> str:
        return (
            f"RobotModel({self.name!r}, states={self.n_states}, "
            f"inputs={self.n_inputs})"
        )
