"""Task IR: penalty terms and task-specific constraints.

Mirrors the paper's ``Task`` component (§IV-B).  A task is a set of weighted
penalty terms — each marked *running* (enforced at every step of the horizon
except the last) or *terminal* (only at the final step) — plus inequality /
equality constraints with the same timing split.  The objective assembled by
the Program Translator is the sum of weighted squared penalties
``sum_i w_i * p_i^2`` (§VII).

Penalties and constraints may reference *references*: named external inputs
(e.g. a target location streamed from a perception module) that are bound to
numeric values at every controller invocation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import TaskError
from repro.mpc.model import RobotModel
from repro.symbolic import Expr, Var, as_expr, variables_of

__all__ = ["Penalty", "Constraint", "Task", "RUNNING", "TERMINAL"]

RUNNING = "running"
TERMINAL = "terminal"
_TIMINGS = (RUNNING, TERMINAL)
_INF = math.inf


@dataclass(frozen=True)
class Penalty:
    """A scalar penalty term minimized as ``weight * expr**2``."""

    name: str
    expr: Expr
    weight: float = 1.0
    timing: str = RUNNING

    def __post_init__(self):
        object.__setattr__(self, "expr", as_expr(self.expr))
        if self.timing not in _TIMINGS:
            raise TaskError(f"penalty {self.name!r}: bad timing {self.timing!r}")
        if self.weight < 0:
            raise TaskError(f"penalty {self.name!r}: negative weight {self.weight}")


@dataclass(frozen=True)
class Constraint:
    """A scalar constraint ``lower <= expr <= upper``.

    An equality constraint (DSL ``equals`` field) is expressed as
    ``lower == upper``.  One-sided constraints leave the other bound at
    +/- infinity.
    """

    name: str
    expr: Expr
    lower: float = -_INF
    upper: float = _INF
    timing: str = RUNNING

    def __post_init__(self):
        object.__setattr__(self, "expr", as_expr(self.expr))
        if self.timing not in _TIMINGS:
            raise TaskError(f"constraint {self.name!r}: bad timing {self.timing!r}")
        if self.lower > self.upper:
            raise TaskError(
                f"constraint {self.name!r}: lower {self.lower} > upper {self.upper}"
            )
        if self.lower == -_INF and self.upper == _INF:
            raise TaskError(f"constraint {self.name!r}: no finite bound given")

    @property
    def is_equality(self) -> bool:
        return self.lower == self.upper

    def n_inequality_rows(self) -> int:
        """Scalar rows contributed to the stacked ``h(z) <= 0`` vector."""
        if self.is_equality:
            return 0
        rows = 0
        if self.lower > -_INF:
            rows += 1
        if self.upper < _INF:
            rows += 1
        return rows


class Task:
    """A robot task: penalties + constraints, validated against a model.

    Args:
        name: task name (e.g. ``"moveTo"``).
        model: the robot the task is defined for.
        penalties: penalty terms (running and/or terminal).
        constraints: task-specific constraints.
        references: names of external reference variables that penalty /
            constraint expressions may use in addition to model variables.
        meta: free-form metadata (horizon defaults, controller rate, ...)
            carried through from the DSL meta-parameters.
    """

    def __init__(
        self,
        name: str,
        model: RobotModel,
        penalties: Sequence[Penalty],
        constraints: Sequence[Constraint] = (),
        references: Sequence[str] = (),
        meta: Optional[Dict[str, float]] = None,
    ):
        self.name = name
        self.model = model
        self.penalties: Tuple[Penalty, ...] = tuple(penalties)
        self.constraints: Tuple[Constraint, ...] = tuple(constraints)
        self.references: Tuple[str, ...] = tuple(references)
        self.meta: Dict[str, float] = dict(meta or {})
        self._validate()

    # -- grouping (the Program Translator organizes penalties/constraints into
    # -- separate running and terminal groupings, §VII) -------------------------
    @property
    def running_penalties(self) -> Tuple[Penalty, ...]:
        return tuple(p for p in self.penalties if p.timing == RUNNING)

    @property
    def terminal_penalties(self) -> Tuple[Penalty, ...]:
        return tuple(p for p in self.penalties if p.timing == TERMINAL)

    @property
    def running_constraints(self) -> Tuple[Constraint, ...]:
        return tuple(c for c in self.constraints if c.timing == RUNNING)

    @property
    def terminal_constraints(self) -> Tuple[Constraint, ...]:
        return tuple(c for c in self.constraints if c.timing == TERMINAL)

    @property
    def n_penalties(self) -> int:
        return len(self.penalties)

    @property
    def n_constraints(self) -> int:
        return len(self.constraints)

    @property
    def reference_vars(self) -> Tuple[Var, ...]:
        return tuple(Var(r) for r in self.references)

    def _validate(self) -> None:
        if not self.penalties:
            raise TaskError(f"task {self.name!r} defines no penalty terms")
        names = [p.name for p in self.penalties] + [c.name for c in self.constraints]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise TaskError(
                f"task {self.name!r}: duplicate penalty/constraint names "
                f"{sorted(dupes)}"
            )
        allowed = (
            set(self.model.state_names)
            | set(self.model.input_names)
            | set(self.references)
        )
        for item in list(self.penalties) + list(self.constraints):
            used = {v.name for v in variables_of([item.expr])}
            unknown = used - allowed
            if unknown:
                raise TaskError(
                    f"task {self.name!r}: {item.name!r} references undeclared "
                    f"variables {sorted(unknown)}"
                )
            if not used & (set(self.model.state_names) | set(self.model.input_names)):
                raise TaskError(
                    f"task {self.name!r}: {item.name!r} must reference at least "
                    f"one state or input variable"
                )
        terminal_inputs = [
            item.name
            for item in list(self.terminal_penalties) + list(self.terminal_constraints)
            if {v.name for v in variables_of([item.expr])}
            & set(self.model.input_names)
        ]
        if terminal_inputs:
            raise TaskError(
                f"task {self.name!r}: terminal terms cannot reference inputs "
                f"(no input exists at the final step): {terminal_inputs}"
            )

    def __repr__(self) -> str:
        return (
            f"Task({self.name!r}, model={self.model.name!r}, "
            f"penalties={self.n_penalties}, constraints={self.n_constraints})"
        )
