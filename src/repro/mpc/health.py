"""Structured numerical-health reporting for the MPC solver stack.

A production MPC fleet sees NaN sensor states, poisoned warm starts, and
ill-conditioned KKT systems long before it sees a clean benchmark.  The
guards added across :mod:`repro.mpc.ipm` / :mod:`repro.mpc.qp` convert that
silent poison into a :class:`SolverHealth` report: every solve describes
what it validated, what it rejected, and how hard the factorization retry
ladder had to work.  The report travels on
:attr:`repro.mpc.ipm.IPMResult.health` (and, serialized, through the
serving layer's picklable worker replies) so telemetry can separate
"the solver struggled" from "the solver was handed garbage".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["SolverHealth", "nonfinite_indices"]


def nonfinite_indices(v: np.ndarray, limit: int = 8) -> List[int]:
    """Indices of non-finite entries in ``v`` (capped at ``limit`` for
    readable error messages)."""
    bad = np.flatnonzero(~np.isfinite(np.asarray(v, dtype=float)))
    return [int(i) for i in bad[:limit]]


@dataclass
class SolverHealth:
    """Numerical-health record of one MPC solve attempt.

    ``ok`` means the solve ran on clean inputs and kept finite iterates
    throughout — a rejected state or a re-seeded warm start flips it off
    even when the solve itself went on to succeed, so fleet telemetry can
    count contaminated control periods.
    """

    #: the measured state passed validation (False => the solve was rejected
    #: with a :class:`~repro.errors.StateValidationError` before starting)
    state_finite: bool = True
    #: a caller-supplied warm start was contaminated (non-finite) and was
    #: discarded in favor of a fresh cold-start seed
    warm_start_reseeded: bool = False
    #: an SQP step direction came back non-finite and was rejected (the
    #: iterate was kept and the Levenberg damping escalated instead)
    steps_rejected: int = 0
    #: failed factorization attempts absorbed by the escalating-
    #: regularization retry ladder across all QP subproblems of this solve
    factorization_retries: int = 0
    #: largest diagonal regularization the retry ladder had to reach
    regularization_max: float = 0.0
    #: ADMM subproblems that stalled/diverged and were re-solved by the IPM
    #: rescue path (the method-health fallback ladder).  A rescued solve is
    #: still a *successful* solve — this does not flip ``ok`` — but a
    #: climbing count tells the serving layer the session's configured
    #: qp_method is the wrong tool for its robot.
    method_fallbacks: int = 0
    #: free-form annotations ("nonfinite_state[3]", "warm_start_reseeded", …)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.state_finite
            and not self.warm_start_reseeded
            and self.steps_rejected == 0
        )

    def note(self, message: str) -> None:
        self.notes.append(message)

    def to_dict(self) -> Dict[str, object]:
        """Flat, picklable/JSON-able representation (worker replies, traces)."""
        return {
            "ok": self.ok,
            "state_finite": self.state_finite,
            "warm_start_reseeded": self.warm_start_reseeded,
            "steps_rejected": self.steps_rejected,
            "factorization_retries": self.factorization_retries,
            "regularization_max": self.regularization_max,
            "method_fallbacks": self.method_fallbacks,
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, object]]) -> Optional["SolverHealth"]:
        if data is None:
            return None
        return cls(
            state_finite=bool(data.get("state_finite", True)),
            warm_start_reseeded=bool(data.get("warm_start_reseeded", False)),
            steps_rejected=int(data.get("steps_rejected", 0)),
            factorization_retries=int(data.get("factorization_retries", 0)),
            regularization_max=float(data.get("regularization_max", 0.0)),
            method_fallbacks=int(data.get("method_fallbacks", 0)),
            notes=list(data.get("notes", [])),
        )
