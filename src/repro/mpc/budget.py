"""Compute budgets for deadline-bounded MPC solves.

An online controller must return *some* input every control period — RoboX
deploys the solver under a hard per-step compute budget (§III), the way
TinyMPC-style embedded solvers cap iterations on constrained hardware.  A
:class:`SolveBudget` expresses that contract for one solve: an optional
wall-clock allowance plus optional outer (SQP) and inner (QP interior-point)
iteration caps.  :meth:`SolveBudget.start` stamps the wall clock and returns
a :class:`BudgetClock`, which the solver polls at its natural checkpoints
(SQP iteration tops, QP iteration tops, post-QP before the line search).

Semantics are *best effort with bounded overrun*: the solve stops at the
first checkpoint after the budget is exhausted, so the overrun is at most
one linearization plus one QP iteration — it never aborts mid-factorization
and always returns a consistent (iterate, residual) pair.  A solve stopped
by its budget reports ``status == "budget_exhausted"`` on the
:class:`~repro.mpc.ipm.IPMResult`; deciding what to *do* with the partial
iterate (serve it, fall back to the shifted previous plan, hover) is the
caller's policy — see :mod:`repro.serve.policy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Optional

from repro.errors import SolverError

__all__ = ["SolveBudget", "BudgetClock"]


@dataclass(frozen=True)
class SolveBudget:
    """Per-solve compute allowance (all limits optional, combined with AND).

    Attributes:
        wall_clock: wall-clock seconds for the whole solve; ``0.0`` is legal
            and means "already exhausted" (the solve returns the warm start
            immediately — useful for tests and for shedding load).
        sqp_iterations: cap on outer SQP iterations this solve.
        qp_iterations: cap on *total* inner interior-point iterations
            accumulated across all QP subproblems of this solve.
    """

    wall_clock: Optional[float] = None
    sqp_iterations: Optional[int] = None
    qp_iterations: Optional[int] = None

    def __post_init__(self):
        if self.wall_clock is not None and self.wall_clock < 0:
            raise SolverError("wall_clock budget must be >= 0")
        if self.sqp_iterations is not None and self.sqp_iterations < 0:
            raise SolverError("sqp_iterations budget must be >= 0")
        if self.qp_iterations is not None and self.qp_iterations < 0:
            raise SolverError("qp_iterations budget must be >= 0")

    @property
    def unlimited(self) -> bool:
        return (
            self.wall_clock is None
            and self.sqp_iterations is None
            and self.qp_iterations is None
        )

    def start(self) -> "BudgetClock":
        """Stamp the wall clock now and return the running clock."""
        return BudgetClock(self, perf_counter())


class BudgetClock:
    """A started :class:`SolveBudget`: absolute deadline + iteration caps."""

    __slots__ = ("budget", "t0", "deadline")

    def __init__(self, budget: SolveBudget, t0: float):
        self.budget = budget
        self.t0 = t0
        #: absolute ``perf_counter`` deadline, or ``None`` when untimed
        self.deadline: Optional[float] = (
            t0 + budget.wall_clock if budget.wall_clock is not None else None
        )

    def expired(self) -> bool:
        """True once the wall-clock allowance has run out."""
        return self.deadline is not None and perf_counter() >= self.deadline

    def qp_exhausted(self, qp_iterations_done: int) -> bool:
        """True once the cumulative inner-iteration cap is reached."""
        cap = self.budget.qp_iterations
        return cap is not None and qp_iterations_done >= cap

    def remaining(self) -> Optional[float]:
        """Seconds left on the wall clock (clamped at 0), or ``None``."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - perf_counter())

    def elapsed(self) -> float:
        return perf_counter() - self.t0
