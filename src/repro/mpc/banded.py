"""Banded linear-algebra kernels: the sparsity-exploiting solver path.

The paper's CPU baseline is the *sparsity-exploiting* HPMPC interior-point
solver (§VIII-A), and the accelerator's solver-template cost model
(:mod:`repro.compiler`) assumes the same structure: the stage-ordered KKT
matrix of a horizon-``N`` MPC problem is banded with half-bandwidth
``b ~ 2 nx + nu``, so a factorization costs ``O(N b^2)`` instead of
``O(N^3)``.  This module implements those kernels concretely:

* symmetric banded storage (diagonal-major, LAPACK ``SB`` style),
* banded Cholesky factorization and banded triangular solves,
* helpers to convert between dense and banded storage.

The tests verify the banded results match the dense from-scratch kernels of
:mod:`repro.mpc.linalg` exactly, and the kernel microbenchmarks demonstrate
the asymptotic win the cost model is built on.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import SolverError

__all__ = [
    "to_banded",
    "from_banded",
    "banded_cholesky",
    "banded_forward_substitution",
    "banded_backward_substitution",
    "banded_solve",
    "bandwidth_of",
]


def bandwidth_of(A: np.ndarray, tol: float = 0.0) -> int:
    """Half-bandwidth of a symmetric matrix: max |i - j| with A[i,j] != 0."""
    A = np.asarray(A)
    n = A.shape[0]
    band = 0
    for i in range(n):
        nz = np.nonzero(np.abs(A[i]) > tol)[0]
        if nz.size:
            band = max(band, int(np.max(np.abs(nz - i))))
    return band


def to_banded(A: np.ndarray, band: int) -> np.ndarray:
    """Pack the lower triangle of a symmetric banded matrix.

    Returns ``B`` with shape ``(band + 1, n)`` where ``B[d, j] = A[j + d, j]``
    (diagonal ``d`` below the main diagonal, column ``j``).  Entries beyond
    the matrix edge are zero.
    """
    A = np.asarray(A, dtype=float)
    n = A.shape[0]
    if A.shape != (n, n):
        raise SolverError(f"expected a square matrix, got {A.shape}")
    if band < 0 or band >= n and n > 0 and band != 0:
        band = min(band, max(n - 1, 0))
    B = np.zeros((band + 1, n))
    for d in range(band + 1):
        B[d, : n - d] = np.diagonal(A, offset=-d)
    return B


def from_banded(B: np.ndarray) -> np.ndarray:
    """Unpack banded storage into a dense symmetric matrix."""
    B = np.asarray(B, dtype=float)
    band = B.shape[0] - 1
    n = B.shape[1]
    A = np.zeros((n, n))
    for d in range(band + 1):
        idx = np.arange(n - d)
        A[idx + d, idx] = B[d, : n - d]
        if d:
            A[idx, idx + d] = B[d, : n - d]
    return A


def banded_cholesky(B: np.ndarray, reg: float = 0.0) -> np.ndarray:
    """Cholesky factorization in banded storage.

    Args:
        B: symmetric positive-definite matrix in :func:`to_banded` storage.
        reg: diagonal regularization added before factorization.

    Returns:
        The lower-triangular factor ``L`` in the same banded storage
        (``L[d, j] = factor[j + d, j]``).

    The factor of a banded SPD matrix has the same bandwidth, which is what
    makes the ``O(n band^2)`` cost possible.
    """
    B = np.asarray(B, dtype=float)
    band = B.shape[0] - 1
    n = B.shape[1]
    L = np.zeros_like(B)

    for j in range(n):
        # d_jj = B[0, j] + reg - sum_{k} L[j, k]^2 over the band window
        acc = B[0, j] + reg
        lo = max(j - band, 0)
        for k in range(lo, j):
            acc -= L[j - k, k] ** 2
        if acc <= 0.0 or not np.isfinite(acc):
            raise SolverError(
                f"banded cholesky pivot {j} is non-positive ({acc:.3e})"
            )
        L[0, j] = np.sqrt(acc)
        # Column update for rows i in (j, j + band]
        hi = min(j + band, n - 1)
        for i in range(j + 1, hi + 1):
            acc = B[i - j, j]
            lo_k = max(i - band, 0)
            for k in range(lo_k, j):
                acc -= L[i - k, k] * L[j - k, k]
            L[i - j, j] = acc / L[0, j]
    return L


def banded_forward_substitution(L: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``L y = b`` with ``L`` in banded lower storage."""
    L = np.asarray(L, dtype=float)
    band = L.shape[0] - 1
    n = L.shape[1]
    y = np.array(b, dtype=float, copy=True)
    squeeze = y.ndim == 1
    if squeeze:
        y = y[:, None]
    for i in range(n):
        lo = max(i - band, 0)
        for k in range(lo, i):
            y[i] -= L[i - k, k] * y[k]
        if L[0, i] == 0.0:
            raise SolverError(f"banded forward substitution: zero pivot {i}")
        y[i] /= L[0, i]
    return y[:, 0] if squeeze else y


def banded_backward_substitution(L: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``L^T x = b`` with ``L`` in banded lower storage."""
    L = np.asarray(L, dtype=float)
    band = L.shape[0] - 1
    n = L.shape[1]
    x = np.array(b, dtype=float, copy=True)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[:, None]
    for i in range(n - 1, -1, -1):
        hi = min(i + band, n - 1)
        for k in range(i + 1, hi + 1):
            x[i] -= L[k - i, i] * x[k]
        if L[0, i] == 0.0:
            raise SolverError(f"banded backward substitution: zero pivot {i}")
        x[i] /= L[0, i]
    return x[:, 0] if squeeze else x


def banded_solve(
    B: np.ndarray, b: np.ndarray, reg: float = 0.0
) -> np.ndarray:
    """Solve ``A x = b`` for a banded SPD ``A`` given in banded storage."""
    L = banded_cholesky(B, reg=reg)
    y = banded_forward_substitution(L, b)
    return banded_backward_substitution(L, y)
