"""Banded linear-algebra kernels: the sparsity-exploiting solver path.

The paper's CPU baseline is the *sparsity-exploiting* HPMPC interior-point
solver (§VIII-A), and the accelerator's solver-template cost model
(:mod:`repro.compiler`) assumes the same structure: the stage-ordered KKT
matrix of a horizon-``N`` MPC problem is banded with half-bandwidth
``b ~ 2 nx + nu``, so a factorization costs ``O(N b^2)`` instead of
``O(N^3)``.  This module implements those kernels concretely:

* symmetric banded storage (diagonal-major, LAPACK ``SB`` style),
* banded Cholesky factorization and banded triangular solves,
* helpers to convert between dense and banded storage,
* exact primitive-op counts of the banded kernels, so benchmarks can
  compare measured flops against the accelerator cost model.

These kernels are what :func:`repro.mpc.qp.solve_qp` runs when it is handed
a bandwidth hint (the stage-interleaved ordering produced by
:meth:`repro.mpc.transcription.TranscribedProblem.stage_permutation`).  The
inner loops are window-vectorized: each column/row touches only its
``band``-wide window, expressed as one NumPy gather + matvec, which is what
turns the asymptotic ``O(n band^2)`` win into a wall-clock win.

The tests verify the banded results match the dense from-scratch kernels of
:mod:`repro.mpc.linalg` exactly, and the kernel microbenchmarks demonstrate
the asymptotic win the cost model is built on.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

import numpy as np

from repro.errors import SolverError
from repro.mpc.linalg import cholesky, forward_substitution

__all__ = [
    "to_banded",
    "from_banded",
    "banded_cholesky",
    "banded_forward_substitution",
    "banded_backward_substitution",
    "banded_cholesky_solve",
    "banded_solve",
    "bandwidth_of",
    "BandedCholeskyFactor",
    "flop_counts_banded_cholesky",
    "flop_counts_banded_substitution",
]


def bandwidth_of(A: np.ndarray, tol: float = 0.0) -> int:
    """Half-bandwidth of a symmetric matrix: max |i - j| with A[i,j] != 0."""
    A = np.asarray(A)
    i, j = np.nonzero(np.abs(A) > tol)
    if i.size == 0:
        return 0
    return int(np.max(np.abs(i - j)))


def to_banded(A: np.ndarray, band: int) -> np.ndarray:
    """Pack the lower triangle of a symmetric banded matrix.

    Returns ``B`` with shape ``(band + 1, n)`` where ``B[d, j] = A[j + d, j]``
    (diagonal ``d`` below the main diagonal, column ``j``).  Entries beyond
    the matrix edge are zero.
    """
    A = np.asarray(A, dtype=float)
    n = A.shape[0]
    if A.shape != (n, n):
        raise SolverError(f"expected a square matrix, got {A.shape}")
    if band < 0 or band >= n and n > 0 and band != 0:
        band = min(band, max(n - 1, 0))
    B = np.zeros((band + 1, n))
    for d in range(band + 1):
        B[d, : n - d] = np.diagonal(A, offset=-d)
    return B


def from_banded(B: np.ndarray) -> np.ndarray:
    """Unpack banded storage into a dense symmetric matrix."""
    B = np.asarray(B, dtype=float)
    band = B.shape[0] - 1
    n = B.shape[1]
    A = np.zeros((n, n))
    for d in range(band + 1):
        idx = np.arange(n - d)
        A[idx + d, idx] = B[d, : n - d]
        if d:
            A[idx, idx + d] = B[d, : n - d]
    return A


def banded_cholesky(B: np.ndarray, reg: float = 0.0) -> np.ndarray:
    """Cholesky factorization in banded storage.

    Args:
        B: symmetric positive-definite matrix in :func:`to_banded` storage.
        reg: diagonal regularization added before factorization.

    Returns:
        The lower-triangular factor ``L`` in the same banded storage
        (``L[d, j] = factor[j + d, j]``).

    The factor of a banded SPD matrix has the same bandwidth, which is what
    makes the ``O(n band^2)`` cost possible.  Each column update is one
    windowed gather + matvec over at most ``band`` previous columns.
    """
    B = np.asarray(B, dtype=float)
    band = B.shape[0] - 1
    n = B.shape[1]
    L = np.zeros_like(B)

    for j in range(n):
        lo = max(j - band, 0)
        # Row j of the factor over columns [lo, j) is the anti-diagonal
        # L[j - k, k] of the banded storage.
        ks = np.arange(lo, j)
        row_j = L[j - ks, ks]
        acc = B[0, j] + reg - float(row_j @ row_j)
        if acc <= 0.0 or not np.isfinite(acc):
            raise SolverError(
                f"banded cholesky pivot {j} is non-positive ({acc:.3e})"
            )
        ljj = np.sqrt(acc)
        L[0, j] = ljj
        hi = min(j + band, n - 1)
        if hi == j:
            continue
        if ks.size:
            # Window rows i in (j, hi]: M[i, k] = factor[i, k], which is zero
            # whenever i - k exceeds the bandwidth (clip the gather, mask it).
            d = np.arange(j + 1, hi + 1)[:, None] - ks[None, :]
            M = np.where(d <= band, L[np.minimum(d, band), ks[None, :]], 0.0)
            L[1 : hi - j + 1, j] = (B[1 : hi - j + 1, j] - M @ row_j) / ljj
        else:
            L[1 : hi - j + 1, j] = B[1 : hi - j + 1, j] / ljj
    return L


def banded_forward_substitution(L: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``L y = b`` with ``L`` in banded lower storage."""
    L = np.asarray(L, dtype=float)
    band = L.shape[0] - 1
    n = L.shape[1]
    y = np.array(b, dtype=float, copy=True)
    squeeze = y.ndim == 1
    if squeeze:
        y = y[:, None]
    for i in range(n):
        if L[0, i] == 0.0:
            raise SolverError(f"banded forward substitution: zero pivot {i}")
        lo = max(i - band, 0)
        if lo < i:
            # Row i of the factor over columns [lo, i): anti-diagonal gather.
            ks = np.arange(lo, i)
            y[i] -= L[i - ks, ks] @ y[lo:i]
        y[i] /= L[0, i]
    return y[:, 0] if squeeze else y


def banded_backward_substitution(L: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``L^T x = b`` with ``L`` in banded lower storage."""
    L = np.asarray(L, dtype=float)
    band = L.shape[0] - 1
    n = L.shape[1]
    x = np.array(b, dtype=float, copy=True)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[:, None]
    for i in range(n - 1, -1, -1):
        if L[0, i] == 0.0:
            raise SolverError(f"banded backward substitution: zero pivot {i}")
        hi = min(i + band, n - 1)
        if hi > i:
            # Column i of the factor below the diagonal is contiguous in
            # banded storage: L[1 : hi-i+1, i].
            x[i] -= L[1 : hi - i + 1, i].T @ x[i + 1 : hi + 1]
        x[i] /= L[0, i]
    return x[:, 0] if squeeze else x


def banded_cholesky_solve(L: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``(L L^T) x = b`` given a banded Cholesky factor ``L``."""
    y = banded_forward_substitution(L, b)
    return banded_backward_substitution(L, y)


def banded_solve(
    B: np.ndarray, b: np.ndarray, reg: float = 0.0
) -> np.ndarray:
    """Solve ``A x = b`` for a banded SPD ``A`` given in banded storage."""
    L = banded_cholesky(B, reg=reg)
    return banded_cholesky_solve(L, b)


class BandedCholeskyFactor:
    """Banded Cholesky factorization preprocessed for fast repeated solves.

    The triangular factor of a matrix with half-bandwidth ``band`` is block
    lower-*bidiagonal* for any block size ``nb >= band``, so the
    factorization and the triangular solves can be expressed over dense
    ``nb x nb`` tiles: one small Cholesky + one tile solve per block column
    to factorize, and two mat-muls per block row to apply ``L^{-1}`` /
    ``L^{-T}``.  The inverses of the diagonal triangular tiles are
    precomputed once, so every subsequent :meth:`solve` costs ``~n / nb``
    BLAS calls instead of ``n`` interpreted rows — this is what makes the
    ``O(n band^2)`` asymptotics of the banded path a *wall-clock* win inside
    the QP interior-point loop, where one factorization is reused for the
    predictor, the corrector and the Schur-complement right-hand sides.

    The computed factor is the banded Cholesky factor (unique for SPD
    input); entries beyond the bandwidth are exact zeros up to roundoff.

    Args:
        B: symmetric positive-definite matrix in :func:`to_banded` storage.
        reg: diagonal regularization added before factorization.

    Raises:
        SolverError: if a non-positive pivot is encountered (the matrix,
            after regularization, is not positive definite).
    """

    #: minimum tile size — tiny bandwidths still get BLAS-sized tiles
    MIN_BLOCK = 16

    def __init__(self, B: np.ndarray, reg: float = 0.0):
        B = np.asarray(B, dtype=float)
        self.band = B.shape[0] - 1
        self.n = int(B.shape[1])
        n, band = self.n, self.band

        if band == 0:
            # Diagonal matrix: the factor is elementwise sqrt.
            d = B[0] + reg
            if n and (np.min(d) <= 0.0 or not np.all(np.isfinite(d))):
                j = int(np.argmin(d))
                raise SolverError(
                    f"banded cholesky pivot {j} is non-positive ({d[j]:.3e})"
                )
            self._diag = np.sqrt(d)
            self.nb = 1
            return
        self._diag = None

        nb = self.nb = max(band, self.MIN_BLOCK)
        K = max(1, -(-n // nb))
        npad = K * nb
        # Dense padded copy of the symmetric matrix; the pad is an identity
        # block, whose factor is itself and whose solves are no-ops.
        A = np.zeros((npad, npad))
        idx = np.arange(n)
        A[idx, idx] = B[0] + reg
        for d in range(1, band + 1):
            i = np.arange(n - d)
            A[i + d, i] = B[d, : n - d]
            A[i, i + d] = B[d, : n - d]
        pad = np.arange(n, npad)
        A[pad, pad] = 1.0

        # Block lower-bidiagonal factorization:
        #   L[k,k]   = chol(A[k,k] - C[k-1] C[k-1]^T)
        #   C[k]     = L[k+1,k] = A[k+1,k] inv(L[k,k])^T
        D = np.empty((K, nb, nb))  # diagonal tiles of L
        Dinv = np.empty((K, nb, nb))  # their inverses
        C = np.empty((max(K - 1, 0), nb, nb))  # subdiagonal tiles of L
        eye = np.eye(nb)
        M = A[:nb, :nb]
        for k in range(K):
            try:
                Lkk = cholesky(M)
            except SolverError as exc:
                raise SolverError(f"banded cholesky (block {k}): {exc}") from None
            D[k] = Lkk
            # inv(L[k,k]) via forward substitution on the identity.
            Dinv[k] = forward_substitution(Lkk, eye)
            if k + 1 < K:
                s = (k + 1) * nb
                E = A[s : s + nb, s - nb : s]
                Ck = E @ Dinv[k].T
                C[k] = Ck
                M = A[s : s + nb, s : s + nb] - Ck @ Ck.T
        self.K = K
        self.npad = npad
        self._D = D
        self._Dinv = Dinv
        self._C = C

    # -- storage views -----------------------------------------------------------
    @property
    def banded(self) -> np.ndarray:
        """The factor in :func:`to_banded` storage (reference layout)."""
        if self._diag is not None:
            return self._diag[None, :].copy()
        n, nb, band = self.n, self.nb, self.band
        full = np.zeros((self.npad, self.npad))
        for k in range(self.K):
            s = k * nb
            full[s : s + nb, s : s + nb] = np.tril(self._D[k])
            if k + 1 < self.K:
                full[s + nb : s + 2 * nb, s : s + nb] = self._C[k]
        out = np.zeros((band + 1, n))
        for d in range(band + 1):
            out[d, : n - d] = np.diagonal(full, offset=-d)[: n - d]
        return out

    # -- triangular applications --------------------------------------------------
    def _blocks(self, b: np.ndarray) -> Tuple[np.ndarray, bool]:
        b = np.asarray(b, dtype=float)
        squeeze = b.ndim == 1
        if squeeze:
            b = b[:, None]
        if b.shape[0] != self.n:
            raise SolverError(
                f"right-hand side has {b.shape[0]} rows, expected {self.n}"
            )
        return b, squeeze

    def forward(self, b: np.ndarray) -> np.ndarray:
        """Solve ``L y = b``."""
        if self._diag is not None:
            b = np.asarray(b, dtype=float)
            return (b.T / self._diag).T
        b, squeeze = self._blocks(b)
        y = np.zeros((self.npad, b.shape[1]))
        y[: self.n] = b
        nb = self.nb
        for k in range(self.K):
            s = k * nb
            blk = y[s : s + nb]
            if k:
                blk = blk - self._C[k - 1] @ y[s - nb : s]
            y[s : s + nb] = self._Dinv[k] @ blk
        y = y[: self.n]
        return y[:, 0] if squeeze else y

    def backward(self, b: np.ndarray) -> np.ndarray:
        """Solve ``L^T x = b``."""
        if self._diag is not None:
            b = np.asarray(b, dtype=float)
            return (b.T / self._diag).T
        b, squeeze = self._blocks(b)
        x = np.zeros((self.npad, b.shape[1]))
        x[: self.n] = b
        nb = self.nb
        for k in range(self.K - 1, -1, -1):
            s = k * nb
            blk = x[s : s + nb]
            if k + 1 < self.K:
                blk = blk - self._C[k].T @ x[s + nb : s + 2 * nb]
            x[s : s + nb] = self._Dinv[k].T @ blk
        x = x[: self.n]
        return x[:, 0] if squeeze else x

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``(L L^T) x = b``."""
        return self.backward(self.forward(b))


@lru_cache(maxsize=256)
def _banded_cholesky_counts(n: int, band: int) -> Tuple[int, int]:
    """(mul, div) totals for one banded factorization — cached: the QP loop
    meters every factorization with the same one or two ``(n, band)`` pairs,
    and this O(n band) Python loop would otherwise dominate the metering."""
    band = min(band, max(n - 1, 0))
    mul = 0
    div = 0
    for j in range(n):
        lo = max(j - band, 0)
        mul += j - lo  # diagonal window dot
        hi = min(j + band, n - 1)
        for i in range(j + 1, hi + 1):
            mul += j - max(i - band, 0)  # column-update window dot
            div += 1
    return mul, div


@lru_cache(maxsize=256)
def _banded_window_sum(n: int, band: int) -> int:
    band = min(band, max(n - 1, 0))
    return sum(i - max(i - band, 0) for i in range(n))


def flop_counts_banded_cholesky(n: int, band: int) -> Dict[str, int]:
    """Exact primitive-op counts of a banded Cholesky factorization.

    Mirrors the banded algorithm above (only in-window terms are counted —
    the masked out-of-band gather entries are structural zeros, not flops):
    ``O(n band^2)`` multiply-adds instead of the dense ``~n^3 / 3``.
    """
    mul, div = _banded_cholesky_counts(int(n), int(band))
    return {"mul": mul, "add": mul, "div": div, "sqrt": n}


def flop_counts_banded_substitution(
    n: int, band: int, nrhs: int = 1
) -> Dict[str, int]:
    """Primitive-op counts of one banded triangular solve (``nrhs`` RHS)."""
    window = _banded_window_sum(int(n), int(band))
    return {"mul": nrhs * window, "add": nrhs * window, "div": nrhs * n}
