"""From-scratch dense linear algebra for the interior-point solver.

RoboX solves the KKT system of Eq. 6 "using a combination of Cholesky
decomposition and forward/backward substitution" (§II-B).  This module
implements those kernels directly (no ``np.linalg`` solvers) so that

* the solver is a faithful re-implementation of the paper's pipeline, and
* the accelerator compiler can reason about the exact operation mix
  (multiply-add dominated, plus ``1/x`` and ``sqrt`` on the diagonal —
  which is why each RoboX CC dedicates one division-capable CU, §V).

The inner loops are expressed column-wise over NumPy vectors: the algorithm
is hand-written, NumPy only supplies elementwise arithmetic.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import SolverError

__all__ = [
    "cholesky",
    "forward_substitution",
    "backward_substitution",
    "cholesky_solve",
    "solve_symmetric",
    "flop_counts_cholesky",
    "flop_counts_substitution",
]


def cholesky(A: np.ndarray, reg: float = 0.0) -> np.ndarray:
    """Lower-triangular Cholesky factor of a symmetric positive-definite A.

    Args:
        A: symmetric matrix (only the lower triangle is read).
        reg: optional diagonal regularization added before factorization,
            used by the IPM to guard against loss of positive definiteness
            far from the central path.

    Raises:
        SolverError: if a non-positive pivot is encountered.
    """
    A = np.asarray(A, dtype=float)
    n = A.shape[0]
    if A.shape != (n, n):
        raise SolverError(f"cholesky requires a square matrix, got {A.shape}")
    L = np.zeros((n, n))
    for j in range(n):
        # d = A[j,j] + reg - sum_k L[j,k]^2
        d = A[j, j] + reg - np.dot(L[j, :j], L[j, :j])
        if d <= 0.0 or not np.isfinite(d):
            raise SolverError(
                f"cholesky pivot {j} is non-positive ({d:.3e}); "
                "matrix is not positive definite"
            )
        L[j, j] = np.sqrt(d)
        if j + 1 < n:
            # Column update: L[i,j] = (A[i,j] - L[i,:j] @ L[j,:j]) / L[j,j]
            L[j + 1 :, j] = (A[j + 1 :, j] - L[j + 1 :, :j] @ L[j, :j]) / L[j, j]
    return L


def forward_substitution(L: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``L y = b`` for lower-triangular ``L``.

    ``b`` may be a vector or a matrix of stacked right-hand sides.
    """
    L = np.asarray(L, dtype=float)
    b = np.asarray(b, dtype=float)
    n = L.shape[0]
    y = np.array(b, dtype=float, copy=True)
    squeeze = False
    if y.ndim == 1:
        y = y[:, None]
        squeeze = True
    for i in range(n):
        if L[i, i] == 0.0:
            raise SolverError(f"forward substitution: zero diagonal at row {i}")
        y[i] = (y[i] - L[i, :i] @ y[:i]) / L[i, i]
    return y[:, 0] if squeeze else y


def backward_substitution(U: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``U x = b`` for upper-triangular ``U``."""
    U = np.asarray(U, dtype=float)
    b = np.asarray(b, dtype=float)
    n = U.shape[0]
    x = np.array(b, dtype=float, copy=True)
    squeeze = False
    if x.ndim == 1:
        x = x[:, None]
        squeeze = True
    for i in range(n - 1, -1, -1):
        if U[i, i] == 0.0:
            raise SolverError(f"backward substitution: zero diagonal at row {i}")
        x[i] = (x[i] - U[i, i + 1 :] @ x[i + 1 :]) / U[i, i]
    return x[:, 0] if squeeze else x


def cholesky_solve(L: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``(L L^T) x = b`` given a Cholesky factor ``L``."""
    y = forward_substitution(L, b)
    return backward_substitution(L.T, y)


def solve_symmetric(A: np.ndarray, b: np.ndarray, reg: float = 0.0) -> np.ndarray:
    """Solve a symmetric positive-definite system via Cholesky."""
    return cholesky_solve(cholesky(A, reg=reg), b)


def flop_counts_cholesky(n: int) -> Dict[str, int]:
    """Exact primitive-op counts of an ``n x n`` Cholesky factorization.

    Multiply-adds dominate (``~n^3/3``); division and square root appear once
    per column — the operation mix the RoboX architecture is sized around.
    """
    # Column j: a j-term diagonal dot plus (n-1-j) update rows of j muls each.
    mul = sum(j * (n - j) for j in range(n))
    add = mul
    return {"mul": mul, "add": add, "div": n * (n - 1) // 2, "sqrt": n}


def flop_counts_substitution(n: int, nrhs: int = 1) -> Dict[str, int]:
    """Primitive-op counts of a triangular solve with ``nrhs`` right-hand sides."""
    mul = nrhs * (n * (n - 1) // 2)
    return {"mul": mul, "add": mul, "div": nrhs * n}
