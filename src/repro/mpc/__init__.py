"""MPC formulation and primal-dual interior-point solver (paper §II).

Public surface:

* :class:`RobotModel` / :class:`VarSpec` — the ``System`` IR.
* :class:`Task` / :class:`Penalty` / :class:`Constraint` — the ``Task`` IR.
* :class:`TranscribedProblem` — horizon discretization (Eq. 5).
* :class:`InteriorPointSolver` / :class:`IPMOptions` / :class:`IPMResult` —
  the Eq. 6 solver built on from-scratch Cholesky + substitution kernels.
* :func:`solve_qp` / :class:`QPOptions` / :class:`QPResult` /
  :class:`QPStats` — the inner Mehrotra IPM with per-phase observability.
* :class:`BandedCholeskyFactor` and the banded kernels — the stage-ordered
  ``O(n b^2)`` factorization path of the QP hot loop.
* :class:`MPCController` — the receding-horizon loop.
* :class:`SolveBudget` — per-solve deadline / iteration allowances for the
  online serving path (:mod:`repro.serve`).
"""

from repro.mpc.banded import (
    BandedCholeskyFactor,
    banded_cholesky,
    banded_cholesky_solve,
    banded_solve,
    bandwidth_of,
    flop_counts_banded_cholesky,
    flop_counts_banded_substitution,
    from_banded,
    to_banded,
)
from repro.mpc.budget import BudgetClock, SolveBudget
from repro.mpc.health import SolverHealth
from repro.mpc.controller import (
    ClosedLoopLog,
    MPCController,
    PlantIntegrator,
    integrate_plant,
)
from repro.mpc.ipm import InteriorPointSolver, IPMOptions, IPMResult
from repro.mpc.qp import QPOptions, QPResult, QPStats, solve_qp
from repro.mpc.linalg import (
    backward_substitution,
    cholesky,
    cholesky_solve,
    forward_substitution,
    solve_symmetric,
)
from repro.mpc.model import RobotModel, VarSpec
from repro.mpc.task import RUNNING, TERMINAL, Constraint, Penalty, Task
from repro.mpc.transcription import INTEGRATORS, TranscribedProblem

__all__ = [
    "RobotModel",
    "VarSpec",
    "Task",
    "Penalty",
    "Constraint",
    "RUNNING",
    "TERMINAL",
    "TranscribedProblem",
    "INTEGRATORS",
    "InteriorPointSolver",
    "IPMOptions",
    "IPMResult",
    "MPCController",
    "ClosedLoopLog",
    "PlantIntegrator",
    "integrate_plant",
    "SolveBudget",
    "BudgetClock",
    "SolverHealth",
    "cholesky",
    "cholesky_solve",
    "forward_substitution",
    "backward_substitution",
    "solve_symmetric",
    "banded_cholesky",
    "banded_cholesky_solve",
    "banded_solve",
    "bandwidth_of",
    "to_banded",
    "from_banded",
    "BandedCholeskyFactor",
    "flop_counts_banded_cholesky",
    "flop_counts_banded_substitution",
    "QPOptions",
    "QPResult",
    "QPStats",
    "solve_qp",
]
