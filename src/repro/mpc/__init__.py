"""MPC formulation and primal-dual interior-point solver (paper §II).

Public surface:

* :class:`RobotModel` / :class:`VarSpec` — the ``System`` IR.
* :class:`Task` / :class:`Penalty` / :class:`Constraint` — the ``Task`` IR.
* :class:`TranscribedProblem` — horizon discretization (Eq. 5).
* :class:`InteriorPointSolver` / :class:`IPMOptions` / :class:`IPMResult` —
  the Eq. 6 solver built on from-scratch Cholesky + substitution kernels.
* :class:`MPCController` — the receding-horizon loop.
"""

from repro.mpc.banded import (
    banded_cholesky,
    banded_solve,
    bandwidth_of,
    from_banded,
    to_banded,
)
from repro.mpc.controller import ClosedLoopLog, MPCController, integrate_plant
from repro.mpc.ipm import InteriorPointSolver, IPMOptions, IPMResult
from repro.mpc.linalg import (
    backward_substitution,
    cholesky,
    cholesky_solve,
    forward_substitution,
    solve_symmetric,
)
from repro.mpc.model import RobotModel, VarSpec
from repro.mpc.task import RUNNING, TERMINAL, Constraint, Penalty, Task
from repro.mpc.transcription import INTEGRATORS, TranscribedProblem

__all__ = [
    "RobotModel",
    "VarSpec",
    "Task",
    "Penalty",
    "Constraint",
    "RUNNING",
    "TERMINAL",
    "TranscribedProblem",
    "INTEGRATORS",
    "InteriorPointSolver",
    "IPMOptions",
    "IPMResult",
    "MPCController",
    "ClosedLoopLog",
    "integrate_plant",
    "cholesky",
    "cholesky_solve",
    "forward_substitution",
    "backward_substitution",
    "solve_symmetric",
    "banded_cholesky",
    "banded_solve",
    "bandwidth_of",
    "to_banded",
    "from_banded",
]
