"""Closed-loop MPC controller and plant simulation.

Ties the pieces together the way RoboX runs at deployment (§III): at every
control step the accelerator (here: the solver) receives the current state
measurement and any task references, solves the constrained optimization
problem, and the *first* control input of the optimal trajectory is applied
to the robot.  The remainder of the solution is shifted and reused as the
next warm start — the standard receding-horizon loop.

``simulate`` provides the ground-truth plant: the continuous dynamics
integrated with RK4 at a finer step than the controller, so closed-loop tests
exercise model mismatch between transcription and plant.  Offline runs carry
the same observability the serving layer (:mod:`repro.serve`) exposes: the
log records per-step solve wall time and whether the step was served by a
fallback instead of a fresh solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, List, Optional

import numpy as np

from repro.errors import SolverError, StateValidationError
from repro.mpc.budget import SolveBudget
from repro.mpc.ipm import InteriorPointSolver, IPMResult
from repro.mpc.transcription import TranscribedProblem
from repro.symbolic import compile_function

__all__ = [
    "MPCController",
    "ClosedLoopLog",
    "PlantIntegrator",
    "integrate_plant",
]


@dataclass
class ClosedLoopLog:
    """Trajectory log of a closed-loop run."""

    states: np.ndarray  # (steps + 1, nx)
    inputs: np.ndarray  # (steps, nu)
    objectives: List[float] = field(default_factory=list)
    solver_iterations: List[int] = field(default_factory=list)
    converged: List[bool] = field(default_factory=list)
    #: per-step solve wall time in seconds (measured around the full
    #: controller step, matching the serving layer's latency metric)
    solve_times: List[float] = field(default_factory=list)
    #: per-step fallback flag: True when the applied input came from the
    #: degradation ladder (shifted previous plan / hold) rather than a
    #: fresh solve — always False unless ``simulate(..., fallback=True)``
    fallbacks: List[bool] = field(default_factory=list)
    #: per-step fallback cause (None on non-fallback steps): "solver_error",
    #: "bad_state", "deadline", or "non_finite" — so downstream telemetry
    #: can distinguish "no objective recorded" from numerical poison when a
    #: fallback step carries a NaN objective
    fallback_reasons: List[Optional[str]] = field(default_factory=list)

    @property
    def steps(self) -> int:
        return self.inputs.shape[0]

    @property
    def fallback_count(self) -> int:
        return sum(self.fallbacks)


class MPCController:
    """Receding-horizon controller around an :class:`InteriorPointSolver`."""

    def __init__(self, solver: InteriorPointSolver, warm_start: bool = True):
        self.solver = solver
        #: when False, every step solves from the cold-start guess — for
        #: plants whose shifted previous solution is a worse basin than a
        #: fresh rollout (see RobotBenchmark.warm_start)
        self.warm_start = warm_start
        self.problem: TranscribedProblem = solver.problem
        self._warm: Optional[np.ndarray] = None
        self._nu_warm: Optional[np.ndarray] = None
        self._lam_warm: Optional[np.ndarray] = None
        self.last_result: Optional[IPMResult] = None
        #: wall time of the most recent solve (seconds; None before any step)
        self.last_solve_time: Optional[float] = None
        #: :mod:`repro.faults` injection hooks (all ``None`` in production).
        #: ``state_fault_hook(x) -> x`` corrupts the measurement before the
        #: solve (sensor faults); ``input_fault_hook(u) -> u`` corrupts the
        #: applied input after it (actuator faults); ``budget_fault_hook(b)
        #: -> b`` replaces the per-step budget (compute starvation).
        self.state_fault_hook: Optional[Callable[[np.ndarray], np.ndarray]] = None
        self.input_fault_hook: Optional[Callable[[np.ndarray], np.ndarray]] = None
        self.budget_fault_hook: Optional[
            Callable[[Optional[SolveBudget]], Optional[SolveBudget]]
        ] = None

    def reset(self) -> None:
        """Drop *all* warm-start and last-solve state.

        Every per-solve attribute is cleared (warm trajectory, both
        multiplier vectors, the cached result and its timing) so a reset
        controller is indistinguishable from a freshly constructed one —
        the serving layer relies on this after divergence/solver errors.
        """
        self._warm = None
        self._nu_warm = None
        self._lam_warm = None
        self.last_result = None
        self.last_solve_time = None
        # Solver-internal warm state (e.g. the ADMM iterate triple) lives
        # on the solver itself — clear it too so a reset is a true cold
        # start regardless of the selected QP method.
        reset_qp_warm = getattr(self.solver, "reset_qp_warm", None)
        if callable(reset_qp_warm):
            reset_qp_warm()

    def step(
        self,
        x_measured: np.ndarray,
        ref: Optional[np.ndarray] = None,
        budget: Optional[SolveBudget] = None,
    ) -> np.ndarray:
        """Solve for the current state and return the first control input.

        ``budget`` bounds the solve (see :class:`SolveBudget`); a budgeted
        step never raises on deadline exhaustion — inspect
        ``last_result.status`` to distinguish a converged solve from a
        partial (``"budget_exhausted"``) one.  A non-finite measurement is
        rejected with a :class:`~repro.errors.StateValidationError` before
        the solve starts; the warm-start state is left untouched (the
        measurement, not the warm start, is implicated).
        """
        x_measured = np.asarray(x_measured, dtype=float)
        if self.state_fault_hook is not None:
            x_measured = np.asarray(self.state_fault_hook(x_measured), dtype=float)
        if self.budget_fault_hook is not None:
            budget = self.budget_fault_hook(budget)
        if not self.warm_start:
            self._warm = self._nu_warm = self._lam_warm = None
        result = self.solver.solve(
            x_measured,
            ref=ref,
            z_warm=self._warm,
            nu_warm=self._nu_warm,
            lam_warm=self._lam_warm,
            budget=budget,
        )
        u = self.adopt(result)
        if self.input_fault_hook is not None:
            u = np.asarray(self.input_fault_hook(u), dtype=float)
        return u

    def adopt(self, result: IPMResult) -> np.ndarray:
        """Install a solve result as this controller's latest step.

        Updates the warm-start state exactly like :meth:`step` and returns
        the first control input.  Used directly by the serving engine's
        worker-pool path, where the solve itself ran in another process and
        only the (picklable) result comes back.
        """
        self.last_result = result
        self.last_solve_time = result.solve_time
        xs, us = self.problem.split(result.z)
        if np.all(np.isfinite(result.z)):
            self._warm = self._shift(xs, us)
            self._nu_warm = result.nu
            self._lam_warm = result.lam
        else:
            # A contaminated iterate must not become the next RTI warm
            # start — drop the warm state so the next step re-seeds cold.
            self._warm = self._nu_warm = self._lam_warm = None
        return us[0].copy()

    def _shift(self, xs: np.ndarray, us: np.ndarray) -> np.ndarray:
        """One-step-shifted warm start: drop knot 0, duplicate the last knot."""
        xs_next = np.vstack([xs[1:], xs[-1]])
        us_next = np.vstack([us[1:], us[-1]]) if us.shape[0] > 1 else us.copy()
        return self.problem.join(xs_next, us_next)

    def simulate(
        self,
        x0: np.ndarray,
        steps: int,
        ref: Optional[np.ndarray] = None,
        ref_fn: Optional[Callable[[int], np.ndarray]] = None,
        disturbance: Optional[Callable[[int, np.ndarray], np.ndarray]] = None,
        substeps: int = 4,
        budget: Optional[SolveBudget] = None,
        fallback: bool = False,
    ) -> ClosedLoopLog:
        """Run the controller against the continuous plant for ``steps`` steps.

        Args:
            x0: initial plant state.
            steps: number of control intervals to simulate.
            ref: constant reference values (if the task uses references).
            ref_fn: per-step reference callback overriding ``ref`` — receives
                the step index, returns the reference vector for that solve.
            disturbance: optional additive state disturbance applied after
                each plant step: ``x <- x + disturbance(k, x)``.
            substeps: RK4 sub-steps per control interval for the plant.
            budget: optional per-step :class:`SolveBudget` (deadline and/or
                iteration caps) applied to every solve.
            fallback: when True, a failed step (solver error, deadline miss
                without convergence, non-finite result) is served from the
                same degradation ladder the serving layer uses — shifted
                previous plan, then hold — instead of raising; the log's
                ``fallbacks`` flags mark those steps.
        """
        p = self.problem
        x = np.asarray(x0, dtype=float).copy()
        states = [x.copy()]
        inputs = []
        log = ClosedLoopLog(states=np.zeros(0), inputs=np.zeros(0))

        ladder = None
        if fallback:
            # Imported lazily: repro.serve depends on repro.mpc, so the
            # shared ladder implementation cannot be a module-level import.
            from repro.serve.policy import FallbackLadder

            ladder = FallbackLadder(p.nu)

        plant = PlantIntegrator(p)
        for k in range(steps):
            step_ref = ref_fn(k) if ref_fn is not None else ref
            t0 = perf_counter()
            used_fallback = False
            reason: Optional[str] = None
            try:
                u = self.step(x, ref=step_ref, budget=budget)
                result = self.last_result
                if not np.all(np.isfinite(u)) or result.status == "diverged":
                    reason = "non_finite"
                elif result.status == "budget_exhausted" and not result.converged:
                    reason = "deadline"
                if ladder is not None and reason is not None:
                    u = ladder.fallback().input
                    used_fallback = True
                    if not np.all(np.isfinite(u)):  # poisoned plan
                        u = ladder.hover.copy()
                elif ladder is not None:
                    reason = None
                    ladder.record_success(p.split(result.z)[1])
                else:
                    reason = None
                log.objectives.append(result.objective)
                log.solver_iterations.append(result.iterations)
                log.converged.append(result.converged)
            except StateValidationError:
                # The measurement (e.g. an injected sensor fault), not the
                # warm start, is implicated — keep the warm state.
                if ladder is None:
                    raise
                u = ladder.fallback().input
                used_fallback = True
                reason = "bad_state"
                log.objectives.append(float("nan"))
                log.solver_iterations.append(0)
                log.converged.append(False)
            except SolverError:
                if ladder is None:
                    raise
                u = ladder.fallback().input
                used_fallback = True
                reason = "solver_error"
                self.reset()  # the warm start is implicated in the failure
                log.objectives.append(float("nan"))
                log.solver_iterations.append(0)
                log.converged.append(False)
            log.solve_times.append(perf_counter() - t0)
            log.fallbacks.append(used_fallback)
            log.fallback_reasons.append(reason if used_fallback else None)
            x = plant.advance(x, u, p.dt, substeps)
            if disturbance is not None:
                x = x + np.asarray(disturbance(k, x), dtype=float)
            states.append(x.copy())
            inputs.append(u)

        log.states = np.array(states)
        log.inputs = np.array(inputs)
        return log


class PlantIntegrator:
    """Ground-truth RK4 integrator of the *continuous* robot dynamics.

    Compiling the dynamics is the expensive part — build one integrator per
    problem and reuse it across steps (the serving layer keeps one per
    robot/horizon binding); :func:`integrate_plant` is the one-shot
    convenience wrapper.
    """

    def __init__(self, problem: TranscribedProblem):
        model = problem.model
        exprs = list(model.dynamics_exprs)
        variables = list(model.state_vars) + list(model.input_vars)
        self._f = compile_function(exprs, variables, "plant_dynamics")
        self._nx = model.n_states

    def advance(
        self, x: np.ndarray, u: np.ndarray, dt: float, substeps: int
    ) -> np.ndarray:
        if substeps < 1:
            raise SolverError("substeps must be >= 1")
        h = dt / substeps
        state = np.asarray(x, dtype=float).copy()
        for _ in range(substeps):
            k1 = self._f(np.concatenate([state, u]))
            k2 = self._f(np.concatenate([state + 0.5 * h * k1, u]))
            k3 = self._f(np.concatenate([state + 0.5 * h * k2, u]))
            k4 = self._f(np.concatenate([state + h * k3, u]))
            state = state + (h / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        return state


# Backwards-compatible private alias (pre-serving-runtime name).
_PlantIntegrator = PlantIntegrator


def integrate_plant(
    problem: TranscribedProblem,
    x: np.ndarray,
    u: np.ndarray,
    dt: Optional[float] = None,
    substeps: int = 4,
) -> np.ndarray:
    """One plant step with the continuous dynamics (public convenience)."""
    integ = PlantIntegrator(problem)
    return integ.advance(x, u, dt if dt is not None else problem.dt, substeps)
