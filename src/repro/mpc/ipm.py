"""Nonlinear MPC solver: Gauss-Newton SQP around a primal-dual interior point.

This mirrors the solver stack the paper builds on.  The paper's CPU baseline
is ACADO generating an SQP-type algorithm around the HPMPC *interior-point*
QP solver (§VIII-A), and "for a fair comparison, we use the same solver
algorithm in RoboX".  Concretely, each control step runs:

1. **Linearize** the transcribed problem at the current trajectory iterate:
   exact objective gradient, Gauss-Newton (PSD) objective Hessian, dynamics /
   constraint Jacobians — all produced by symbolic autodiff.
2. **Solve the QP subproblem** (Eq. 6's Newton system, iterated to the QP's
   central path) with :func:`repro.mpc.qp.solve_qp` — Mehrotra predictor-
   corrector over from-scratch Cholesky + forward/backward substitution.
3. **Globalize** with a backtracking line search on an L1 exact-penalty merit
   function, then repeat until the nonlinear KKT conditions hold.

The result reports both SQP (outer) and IPM (inner) iteration counts; the
benchmark harness uses the totals when reproducing the paper's timing
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import List, Optional

import numpy as np

from repro.errors import SolverError, StateValidationError
from repro.mpc.budget import SolveBudget
from repro.mpc.health import SolverHealth, nonfinite_indices
from repro.mpc.qp import QPOptions, QPResult, solve_qp
from repro.mpc.transcription import TranscribedProblem

__all__ = ["IPMOptions", "IPMResult", "InteriorPointSolver"]


@dataclass
class IPMOptions:
    """Tunable parameters of the SQP + interior-point solver."""

    #: maximum outer (SQP) iterations
    max_iterations: int = 60
    #: nonlinear KKT tolerance (scaled max-norm); 1e-4 is a practical
    #: control-grade tolerance for the Gauss-Newton scheme, whose tail
    #: convergence is linear (meta-parameter in the DSL, per the paper)
    tolerance: float = 1e-4
    #: inner QP settings
    qp: QPOptions = field(default_factory=QPOptions)
    #: Armijo sufficient-decrease coefficient for the merit line search
    armijo: float = 1e-4
    #: maximum line-search halvings
    max_backtracks: int = 20
    #: non-monotone window: a step is accepted against the maximum merit of
    #: the last ``watchdog`` iterations (breaks Maratos-effect cycling)
    watchdog: int = 6
    #: trust-region-style cap on the scaled step max-norm: the line search
    #: starts at alpha = min(1, step_clip / ||d/scale||_inf), preventing a
    #: single linearization from being extrapolated far outside its validity
    #: region (e.g. the linear-tire regime of the vehicle model)
    step_clip: float = 2.0
    #: L1 exact-penalty parameter floor (raised adaptively above multipliers)
    penalty_init: float = 1.0
    #: Levenberg regularization added to the Gauss-Newton Hessian
    regularization: float = 1e-8
    #: Hessian model: "gauss_newton" (PSD, robust far from the solution),
    #: "exact" (objective + dynamics-curvature contraction; quadratic local
    #: convergence, relies on QP inertia correction), or "hybrid" (GN until
    #: the KKT residual falls below ``hybrid_switch``, then exact)
    hessian: str = "gauss_newton"
    #: KKT threshold at which "hybrid" switches from GN to the exact Hessian
    hybrid_switch: float = 1.0
    #: L1 weight of the QP slacks on softened (state) constraint rows; also
    #: the exact-penalty weight those rows carry in the merit function
    soft_penalty: float = 1e4
    #: small quadratic slack regularization keeping the extended QP strictly convex
    soft_quadratic: float = 1e-2
    #: route QP factorizations through the stage-permuted banded kernels
    #: whenever the transcription provides the structure (``move_block == 1``);
    #: set ``False`` to force the dense path (reference / benchmarks)
    banded: bool = True

    def __post_init__(self):
        if self.max_iterations < 1:
            raise SolverError("max_iterations must be >= 1")
        if not 0 < self.armijo < 1:
            raise SolverError("armijo must lie in (0, 1)")


@dataclass
class IPMResult:
    """Outcome of one MPC solve."""

    z: np.ndarray
    converged: bool
    #: outer SQP iterations taken
    iterations: int
    #: total inner interior-point iterations across all QP subproblems
    qp_iterations: int
    objective: float
    #: max-norm of the nonlinear KKT residual at exit
    kkt_residual: float
    #: per-outer-iteration KKT residuals (diagnostics / tests)
    residual_history: List[float] = field(default_factory=list)
    #: equality multipliers at exit
    nu: Optional[np.ndarray] = None
    #: inequality multipliers at exit
    lam: Optional[np.ndarray] = None
    #: how the solve ended: ``"converged"``, ``"max_iterations"``,
    #: ``"budget_exhausted"`` (a :class:`~repro.mpc.budget.SolveBudget`
    #: limit fired before convergence — the iterate is the best partial
    #: result, usable for real-time-iteration warm starting), or
    #: ``"diverged"`` (the iteration produced numerical poison and stopped
    #: on the last finite iterate — do not trust the solution)
    status: str = "max_iterations"
    #: total wall-clock seconds spent inside :meth:`InteriorPointSolver.solve`
    solve_time: float = 0.0
    #: numerical-health record of this solve (validation outcomes, rejected
    #: steps, factorization-retry pressure); ``None`` only for results built
    #: by stubs/legacy callers
    health: Optional[SolverHealth] = None

    def trajectories(self, problem: TranscribedProblem):
        """Split the solution into state and input trajectories."""
        return problem.split(self.z)


class InteriorPointSolver:
    """SQP + primal-dual IPM over a :class:`TranscribedProblem`."""

    def __init__(
        self, problem: TranscribedProblem, options: Optional[IPMOptions] = None
    ):
        self.problem = problem
        self.options = options or IPMOptions()
        # linearize-phase codegen selection flows through the problem: the
        # default "auto" leaves the problem's own mode (REPRO_CODEGEN or
        # auto) untouched, an explicit mode overrides it
        if self.options.qp.codegen != "auto":
            self.problem.set_codegen(self.options.qp.codegen)
        #: cumulative statistics across solves (used by the benchmark harness):
        #: iteration counts plus per-phase observability — linearize /
        #: factorize / substitute wall time and exact kernel flop totals
        self.stats = {
            "solves": 0,
            "sqp_iterations": 0,
            "qp_iterations": 0,
            "linearize_time": 0.0,
            "factorize_time": 0.0,
            "substitute_time": 0.0,
            "factor_flops": 0,
            "substitute_flops": 0,
            "factorizations": 0,
            "banded_factorizations": 0,
            #: linearize-phase codegen record (kernel tier, cache counters);
            #: None until the first QP subproblem attaches one
            "codegen": None,
        }
        #: optional :mod:`repro.faults` solver-layer injector, threaded into
        #: every QP factorization (``None`` in production)
        self.fault_hook: Optional[object] = None
        #: ADMM solver-internal warm state (iterate triple + adapted rho)
        #: carried across QP subproblems and MPC ticks when
        #: ``options.qp.method == "admm"``; the ADMM path validates shapes
        #: and finiteness itself, so stale state degrades to a cold start.
        self._qp_warm: Optional[dict] = None
        self._setup_banded_path()

    def reset_qp_warm(self) -> None:
        """Drop solver-internal QP warm state (ADMM iterates/rho).

        Called by :meth:`repro.mpc.controller.MPCController.reset` so a
        session reset is a true cold start for every solver method.
        """
        self._qp_warm = None

    def _absorb_qp_stats(self, health, qs) -> None:
        """Fold one QP subproblem's stats into the solve-level counters.

        Split out so the ADMM->IPM rescue can account both attempts (the
        stalled first-order run *and* its interior-point retry) instead of
        silently dropping the failed attempt's work from telemetry.
        """
        self.stats["factorize_time"] += qs.factorize_time
        self.stats["substitute_time"] += qs.substitute_time
        self.stats["factor_flops"] += qs.factor_flops
        self.stats["substitute_flops"] += qs.substitute_flops
        self.stats["factorizations"] += qs.factorizations
        self.stats["banded_factorizations"] += qs.banded_factorizations
        if qs.codegen is not None:
            self.stats["codegen"] = qs.codegen.as_dict()
        health.factorization_retries += qs.retries
        health.regularization_max = max(
            health.regularization_max, qs.regularization_max
        )

    def _setup_banded_path(self) -> None:
        """Precompute the stage-interleaved QP permutations and band hints.

        The plain QP permutes the decision vector into stage order
        ``[x_0, u_0, x_1, u_1, ..]``; the extended (Sl1QP) subproblem also
        has one L1 slack per softened row, and each slack is placed right
        after its stage group so the extended condensed matrix stays
        banded.  ``None`` disables the banded path (``banded=False`` option
        or ``move_block > 1`` — see
        :meth:`TranscribedProblem.stage_permutation`).
        """
        p = self.problem
        self._qp_perm = None
        self._qp_bandwidth = None
        self._qp_perm_ext = None
        self._qp_bandwidth_ext = None
        perm = p.stage_permutation() if self.options.banded else None
        if perm is None:
            return
        hint = p.kkt_half_bandwidth()
        self._qp_perm = perm
        self._qp_bandwidth = hint

        soft = p.soft_inequality_mask() if p.n_ineq else np.zeros(0, dtype=bool)
        n_soft = int(soft.sum())
        if not n_soft:
            return
        # Stage of each slack, in slack (= soft-row) order.
        slack_stages = p.inequality_row_stages()[soft]
        nx, nu, N, nz = p.nx, p.nu, p.N, p.nz
        base = (N + 1) * nx
        order: List[int] = []
        max_group = 0
        for k in range(N + 1):
            start = len(order)
            order.extend(range(k * nx, (k + 1) * nx))
            if k < N:
                order.extend(range(base + k * nu, base + (k + 1) * nu))
            order.extend(nz + i for i in np.flatnonzero(slack_stages == k))
            max_group = max(max_group, len(order) - start)
        self._qp_perm_ext = np.array(order, dtype=np.intp)
        assert self._qp_perm_ext.shape == (nz + n_soft,)
        self._qp_bandwidth_ext = max(hint, max_group - 1)

    def _subproblem_data(
        self, Hs, grad_s, Gs, Js, g_eq, h, soft, hard, n_soft
    ):
        """Assemble one SQP subproblem's QP data.

        Builds the extended (Sl1QP) subproblem when soft rows exist:

            min 1/2 d'Hd + grad'd + rho_s 1't + kappa/2 t't
            s.t. G d = -g_eq; J_hard d <= -h_hard;
                 J_soft d - t <= -h_soft; t >= 0

        and applies the stage-interleaved variable permutation when the
        banded path is active.  Returns ``(qp_args, qperm)``: ``qp_args``
        is the ``(H, g, G, b, J, d, bandwidth)`` tuple for
        :func:`repro.mpc.qp.solve_qp`; ``qperm`` is the permutation applied
        (``None`` on the dense fallback) — scatter the solution back with
        ``x[qperm] = x_solved``.
        """
        p = self.problem
        opt = self.options
        nz = p.nz
        m = p.n_ineq
        if not n_soft:
            qperm = self._qp_perm
            if qperm is None:
                return (
                    Hs,
                    grad_s,
                    Gs,
                    -g_eq,
                    Js if m else None,
                    -h if m else None,
                    None,
                ), None
            return (
                Hs[np.ix_(qperm, qperm)],
                grad_s[qperm],
                Gs[:, qperm],
                -g_eq,
                Js[:, qperm] if m else None,
                -h if m else None,
                self._qp_bandwidth,
            ), qperm

        n_ext = nz + n_soft
        n_hard = m - n_soft
        H_ext = np.zeros((n_ext, n_ext))
        H_ext[:nz, :nz] = Hs
        H_ext[nz:, nz:] = opt.soft_quadratic * np.eye(n_soft)
        g_ext = np.concatenate([grad_s, np.full(n_soft, opt.soft_penalty)])
        G_ext = np.hstack([Gs, np.zeros((Gs.shape[0], n_soft))])
        J_ext = np.zeros((m + n_soft, n_ext))
        d_ext = np.zeros(m + n_soft)
        J_ext[:n_hard, :nz] = Js[hard]
        d_ext[:n_hard] = -h[hard]
        J_ext[n_hard : n_hard + n_soft, :nz] = Js[soft]
        J_ext[n_hard : n_hard + n_soft, nz:] = -np.eye(n_soft)
        d_ext[n_hard : n_hard + n_soft] = -h[soft]
        J_ext[n_hard + n_soft :, nz:] = -np.eye(n_soft)
        qperm = self._qp_perm_ext
        if qperm is None:
            return (H_ext, g_ext, G_ext, -g_eq, J_ext, d_ext, None), None
        # Stage-interleave the extended variables (slacks next to their
        # stage group) so the condensed system is banded.
        return (
            H_ext[np.ix_(qperm, qperm)],
            g_ext[qperm],
            G_ext[:, qperm],
            -g_eq,
            J_ext[:, qperm],
            d_ext,
            self._qp_bandwidth_ext,
        ), qperm

    def first_qp_subproblem(self, x_init, ref=None, z_warm=None):
        """QP data of the cold-start (first) SQP subproblem.

        Linearizes exactly like the first iteration of :meth:`solve`
        (Gauss-Newton Hessian unless ``hessian == "exact"``, Levenberg
        damping at its initial value) and returns ``(qp_args, qperm)`` as
        produced by the internal assembly — the banded-vs-dense benchmark
        and the equivalence tests feed ``qp_args`` to
        :func:`repro.mpc.qp.solve_qp` directly.

        ``z_warm`` optionally supplies the linearization trajectory (shape
        ``(nz,)``, finite); the conformance harness uses it to probe
        linearizations away from the cold-start guess.
        """
        p = self.problem
        opt = self.options
        x_init = np.asarray(x_init, dtype=float)
        if z_warm is not None:
            z = np.array(z_warm, dtype=float)
            if z.shape != (p.nz,) or not np.all(np.isfinite(z)):
                raise SolverError(
                    f"z_warm must be a finite ({p.nz},) trajectory"
                )
        else:
            z = p.initial_guess(x_init)
        z[p.state_slice(0)] = x_init
        m = p.n_ineq
        soft = p.soft_inequality_mask() if m else np.zeros(0, dtype=bool)
        hard = ~soft
        n_soft = int(soft.sum())
        scale = p.variable_scales()
        grad = p.objective_gradient(z, ref)
        if opt.hessian == "exact":
            H = p.lagrangian_hessian(z, np.zeros(p.n_eq), ref)
        else:
            H = p.objective_gauss_newton(z, ref)
        g_eq = p.equality_constraints(z, x_init, ref)
        G = p.equality_jacobian(z, ref)
        h = p.inequality_constraints(z, ref)
        J = p.inequality_jacobian(z, ref)
        Hs = (H * scale).T * scale
        Hs[np.diag_indices_from(Hs)] += opt.regularization
        if opt.hessian == "exact":
            Hs = _convexify(Hs)
        grad_s = grad * scale
        Gs = G * scale[None, :]
        Js = J * scale[None, :] if m else J
        return self._subproblem_data(
            Hs, grad_s, Gs, Js, g_eq, h, soft, hard, n_soft
        )

    # -------------------------------------------------------------------------
    def solve(
        self,
        x_init: np.ndarray,
        ref: Optional[np.ndarray] = None,
        z_warm: Optional[np.ndarray] = None,
        nu_warm: Optional[np.ndarray] = None,
        lam_warm: Optional[np.ndarray] = None,
        budget: Optional[SolveBudget] = None,
    ) -> IPMResult:
        """Solve the MPC problem from the measured state ``x_init``.

        Args:
            x_init: current robot state (length ``nx``).
            ref: reference values required by the task (constant vector of
                length ``n_ref`` or per-knot array ``(N+1, n_ref)``).
            z_warm: optional warm-start trajectory (the previous solution
                shifted by one step, supplied by the controller).
            nu_warm / lam_warm: optional multiplier warm starts from the
                previous control step — without them every solve re-learns
                the (often large) dynamics multipliers from zero.
            budget: optional per-solve compute allowance (wall clock and/or
                iteration caps).  A budgeted solve stops at the first
                checkpoint past the limit — overrun bounded by one
                linearization plus one QP iteration — and reports
                ``status == "budget_exhausted"`` with the best partial
                iterate instead of raising.
        """
        t_solve = perf_counter()
        clock = budget.start() if budget is not None else None
        p = self.problem
        opt = self.options
        x_init = np.asarray(x_init, dtype=float)
        health = SolverHealth()

        if not np.all(np.isfinite(x_init)):
            # Structured rejection: a NaN/Inf measurement must never reach
            # the linearization — report exactly what was poisoned and let
            # the caller's degradation policy decide what to serve.
            bad = nonfinite_indices(x_init)
            health.state_finite = False
            health.note(f"nonfinite_state{bad}")
            raise StateValidationError(
                f"measured state contains non-finite entries at indices {bad}",
                health=health,
            )
        if ref is not None and not np.all(np.isfinite(np.asarray(ref, dtype=float))):
            health.state_finite = False
            health.note("nonfinite_reference")
            raise StateValidationError(
                "reference contains non-finite entries", health=health
            )

        z = None
        if z_warm is not None:
            z = np.array(z_warm, dtype=float)
            if z.shape != (p.nz,):
                raise SolverError(
                    f"warm start has shape {z.shape}, expected ({p.nz},)"
                )
            if not np.all(np.isfinite(z)):
                # A contaminated RTI warm start is rejected and re-seeded,
                # never propagated into the linearization.
                health.warm_start_reseeded = True
                health.note("warm_start_reseeded")
                z = None
        if z is None:
            z = p.initial_guess(x_init)
        z[p.state_slice(0)] = x_init

        m = p.n_ineq
        nu = np.zeros(p.n_eq)
        if nu_warm is not None and np.shape(nu_warm) == (p.n_eq,):
            nu_arr = np.array(nu_warm, dtype=float)
            if np.all(np.isfinite(nu_arr)):
                nu = nu_arr
            else:
                health.warm_start_reseeded = True
                health.note("nu_warm_reseeded")
        lam = np.zeros(m)
        if lam_warm is not None and np.shape(lam_warm) == (m,):
            lam_arr = np.maximum(np.array(lam_warm, dtype=float), 0.0)
            if np.all(np.isfinite(lam_arr)):
                lam = lam_arr
            else:
                health.warm_start_reseeded = True
                health.note("lam_warm_reseeded")
        rho = opt.penalty_init

        # Soft/hard split of the inequality rows (Fletcher Sl1QP): softened
        # rows get L1 slacks in every QP subproblem, so linearized
        # infeasibility at a pinned initial state cannot blow up the duals.
        soft = p.soft_inequality_mask() if m else np.zeros(0, dtype=bool)
        hard = ~soft
        n_soft = int(soft.sum())
        nz = p.nz
        # Diagonal variable preconditioner: the QP is solved in z/scale
        # coordinates so damping and regularization act uniformly.
        scale = p.variable_scales()

        history: List[float] = []
        merit_window: List[float] = []
        converged = False
        budget_hit = False
        diverged = False
        qp_total = 0
        it = 0
        max_outer = opt.max_iterations
        if budget is not None and budget.sqp_iterations is not None:
            max_outer = min(max_outer, budget.sqp_iterations)
        # Levenberg-Marquardt damping adapted on KKT progress: oscillation
        # (KKT increase) shrinks the step by inflating the Hessian diagonal.
        lm = opt.regularization
        best_kkt = float("inf")
        best = (z.copy(), nu.copy(), lam.copy())
        nu_cert = lam_cert = None

        for it in range(1, max_outer + 1):
            if clock is not None and (
                clock.expired() or clock.qp_exhausted(qp_total)
            ):
                budget_hit = True
                it -= 1
                break
            t_lin = perf_counter()
            grad = p.objective_gradient(z, ref)
            use_exact = opt.hessian == "exact" or (
                opt.hessian == "hybrid"
                and history
                and history[-1] < opt.hybrid_switch
            )
            if use_exact:
                H = p.lagrangian_hessian(z, nu, ref)
            else:
                H = p.objective_gauss_newton(z, ref)
            g_eq = p.equality_constraints(z, x_init, ref)
            G = p.equality_jacobian(z, ref)
            h = p.inequality_constraints(z, ref)
            J = p.inequality_jacobian(z, ref)
            self.stats["linearize_time"] += perf_counter() - t_lin

            # Scaled-variable QP data (multipliers are scaling-invariant).
            Hs = (H * scale).T * scale
            Hs[np.diag_indices_from(Hs)] += lm
            if use_exact:
                # Inertia correction: convexify ONCE so the QP receives a
                # fixed PSD Hessian (re-regularizing inside the QP loop would
                # change the subproblem between its own iterations).
                Hs = _convexify(Hs)
            grad_s = grad * scale
            Gs = G * scale[None, :]
            Js = J * scale[None, :] if m else J

            kkt = _kkt_residual(grad, G, g_eq, J, h, nu, lam)
            if nu_cert is not None:
                # The undamped QP multipliers are often the sharper KKT
                # certificate once the primal step has shrunk.  They are used
                # only for the convergence measure — adopting them as solver
                # state would destabilize the damped multiplier iteration.
                kkt = min(kkt, _kkt_residual(grad, G, g_eq, J, h, nu_cert, lam_cert))
            history.append(kkt)
            if kkt < best_kkt:
                best_kkt = kkt
                best = (z.copy(), nu.copy(), lam.copy())
            if kkt < opt.tolerance:
                converged = True
                break
            if len(history) > 1:
                if kkt > history[-2]:
                    lm = min(lm * 10.0, 1e2)
                else:
                    lm = max(lm / 3.0, opt.regularization)

            qp_args, qperm = self._subproblem_data(
                Hs, grad_s, Gs, Js, g_eq, h, soft, hard, n_soft
            )
            qp_opt = opt.qp
            if budget is not None and budget.qp_iterations is not None:
                # Hand the QP only the unspent share of the inner-iteration
                # budget (the loop-top check guarantees it is >= 1 here).
                # The ADMM method counts its own (cheaper) iterations, so
                # the cap lands on its field instead.
                remaining = budget.qp_iterations - qp_total
                if qp_opt.method == "admm":
                    if remaining < qp_opt.admm_max_iterations:
                        qp_opt = replace(
                            qp_opt, admm_max_iterations=remaining
                        )
                elif remaining < qp_opt.max_iterations:
                    qp_opt = replace(qp_opt, max_iterations=remaining)
            try:
                qp_res = solve_qp(
                    *qp_args[:6],
                    qp_opt,
                    bandwidth=qp_args[6],
                    deadline=clock.deadline if clock is not None else None,
                    fault_hook=self.fault_hook,
                    warm=self._qp_warm if qp_opt.method == "admm" else None,
                )
            except SolverError:
                # A QP subproblem that cannot even be factorized (poisoned
                # linearization, or the retry ladder exhausted) ends the
                # solve with a structured "diverged" verdict on the last
                # globalized iterate instead of an exception mid-fleet.
                health.note(f"qp_failed_it{it}")
                diverged = True
                break

            # ---- method-health fallback ladder (ADMM -> IPM rescue) ------
            # The first-order run ended stalled or diverged and the rescue
            # polish could not repair it to a converged solution: retry the
            # *same* subproblem with the interior-point method inside the
            # remaining budget.  Warm-start hygiene: the ADMM iterate triple
            # is meaningless to the IPM, and a post-rescue ADMM restart must
            # never resume from the stalled iterate — the carry-over is
            # invalidated on the way into the rescue (the next ADMM solve,
            # if the ladder hands the method back, starts cold).
            cond = qp_res.stats.conditioning
            if (
                qp_opt.method == "admm"
                and qp_opt.admm_fallback
                and cond is not None
                and cond.needs_fallback
                and not (clock is not None and clock.expired())
            ):
                # Account the stalled attempt first: if its iterations ate
                # the whole budget there is no rescue — the counter must
                # only record retries that actually ran.
                qp_total += qp_res.iterations
                self._absorb_qp_stats(health, qp_res.stats)
                rescue_opt = replace(qp_opt, method="ipm")
                if budget is not None and budget.qp_iterations is not None:
                    remaining = budget.qp_iterations - qp_total
                    if remaining < 1:
                        budget_hit = True
                        break
                    if remaining < rescue_opt.max_iterations:
                        rescue_opt = replace(rescue_opt, max_iterations=remaining)
                self._qp_warm = None
                health.method_fallbacks += 1
                health.note(f"admm_fallback_it{it}")
                try:
                    qp_res = solve_qp(
                        *qp_args[:6],
                        rescue_opt,
                        bandwidth=qp_args[6],
                        deadline=clock.deadline if clock is not None else None,
                        fault_hook=self.fault_hook,
                        warm=None,
                    )
                except SolverError:
                    health.note(f"qp_failed_it{it}")
                    diverged = True
                    break

            # Surface the linearize-phase codegen record alongside the QP
            # stats (the stats object survives on the returned result).
            qp_res.stats.codegen = p.codegen_stats()

            if qperm is not None:
                # Scatter the stage-interleaved solution back to the
                # original variable ordering (multipliers are unaffected
                # by a variable permutation).
                x_qp = np.empty(qperm.shape[0])
                x_qp[qperm] = qp_res.x
            else:
                x_qp = qp_res.x
            if n_soft:
                d = x_qp[:nz] * scale
                n_hard = m - n_soft
                nu_qp = qp_res.nu
                lam_qp = np.zeros(m)
                lam_qp[hard] = qp_res.lam[:n_hard]
                lam_qp[soft] = qp_res.lam[n_hard : n_hard + n_soft]
            else:
                d = x_qp * scale
                nu_qp, lam_qp = qp_res.nu, qp_res.lam
            qp_total += qp_res.iterations
            if qp_res.warm is not None:
                # ADMM hands back its iterate triple + adapted rho; seed the
                # next subproblem (and, across ticks, the next solve) with it.
                self._qp_warm = qp_res.warm
            self._absorb_qp_stats(health, qp_res.stats)

            # Deadline passed mid-QP: the direction is a partial (possibly
            # zero) interior-point iterate — discard it rather than spend
            # further wall time line-searching a truncated step, keeping the
            # returned iterate at the last globalized point.
            if clock is not None and (qp_res.budget_exhausted or clock.expired()):
                budget_hit = True
                break

            # Poisoned-direction guard: a non-finite QP step or multiplier
            # estimate must never reach the line search (NaN merit values
            # would silently accept the step).  Reject it, escalate the
            # Levenberg damping, and re-linearize from the same iterate;
            # at maximum damping the solve is declared diverged and returns
            # the last finite globalized iterate.
            if not (
                np.all(np.isfinite(d))
                and np.all(np.isfinite(nu_qp))
                and (not m or np.all(np.isfinite(lam_qp)))
            ):
                health.steps_rejected += 1
                health.note(f"nonfinite_step_it{it}")
                if lm >= 1e2:
                    diverged = True
                    break
                lm = min(lm * 100.0, 1e2)
                continue

            # -- L1 exact-penalty merit line search ----------------------------------
            mult_inf = max(
                _max_abs(nu_qp), _max_abs(lam_qp) if m else 0.0, opt.penalty_init
            )
            if rho < 2.0 * mult_inf:
                rho = max(rho, 2.0 * mult_inf)
                merit_window.clear()  # the merit scale changed
            merit0, viol0 = self._merit(z, x_init, ref, rho, soft)
            merit_window.append(merit0)
            if len(merit_window) > opt.watchdog:
                merit_window.pop(0)
            merit_ref = max(merit_window)
            # Directional derivative estimate of the merit function: the QP
            # direction removes the linearized violation entirely.
            descent = float(grad @ d) - viol0
            step_inf = float(np.max(np.abs(d / scale))) if d.size else 0.0
            alpha = min(1.0, opt.step_clip / step_inf) if step_inf > 0 else 1.0
            for _ in range(opt.max_backtracks):
                trial = z + alpha * d
                merit_t, _ = self._merit(trial, x_init, ref, rho, soft)
                if merit_t <= merit_ref + opt.armijo * alpha * min(descent, 0.0):
                    break
                alpha *= 0.5
            z = z + alpha * d
            # Damped multiplier update (tracks the primal step length); the
            # raw QP estimates are also kept as the sharper KKT certificate.
            nu = nu + alpha * (nu_qp - nu)
            if m:
                lam = lam + alpha * (lam_qp - lam)
            nu_cert, lam_cert = nu_qp, lam_qp

        self.stats["solves"] += 1
        self.stats["sqp_iterations"] += it
        self.stats["qp_iterations"] += qp_total

        # A budget-shortened iteration cap is a budget stop, not the
        # solver's own ``max_iterations`` verdict.
        if not converged and not budget_hit and it >= max_outer:
            budget_hit = max_outer < opt.max_iterations

        # If the loop exits on the iteration cap, restore an earlier iterate
        # only when it was *decisively* better — otherwise keep the last one
        # so warm-started receding-horizon use accumulates progress across
        # control steps (real-time-iteration behavior) instead of freezing
        # on a noisy KKT monitor.
        if not converged and history and best_kkt < 0.1 * history[-1]:
            z, nu, lam = best
            history[-1] = best_kkt

        if converged:
            status = "converged"
        elif diverged:
            status = "diverged"
        elif budget_hit:
            status = "budget_exhausted"
        else:
            status = "max_iterations"
        return IPMResult(
            z=z,
            converged=converged,
            iterations=it,
            qp_iterations=qp_total,
            objective=p.objective(z, ref),
            kkt_residual=history[-1] if history else float("inf"),
            residual_history=history,
            nu=nu,
            lam=lam if m else None,
            status=status,
            solve_time=perf_counter() - t_solve,
            health=health,
        )

    # -------------------------------------------------------------------------
    def _merit(self, z, x_init, ref, rho, soft):
        """L1 exact-penalty merit function.

        Equality and hard-inequality violations are weighted by the adaptive
        ``rho``; softened rows carry the fixed ``soft_penalty`` weight that
        also prices their slacks inside the QP, so the QP direction is a
        descent direction for this merit (Fletcher's Sl1QP correspondence).
        Returns ``(merit, weighted_violation)``.
        """
        p = self.problem
        opt = self.options
        f = p.objective(z, ref)
        g = p.equality_constraints(z, x_init, ref)
        viol = rho * float(np.sum(np.abs(g)))
        if p.n_ineq:
            h = p.inequality_constraints(z, ref)
            hpos = np.maximum(h, 0.0)
            viol += rho * float(np.sum(hpos[~soft]))
            viol += opt.soft_penalty * float(np.sum(hpos[soft]))
        return f + viol, viol


def _convexify(H: np.ndarray) -> np.ndarray:
    """Smallest diagonal shift (geometric ladder) making ``H`` factorizable.

    IPOPT-style inertia correction: an indefinite exact Lagrangian Hessian is
    shifted by ``delta I`` with ``delta`` escalating x10 until the from-scratch
    Cholesky succeeds, so the QP subproblem is strictly convex and *fixed*.
    """
    from repro.mpc.linalg import cholesky

    try:
        cholesky(H, reg=0.0)
        return H
    except SolverError:
        pass
    base = max(1e-8, 1e-10 * float(np.max(np.abs(H))))
    delta = base
    for _ in range(24):
        shifted = H.copy()
        shifted[np.diag_indices_from(shifted)] += delta
        try:
            cholesky(shifted, reg=0.0)
            return shifted
        except SolverError:
            delta *= 10.0
    raise SolverError("Hessian could not be convexified")


def _kkt_residual(grad, G, g_eq, J, h, nu, lam) -> float:
    """Scaled max-norm of the nonlinear KKT conditions at (z, nu, lam).

    Dual stationarity and complementarity are divided by the IPOPT-style
    scaling ``s = max(s_max, mean |multipliers|) / s_max`` so that badly
    scaled constraint rows (whose multipliers are legitimately huge) do not
    keep the convergence measure artificially inflated.
    """
    s_max = 100.0
    n_mult = nu.size + lam.size
    mult_mean = (
        (float(np.sum(np.abs(nu))) + float(np.sum(np.abs(lam)))) / n_mult
        if n_mult
        else 0.0
    )
    sd = max(s_max, mult_mean) / s_max

    r_dual = grad + G.T @ nu
    if lam.size:
        r_dual = r_dual + J.T @ lam
        primal_ineq = float(np.max(np.maximum(h, 0.0))) if h.size else 0.0
        comp = _max_abs(lam * h) / sd
        dual_feas = float(np.max(np.maximum(-lam, 0.0))) / sd
    else:
        primal_ineq = comp = dual_feas = 0.0
    return max(
        _max_abs(r_dual) / sd, _max_abs(g_eq), primal_ineq, comp, dual_feas
    )


def _max_abs(v: np.ndarray) -> float:
    return float(np.max(np.abs(v))) if v.size else 0.0
