"""Primal-dual interior-point solver for convex quadratic programs.

This is the inner solver of the RoboX pipeline, playing the role HPMPC plays
in the paper's CPU baseline (§VIII-A): each SQP linearization of the MPC
problem yields the convex QP

    min  1/2 x^T H x + g^T x
    s.t. G x  = b                      (equalities)
         J x <= d                      (inequalities)

solved here with a Mehrotra predictor-corrector interior-point method.  The
Newton system of the paper's Eq. 6 is condensed by eliminating slacks and
inequality multipliers, then solved with the from-scratch kernels of
:mod:`repro.mpc.linalg` / :mod:`repro.mpc.banded` — the factorization is
computed once per iteration and reused for the corrector.

Structure exploitation (the paper's central premise): when the caller hands
``solve_qp`` a ``bandwidth`` hint — the stage-interleaved ordering of
:meth:`repro.mpc.transcription.TranscribedProblem.stage_permutation` makes
the condensed matrix ``Phi = H + J^T W J`` banded — each iteration measures
the actual half-bandwidth of ``Phi`` (and of the Schur complement of the
equality rows) and factorizes in symmetric banded storage with
:class:`repro.mpc.banded.BandedCholeskyFactor`, turning the dense
``O(n^3)`` factorization into ``O(n b^2)``.  Regularization escalation and
the Schur-complement elimination are identical in both paths, so banded and
dense solves agree to machine precision; per-phase wall time and flop
counters are reported in :class:`QPStats` so benchmarks can compare measured
flops against the accelerator cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import List, Optional, Tuple

import numpy as np

from repro.codegen.stats import CodegenStats
from repro.errors import SolverError
from repro.mpc.banded import (
    BandedCholeskyFactor,
    bandwidth_of,
    flop_counts_banded_cholesky,
    flop_counts_banded_substitution,
    to_banded,
)
from repro.mpc.linalg import (
    cholesky,
    cholesky_solve,
    flop_counts_cholesky,
    flop_counts_substitution,
)

__all__ = ["ConditioningReport", "QPOptions", "QPResult", "QPStats", "solve_qp"]


@dataclass
class QPOptions:
    """Parameters for the QP solvers (interior-point and first-order).

    ``method`` selects the solver family :func:`solve_qp` dispatches to:
    ``"ipm"`` (the Mehrotra predictor-corrector in this module — tight
    tolerances, per-iteration factorizations) or ``"admm"`` (the OSQP-style
    operator splitting in :mod:`repro.firstorder` — one cached
    factorization, cheap matvec iterations, loose-to-moderate tolerances).
    The ``admm_*`` fields only matter for the latter.
    """

    max_iterations: int = 50
    tolerance: float = 1e-8
    #: fraction-to-the-boundary factor
    tau: float = 0.995
    #: diagonal regularization for the condensed Hessian
    regularization: float = 1e-9
    #: after convergence, re-solve the KKT equalities of the detected active
    #: set directly (one extra factorization pair plus an iterative-
    #: refinement step).  The barrier iteration stalls at an accuracy set by
    #: the ill-conditioned scaling W; the active-set system has no barrier
    #: scaling, so polishing recovers the solution to near machine precision
    #: — and makes banded- and dense-path solutions agree to ~1e-10 instead
    #: of the ~1e-5 trajectory-roundoff drift of two IPM runs.  The polished
    #: point is adopted only when it does not worsen the KKT residual.
    polish: bool = False
    #: solver family: "ipm" or "admm"
    method: str = "ipm"
    #: ADMM penalty parameter (initial value; adapted on the residual ratio)
    admm_rho: float = 0.1
    #: ADMM equality rows carry ``admm_rho_eq_scale * rho`` (OSQP treats
    #: ``l == u`` rows as stiff so the equalities are enforced tightly)
    admm_rho_eq_scale: float = 1e3
    #: ADMM proximal regularization sigma
    admm_sigma: float = 1e-6
    #: ADMM over-relaxation factor (1.0 disables; OSQP default region 1.5-1.8)
    admm_alpha: float = 1.6
    #: ADMM iteration cap — first-order iterations are matvec-cheap, so the
    #: cap is far above the IPM's ``max_iterations``
    admm_max_iterations: int = 2000
    #: ADMM convergence tolerance (relative, OSQP-style eps_abs == eps_rel);
    #: intentionally separate from the IPM ``tolerance`` because the two
    #: families live at different practical accuracy tiers
    admm_tolerance: float = 1e-5
    #: iterations between rho-adaptation checks (each adaptation triggers
    #: the one re-factorization of the cached KKT matrix)
    admm_rho_interval: int = 25
    #: Ruiz-equilibrate the box-form data before the ADMM iteration (see
    #: :mod:`repro.firstorder.precond`).  Termination still tests the
    #: *unscaled* residuals, so tolerances mean the same thing either way;
    #: on stiff problems this is the difference between converging and
    #: stalling.  Ignored by the IPM (whose per-iteration factorizations
    #: absorb bad scaling directly).
    admm_equilibrate: bool = True
    #: Ruiz sweep cap (each sweep is one row/col norm pass; the iteration
    #: exits early at its fixpoint, typically 3-6 sweeps)
    admm_equilibrate_iters: int = 10
    #: norm-spread gate: equilibration only runs when the max/min ratio of
    #: the stacked row/col infinity norms exceeds this.  Already-well-
    #: scaled problems are left alone — normalizing them makes the relative
    #: stopping test effectively absolute, which can land a tight tolerance
    #: below the iteration's numerical floor (the cached factorization's
    #: diagonal regularization offsets the fixed point by ``~reg * |x|``,
    #: and the unscaling amplifies it).  Batched solves gate per lane.
    admm_equilibrate_spread: float = 100.0
    #: stall detector: the solve is declared stalled (and becomes a
    #: fallback-ladder candidate) after this window of iterations goes by
    #: without the best relative residual improving by at least 10%.  ``0``
    #: disables detection.  The batched loop rounds this up to its
    #: ``check_interval`` residual cadence.
    admm_stall_iterations: int = 250
    #: let SQP drivers retry a stalled/diverged ADMM subproblem with the
    #: IPM inside the remaining budget (the method-health fallback ladder)
    admm_fallback: bool = True
    #: linearize-phase codegen mode: "auto" (size-gated on-with-fallback,
    #: the default), "on" (best available fused tier), "off" (interpreted),
    #: or a pinned tier "numpy" / "c".  Applied to the transcribed problem
    #: by the SQP drivers; see :mod:`repro.codegen`.
    codegen: str = "auto"

    def __post_init__(self):
        if self.max_iterations < 1:
            raise SolverError("max_iterations must be >= 1")
        if not 0 < self.tau < 1:
            raise SolverError("tau must lie in (0, 1)")
        if self.method not in ("ipm", "admm"):
            raise SolverError(
                f"unknown QP method {self.method!r} (expected 'ipm' or 'admm')"
            )
        if self.admm_max_iterations < 1:
            raise SolverError("admm_max_iterations must be >= 1")
        if not 0.0 < self.admm_alpha < 2.0:
            raise SolverError("admm_alpha must lie in (0, 2)")
        if self.admm_equilibrate_iters < 0:
            raise SolverError("admm_equilibrate_iters must be >= 0")
        if self.admm_equilibrate_spread < 1.0:
            raise SolverError("admm_equilibrate_spread must be >= 1")
        if self.admm_stall_iterations < 0:
            raise SolverError("admm_stall_iterations must be >= 0")
        if self.codegen not in ("auto", "on", "off", "numpy", "c"):
            raise SolverError(
                f"unknown codegen mode {self.codegen!r} (expected one of "
                "'auto', 'on', 'off', 'numpy', 'c')"
            )


@dataclass
class ConditioningReport:
    """How one ADMM solve experienced the problem's conditioning.

    Produced by :func:`repro.firstorder.admm.solve_qp_admm` (and per lane
    by the batched loop) and carried on :attr:`QPStats.conditioning` so
    the SQP drivers and the serving layer can decide whether the solve is
    a fallback-ladder candidate instead of re-deriving it from residuals.
    """

    #: equilibration ran (``QPOptions.admm_equilibrate`` and a non-trivial
    #: problem)
    equilibrated: bool = False
    #: Ruiz sweeps actually executed (early exit at the fixpoint)
    ruiz_iters: int = 0
    #: max/min nonzero row+col infinity-norm ratio of the stacked data
    #: matrix, before and after scaling — the conditioning proxy
    norm_spread_before: float = 1.0
    norm_spread_after: float = 1.0
    #: cost scalar the equilibration settled on
    cost_scale: float = 1.0
    #: residual-balancing rho rescales (each one re-factorized the cached
    #: KKT matrix — a high count on a converged solve is thrash)
    rho_rescales: int = 0
    #: the stall detector fired: ``admm_stall_iterations`` went by without
    #: the best relative residual improving
    stalled: bool = False
    #: the iteration produced a non-finite residual (poisoned iterate)
    diverged: bool = False
    #: an active-set polish step recovered a converged solution after the
    #: loop stalled, capped out, or diverged (``QPOptions.polish``)
    polished: bool = False

    @property
    def needs_fallback(self) -> bool:
        """The solve is a candidate for the ADMM->IPM rescue ladder.

        A stall or divergence the polish step already repaired to a
        converged solution is not — the ladder only spends budget on
        solves that ended without a usable answer.
        """
        return (self.stalled or self.diverged) and not self.polished

    def to_dict(self) -> dict:
        return {
            "equilibrated": self.equilibrated,
            "ruiz_iters": self.ruiz_iters,
            "norm_spread_before": self.norm_spread_before,
            "norm_spread_after": self.norm_spread_after,
            "cost_scale": self.cost_scale,
            "rho_rescales": self.rho_rescales,
            "stalled": self.stalled,
            "diverged": self.diverged,
            "polished": self.polished,
        }


@dataclass
class QPStats:
    """Per-phase observability of one QP solve.

    Wall times are in seconds; flops are exact primitive-op totals
    (mul + add + div + sqrt) from the closed-form kernel counts, so
    benchmarks can report measured vs. cost-model flops.
    """

    #: "banded" when every factorization used the banded kernels, "dense"
    #: when none did, "mixed" otherwise (e.g. a banded Phi with a Schur
    #: complement whose measured bandwidth exceeded the hint)
    mode: str = "dense"
    #: largest measured half-bandwidth of the condensed Phi (None until
    #: the first factorization; equals n-ish for unpermuted problems)
    phi_bandwidth: Optional[int] = None
    #: largest measured half-bandwidth of the Schur complement
    schur_bandwidth: Optional[int] = None
    #: number of successful matrix factorizations (Phi and Schur each count
    #: once per iteration)
    factorizations: int = 0
    banded_factorizations: int = 0
    #: failed factorization attempts that escalated the regularization
    retries: int = 0
    #: largest diagonal regularization any factorization of this solve
    #: actually used (== the options' base value when no retry fired)
    regularization_max: float = 0.0
    factorize_time: float = 0.0
    substitute_time: float = 0.0
    factor_flops: int = 0
    substitute_flops: int = 0
    #: conditioning/stall record of an ADMM solve (None for the IPM)
    conditioning: Optional[ConditioningReport] = None
    #: linearize-phase codegen record (kernel tier, emit/compile cost,
    #: cache hits) attached by the SQP drivers; None for bare QP solves
    codegen: Optional["CodegenStats"] = None


@dataclass
class QPResult:
    """Solution of one QP subproblem."""

    x: np.ndarray
    nu: np.ndarray
    lam: np.ndarray
    slacks: np.ndarray
    converged: bool
    iterations: int
    residual: float
    gap_history: List[float] = field(default_factory=list)
    stats: QPStats = field(default_factory=QPStats)
    #: the solve stopped on the caller's wall-clock ``deadline`` before
    #: converging (the returned iterate/residual pair is still consistent)
    budget_exhausted: bool = False
    #: solver-internal warm-start state for the next solve of the same
    #: problem family (ADMM method only: the primal/slack/dual iterates and
    #: the adapted rho).  ``None`` for the IPM method and whenever the
    #: iterates are unfit for reuse; always host arrays.
    warm: Optional[dict] = None


class _DenseFactor:
    """Dense Cholesky factor with the flop-metering interface."""

    banded = False

    def __init__(self, A: np.ndarray, reg: float):
        self.n = A.shape[0]
        self.L = cholesky(A, reg=reg)
        self.factor_flops = sum(flop_counts_cholesky(self.n).values())

    def solve(self, b: np.ndarray) -> np.ndarray:
        return cholesky_solve(self.L, b)

    def solve_flops(self, nrhs: int) -> int:
        return 2 * sum(flop_counts_substitution(self.n, nrhs).values())


class _BandedFactor:
    """Blocked banded Cholesky factor with the flop-metering interface."""

    banded = True

    def __init__(self, B: np.ndarray, reg: float):
        self.n = B.shape[1]
        self.band = B.shape[0] - 1
        self.F = BandedCholeskyFactor(B, reg=reg)
        self.factor_flops = sum(
            flop_counts_banded_cholesky(self.n, self.band).values()
        )

    def solve(self, b: np.ndarray) -> np.ndarray:
        return self.F.solve(b)

    def solve_flops(self, nrhs: int) -> int:
        return 2 * sum(
            flop_counts_banded_substitution(self.n, self.band, nrhs).values()
        )


def _robust_factor(
    A: np.ndarray,
    reg: float,
    band: Optional[int],
    stats: QPStats,
    fault_hook: Optional[object] = None,
) -> Tuple[object, float]:
    """Factorize ``A`` with geometric regularization escalation on failure.

    ``band`` selects the path: a half-bandwidth routes the factorization
    through the banded kernels (in :func:`to_banded` storage), ``None``
    uses the dense ones.  The escalation schedule is identical in both
    paths, so they produce the same factor up to roundoff for the same
    input.

    ``fault_hook`` is the solver-layer injection point of
    :mod:`repro.faults`: ``transform_matrix(A)`` may perturb the input
    (ill-conditioning campaigns) and ``force_failure()`` makes the next
    attempt fail as if the pivot had gone non-positive, exercising the
    retry ladder on demand.  Both are no-ops when the hook is ``None``.
    """
    if A.shape[0] and not np.all(np.isfinite(A)):
        # Regularization cannot fix NaN/Inf — fail fast with a clear cause
        # instead of burning all 16 retries on a poisoned matrix.
        raise SolverError(
            "factorization input contains non-finite entries "
            "(upstream iterate or constraint data is poisoned)"
        )
    # Duck-typed hook protocol: a hook may implement any subset of
    # transform_matrix / force_failure (/ transform_qp, force_stall).
    transform = getattr(fault_hook, "transform_matrix", None)
    if transform is not None:
        A = transform(A)
    force_failure = getattr(fault_hook, "force_failure", None)
    t0 = perf_counter()
    if band is not None and A.shape[0]:
        B = to_banded(A, band)
        make = lambda r: _BandedFactor(B, r)  # noqa: E731
    else:
        make = lambda r: _DenseFactor(A, r)  # noqa: E731
    current = reg
    for _ in range(16):
        try:
            if force_failure is not None and force_failure():
                raise SolverError("injected factorization failure")
            factor = make(current)
        except SolverError:
            stats.retries += 1
            current = max(current * 100.0, 1e-12)
            continue
        stats.factorizations += 1
        if factor.banded:
            stats.banded_factorizations += 1
        stats.factor_flops += factor.factor_flops
        stats.factorize_time += perf_counter() - t0
        stats.regularization_max = max(stats.regularization_max, current)
        return factor, current
    raise SolverError(
        f"matrix could not be factorized even with regularization {current:.1e}"
    )


def solve_qp(
    H: np.ndarray,
    g: np.ndarray,
    G: Optional[np.ndarray],
    b: Optional[np.ndarray],
    J: Optional[np.ndarray],
    d: Optional[np.ndarray],
    options: Optional[QPOptions] = None,
    bandwidth: Optional[int] = None,
    deadline: Optional[float] = None,
    fault_hook: Optional[object] = None,
    warm: Optional[dict] = None,
) -> QPResult:
    """Solve a convex QP (Mehrotra predictor-corrector IPM, or ADMM).

    Args:
        H: PSD Hessian (n x n); a small regularization is added internally.
        g: linear objective term (n,).
        G, b: equality constraints ``G x = b`` (pass ``None`` for none).
        J, d: inequality constraints ``J x <= d`` (pass ``None`` for none).
        bandwidth: half-bandwidth ceiling of the condensed system in the
            caller's variable ordering.  When given, every iteration
            measures the actual bandwidth of ``Phi = H + J^T W J`` (and of
            the equality Schur complement) and routes each factorization
            through the banded kernels whenever the measurement is within
            the ceiling — ``None`` (the default) keeps the dense path.
        deadline: absolute ``time.perf_counter`` wall-clock deadline.  The
            iteration loop stops at the first iteration top past the
            deadline (``budget_exhausted=True`` on the result), so the
            overrun is bounded by one factorize/substitute round; the
            returned iterate and residual stay consistent.
        fault_hook: optional :mod:`repro.faults` solver-layer injector; every
            main-loop factorization consults it (see :func:`_robust_factor`).
        warm: solver-internal warm start returned by a previous solve's
            ``QPResult.warm`` (ADMM method only; ignored by the IPM, whose
            central-path iteration starts from its own strictly interior
            point).
    """
    opt = options or QPOptions()
    n = g.shape[0]
    if H.shape != (n, n):
        raise SolverError(f"H shape {H.shape} does not match g length {n}")
    for name, arr in (("H", H), ("g", g), ("G", G), ("b", b), ("J", J), ("d", d)):
        if arr is not None and arr.size and not np.all(np.isfinite(arr)):
            raise SolverError(
                f"QP data {name} contains non-finite entries; "
                "refusing to start the interior-point iteration"
            )

    if fault_hook is not None:
        # illcond_qp campaigns perturb the problem *data* (not just the
        # factorization input), so equilibration and the fallback ladder
        # see a genuinely ill-conditioned QP.  Optional on the hook.
        transform_qp = getattr(fault_hook, "transform_qp", None)
        if transform_qp is not None:
            H = transform_qp(H)

    if opt.method == "admm":
        # Imported lazily: repro.firstorder imports this module's dataclasses,
        # so the dependency edge must not exist at import time.
        from repro.firstorder.admm import solve_qp_admm

        return solve_qp_admm(
            H, g, G, b, J, d, options=opt, deadline=deadline, warm=warm,
            fault_hook=fault_hook,
        )

    has_eq = G is not None and G.shape[0] > 0
    has_in = J is not None and J.shape[0] > 0
    p = G.shape[0] if has_eq else 0
    m = J.shape[0] if has_in else 0
    if has_eq and (b is None or b.shape != (p,)):
        raise SolverError("equality right-hand side b missing or mis-shaped")
    if has_in and (d is None or d.shape != (m,)):
        raise SolverError("inequality right-hand side d missing or mis-shaped")

    x = np.zeros(n)
    nu = np.zeros(p)
    if has_in:
        s = np.maximum(1.0, d - J @ x)
        lam = np.ones(m)
    else:
        s = np.zeros(0)
        lam = np.zeros(0)

    gap_history: List[float] = []
    stats = QPStats()
    converged = False
    it = 0
    # Relative-tolerance scale, capped so a single huge coefficient (e.g.
    # the L1 soft-constraint penalty in the extended SQP subproblems) cannot
    # loosen the stopping test by orders of magnitude.
    scale = 1.0 + min(
        max(
            float(np.max(np.abs(g))),
            float(np.max(np.abs(b))) if has_eq else 0.0,
            float(np.max(np.abs(d))) if has_in else 0.0,
        ),
        100.0,
    )

    def eval_residual(x, nu, lam, s):
        r_dual = H @ x + g
        if has_eq:
            r_dual = r_dual + G.T @ nu
        if has_in:
            r_dual = r_dual + J.T @ lam
        r_eq = (G @ x - b) if has_eq else np.zeros(0)
        r_in = (J @ x + s - d) if has_in else np.zeros(0)
        mu = float(s @ lam) / m if m else 0.0
        residual = max(_max_abs(r_dual), _max_abs(r_eq), _max_abs(r_in), mu)
        return r_dual, r_eq, r_in, mu, residual

    def timed_solve(factor, rhs):
        nrhs = 1 if rhs.ndim == 1 else rhs.shape[1]
        t0 = perf_counter()
        out = factor.solve(rhs)
        stats.substitute_time += perf_counter() - t0
        stats.substitute_flops += factor.solve_flops(nrhs)
        return out

    # Structural half-bandwidth of Phi = H + J^T W J, computed once: W is a
    # positive diagonal, so the nonzero pattern of J^T W J is contained in
    # that of |J|^T |J| for every iteration — entries can cancel to zero but
    # never appear outside this pattern.  Measuring the envelope up front
    # saves a full-matrix bandwidth scan per iteration and is lossless.
    phi_band: Optional[int] = None
    if bandwidth is not None:
        envelope = np.abs(H)
        if has_in:
            envelope = envelope + np.abs(J).T @ np.abs(J)
        struct_band = bandwidth_of(envelope)
        if struct_band <= bandwidth:
            phi_band = struct_band
            stats.phi_bandwidth = struct_band

    residual = float("inf")
    budget_exhausted = False
    for it in range(1, opt.max_iterations + 1):
        r_dual, r_eq, r_in, mu, residual = eval_residual(x, nu, lam, s)
        gap_history.append(mu)

        if residual < opt.tolerance * scale:
            converged = True
            break
        # Divergence guard: an infeasible subproblem drives the inequality
        # multipliers to infinity; bail out with the current iterate — the
        # reported residual was evaluated at exactly this (x, nu, lam, s),
        # so the outer solver's merit line search sees a consistent pair.
        # A non-finite residual (poisoned iterate) bails out regardless of
        # whether inequality rows exist.
        if not np.isfinite(residual) or (
            m and float(np.max(lam)) > 1e14 * scale
        ):
            break
        # Deadline guard: stop before starting another factorization round.
        # The residual above was evaluated at exactly this iterate, so the
        # returned pair is consistent; ``it - 1`` iterations did real work.
        if deadline is not None and perf_counter() >= deadline:
            budget_exhausted = True
            it -= 1
            break

        # -- factorize the condensed system once per iteration -------------------
        if has_in:
            # Clip the scaling so slack underflow cannot inject inf/NaN into
            # the factorization; beyond 1e16 the row is numerically "active".
            w = np.minimum(lam / np.maximum(s, 1e-300), 1e16)
            Phi = H + (J.T * w) @ J
        else:
            Phi = H
        phi_factor, _ = _robust_factor(
            Phi, opt.regularization, phi_band, stats, fault_hook
        )
        if has_eq:
            PhiInv_Gt = timed_solve(phi_factor, G.T)
            S = G @ PhiInv_Gt
            # The Schur complement of the stage-ordered dynamics rows is
            # block-tridiagonal; its bandwidth is measured per iteration
            # (cheap at p x p) because Phi^-1's block pattern can change
            # with the active set, and the measurement is always lossless.
            s_band: Optional[int] = None
            if bandwidth is not None:
                measured = bandwidth_of(S)
                if measured <= bandwidth:
                    s_band = measured
                    stats.schur_bandwidth = max(
                        stats.schur_bandwidth or 0, measured
                    )
            s_factor, _ = _robust_factor(
                S, opt.regularization, s_band, stats, fault_hook
            )
        else:
            PhiInv_Gt = None
            s_factor = None

        def saddle_solve(rhs1, re):
            """Solve the condensed saddle system via the Schur complement:

                [Phi  G^T] [dx ]   [rhs1]
                [G    0  ] [dnu] = [-re ]
            """
            PhiInv_r1 = timed_solve(phi_factor, rhs1)
            if not has_eq:
                return PhiInv_r1, np.zeros(0)
            dnu = timed_solve(s_factor, G @ PhiInv_r1 + re)
            dx = PhiInv_r1 - PhiInv_Gt @ dnu
            return dx, dnu

        def newton_step(rd, re, ri, rc):
            """Solve Eq. 6 for (dx, dnu, dlam, ds) given the residual stack."""
            if has_in:
                rhs1 = -(rd + J.T @ (w * ri - rc / np.maximum(s, 1e-300)))
            else:
                rhs1 = -rd
            dx, dnu = saddle_solve(rhs1, re)
            if has_in:
                ds = -ri - J @ dx
                dlam = (-rc - lam * ds) / np.maximum(s, 1e-300)
            else:
                ds = np.zeros(0)
                dlam = np.zeros(0)
            return dx, dnu, dlam, ds

        # -- predictor (affine) step ------------------------------------------------
        rc_aff = s * lam if has_in else np.zeros(0)
        dx_a, dnu_a, dlam_a, ds_a = newton_step(r_dual, r_eq, r_in, rc_aff)

        if has_in:
            alpha_p_aff = _max_step(s, ds_a, 1.0)
            alpha_d_aff = _max_step(lam, dlam_a, 1.0)
            mu_aff = float(
                (s + alpha_p_aff * ds_a) @ (lam + alpha_d_aff * dlam_a)
            ) / m
            sigma = (mu_aff / mu) ** 3 if mu > 0 else 0.0
            # -- corrector: recenter + second-order complementarity term ------------
            rc = s * lam + ds_a * dlam_a - sigma * mu
            dx, dnu, dlam, ds = newton_step(r_dual, r_eq, r_in, rc)
            alpha_p = opt.tau * _max_step(s, ds, 1.0)
            alpha_d = opt.tau * _max_step(lam, dlam, 1.0)
            alpha_p = min(1.0, alpha_p)
            alpha_d = min(1.0, alpha_d)
        else:
            dx, dnu, dlam, ds = dx_a, dnu_a, dlam_a, ds_a
            alpha_p = alpha_d = 1.0

        x = x + alpha_p * dx
        nu = nu + alpha_d * dnu
        if has_in:
            s = s + alpha_p * ds
            lam = lam + alpha_d * dlam
    else:
        # Iteration budget exhausted: the loop body updated the iterate one
        # last time after the final residual evaluation, so re-evaluate to
        # keep the returned residual/iterate pair consistent.
        residual = eval_residual(x, nu, lam, s)[-1]

    if converged and opt.polish:
        polished = _polish(
            H, g, G, b, J, d, lam, s, residual,
            opt, bandwidth, stats, timed_solve,
        )
        if polished is not None:
            x, nu, lam, s, residual = polished

    if stats.factorizations:
        if stats.banded_factorizations == stats.factorizations:
            stats.mode = "banded"
        elif stats.banded_factorizations:
            stats.mode = "mixed"

    return QPResult(
        x=x,
        nu=nu,
        lam=lam,
        slacks=s,
        converged=converged,
        iterations=it,
        residual=residual,
        gap_history=gap_history,
        stats=stats,
        budget_exhausted=budget_exhausted,
    )


def _polish(
    H, g, G, b, J, d, lam, s, residual, opt, bandwidth, stats, timed_solve
):
    """Active-set polish of a converged barrier solution.

    Treats the inequality rows the barrier iteration ended on
    (``lam_i > s_i`` — at convergence ``s_i lam_i ~ 0`` makes the split
    decisive) as equalities and solves the resulting KKT system

        [H   E^T] [x]   [-g   ]
        [E   0  ] [y] = [rhs_e]     with  E = [G; J_active]

    via the same Schur-complement elimination as the main loop, plus one
    step of iterative refinement — the active-set system carries no barrier
    scaling ``W``, so ``eps * cond`` is small and refinement converges,
    recovering the solution well past the accuracy the barrier stalls at.
    Returns the polished ``(x, nu, lam, s, residual)``, or ``None`` when the
    polish did not improve the KKT residual (e.g. a degenerate active set
    forced heavy regularization of the Schur complement).
    """
    has_eq = G is not None and G.shape[0] > 0
    has_in = J is not None and J.shape[0] > 0
    if not has_in:
        return None  # the equality-constrained case is already direct
    m = J.shape[0]
    p = G.shape[0] if has_eq else 0
    active = lam > s
    rows = [G] if has_eq else []
    rhs_rows = [b] if has_eq else []
    if np.any(active):
        rows.append(J[active])
        rhs_rows.append(d[active])
    q = sum(r.shape[0] for r in rows)
    E = np.vstack(rows) if q else None
    rhs_e = np.concatenate(rhs_rows) if q else np.zeros(0)

    try:
        h_band: Optional[int] = None
        if bandwidth is not None:
            measured = bandwidth_of(H)
            if measured <= bandwidth:
                h_band = measured
        h_factor, _ = _robust_factor(H, opt.regularization, h_band, stats)
        if q:
            HInv_Et = timed_solve(h_factor, E.T)
            S = E @ HInv_Et
            s_band: Optional[int] = None
            if bandwidth is not None:
                measured = bandwidth_of(S)
                if measured <= bandwidth:
                    s_band = measured
            s_factor, _ = _robust_factor(S, opt.regularization, s_band, stats)

        def saddle(r1, r2):
            t = timed_solve(h_factor, r1)
            if not q:
                return t, np.zeros(0)
            y = timed_solve(s_factor, E @ t - r2)
            return t - HInv_Et @ y, y

        x_p, y = saddle(-g, rhs_e)
        e1 = -g - H @ x_p - (E.T @ y if q else 0.0)
        e2 = rhs_e - E @ x_p if q else np.zeros(0)
        cx, cy = saddle(e1, e2)
        x_p = x_p + cx
        y = y + cy
    except SolverError:
        return None

    nu_p = y[:p]
    lam_p = np.zeros(m)
    lam_p[active] = y[p:]
    s_p = d - J @ x_p
    r_dual = H @ x_p + g + J.T @ lam_p
    if has_eq:
        r_dual = r_dual + G.T @ nu_p
    res_p = max(
        _max_abs(r_dual),
        _max_abs(G @ x_p - b) if has_eq else 0.0,
        float(np.max(np.maximum(-s_p, 0.0))),  # primal inequality violation
        float(np.max(np.maximum(-lam_p, 0.0))),  # dual feasibility
        float(abs(s_p @ lam_p)) / m,  # complementarity, as the loop's mu
    )
    if not np.isfinite(res_p) or res_p > residual:
        return None
    return x_p, nu_p, np.maximum(lam_p, 0.0), np.maximum(s_p, 0.0), res_p


def _robust_cholesky(A: np.ndarray, reg: float) -> Tuple[np.ndarray, float]:
    """Dense Cholesky with geometric regularization escalation on failure.

    Kept as the reference implementation of the escalation schedule used by
    :func:`_robust_factor` (same initial value, same x100 steps).
    """
    current = reg
    for _ in range(16):
        try:
            return cholesky(A, reg=current), current
        except SolverError:
            current = max(current * 100.0, 1e-12)
    raise SolverError(
        f"matrix could not be factorized even with regularization {current:.1e}"
    )


def _max_abs(v: np.ndarray) -> float:
    return float(np.max(np.abs(v))) if v.size else 0.0


def _max_step(x: np.ndarray, dx: np.ndarray, tau: float) -> float:
    """Largest ``alpha <= 1`` keeping ``x + alpha dx >= (1 - tau) x``."""
    negative = dx < 0
    if not np.any(negative):
        return 1.0
    return float(min(1.0, np.min(-tau * x[negative] / dx[negative])))
