"""Primal-dual interior-point solver for convex quadratic programs.

This is the inner solver of the RoboX pipeline, playing the role HPMPC plays
in the paper's CPU baseline (§VIII-A): each SQP linearization of the MPC
problem yields the convex QP

    min  1/2 x^T H x + g^T x
    s.t. G x  = b                      (equalities)
         J x <= d                      (inequalities)

solved here with a Mehrotra predictor-corrector interior-point method.  The
Newton system of the paper's Eq. 6 is condensed by eliminating slacks and
inequality multipliers, then solved with the from-scratch Cholesky and
forward/backward substitution kernels of :mod:`repro.mpc.linalg` — the
factorization is computed once per iteration and reused for the corrector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import SolverError
from repro.mpc.linalg import cholesky, cholesky_solve

__all__ = ["QPOptions", "QPResult", "solve_qp"]


@dataclass
class QPOptions:
    """Parameters for the QP interior-point method."""

    max_iterations: int = 50
    tolerance: float = 1e-8
    #: fraction-to-the-boundary factor
    tau: float = 0.995
    #: diagonal regularization for the condensed Hessian
    regularization: float = 1e-9

    def __post_init__(self):
        if self.max_iterations < 1:
            raise SolverError("max_iterations must be >= 1")
        if not 0 < self.tau < 1:
            raise SolverError("tau must lie in (0, 1)")


@dataclass
class QPResult:
    """Solution of one QP subproblem."""

    x: np.ndarray
    nu: np.ndarray
    lam: np.ndarray
    slacks: np.ndarray
    converged: bool
    iterations: int
    residual: float
    gap_history: List[float] = field(default_factory=list)


def solve_qp(
    H: np.ndarray,
    g: np.ndarray,
    G: Optional[np.ndarray],
    b: Optional[np.ndarray],
    J: Optional[np.ndarray],
    d: Optional[np.ndarray],
    options: Optional[QPOptions] = None,
) -> QPResult:
    """Solve a convex QP with a Mehrotra predictor-corrector IPM.

    Args:
        H: PSD Hessian (n x n); a small regularization is added internally.
        g: linear objective term (n,).
        G, b: equality constraints ``G x = b`` (pass ``None`` for none).
        J, d: inequality constraints ``J x <= d`` (pass ``None`` for none).
    """
    opt = options or QPOptions()
    n = g.shape[0]
    if H.shape != (n, n):
        raise SolverError(f"H shape {H.shape} does not match g length {n}")

    has_eq = G is not None and G.shape[0] > 0
    has_in = J is not None and J.shape[0] > 0
    p = G.shape[0] if has_eq else 0
    m = J.shape[0] if has_in else 0
    if has_eq and (b is None or b.shape != (p,)):
        raise SolverError("equality right-hand side b missing or mis-shaped")
    if has_in and (d is None or d.shape != (m,)):
        raise SolverError("inequality right-hand side d missing or mis-shaped")

    x = np.zeros(n)
    nu = np.zeros(p)
    if has_in:
        s = np.maximum(1.0, d - J @ x)
        lam = np.ones(m)
    else:
        s = np.zeros(0)
        lam = np.zeros(0)

    gap_history: List[float] = []
    converged = False
    it = 0
    # Relative-tolerance scale, capped so a single huge coefficient (e.g.
    # the L1 soft-constraint penalty in the extended SQP subproblems) cannot
    # loosen the stopping test by orders of magnitude.
    scale = 1.0 + min(
        max(
            float(np.max(np.abs(g))),
            float(np.max(np.abs(b))) if has_eq else 0.0,
            float(np.max(np.abs(d))) if has_in else 0.0,
        ),
        100.0,
    )

    for it in range(1, opt.max_iterations + 1):
        r_dual = H @ x + g
        if has_eq:
            r_dual = r_dual + G.T @ nu
        if has_in:
            r_dual = r_dual + J.T @ lam
        r_eq = (G @ x - b) if has_eq else np.zeros(0)
        r_in = (J @ x + s - d) if has_in else np.zeros(0)
        mu = float(s @ lam) / m if m else 0.0
        gap_history.append(mu)

        residual = max(
            _max_abs(r_dual), _max_abs(r_eq), _max_abs(r_in), mu
        )
        if residual < opt.tolerance * scale:
            converged = True
            break
        # Divergence guard: an infeasible subproblem drives the inequality
        # multipliers to infinity; bail out with the best iterate so the
        # outer solver's merit line search can still use the direction.
        if m and (not np.isfinite(residual) or float(np.max(lam)) > 1e14 * scale):
            break

        # -- factorize the condensed system once per iteration -------------------
        if has_in:
            # Clip the scaling so slack underflow cannot inject inf/NaN into
            # the factorization; beyond 1e16 the row is numerically "active".
            w = np.minimum(lam / np.maximum(s, 1e-300), 1e16)
            Phi = H + (J.T * w) @ J
        else:
            Phi = H
        L, reg_used = _robust_cholesky(Phi, opt.regularization)
        if has_eq:
            PhiInv_Gt = cholesky_solve(L, G.T)
            S = G @ PhiInv_Gt
            Ls, _ = _robust_cholesky(S, opt.regularization)
        else:
            PhiInv_Gt = None
            Ls = None

        def newton_step(rd, re, ri, rc):
            """Solve Eq. 6 for (dx, dnu, dlam, ds) given the residual stack."""
            if has_in:
                rhs1 = -(rd + J.T @ (w * ri - rc / np.maximum(s, 1e-300)))
            else:
                rhs1 = -rd
            PhiInv_r1 = cholesky_solve(L, rhs1)
            if has_eq:
                dnu = cholesky_solve(Ls, G @ PhiInv_r1 + re)
                dx = PhiInv_r1 - PhiInv_Gt @ dnu
            else:
                dnu = np.zeros(0)
                dx = PhiInv_r1
            if has_in:
                ds = -ri - J @ dx
                dlam = (-rc - lam * ds) / np.maximum(s, 1e-300)
            else:
                ds = np.zeros(0)
                dlam = np.zeros(0)
            return dx, dnu, dlam, ds

        # -- predictor (affine) step ------------------------------------------------
        rc_aff = s * lam if has_in else np.zeros(0)
        dx_a, dnu_a, dlam_a, ds_a = newton_step(r_dual, r_eq, r_in, rc_aff)

        if has_in:
            alpha_p_aff = _max_step(s, ds_a, 1.0)
            alpha_d_aff = _max_step(lam, dlam_a, 1.0)
            mu_aff = float(
                (s + alpha_p_aff * ds_a) @ (lam + alpha_d_aff * dlam_a)
            ) / m
            sigma = (mu_aff / mu) ** 3 if mu > 0 else 0.0
            # -- corrector: recenter + second-order complementarity term ------------
            rc = s * lam + ds_a * dlam_a - sigma * mu
            dx, dnu, dlam, ds = newton_step(r_dual, r_eq, r_in, rc)
            alpha_p = opt.tau * _max_step(s, ds, 1.0)
            alpha_d = opt.tau * _max_step(lam, dlam, 1.0)
            alpha_p = min(1.0, alpha_p)
            alpha_d = min(1.0, alpha_d)
        else:
            dx, dnu, dlam, ds = dx_a, dnu_a, dlam_a, ds_a
            alpha_p = alpha_d = 1.0

        x = x + alpha_p * dx
        nu = nu + alpha_d * dnu
        if has_in:
            s = s + alpha_p * ds
            lam = lam + alpha_d * dlam

    return QPResult(
        x=x,
        nu=nu,
        lam=lam,
        slacks=s,
        converged=converged,
        iterations=it,
        residual=residual if it else float("inf"),
        gap_history=gap_history,
    )


def _robust_cholesky(A: np.ndarray, reg: float) -> Tuple[np.ndarray, float]:
    """Cholesky with geometric regularization escalation on failure."""
    current = reg
    for _ in range(16):
        try:
            return cholesky(A, reg=current), current
        except SolverError:
            current = max(current * 100.0, 1e-12)
    raise SolverError(
        f"matrix could not be factorized even with regularization {current:.1e}"
    )


def _max_abs(v: np.ndarray) -> float:
    return float(np.max(np.abs(v))) if v.size else 0.0


def _max_step(x: np.ndarray, dx: np.ndarray, tau: float) -> float:
    """Largest ``alpha <= 1`` keeping ``x + alpha dx >= (1 - tau) x``."""
    negative = dx < 0
    if not np.any(negative):
        return 1.0
    return float(min(1.0, np.min(-tau * x[negative] / dx[negative])))
