"""Direct transcription of an MPC problem over a finite horizon.

Implements §II-B of the paper: the trajectory is discretized over a horizon
of ``N`` steps into the decision vector ``z = [x_0 .. x_N, u_0 .. u_{N-1}]``
(Eq. 5); the robot dynamics become equality constraints linking consecutive
states; variable bounds and task constraints become the stacked inequality
vector; and the objective is the weighted sum of squared penalties.

The transcription is *stage-wise*: one set of symbolic expressions is built
and compiled per stage kind (running / terminal) and evaluated at every time
step, exactly how structure-exploiting MPC solvers (HPMPC, the paper's CPU
baseline) operate.  All gradients, Jacobians and Hessians are produced by
symbolic automatic differentiation (§VII), and their exact primitive-op
counts are exposed for the accelerator compiler and baseline cost models.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TranscriptionError
from repro.mpc.model import RobotModel
from repro.mpc.task import Task
from repro.symbolic import (
    Const,
    Expr,
    Var,
    as_expr,
    compile_function,
    diff,
    simplify,
    substitute,
)

__all__ = ["TranscribedProblem", "INTEGRATORS"]

INTEGRATORS = ("euler", "rk4")
_INF = math.inf


class TranscribedProblem:
    """A discretized constrained optimization problem ready for the solver.

    Args:
        model: robot ``System``.
        task: robot ``Task``.
        horizon: number of control intervals ``N`` (the trajectory has
            ``N + 1`` state knots and ``N`` input knots).
        dt: integration step in seconds.
        integrator: ``"euler"`` or ``"rk4"`` discretization of the continuous
            dynamics (a solver-template parameter in RoboX).
        move_block: move-blocking factor ``B`` — the control input is held
            constant over blocks of ``B`` consecutive steps, shrinking the
            decision vector from ``N`` to ``ceil(N / B)`` input knots.  This
            is the algorithmic-approximation technique of the paper's §IX
            (ref. [77]) that trades control accuracy for solver speed; the
            default ``1`` disables it.
    """

    def __init__(
        self,
        model: RobotModel,
        task: Task,
        horizon: int,
        dt: float,
        integrator: str = "rk4",
        move_block: int = 1,
    ):
        if horizon < 1:
            raise TranscriptionError(f"horizon must be >= 1, got {horizon}")
        if dt <= 0:
            raise TranscriptionError(f"dt must be positive, got {dt}")
        if integrator not in INTEGRATORS:
            raise TranscriptionError(
                f"unknown integrator {integrator!r}; choose from {INTEGRATORS}"
            )
        if task.model is not model:
            raise TranscriptionError(
                f"task {task.name!r} was defined for model {task.model.name!r}, "
                f"not {model.name!r}"
            )
        if move_block < 1:
            raise TranscriptionError(
                f"move_block must be >= 1, got {move_block}"
            )

        self.model = model
        self.task = task
        self.N = horizon
        self.dt = dt
        self.integrator = integrator
        self.move_block = move_block
        #: number of independent input knots after move blocking
        self.n_input_knots = -(-horizon // move_block)  # ceil division

        self.nx = model.n_states
        self.nu = model.n_inputs
        self.nref = len(task.references)
        self.nz = (self.N + 1) * self.nx + self.n_input_knots * self.nu

        self._state_vars = list(model.state_vars)
        self._input_vars = list(model.input_vars)
        self._ref_vars = list(task.reference_vars)
        self._stage_vars = self._state_vars + self._input_vars + self._ref_vars
        self._term_vars = self._state_vars + self._ref_vars

        self._build_dynamics()
        self._build_costs()
        self._build_constraints()
        self._compute_counts()

        #: codegen seam state: mode override (None -> REPRO_CODEGEN / auto),
        #: lazily-built kernels, and the fused twin of the evaluation methods
        self._cg_mode: Optional[str] = None
        self._cg_built = False
        self._cg_kernels = None
        self._cg_lin = None

    # -- fused-kernel codegen seam ----------------------------------------------
    def set_codegen(self, mode: Optional[str]) -> None:
        """Select the codegen mode (``auto``/``on``/``off``/``numpy``/``c``).

        Resets any kernels already built so the next evaluation re-decides
        the tier under the new mode.
        """
        self._cg_mode = mode
        self._cg_built = False
        self._cg_kernels = None
        self._cg_lin = None

    def _fused_linearizer(self):
        """The fused evaluation twin, or ``None`` for the interpreted path.

        Built on first use; any failure to build lands on the interpreted
        path with the reason recorded in :meth:`codegen_stats`.
        """
        if not self._cg_built:
            self._cg_built = True
            try:
                from repro.codegen.linearizer import FusedProblemKernels

                self._cg_kernels = FusedProblemKernels(self, self._cg_mode)
                self._cg_lin = self._cg_kernels.scalar_linearizer()
            except Exception:
                self._cg_kernels = None
                self._cg_lin = None
        return self._cg_lin

    def _codegen_disable(self, reason: str) -> None:
        """Drop to the interpreted path permanently for this problem."""
        self._cg_lin = None
        if self._cg_kernels is not None:
            self._cg_kernels.disable(reason)

    def codegen_kernels(self):
        """The :class:`~repro.codegen.linearizer.FusedProblemKernels` in use
        (building them if evaluation has not run yet), or ``None``."""
        self._fused_linearizer()
        return self._cg_kernels

    def codegen_stats(self):
        """Current :class:`~repro.codegen.stats.CodegenStats` snapshot."""
        from repro.codegen.stats import CodegenStats

        if self._cg_kernels is not None:
            return self._cg_kernels.stats
        return CodegenStats()

    # -- decision-vector layout (Eq. 5) -----------------------------------------
    def state_slice(self, k: int) -> slice:
        """Slice of ``z`` holding ``x_k`` (``0 <= k <= N``)."""
        if not 0 <= k <= self.N:
            raise TranscriptionError(f"state index {k} outside [0, {self.N}]")
        return slice(k * self.nx, (k + 1) * self.nx)

    def input_slice(self, k: int) -> slice:
        """Slice of ``z`` holding ``u_k`` (``0 <= k < N``).

        With move blocking, steps in the same block share one knot, so the
        same slice is returned for every ``k`` in a block — gradient/Hessian
        accumulation through this slice then sums block members' sensitivities,
        which is exactly the chain rule for the shared variable.
        """
        if not 0 <= k < self.N:
            raise TranscriptionError(f"input index {k} outside [0, {self.N - 1}]")
        base = (self.N + 1) * self.nx
        knot = k // self.move_block
        return slice(base + knot * self.nu, base + (knot + 1) * self.nu)

    def stage_permutation(self) -> Optional[np.ndarray]:
        """Permutation ``perm`` interleaving the decision vector by stage.

        ``z[perm]`` reorders Eq. 5's ``[x_0 .. x_N, u_0 .. u_{N-1}]`` into the
        stage-local ``[x_0, u_0, x_1, u_1, .., x_N]`` used by
        structure-exploiting solvers (HPMPC, the paper's CPU baseline): every
        KKT coupling then acts between adjacent index groups, so the condensed
        matrix ``H + J^T W J`` is banded and the banded kernels apply.

        Returns ``None`` when ``move_block > 1``: a shared input knot is
        referenced by every step of its block, which couples index groups up
        to ``move_block`` stages apart and breaks the locality the banded
        path relies on — those problems fall back to the dense path.
        """
        if self.move_block > 1:
            return None
        nx, nu, N = self.nx, self.nu, self.N
        base = (N + 1) * nx
        perm = np.empty(self.nz, dtype=np.intp)
        pos = 0
        for k in range(N):
            perm[pos : pos + nx] = np.arange(k * nx, (k + 1) * nx)
            pos += nx
            perm[pos : pos + nu] = np.arange(base + k * nu, base + (k + 1) * nu)
            pos += nu
        perm[pos:] = np.arange(N * nx, (N + 1) * nx)
        return perm

    def kkt_half_bandwidth(self) -> Optional[int]:
        """Half-bandwidth ceiling of the stage-permuted KKT system.

        In the :meth:`stage_permutation` ordering every Hessian/Jacobian
        coupling spans at most one stage group ``[x_k, u_k]`` plus the next
        state, so the half-bandwidth is bounded by ``2 nx + nu - 1`` — the
        paper's ``b ≈ 2 nx + nu`` (§VIII-A) that the accelerator cost model
        assumes.  The condensed ``Phi = H + J^T W J`` is narrower still
        (block-diagonal per stage, band ``nx + nu - 1``); the ceiling also
        covers the block-tridiagonal Schur complement of the dynamics rows
        (band ``2 nx - 1``).  Returns ``None`` when ``move_block > 1``
        (no banded structure — see :meth:`stage_permutation`).
        """
        if self.move_block > 1:
            return None
        return 2 * self.nx + self.nu - 1

    def inequality_row_stages(self) -> np.ndarray:
        """Stage index ``k`` of every stacked inequality row.

        Mirrors the stacking order of :meth:`inequality_constraints`
        (state rows for ``k = 1 .. N-1``, then input rows for
        ``k = 0 .. N-1``, then terminal rows at ``k = N``).  The SQP layer
        uses this to place each soft-constraint slack next to its stage
        group so the extended QP stays banded.
        """
        parts = [
            np.repeat(np.arange(1, self.N), self._h_state_rows),
            np.repeat(np.arange(self.N), self._h_input_rows),
            np.full(self._h_term_rows, self.N, dtype=np.intp),
        ]
        stages = np.concatenate(parts).astype(np.intp)
        assert stages.shape == (self.n_ineq,)
        return stages

    def split(self, z: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Split ``z`` into the state matrix ``(N+1, nx)`` and the *per-step*
        input matrix ``(N, nu)`` (blocked knots are expanded)."""
        z = np.asarray(z, dtype=float)
        if z.shape != (self.nz,):
            raise TranscriptionError(f"z has shape {z.shape}, expected ({self.nz},)")
        xs = z[: (self.N + 1) * self.nx].reshape(self.N + 1, self.nx)
        knots = z[(self.N + 1) * self.nx :].reshape(self.n_input_knots, self.nu)
        us = np.repeat(knots, self.move_block, axis=0)[: self.N]
        return xs, us

    def join(self, xs: np.ndarray, us: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`split` (block representatives are the first
        step of each block)."""
        xs = np.asarray(xs, dtype=float).reshape(self.N + 1, self.nx)
        us = np.asarray(us, dtype=float).reshape(self.N, self.nu)
        knots = us[:: self.move_block]
        return np.concatenate([xs.ravel(), knots.ravel()])

    # -- symbolic construction ---------------------------------------------------
    def _discrete_step_exprs(self) -> List[Expr]:
        """Symbolic ``x_{k+1} = F(x_k, u_k)`` via the chosen integrator."""
        f = list(self.model.dynamics_exprs)
        h = Const(self.dt)
        xs = self._state_vars

        if self.integrator == "euler":
            return [simplify(x + h * fx) for x, fx in zip(xs, f)]

        # Classic RK4 expanded symbolically; shared subexpressions keep the
        # DAG compact even for the 12-state UAV models.
        def shifted(stage_exprs: List[Expr], scale: float) -> List[Expr]:
            mapping = {
                x: simplify(x + Const(scale * self.dt) * k)
                for x, k in zip(xs, stage_exprs)
            }
            return [substitute(fx, mapping) for fx in f]

        k1 = f
        k2 = shifted(k1, 0.5)
        k3 = shifted(k2, 0.5)
        k4 = shifted(k3, 1.0)
        sixth = Const(self.dt / 6.0)
        return [
            simplify(x + sixth * (a + Const(2.0) * b + Const(2.0) * c + d))
            for x, a, b, c, d in zip(xs, k1, k2, k3, k4)
        ]

    def _build_dynamics(self) -> None:
        step = self._discrete_step_exprs()
        sv = self._state_vars
        iv = self._input_vars
        self._F = compile_function(step, sv + iv, "dyn_step")
        jac_x = [diff(e, v) for e in step for v in sv]
        jac_u = [diff(e, v) for e in step for v in iv]
        self._A = compile_function(jac_x, sv + iv, "dyn_jac_x")
        self._B = compile_function(jac_u, sv + iv, "dyn_jac_u")

    def _build_costs(self) -> None:
        def quad_sum(penalties) -> Expr:
            total: Expr = Const(0.0)
            for p in penalties:
                total = total + Const(p.weight) * p.expr * p.expr
            return simplify(total)

        run = quad_sum(self.task.running_penalties)
        term = quad_sum(self.task.terminal_penalties)

        # Penalty residual vectors + Jacobians for the Gauss-Newton Hessian
        # (the SQP driver builds H = 2 Jp^T W Jp per stage, which is PSD).
        run_pens = list(self.task.running_penalties)
        term_pens = list(self.task.terminal_penalties)
        self.w_run = np.array([p.weight for p in run_pens])
        self.w_term = np.array([p.weight for p in term_pens])
        run_vars_gn = self._state_vars + self._input_vars
        self._P_run = compile_function(
            [p.expr for p in run_pens] or [Const(0.0)], self._stage_vars, "pen_run"
        )
        self._P_run_jac = compile_function(
            [diff(p.expr, v) for p in run_pens for v in run_vars_gn] or [Const(0.0)],
            self._stage_vars,
            "pen_run_jac",
        )
        self._P_term = compile_function(
            [p.expr for p in term_pens] or [Const(0.0)], self._term_vars, "pen_term"
        )
        self._P_term_jac = compile_function(
            [diff(p.expr, v) for p in term_pens for v in self._state_vars]
            or [Const(0.0)],
            self._term_vars,
            "pen_term_jac",
        )

        run_vars = self._state_vars + self._input_vars
        self._L = compile_function([run], self._stage_vars, "cost_run")
        grad_run = [diff(run, v) for v in run_vars]
        self._L_grad = compile_function(grad_run, self._stage_vars, "cost_run_grad")
        hess_run = [diff(g, v) for g in grad_run for v in run_vars]
        self._L_hess = compile_function(hess_run, self._stage_vars, "cost_run_hess")

        self._Phi = compile_function([term], self._term_vars, "cost_term")
        grad_term = [diff(term, v) for v in self._state_vars]
        self._Phi_grad = compile_function(
            grad_term, self._term_vars, "cost_term_grad"
        )
        hess_term = [diff(g, v) for g in grad_term for v in self._state_vars]
        self._Phi_hess = compile_function(
            hess_term, self._term_vars, "cost_term_hess"
        )

    def _inequality_rows(self, constraints) -> List[Expr]:
        """Rewrite two-sided constraints into stacked ``h(z) <= 0`` rows."""
        rows: List[Expr] = []
        for c in constraints:
            if c.is_equality:
                continue
            if c.upper < _INF:
                rows.append(simplify(c.expr - Const(c.upper)))
            if c.lower > -_INF:
                rows.append(simplify(Const(c.lower) - c.expr))
        return rows

    def _equality_rows(self, constraints) -> List[Expr]:
        return [
            simplify(c.expr - Const(c.lower))
            for c in constraints
            if c.is_equality
        ]

    def _bound_rows(self, specs, upto: Optional[int] = None) -> List[Expr]:
        rows: List[Expr] = []
        for spec in specs:
            v = Var(spec.name)
            if spec.upper < _INF:
                rows.append(v - Const(spec.upper))
            if spec.lower > -_INF:
                rows.append(Const(spec.lower) - v)
        return rows

    def _build_constraints(self) -> None:
        """Classify and compile the stage inequality / equality rows.

        Rows that involve any *state* variable are enforced at knots
        ``k = 1 .. N-1`` (running) and ``k = N`` (terminal): the measured
        initial state is pinned by an equality, so imposing a state
        constraint at ``k = 0`` would make the subproblem infeasible whenever
        the robot is measured slightly outside the constraint set — the
        standard MPC convention (and what ACADO generates) is to constrain
        only the *future* states.  Input-only rows are enforced at every
        ``k = 0 .. N-1`` where the input exists.
        """
        state_names = set(self.model.state_names)

        def uses_state(expr: Expr) -> bool:
            from repro.symbolic import variables_of

            return any(v.name in state_names for v in variables_of([expr]))

        run_rows = (
            self._bound_rows(self.model.states)
            + self._bound_rows(self.model.inputs)
            + self._inequality_rows(self.task.running_constraints)
        )
        state_rows = [r for r in run_rows if uses_state(r)]
        input_rows = [r for r in run_rows if not uses_state(r)]
        term_rows = self._bound_rows(self.model.states) + self._inequality_rows(
            self.task.terminal_constraints
        )
        run_eq = self._equality_rows(self.task.running_constraints)
        state_eq = [r for r in run_eq if uses_state(r)]
        input_eq = [r for r in run_eq if not uses_state(r)]
        term_eq = self._equality_rows(self.task.terminal_constraints)

        sv, iv = self._state_vars, self._input_vars
        run_vars = sv + iv

        self._h_state_rows = len(state_rows)
        self._h_input_rows = len(input_rows)
        self._h_term_rows = len(term_rows)
        self._eq_state_rows = len(state_eq)
        self._eq_input_rows = len(input_eq)
        self._eq_term_rows = len(term_eq)

        def compiled(rows, variables, name):
            return compile_function(rows or [Const(0.0)], variables, name)

        def compiled_jac(rows, wrt, variables, name):
            return compile_function(
                [diff(r, v) for r in rows for v in wrt] or [Const(0.0)],
                variables,
                name,
            )

        self._h_state = compiled(state_rows, self._stage_vars, "ineq_state")
        self._h_state_jac = compiled_jac(
            state_rows, run_vars, self._stage_vars, "ineq_state_jac"
        )
        self._h_input = compiled(input_rows, self._stage_vars, "ineq_input")
        self._h_input_jac = compiled_jac(
            input_rows, run_vars, self._stage_vars, "ineq_input_jac"
        )
        self._h_term = compiled(term_rows, self._term_vars, "ineq_term")
        self._h_term_jac = compiled_jac(
            term_rows, sv, self._term_vars, "ineq_term_jac"
        )
        self._g_state = compiled(state_eq, self._stage_vars, "eq_state")
        self._g_state_jac = compiled_jac(
            state_eq, run_vars, self._stage_vars, "eq_state_jac"
        )
        self._g_input = compiled(input_eq, self._stage_vars, "eq_input")
        self._g_input_jac = compiled_jac(
            input_eq, run_vars, self._stage_vars, "eq_input_jac"
        )
        self._g_term = compiled(term_eq, self._term_vars, "eq_term")
        self._g_term_jac = compiled_jac(term_eq, sv, self._term_vars, "eq_term_jac")

    def _compute_counts(self) -> None:
        N, nx = self.N, self.nx
        self.n_eq = (
            nx  # initial condition
            + N * nx  # dynamics defects
            + max(N - 1, 0) * self._eq_state_rows
            + N * self._eq_input_rows
            + self._eq_term_rows
        )
        self.n_ineq = (
            max(N - 1, 0) * self._h_state_rows
            + N * self._h_input_rows
            + self._h_term_rows
        )

    # -- reference handling --------------------------------------------------------
    def _ref_row(self, ref_values: Optional[np.ndarray], k: int) -> List[float]:
        if self.nref == 0:
            return []
        if ref_values is None:
            raise TranscriptionError(
                f"task {self.task.name!r} requires reference values "
                f"{self.task.references}"
            )
        ref = np.asarray(ref_values, dtype=float)
        if ref.shape == (self.nref,):
            return ref.tolist()
        if ref.shape == (self.N + 1, self.nref):
            return ref[k].tolist()
        raise TranscriptionError(
            f"reference values must have shape ({self.nref},) or "
            f"({self.N + 1}, {self.nref}), got {ref.shape}"
        )

    # -- numeric evaluation over the full z vector ----------------------------------
    # The inner loops below call the compiled stage functions through the
    # unchecked ``call_positional`` fast path with plain python floats
    # (``.tolist()`` rows): per-call input validation on these hot paths
    # costs more than the generated function bodies themselves.
    def objective(self, z: np.ndarray, ref: Optional[np.ndarray] = None) -> float:
        fused = self._fused_linearizer()
        if fused is not None:
            try:
                return fused.objective(z, ref)
            except TranscriptionError:
                raise
            except Exception as exc:
                self._codegen_disable(f"runtime failure: {exc}")
        xs, us = self.split(z)
        xs_l, us_l = xs.tolist(), us.tolist()
        total = 0.0
        for k in range(self.N):
            total += self._L.call_positional(
                *xs_l[k], *us_l[k], *self._ref_row(ref, k)
            )[0]
        total += self._Phi.call_positional(
            *xs_l[self.N], *self._ref_row(ref, self.N)
        )[0]
        return float(total)

    def objective_gradient(
        self, z: np.ndarray, ref: Optional[np.ndarray] = None
    ) -> np.ndarray:
        fused = self._fused_linearizer()
        if fused is not None:
            try:
                return fused.objective_gradient(z, ref)
            except TranscriptionError:
                raise
            except Exception as exc:
                self._codegen_disable(f"runtime failure: {exc}")
        xs, us = self.split(z)
        xs_l, us_l = xs.tolist(), us.tolist()
        grad = np.zeros(self.nz)
        for k in range(self.N):
            g = np.array(
                self._L_grad.call_positional(
                    *xs_l[k], *us_l[k], *self._ref_row(ref, k)
                )
            )
            grad[self.state_slice(k)] += g[: self.nx]
            grad[self.input_slice(k)] += g[self.nx :]
        grad[self.state_slice(self.N)] += self._Phi_grad.call_positional(
            *xs_l[self.N], *self._ref_row(ref, self.N)
        )
        return grad

    def objective_hessian(
        self, z: np.ndarray, ref: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Exact block-diagonal objective Hessian (dense assembly)."""
        xs, us = self.split(z)
        xs_l, us_l = xs.tolist(), us.tolist()
        H = np.zeros((self.nz, self.nz))
        nxu = self.nx + self.nu
        for k in range(self.N):
            blk = np.array(
                self._L_hess.call_positional(
                    *xs_l[k], *us_l[k], *self._ref_row(ref, k)
                )
            ).reshape(nxu, nxu)
            sx, su = self.state_slice(k), self.input_slice(k)
            H[sx, sx.start : sx.stop] += blk[: self.nx, : self.nx]
            H[sx, su.start : su.stop] += blk[: self.nx, self.nx :]
            H[su, sx.start : sx.stop] += blk[self.nx :, : self.nx]
            H[su, su.start : su.stop] += blk[self.nx :, self.nx :]
        sN = self.state_slice(self.N)
        H[sN, sN.start : sN.stop] += np.array(
            self._Phi_hess.call_positional(
                *xs_l[self.N], *self._ref_row(ref, self.N)
            )
        ).reshape(self.nx, self.nx)
        return H

    def objective_gauss_newton(
        self, z: np.ndarray, ref: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Gauss-Newton Hessian ``2 sum Jp^T W Jp`` (PSD by construction).

        For the weighted-least-squares objective the GN Hessian drops only the
        ``2 w p * grad^2 p`` curvature term; the gradient it implies,
        ``2 Jp^T W p``, is *exact* and equals :meth:`objective_gradient`.
        """
        fused = self._fused_linearizer()
        if fused is not None:
            try:
                return fused.objective_gauss_newton(z, ref)
            except TranscriptionError:
                raise
            except Exception as exc:
                self._codegen_disable(f"runtime failure: {exc}")
        xs, us = self.split(z)
        xs_l, us_l = xs.tolist(), us.tolist()
        H = np.zeros((self.nz, self.nz))
        nxu = self.nx + self.nu
        n_run = len(self.w_run)
        n_term = len(self.w_term)
        for k in range(self.N):
            if not n_run:
                break
            Jp = np.array(
                self._P_run_jac.call_positional(
                    *xs_l[k], *us_l[k], *self._ref_row(ref, k)
                )
            ).reshape(n_run, nxu)
            blk = 2.0 * (Jp.T * self.w_run) @ Jp
            sx, su = self.state_slice(k), self.input_slice(k)
            H[sx, sx] += blk[: self.nx, : self.nx]
            H[sx, su] += blk[: self.nx, self.nx :]
            H[su, sx] += blk[self.nx :, : self.nx]
            H[su, su] += blk[self.nx :, self.nx :]
        if n_term:
            Jp = np.array(
                self._P_term_jac.call_positional(
                    *xs_l[self.N], *self._ref_row(ref, self.N)
                )
            ).reshape(n_term, self.nx)
            sN = self.state_slice(self.N)
            H[sN, sN] += 2.0 * (Jp.T * self.w_term) @ Jp
        return H

    def equality_constraints(
        self,
        z: np.ndarray,
        x_init: np.ndarray,
        ref: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Stacked ``g(z) = 0``: initial condition, dynamics defects, task eq."""
        fused = self._fused_linearizer()
        if fused is not None:
            try:
                return fused.equality_constraints(z, x_init, ref)
            except TranscriptionError:
                raise
            except Exception as exc:
                self._codegen_disable(f"runtime failure: {exc}")
        xs, us = self.split(z)
        x_init = np.asarray(x_init, dtype=float)
        if x_init.shape != (self.nx,):
            raise TranscriptionError(
                f"x_init has shape {x_init.shape}, expected ({self.nx},)"
            )
        xs_l, us_l = xs.tolist(), us.tolist()
        parts = [xs[0] - x_init]
        for k in range(self.N):
            nxt = self._F.call_positional(*xs_l[k], *us_l[k])
            parts.append(xs[k + 1] - nxt)
        if self._eq_state_rows:
            for k in range(1, self.N):
                parts.append(
                    np.array(
                        self._g_state.call_positional(
                            *xs_l[k], *us_l[k], *self._ref_row(ref, k)
                        )
                    )
                )
        if self._eq_input_rows:
            for k in range(self.N):
                parts.append(
                    np.array(
                        self._g_input.call_positional(
                            *xs_l[k], *us_l[k], *self._ref_row(ref, k)
                        )
                    )
                )
        if self._eq_term_rows:
            parts.append(
                np.array(
                    self._g_term.call_positional(
                        *xs_l[self.N], *self._ref_row(ref, self.N)
                    )
                )
            )
        return np.concatenate(parts)

    def equality_jacobian(
        self, z: np.ndarray, ref: Optional[np.ndarray] = None
    ) -> np.ndarray:
        fused = self._fused_linearizer()
        if fused is not None:
            try:
                return fused.equality_jacobian(z, ref)
            except TranscriptionError:
                raise
            except Exception as exc:
                self._codegen_disable(f"runtime failure: {exc}")
        xs, us = self.split(z)
        xs_l, us_l = xs.tolist(), us.tolist()
        G = np.zeros((self.n_eq, self.nz))
        G[: self.nx, : self.nx] = np.eye(self.nx)
        row = self.nx
        for k in range(self.N):
            A = np.array(self._A.call_positional(*xs_l[k], *us_l[k])).reshape(
                self.nx, self.nx
            )
            B = np.array(self._B.call_positional(*xs_l[k], *us_l[k])).reshape(
                self.nx, self.nu
            )
            rows = slice(row, row + self.nx)
            G[rows, self.state_slice(k + 1)] = np.eye(self.nx)
            G[rows, self.state_slice(k)] = -A
            G[rows, self.input_slice(k)] = -B
            row += self.nx
        nxu = self.nx + self.nu
        if self._eq_state_rows:
            for k in range(1, self.N):
                J = np.array(
                    self._g_state_jac.call_positional(
                        *xs_l[k], *us_l[k], *self._ref_row(ref, k)
                    )
                ).reshape(self._eq_state_rows, nxu)
                rows = slice(row, row + self._eq_state_rows)
                G[rows, self.state_slice(k)] = J[:, : self.nx]
                G[rows, self.input_slice(k)] = J[:, self.nx :]
                row += self._eq_state_rows
        if self._eq_input_rows:
            for k in range(self.N):
                J = np.array(
                    self._g_input_jac.call_positional(
                        *xs_l[k], *us_l[k], *self._ref_row(ref, k)
                    )
                ).reshape(self._eq_input_rows, nxu)
                rows = slice(row, row + self._eq_input_rows)
                G[rows, self.state_slice(k)] = J[:, : self.nx]
                G[rows, self.input_slice(k)] = J[:, self.nx :]
                row += self._eq_input_rows
        if self._eq_term_rows:
            J = np.array(
                self._g_term_jac.call_positional(
                    *xs_l[self.N], *self._ref_row(ref, self.N)
                )
            ).reshape(self._eq_term_rows, self.nx)
            G[row : row + self._eq_term_rows, self.state_slice(self.N)] = J
            row += self._eq_term_rows
        return G

    def inequality_constraints(
        self, z: np.ndarray, ref: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Stacked ``h(z) <= 0`` (bounds + task inequality constraints)."""
        if self.n_ineq == 0:
            return np.zeros(0)
        fused = self._fused_linearizer()
        if fused is not None:
            try:
                return fused.inequality_constraints(z, ref)
            except TranscriptionError:
                raise
            except Exception as exc:
                self._codegen_disable(f"runtime failure: {exc}")
        xs, us = self.split(z)
        xs_l, us_l = xs.tolist(), us.tolist()
        parts = []
        if self._h_state_rows:
            for k in range(1, self.N):
                parts.append(
                    self._h_state.call_positional(
                        *xs_l[k], *us_l[k], *self._ref_row(ref, k)
                    )
                )
        if self._h_input_rows:
            for k in range(self.N):
                parts.append(
                    self._h_input.call_positional(
                        *xs_l[k], *us_l[k], *self._ref_row(ref, k)
                    )
                )
        if self._h_term_rows:
            parts.append(
                self._h_term.call_positional(
                    *xs_l[self.N], *self._ref_row(ref, self.N)
                )
            )
        return (
            np.array([v for part in parts for v in part])
            if parts
            else np.zeros(0)
        )

    def inequality_jacobian(
        self, z: np.ndarray, ref: Optional[np.ndarray] = None
    ) -> np.ndarray:
        J = np.zeros((self.n_ineq, self.nz))
        if self.n_ineq == 0:
            return J
        fused = self._fused_linearizer()
        if fused is not None:
            try:
                return fused.inequality_jacobian(z, ref)
            except TranscriptionError:
                raise
            except Exception as exc:
                self._codegen_disable(f"runtime failure: {exc}")
        xs, us = self.split(z)
        xs_l, us_l = xs.tolist(), us.tolist()
        nxu = self.nx + self.nu
        row = 0
        if self._h_state_rows:
            for k in range(1, self.N):
                blk = np.array(
                    self._h_state_jac.call_positional(
                        *xs_l[k], *us_l[k], *self._ref_row(ref, k)
                    )
                ).reshape(self._h_state_rows, nxu)
                rows = slice(row, row + self._h_state_rows)
                J[rows, self.state_slice(k)] = blk[:, : self.nx]
                J[rows, self.input_slice(k)] = blk[:, self.nx :]
                row += self._h_state_rows
        if self._h_input_rows:
            for k in range(self.N):
                blk = np.array(
                    self._h_input_jac.call_positional(
                        *xs_l[k], *us_l[k], *self._ref_row(ref, k)
                    )
                ).reshape(self._h_input_rows, nxu)
                rows = slice(row, row + self._h_input_rows)
                J[rows, self.state_slice(k)] = blk[:, : self.nx]
                J[rows, self.input_slice(k)] = blk[:, self.nx :]
                row += self._h_input_rows
        if self._h_term_rows:
            blk = np.array(
                self._h_term_jac.call_positional(
                    *xs_l[self.N], *self._ref_row(ref, self.N)
                )
            ).reshape(self._h_term_rows, self.nx)
            J[row : row + self._h_term_rows, self.state_slice(self.N)] = blk
        return J

    def _dynamics_contraction_fn(self):
        """Compiled Hessian of ``sigma^T F(x, u)`` over the stage variables.

        Built lazily (symbolic second derivatives of the integrator are
        expensive) and cached.  Used by the exact-Hessian SQP mode: the
        dynamics equality rows ``x_{k+1} - F(x_k, u_k)`` contribute
        ``-sum_i nu_i grad^2 F_i`` to the Lagrangian Hessian.
        """
        if getattr(self, "_contraction", None) is not None:
            return self._contraction
        sigma = [Var(f"_sigma[{i}]") for i in range(self.nx)]
        stage = self._state_vars + self._input_vars
        weighted: Expr = Const(0.0)
        for s_var, f_expr in zip(sigma, self._discrete_step_exprs()):
            weighted = weighted + s_var * f_expr
        weighted = simplify(weighted)
        grads = [diff(weighted, v) for v in stage]
        hess = [diff(g, v) for g in grads for v in stage]
        self._contraction = compile_function(
            hess, stage + sigma, "dyn_contraction"
        )
        return self._contraction

    def lagrangian_hessian(
        self,
        z: np.ndarray,
        nu: np.ndarray,
        ref: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Exact Hessian of the Lagrangian w.r.t. ``z`` (objective curvature
        plus the dynamics-multiplier contraction).

        Task-constraint curvature is omitted — the dominant neglected-by-GN
        term for these benchmarks is the integrator curvature, and leaving
        the inequality rows out keeps the matrix assembly cheap.  The result
        is in general indefinite; the QP layer's regularization escalation
        (inertia correction) convexifies it.
        """
        H = self.objective_hessian(z, ref)
        xs, us = self.split(z)
        xs_l, us_l = xs.tolist(), us.tolist()
        fn = self._dynamics_contraction_fn()
        nxu = self.nx + self.nu
        for k in range(self.N):
            # Multipliers of the defect rows x_{k+1} - F(x_k, u_k) = 0 sit
            # after the nx initial-condition rows.
            sigma = (-nu[self.nx * (k + 1) : self.nx * (k + 2)]).tolist()
            blk = np.array(
                fn.call_positional(*xs_l[k], *us_l[k], *sigma)
            ).reshape(nxu, nxu)
            sx, su = self.state_slice(k), self.input_slice(k)
            H[sx, sx] += blk[: self.nx, : self.nx]
            H[sx, su] += blk[: self.nx, self.nx :]
            H[su, sx] += blk[self.nx :, : self.nx]
            H[su, su] += blk[self.nx :, self.nx :]
        return H

    def variable_scales(self) -> np.ndarray:
        """Characteristic magnitude of every entry of ``z`` (for solver
        preconditioning).

        Bounded variables use ``max(|lower|, |upper|)``; unbounded ones
        default to 1.  The SQP driver solves its subproblems in the scaled
        variables ``z / scale`` so that regularization and damping act
        uniformly across states and inputs of very different units (e.g.
        satellite torques of O(1e-2) next to quaternions of O(1)).
        """

        def scale_of(spec) -> float:
            hi = max(abs(spec.lower), abs(spec.upper))
            if not np.isfinite(hi) or hi == 0.0:
                return 1.0
            return hi

        sx = np.array([scale_of(s) for s in self.model.states])
        su = np.array([scale_of(u) for u in self.model.inputs])
        return np.concatenate(
            [np.tile(sx, self.N + 1), np.tile(su, self.n_input_knots)]
        )

    def soft_inequality_mask(self) -> np.ndarray:
        """Boolean mask over the stacked inequality rows: True = softenable.

        State-involving rows (future-state constraints) are soft: the SQP
        driver gives them L1 slacks in each QP subproblem so linearization
        infeasibility cannot occur.  Input-only rows (actuator boxes) are
        hard — they are always feasible and must never be violated.
        """
        mask = np.concatenate(
            [
                np.ones(max(self.N - 1, 0) * self._h_state_rows, dtype=bool),
                np.zeros(self.N * self._h_input_rows, dtype=bool),
                np.ones(self._h_term_rows, dtype=bool),
            ]
        )
        assert mask.shape == (self.n_ineq,)
        return mask

    # -- initialization helpers -------------------------------------------------------
    def initial_guess(self, x_init: np.ndarray) -> np.ndarray:
        """Cold-start trajectory guess.

        For open-loop stable (or trim-balanced) plants the guess rolls the
        dynamics out under the trim input — dynamically feasible, so the
        first SQP linearization sees zero defect residuals.  For plants the
        model declares open-loop unstable (``rollout_guess=False``, e.g. the
        gravity-loaded Manipulator whose free rollout slams into the state
        box), every knot holds the measured state instead.
        """
        x_init = np.asarray(x_init, dtype=float)
        u0 = np.array(self.model.trim_inputs(), dtype=float)
        us = np.tile(u0, (self.N, 1))
        if not self.model.rollout_guess:
            xs = np.tile(x_init, (self.N + 1, 1))
            return self.join(xs, us)
        lo, hi = self.model.state_bounds()
        lo = np.maximum(np.asarray(lo), -1e6)
        hi = np.minimum(np.asarray(hi), 1e6)
        xs = np.empty((self.N + 1, self.nx))
        xs[0] = x_init
        u0_l = u0.tolist()
        for k in range(self.N):
            xs[k + 1] = np.clip(
                self._F.call_positional(*xs[k].tolist(), *u0_l), lo, hi
            )
        return self.join(xs, us)

    # -- metadata for compiler / cost models --------------------------------------------
    def stage_op_counts(self) -> Dict[str, Dict[str, int]]:
        """Primitive-op histograms per compiled stage function."""
        return {
            "dynamics": dict(self._F.op_counts),
            "dynamics_jac_x": dict(self._A.op_counts),
            "dynamics_jac_u": dict(self._B.op_counts),
            "cost_run": dict(self._L.op_counts),
            "cost_run_grad": dict(self._L_grad.op_counts),
            "cost_run_hess": dict(self._L_hess.op_counts),
            "cost_term": dict(self._Phi.op_counts),
            "cost_term_grad": dict(self._Phi_grad.op_counts),
            "cost_term_hess": dict(self._Phi_hess.op_counts),
            "penalty_run_jac": dict(self._P_run_jac.op_counts),
            "penalty_term_jac": dict(self._P_term_jac.op_counts),
            "ineq_state": dict(self._h_state.op_counts),
            "ineq_state_jac": dict(self._h_state_jac.op_counts),
            "ineq_input": dict(self._h_input.op_counts),
            "ineq_input_jac": dict(self._h_input_jac.op_counts),
            "ineq_term": dict(self._h_term.op_counts),
            "ineq_term_jac": dict(self._h_term_jac.op_counts),
        }

    def __repr__(self) -> str:
        return (
            f"TranscribedProblem({self.model.name}/{self.task.name}, N={self.N}, "
            f"nz={self.nz}, n_eq={self.n_eq}, n_ineq={self.n_ineq})"
        )
