"""repro.serve2: async continuous-batching serve engine.

The v1 engine (:mod:`repro.serve.engine`) polls sessions in round-robin
tick order and only co-batches sessions whose ``(robot, horizon)`` keys
match exactly, so a mixed fleet fragments into tiny batches.  ``serve2``
borrows the structure of modern LLM serving stacks instead:

* sessions submit :class:`~repro.serve2.scheduler.SolveRequest`\\ s to a
  central queue on an asyncio event loop (:mod:`repro.serve2.engine`);
* a batch former buckets compatible sessions per robot and *pads*
  shorter horizons up to configured rungs so near-miss horizons co-batch
  (:mod:`repro.serve2.bucketing`, :mod:`repro.serve2.padding`) — padded
  lanes are cropped back and proven equivalent to the unpadded scalar
  solve by the ``padded`` conformance family;
* dispatch is earliest-deadline-first within the slack implied by each
  session's ``SolveBudget``, with admission control and load shedding
  driven by live deadline-headroom telemetry
  (:mod:`repro.serve2.scheduler`);
* solves run on sharded arenas with session→shard affinity and shard
  handoff on worker death (:mod:`repro.serve2.shard`).
"""

from repro.serve2.bucketing import DEFAULT_RUNGS, HorizonBuckets
from repro.serve2.engine import AsyncServeEngine, Serve2Config
from repro.serve2.padding import (
    PAD_RUN,
    PAD_TERM,
    PaddedBinding,
    crop_result,
    gate_columns,
    pad_reference,
    pad_warm_start,
    padded_task,
)
from repro.serve2.scheduler import EDFScheduler, SolveRequest
from repro.serve2.shard import Shard

__all__ = [
    "DEFAULT_RUNGS",
    "HorizonBuckets",
    "AsyncServeEngine",
    "Serve2Config",
    "PAD_RUN",
    "PAD_TERM",
    "PaddedBinding",
    "padded_task",
    "gate_columns",
    "pad_reference",
    "pad_warm_start",
    "crop_result",
    "EDFScheduler",
    "SolveRequest",
    "Shard",
]
