"""Sharded solver arenas for the serve2 engine.

A shard owns the padded :class:`~repro.serve2.padding.PaddedBinding`\\ s
for the ``(robot, bucket)`` keys routed to it and — in ``process`` mode —
a single-worker process pool whose death is a real OS process death.
Sessions (and their warm-start state) live in the *parent* engine; a
shard is pure solver capacity, which is what makes handoff cheap: when a
shard dies mid-tick, its in-flight lanes pay one degradation-ladder step
(``worker_died``, the same contract as a v1 pool death), its sessions are
re-pinned to surviving shards, and the dead shard respawns lazily.

``inline`` mode solves in-process (deterministic, what the chaos
campaign drives); ``process`` mode overlaps shard solves across real
worker processes, with the parent's compiled bindings inherited through
the fork start method via a prime-before-fork cache, exactly like the v1
engine's worker pool.
"""

from __future__ import annotations

import os
from time import sleep
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError, StateValidationError
from repro.mpc.budget import SolveBudget
from repro.mpc.health import SolverHealth
from repro.mpc.ipm import IPMResult
from repro.serve2.padding import PaddedBinding

__all__ = ["Shard", "prime_shard_cache", "shard_solve_group"]


class Shard:
    """One solving arena: padded bindings plus an optional worker pool."""

    def __init__(
        self,
        index: int,
        backend: str = "inline",
        qp_method: str = "ipm",
        codegen: str = "auto",
        array_backend: Optional[str] = None,
    ):
        self.index = index
        self.backend = backend
        self.qp_method = qp_method
        self.codegen = codegen
        self.array_backend = array_backend
        #: (robot, bucket) -> PaddedBinding (built on first use)
        self.bindings: Dict[Tuple[str, int], PaddedBinding] = {}
        self.dead = False
        self.groups_solved = 0
        self._pool = None

    def binding(self, robot: str, bucket: int, bench) -> PaddedBinding:
        key = (robot, bucket)
        if key not in self.bindings:
            self.bindings[key] = PaddedBinding(
                bench,
                bucket,
                qp_method=self.qp_method,
                codegen=self.codegen,
                array_backend=self.array_backend,
            )
        return self.bindings[key]

    def pool(self):
        """The shard's single-worker process pool (process mode only)."""
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            # Prime this process's cache first: with the fork start method
            # the worker inherits the compiled padded problems for free.
            for (robot, bucket), binding in self.bindings.items():
                prime_shard_cache(
                    robot,
                    bucket,
                    qp_method=self.qp_method,
                    codegen=self.codegen,
                    binding=binding,
                )
            self._pool = ProcessPoolExecutor(max_workers=1)
        return self._pool

    def kill(self) -> None:
        """Mark the shard dead (inline-mode chaos; process mode dies for
        real inside the worker) and discard any pool."""
        self.dead = True
        self.discard_pool()

    def revive(self) -> None:
        """Bring a dead shard back as fresh capacity (bindings survive —
        they are pure solver state; the pool rebuilds lazily)."""
        self.dead = False

    def discard_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=False)
            except Exception:
                pass

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# -- worker-side group solve (process shards) -----------------------------------

#: per-process cache: (robot, bucket, qp_method, codegen) -> PaddedBinding
_SHARD_CACHE: Dict[Tuple[str, int, str, str], PaddedBinding] = {}


def prime_shard_cache(
    robot: str,
    bucket: int,
    qp_method: str = "ipm",
    codegen: str = "auto",
    binding: Optional[PaddedBinding] = None,
) -> None:
    """Populate this process's padded-binding cache (parent-side, pre-fork)."""
    key = (robot, bucket, qp_method, codegen)
    if key in _SHARD_CACHE:
        return
    if binding is None:
        from repro.robots import build_benchmark

        binding = PaddedBinding(
            build_benchmark(robot), bucket, qp_method=qp_method, codegen=codegen
        )
    # a cold kernel compile belongs in the prime, not a budgeted solve
    binding.problem.codegen_kernels()
    _SHARD_CACHE[key] = binding


def _result_to_dict(result: IPMResult) -> Dict[str, object]:
    return {
        "z": result.z,
        "nu": result.nu,
        "lam": result.lam,
        "converged": result.converged,
        "iterations": result.iterations,
        "qp_iterations": result.qp_iterations,
        "objective": result.objective,
        "kkt_residual": result.kkt_residual,
        "status": result.status,
        "solve_time": result.solve_time,
        "health": result.health.to_dict() if result.health is not None else None,
    }


def result_from_dict(data: Dict[str, object]) -> IPMResult:
    """Rebuild a (padded) :class:`IPMResult` from a worker reply lane."""
    return IPMResult(
        z=np.asarray(data["z"], dtype=float),
        converged=bool(data["converged"]),
        iterations=int(data["iterations"]),
        qp_iterations=int(data["qp_iterations"]),
        objective=float(data["objective"]),
        kkt_residual=float(data["kkt_residual"]),
        nu=None if data["nu"] is None else np.asarray(data["nu"]),
        lam=None if data["lam"] is None else np.asarray(data["lam"]),
        status=str(data["status"]),
        solve_time=float(data["solve_time"] or 0.0),
        health=SolverHealth.from_dict(data.get("health")),
    )


def shard_solve_group(group: Dict[str, object]) -> Dict[str, object]:
    """Solve one padded group inside a shard worker process.

    ``group`` carries the binding identity, the already-padded payloads,
    and an optional chaos directive: ``shard_crash`` / ``worker_crash``
    hard-kill this worker (the failure mode handoff must survive),
    ``slow`` sleeps for the injected latency.  The reply is a plain dict
    of per-lane result dicts plus the batch-occupancy report.
    """
    try:
        fault = group.get("fault")
        if fault:
            kind = fault.get("kind")
            if kind in ("shard_crash", "worker_crash"):
                os._exit(3)  # no cleanup: simulate an OOM-kill / segfault
            elif kind == "slow":
                sleep(float(fault.get("delay_s", 0.0)))
        robot = str(group["robot"])
        bucket = int(group["bucket"])
        qp_method = str(group.get("qp_method") or "ipm")
        codegen = str(group.get("codegen") or "auto")
        prime_shard_cache(robot, bucket, qp_method=qp_method, codegen=codegen)
        binding = _SHARD_CACHE[(robot, bucket, qp_method, codegen)]
        payloads: List[Dict[str, object]] = group["payloads"]
        if binding.batchable:
            results, report = binding.batch_solver.solve_payloads(payloads)
            report_dict = {
                "lanes": report.lanes,
                "sqp_lane_iterations": report.sqp_lane_iterations,
                "sqp_lane_slots": report.sqp_lane_slots,
                "qp_lane_iterations": report.qp_lane_iterations,
                "qp_lane_slots": report.qp_lane_slots,
            }
        else:
            results = [
                binding.scalar_solver.solve(
                    pl["x"],
                    ref=pl.get("ref"),
                    z_warm=pl.get("z_warm"),
                    budget=SolveBudget(
                        wall_clock=pl.get("deadline_s"),
                        sqp_iterations=pl.get("max_sqp_iterations"),
                        qp_iterations=pl.get("max_qp_iterations"),
                    ),
                )
                for pl in payloads
            ]
            report_dict = None
        return {
            "ok": True,
            "lanes": [_result_to_dict(r) for r in results],
            "report": report_dict,
        }
    except StateValidationError as exc:
        return {
            "ok": False,
            "kind": "bad_state",
            "error": str(exc),
            "health": exc.health.to_dict() if exc.health is not None else None,
        }
    except ReproError as exc:
        return {"ok": False, "kind": "solver_error", "error": str(exc)}
