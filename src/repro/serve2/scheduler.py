"""Deadline-EDF scheduling and admission for the serve2 queue.

Sessions submit :class:`SolveRequest`\\ s to one central queue; the batch
former repeatedly takes the request with the earliest deadline and fills
its batch with queued requests that share the same ``(shard, robot,
bucket)`` key.  Within a key the queue is FIFO — submission order equals
deadline order when sessions share a ``SolveBudget`` — so a single heap
keyed ``(deadline, seq)`` with lazy deletion gives O(log n) pops.

Admission control is a hard cap on queue depth (``max_queue``): a
request arriving at a full queue is *shed* (the session pays one
degradation-ladder step with reason ``"shed"``) instead of growing an
unbounded backlog that would miss every deadline at once.  At dispatch
time a request whose deadline has already passed is shed too — solving
it would burn a lane on an answer the session can no longer use.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

__all__ = ["SolveRequest", "EDFScheduler"]


@dataclass
class SolveRequest:
    """One queued solve: who wants it, by when, and with what data."""

    session_id: str
    robot: str
    horizon: int
    bucket: int
    shard: int
    x: np.ndarray
    ref: Optional[np.ndarray]
    #: absolute event-loop deadline (``loop.time() + deadline_s``);
    #: ``inf`` when the session runs without a wall-clock budget
    deadline: float = math.inf
    #: submission tiebreaker (FIFO among equal deadlines)
    seq: int = 0
    #: chaos directive drawn at submit time (``slow`` delays the group)
    directive: Optional[Dict[str, object]] = None
    #: resolved by the engine once the group solve lands
    future: object = None
    #: lazy-deletion flag (set when the batch former takes the request)
    taken: bool = field(default=False, compare=False)

    @property
    def group_key(self) -> Tuple[int, str, int]:
        return (self.shard, self.robot, self.bucket)


class EDFScheduler:
    """Earliest-deadline-first queue with same-key batch extraction."""

    def __init__(self):
        self._heap: List[Tuple[float, int, SolveRequest]] = []
        self._by_key: Dict[Hashable, List[SolveRequest]] = {}
        self._depth = 0

    def __len__(self) -> int:
        return self._depth

    @property
    def depth(self) -> int:
        return self._depth

    def push(self, request: SolveRequest) -> None:
        heapq.heappush(self._heap, (request.deadline, request.seq, request))
        self._by_key.setdefault(request.group_key, []).append(request)
        self._depth += 1

    def pop_group(self, max_batch: int) -> List[SolveRequest]:
        """Take the earliest-deadline request plus up to ``max_batch - 1``
        queued requests sharing its ``(shard, robot, bucket)`` key, in
        their own EDF order.  Returns ``[]`` when the queue is empty."""
        head = self._pop_head()
        if head is None:
            return []
        group = [head]
        peers = self._by_key.get(head.group_key, [])
        for req in peers:
            if len(group) >= max_batch:
                break
            if req.taken:
                continue
            req.taken = True
            self._depth -= 1
            group.append(req)
        self._by_key[head.group_key] = [r for r in peers if not r.taken]
        if not self._by_key[head.group_key]:
            del self._by_key[head.group_key]
        return group

    def _pop_head(self) -> Optional[SolveRequest]:
        while self._heap:
            _, _, req = heapq.heappop(self._heap)
            if req.taken:
                continue  # already batched behind an earlier head
            req.taken = True
            self._depth -= 1
            return req
        return None

    def drain(self) -> List[SolveRequest]:
        """Remove and return every queued request in EDF order."""
        out = []
        while True:
            head = self._pop_head()
            if head is None:
                break
            out.append(head)
        self._by_key.clear()
        return out
