"""Async continuous-batching serve engine (the serve2 core).

Dispatch is inverted relative to v1: instead of the engine polling
sessions in round-robin tick order, sessions *submit*
:class:`~repro.serve2.scheduler.SolveRequest`\\ s to a central queue on an
asyncio event loop.  A drain task then repeatedly takes the
earliest-deadline request, fills a batch with queued requests sharing its
``(shard, robot, bucket)`` key — horizons padded up to the bucket rung so
near-miss horizons co-batch — and launches the group solve as its own
task, so groups overlap on process shards and interleave with fresh
submissions: continuous batching, not barrier ticks.

The synchronous :meth:`AsyncServeEngine.tick` facade keeps the v1
engine surface (``tick(inputs) -> TickReport``) so the load generator,
chaos campaign, and CLI drive either engine interchangeably; the async
:meth:`AsyncServeEngine.submit` is the native API.

Failure semantics mirror v1 exactly — one lost solve is one
degradation-ladder step — with one addition: when a shard dies (a real
worker-process death in ``process`` mode, a chaos mark in ``inline``
mode), its in-flight lanes pay a ``worker_died`` step, its sessions are
handed off to surviving shards, and the shard respawns as fresh
capacity.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass
from time import perf_counter, sleep
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import AdmissionError, ReproError, ServeError
from repro.batch.ipm import BatchSolveReport
from repro.serve.engine import TickReport
from repro.serve.session import CLOSED, ControlSession, SessionConfig, StepOutcome
from repro.serve.telemetry import FleetMetrics, TraceWriter
from repro.serve2.bucketing import DEFAULT_RUNGS, HorizonBuckets
from repro.serve2.scheduler import EDFScheduler, SolveRequest
from repro.serve2.shard import Shard, result_from_dict, shard_solve_group

__all__ = ["Serve2Config", "AsyncServeEngine"]


@dataclass(frozen=True)
class Serve2Config:
    """Policy knobs for the v2 engine."""

    #: admission-control cap on concurrently open sessions
    max_sessions: int = 1024
    #: horizon-bucket rungs (each session horizon rounds up to a rung)
    rungs: Tuple[int, ...] = DEFAULT_RUNGS
    #: max lanes per group solve
    max_batch: int = 64
    #: queue-depth admission cap; a request arriving at a full queue is
    #: shed (None = unbounded)
    max_queue: Optional[int] = None
    #: number of solver shards
    shards: int = 1
    #: "inline" (in-process, deterministic) or "process" (one worker
    #: process per shard; shard death is a real OS process death)
    shard_backend: str = "inline"
    #: drop a queued request at dispatch once its deadline has passed
    #: (solving it would burn a lane on an unusable answer)
    shed_late: bool = True
    #: inner QP solver for the batched lanes: "ipm" or "admm"
    qp_method: str = "ipm"
    #: fused-kernel codegen mode, engine-wide default
    codegen: str = "auto"
    #: array backend for the batched lanes, e.g. "torch" (None = numpy)
    array_backend: Optional[str] = None

    def __post_init__(self):
        if self.qp_method not in ("ipm", "admm"):
            raise ServeError(
                f"qp_method must be 'ipm' or 'admm', got {self.qp_method!r}"
            )
        if self.codegen not in ("auto", "on", "off", "numpy", "c"):
            raise ServeError(
                f"codegen must be one of auto/on/off/numpy/c, got {self.codegen!r}"
            )
        if self.max_sessions < 1:
            raise ServeError("max_sessions must be >= 1")
        if self.max_batch < 1:
            raise ServeError("max_batch must be >= 1")
        if self.max_queue is not None and self.max_queue < 1:
            raise ServeError("max_queue must be >= 1 (or None)")
        if self.shards < 1:
            raise ServeError("shards must be >= 1")
        if self.shard_backend not in ("inline", "process"):
            raise ServeError(f"unknown shard_backend {self.shard_backend!r}")
        HorizonBuckets(self.rungs)  # validates the ladder


class AsyncServeEngine:
    """Queue-submit / batch-form / EDF-dispatch engine over sharded arenas."""

    def __init__(
        self,
        config: Optional[Serve2Config] = None,
        trace: Optional[TraceWriter] = None,
    ):
        self.config = config or Serve2Config()
        self.sessions: Dict[str, ControlSession] = {}
        self.metrics = FleetMetrics()
        self.trace = trace
        self.buckets = HorizonBuckets(self.config.rungs)
        #: optional chaos hook: ``on_dispatch(tick, session_id)`` -> None
        #: or a directive dict (worker_crash / slow / shard_crash)
        self.fault_hook = None
        self._tick_index = 0
        self._next_id = 0
        self._seq = 0
        self._assigned = 0
        self._scheduler = EDFScheduler()
        self._shards = [
            Shard(
                i,
                backend=self.config.shard_backend,
                qp_method=self.config.qp_method,
                codegen=self.config.codegen,
                array_backend=self.config.array_backend,
            )
            for i in range(self.config.shards)
        ]
        #: session -> shard affinity (re-pinned on shard death)
        self._affinity: Dict[str, int] = {}
        #: armed chaos faults per shard (process mode: shipped with the
        #: shard's next group so the worker death is real)
        self._shard_faults: Dict[int, Dict[str, object]] = {}
        #: shared native transcriptions: (robot, horizon) -> (bench, problem)
        self._problem_cache: Dict[Tuple[str, int], Tuple[object, object]] = {}
        #: robot -> benchmark, or None when the robot has no registry
        #: entry (externally-built stub sessions)
        self._bench_cache: Dict[str, object] = {}
        self._loop = asyncio.new_event_loop()
        self._drain_task: Optional[asyncio.Task] = None
        #: kept name-compatible with v1 for the chaos campaign report
        self.worker_respawns = 0

    # -- session lifecycle ------------------------------------------------------
    def create_session(
        self, config: SessionConfig, session_id: Optional[str] = None
    ) -> str:
        """Admit and build a new session (raises :class:`AdmissionError`
        at ``max_sessions``) and pin it to a shard."""
        self._admit()
        if session_id is None:
            session_id = f"s{self._next_id:04d}"
            self._next_id += 1
        if session_id in self.sessions:
            raise ServeError(f"session id {session_id!r} already exists")
        key = (config.robot, config.horizon)
        if key not in self._problem_cache:
            from repro.robots import build_benchmark

            bench = build_benchmark(config.robot)
            problem = bench.transcribe(horizon=config.horizon)
            if self.config.codegen != "auto":
                problem.set_codegen(self.config.codegen)
            self._problem_cache[key] = (bench, problem)
            self._bench_cache[config.robot] = bench
        bench, problem = self._problem_cache[key]
        session = ControlSession.from_benchmark(
            session_id, config, bench=bench, problem=problem
        )
        self._register(session)
        return session_id

    def add_session(self, session: ControlSession) -> str:
        """Admit a pre-built session (tests inject stub-solver sessions)."""
        self._admit()
        if session.session_id in self.sessions:
            raise ServeError(f"session id {session.session_id!r} already exists")
        self._register(session)
        return session.session_id

    def _admit(self) -> None:
        # Fast path for large fleets: open sessions can never outnumber
        # the table, so a table under the cap needs no O(n) scan.
        if len(self.sessions) < self.config.max_sessions:
            return
        # At cap, lazily evict closed sessions (and their shard affinity):
        # a churned fleet must not grow the table without bound — that is a
        # leak at soak scale, not bookkeeping.  Crashed sessions stay: they
        # are restartable.
        for sid in [s for s, ses in self.sessions.items() if ses.state == CLOSED]:
            del self.sessions[sid]
            self._affinity.pop(sid, None)
        if len(self.sessions) < self.config.max_sessions:
            return
        open_count = sum(1 for s in self.sessions.values() if s.serving)
        if open_count >= self.config.max_sessions:
            raise AdmissionError(
                f"engine at capacity ({self.config.max_sessions} sessions)"
            )

    def _register(self, session: ControlSession) -> None:
        self.sessions[session.session_id] = session
        self._affinity[session.session_id] = self._next_shard()
        if self.trace is not None:
            self.trace.emit(
                "session",
                session=session.session_id,
                robot=session.config.robot,
                horizon=session.config.horizon,
                deadline_s=session.config.deadline_s,
                shard=self._affinity[session.session_id],
            )

    def _next_shard(self) -> int:
        """Round-robin assignment over live shards."""
        n = len(self._shards)
        for _ in range(n):
            idx = self._assigned % n
            self._assigned += 1
            if not self._shards[idx].dead:
                return idx
        return self._assigned % n  # all dead: pin anywhere, revive later

    def binding(self, robot: str, horizon: int) -> Tuple[object, object]:
        """The shared native ``(benchmark, problem)`` pair (v1-compatible)."""
        try:
            return self._problem_cache[(robot, horizon)]
        except KeyError:
            raise ServeError(
                f"no sessions bound to ({robot!r}, horizon={horizon})"
            ) from None

    def get_session(self, session_id: str) -> ControlSession:
        try:
            return self.sessions[session_id]
        except KeyError:
            raise ServeError(f"unknown session {session_id!r}") from None

    def reset_session(self, session_id: str) -> None:
        self.get_session(session_id).reset()

    def restart_session(self, session_id: str) -> None:
        self.get_session(session_id).restart()

    def close_session(self, session_id: str) -> None:
        self.get_session(session_id).close()

    def session_states(self) -> Dict[str, str]:
        return {sid: s.state for sid, s in self.sessions.items()}

    def crashed_sessions(self) -> List[str]:
        return [sid for sid, s in self.sessions.items() if s.state == "crashed"]

    def shard_of(self, session_id: str) -> int:
        return self._affinity[session_id]

    # -- sync tick facade (v1-compatible surface) -------------------------------
    def tick(
        self,
        inputs: Dict[str, Tuple[np.ndarray, Optional[np.ndarray]]],
    ) -> TickReport:
        """Submit every ready session's input and run the loop until all
        of this tick's requests resolve."""
        t0 = perf_counter()
        self._tick_index += 1
        report = TickReport(index=self._tick_index)
        self._loop.run_until_complete(self._tick_async(inputs, report))
        report.duration_s = perf_counter() - t0
        report.batch_limit = self.config.max_batch
        self.metrics.observe_tick(0)
        if self.trace is not None:
            self.trace.emit(
                "tick",
                tick=report.index,
                duration_s=report.duration_s,
                stepped=report.stepped,
                deferred=0,
                batch_limit=report.batch_limit,
            )
        return report

    async def _tick_async(self, inputs, report: TickReport) -> None:
        futures: Dict[str, asyncio.Future] = {}
        for sid, (x, ref) in inputs.items():
            session = self.sessions.get(sid)
            if session is None or not session.serving:
                continue
            futures[sid] = self._submit_request(sid, x, ref)
        self._ensure_drain()
        for sid, fut in futures.items():
            outcome = await fut
            if outcome is not None:
                self._record(sid, outcome, report)

    # -- async submission API ---------------------------------------------------
    async def submit(
        self,
        session_id: str,
        x: np.ndarray,
        ref: Optional[np.ndarray] = None,
    ) -> StepOutcome:
        """Native API: enqueue one solve and await its outcome.  Requests
        submitted before the event loop yields co-batch into one group."""
        fut = self._submit_request(session_id, x, ref)
        self._ensure_drain()
        outcome = await fut
        if outcome is not None:
            self.metrics.observe_step(session_id, outcome)
            if self.trace is not None:
                self.trace.emit(
                    "step", tick=self._tick_index, **outcome.to_record()
                )
        return outcome

    def _submit_request(self, sid: str, x, ref) -> asyncio.Future:
        session = self.get_session(sid)
        fut = self._loop.create_future()
        directive = None
        if self.fault_hook is not None:
            directive = self.fault_hook.on_dispatch(self._tick_index, sid)
        if directive is not None:
            kind = directive.get("kind")
            if kind == "shard_crash":
                self._arm_shard_crash(self._affinity.get(sid, 0))
                directive = None
            elif kind == "worker_crash":
                # one lost solve, same contract as a dead pool worker
                fut.set_result(session.fail_step("worker_died"))
                return fut
        cfg = self.config
        if cfg.max_queue is not None and self._scheduler.depth >= cfg.max_queue:
            fut.set_result(session.fail_step("shed"))
            return fut
        deadline = math.inf
        if session.config.deadline_s is not None:
            deadline = self._loop.time() + float(session.config.deadline_s)
        request = SolveRequest(
            session_id=sid,
            robot=session.config.robot,
            horizon=session.config.horizon,
            bucket=self.buckets.bucket_for(session.config.horizon),
            shard=self._affinity.get(sid, 0),
            x=np.asarray(x, dtype=float),
            ref=None if ref is None else np.asarray(ref, dtype=float),
            deadline=deadline,
            seq=self._seq,
            directive=directive,
            future=fut,
        )
        self._seq += 1
        self._scheduler.push(request)
        return fut

    def _ensure_drain(self) -> None:
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        """Batch former: peel EDF-ordered groups off the queue, launching
        each as its own task so group solves overlap (process shards) and
        interleave with fresh submissions."""
        while self._scheduler.depth:
            group = self._scheduler.pop_group(self.config.max_batch)
            if not group:
                break
            self._loop.create_task(self._solve_group(group))
            await asyncio.sleep(0)

    # -- group solving ----------------------------------------------------------
    async def _solve_group(self, group: List[SolveRequest]) -> None:
        try:
            await self._solve_group_inner(group)
        except Exception:
            # A bug in the group path must not hang the tick: resolve
            # every outstanding lane through the crash contract.
            for req in group:
                if not req.future.done():
                    session = self.sessions.get(req.session_id)
                    try:
                        outcome = (
                            session.mark_crashed()
                            if session is not None and session.serving
                            else None
                        )
                    except Exception:
                        outcome = None
                    req.future.set_result(outcome)

    async def _solve_group_inner(self, group: List[SolveRequest]) -> None:
        shard_idx, robot, bucket = group[0].group_key
        shard = self._shards[shard_idx]
        now = self._loop.time()
        lanes: List[SolveRequest] = []
        for req in group:
            session = self.sessions.get(req.session_id)
            if session is None or not session.serving:
                req.future.set_result(None)
                continue
            headroom = req.deadline - now
            waste = self.buckets.padding_waste(req.horizon)
            self.metrics.observe_dispatch(headroom, waste)
            if self.config.shed_late and headroom < 0:
                req.future.set_result(session.fail_step("shed"))
                continue
            lanes.append(req)
        if not lanes:
            return
        if shard.dead:
            self._shard_death(shard, lanes)
            return
        delay = max(
            (
                float(r.directive.get("delay_s", 0.0))
                for r in lanes
                if r.directive is not None and r.directive.get("kind") == "slow"
            ),
            default=0.0,
        )
        binding = self._group_binding(shard, robot, bucket)
        if binding is None or not binding.batchable:
            self.metrics.observe_group_fallback("unbatchable_binding", len(lanes))
            for req in lanes:
                req.future.set_result(self._step_scalar(req))
            return
        payloads = []
        solve_lanes: List[SolveRequest] = []
        for req in lanes:
            session = self.sessions[req.session_id]
            if session.qp_method != session.config.qp_method:
                # demoted session: its solves must not re-enter the shared
                # batch (whose solver still runs the configured method)
                self.metrics.observe_group_fallback("method_demoted", 1)
                req.future.set_result(self._step_scalar(req))
                continue
            payload = session.solve_payload(req.x, ref=req.ref)
            bad = not np.all(np.isfinite(payload["x"])) or (
                payload["ref"] is not None
                and not np.all(np.isfinite(payload["ref"]))
            )
            if bad:
                req.future.set_result(session.fail_step("bad_state"))
                continue
            payloads.append(binding.pad_payload(payload, session.problem))
            solve_lanes.append(req)
        if not solve_lanes:
            return
        if delay:
            await asyncio.sleep(delay)
        if shard.backend == "process":
            results, batch_report = await self._solve_on_worker(
                shard, robot, bucket, payloads, solve_lanes
            )
        else:
            results, batch_report = self._solve_inline(
                binding, payloads, solve_lanes
            )
        if results is None:
            return  # lanes already resolved through a failure path
        self.metrics.observe_batch(len(solve_lanes), batch_report)
        self.metrics.bucket_occupancy.record(
            len(solve_lanes) / self.config.max_batch
        )
        shard.groups_solved += 1
        for req, result in zip(solve_lanes, results):
            session = self.sessions[req.session_id]
            try:
                outcome = session.absorb_result(
                    binding.crop(result, session.problem)
                )
            except Exception:
                outcome = session.mark_crashed()
            req.future.set_result(outcome)

    def _solve_inline(self, binding, payloads, solve_lanes):
        try:
            return binding.batch_solver.solve_payloads(payloads)
        except ReproError:
            # solver-level rejection of the whole group: each session pays
            # one ladder step and drops its (implicated) warm start
            self.metrics.observe_group_fallback(
                "group_solver_error", len(solve_lanes)
            )
            for req in solve_lanes:
                req.future.set_result(
                    self.sessions[req.session_id].fail_step(
                        "solver_error", reset_warm=True
                    )
                )
            return None, None
        except Exception:
            self.metrics.observe_group_fallback("group_crashed", len(solve_lanes))
            for req in solve_lanes:
                req.future.set_result(self.sessions[req.session_id].mark_crashed())
            return None, None

    async def _solve_on_worker(self, shard, robot, bucket, payloads, solve_lanes):
        from concurrent.futures.process import BrokenProcessPool

        message = {
            "robot": robot,
            "bucket": bucket,
            "qp_method": self.config.qp_method,
            "codegen": self.config.codegen,
            "payloads": payloads,
            "fault": self._shard_faults.pop(shard.index, None),
        }
        try:
            reply = await self._loop.run_in_executor(
                shard.pool(), shard_solve_group, message
            )
        except BrokenProcessPool:
            # the worker process died mid-solve: the canonical shard-death
            # event — lanes pay one ladder step, sessions hand off
            self._shard_death(shard, solve_lanes)
            return None, None
        except Exception:
            self.metrics.observe_group_fallback("group_crashed", len(solve_lanes))
            for req in solve_lanes:
                req.future.set_result(self.sessions[req.session_id].mark_crashed())
            return None, None
        if not reply.get("ok"):
            reason = str(reply.get("kind") or "solver_error")
            self.metrics.observe_group_fallback(
                "group_" + reason, len(solve_lanes)
            )
            for req in solve_lanes:
                req.future.set_result(
                    self.sessions[req.session_id].fail_step(
                        reason, reset_warm=(reason == "solver_error")
                    )
                )
            return None, None
        results = [result_from_dict(lane) for lane in reply["lanes"]]
        rep = reply.get("report")
        batch_report = BatchSolveReport(**rep) if rep else BatchSolveReport(
            lanes=len(results)
        )
        return results, batch_report

    def _step_scalar(self, req: SolveRequest) -> StepOutcome:
        """Scalar-inline fallback lane (native problem, session's own
        solver) with v1 fault semantics."""
        session = self.sessions[req.session_id]
        if req.directive is not None and req.directive.get("kind") == "slow":
            sleep(float(req.directive.get("delay_s", 0.0)))
        try:
            return session.step(req.x, ref=req.ref)
        except ReproError:
            raise  # lifecycle misuse is the caller's bug — do not mask it
        except Exception:
            return session.mark_crashed()

    def _group_binding(self, shard: Shard, robot: str, bucket: int):
        if robot not in self._bench_cache:
            try:
                from repro.robots import build_benchmark

                self._bench_cache[robot] = build_benchmark(robot)
            except Exception:
                # externally-built sessions (add_session stubs) have no
                # registry benchmark; their groups step scalar-inline
                self._bench_cache[robot] = None
        bench = self._bench_cache[robot]
        if bench is None:
            return None
        try:
            return shard.binding(robot, bucket, bench)
        except ReproError:
            return None

    # -- shard death and handoff ------------------------------------------------
    def _arm_shard_crash(self, shard_idx: int) -> None:
        if self.config.shard_backend == "process":
            # ship the fault with the shard's next group: the worker
            # process hard-exits, so the death (and the BrokenProcessPool
            # recovery) is real
            self._shard_faults[shard_idx] = {"kind": "shard_crash"}
        else:
            self._shards[shard_idx].dead = True

    def _shard_death(self, shard: Shard, lanes: List[SolveRequest]) -> None:
        """In-flight lanes pay one ladder step; sessions re-pin to
        surviving shards; the dead shard respawns as fresh capacity."""
        shard.kill()
        for req in lanes:
            session = self.sessions.get(req.session_id)
            req.future.set_result(
                session.fail_step("worker_died")
                if session is not None and session.serving
                else None
            )
        survivors = [s.index for s in self._shards if not s.dead]
        if survivors:
            moved = 0
            for sid, idx in self._affinity.items():
                if idx == shard.index:
                    self._affinity[sid] = survivors[moved % len(survivors)]
                    moved += 1
            self.metrics.shard_handoffs += moved
        shard.revive()
        self.metrics.shard_respawns += 1
        self.worker_respawns += 1
        if self.trace is not None:
            self.trace.emit(
                "shard_death",
                shard=shard.index,
                handoffs=self.metrics.shard_handoffs,
                respawns=self.metrics.shard_respawns,
            )

    def _record(self, sid: str, outcome: StepOutcome, report: TickReport) -> None:
        report.outcomes[sid] = outcome
        self.metrics.observe_step(sid, outcome)
        if self.trace is not None:
            self.trace.emit("step", tick=report.index, **outcome.to_record())

    # -- teardown ---------------------------------------------------------------
    def collect_solver_stats(self) -> None:
        """Fold every session's and shard's cumulative solver phase stats
        into the fleet metrics (call once, at end of run)."""
        for session in self.sessions.values():
            self.metrics.absorb_solver_stats(session.solver_stats())
        for shard in self._shards:
            for binding in shard.bindings.values():
                if binding.batch_solver is not None:
                    self.metrics.absorb_solver_stats(binding.batch_solver.stats)

    def shutdown(self) -> None:
        """Close all serving sessions, stop the shards, close the loop."""
        for session in self.sessions.values():
            if session.serving:
                session.close()
        for shard in self._shards:
            shard.shutdown()
        if not self._loop.is_closed():
            self._loop.close()
