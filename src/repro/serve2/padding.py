"""Horizon padding: solve a horizon-``h`` session inside a horizon-``H``
bucket and get the *same* plan back.

The trick is two extra reference channels appended to the task — per-stage
gates bound numerically at every solve:

* ``__pad_run__`` (``g_run``): 1.0 at stages ``k < h``, 0.0 after.  Every
  running penalty ``w * p**2`` becomes ``w * (g_run * p)**2`` and every
  running constraint ``lo <= c <= hi`` becomes
  ``lo <= g_run*c + (1-g_run)*fill <= hi`` with ``fill`` a strictly
  feasible constant.  At ``g_run = 1`` the gated term is bitwise the
  native one (IEEE ``1.0*x == x``, ``0.0*fill == 0``); at ``g_run = 0``
  the penalty contributes exactly zero and the constraint row is an
  always-satisfied constant with zero Jacobian.
* ``__pad_term__`` (``g_term``): 1.0 exactly at stage ``k == h``.  Every
  terminal term gets a *running* gated copy (legal because terminal terms
  reference only states) that fires precisely at the session's true final
  stage, plus a gated terminal copy that recovers the native terminal
  term when ``h == H``.

Model *state* bounds get the same treatment: the padded problem is
transcribed against an unbounded-state clone of the model, with the
native bounds re-imposed as gated task rows over exactly the knots the
native transcription bounds.  (Leaving them on the model would bound the
tail too — and from a head optimum riding a state bound with outward
velocity no bound-feasible tail exists, so the soft tail rows would pull
the head off the native optimum.)  Model input bounds stay hard: with
the tail states unconstrained, any tail input — trim, say — is feasible
without back-pressure on the head.

With the gates bound this way the padded problem's cost and active
constraint set over stages ``0..h`` are identical to the native
horizon-``h`` problem and the tail stages ``h..H`` are cost-free and
constraint-free (beyond dynamics and input bounds), so the padded
optimum restricted to the head *is* the native optimum — the ``padded``
conformance family checks this against the ledger for every robot.
Cropping maps the padded solution back onto the session's native
problem layout so ``ControlSession.absorb_result`` works unchanged.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, Optional

import numpy as np

from repro.errors import ReproError, ServeError
from repro.mpc.ipm import IPMResult
from repro.mpc.model import RobotModel
from repro.mpc.task import RUNNING, TERMINAL, Constraint, Penalty, Task
from repro.mpc.transcription import TranscribedProblem
from repro.symbolic import Var

__all__ = [
    "PAD_RUN",
    "PAD_TERM",
    "padded_task",
    "gate_columns",
    "pad_reference",
    "pad_warm_start",
    "crop_result",
    "PaddedBinding",
]

#: reference channel names for the per-stage gates
PAD_RUN = "__pad_run__"
PAD_TERM = "__pad_term__"


def _fill(lo: float, hi: float) -> float:
    """A strictly feasible constant the gated-off row collapses to."""
    if lo > -math.inf and hi < math.inf:
        return 0.5 * (lo + hi)
    if hi < math.inf:
        return hi - 1.0
    return lo + 1.0


def _fill_value(constraint: Constraint) -> float:
    return _fill(constraint.lower, constraint.upper)


def _unbounded_state_model(model: RobotModel) -> RobotModel:
    """``model`` with its state bounds stripped (input bounds kept).

    The transcription applies model state bounds at *every* knot, tail
    stages included — but from a head optimum that rides a state bound
    with outward velocity, no bound-feasible tail exists, and the soft
    bound rows on the tail would drag the head away from the native
    optimum (observed on the quadrotor, whose terminal attitude sits
    exactly on its +-0.6 rad tilt bound).  So the padded problem moves
    state bounds into gated task constraints instead.  Input bounds stay
    on the model: tail states are unconstrained, so any tail — e.g. the
    trim rollout — satisfies them trivially without back-pressure on the
    head.
    """
    states = tuple(
        replace(s, lower=-math.inf, upper=math.inf) for s in model.states
    )
    return RobotModel(
        model.name,
        states,
        model.inputs,
        dict(model.dynamics),
        params=dict(model.params),
        rollout_guess=model.rollout_guess,
    )


def padded_task(task: Task) -> Task:
    """Rebuild ``task`` with every term gated by the padding channels.

    The returned task is built against an unbounded-state clone of the
    model (see :func:`_unbounded_state_model`); use ``padded.model`` —
    not the native model — when transcribing it.
    """
    for c in task.constraints:
        if c.is_equality:
            # A gated equality row would be 0 == 0 with a zero Jacobian —
            # a singular KKT block.  No benchmark task declares one, so
            # refuse instead of special-casing.
            raise ServeError(
                f"task {task.name!r}: equality constraint {c.name!r} "
                "cannot be horizon-padded"
            )
    g_run = Var(PAD_RUN)
    g_term = Var(PAD_TERM)
    penalties = []
    for p in task.penalties:
        if p.timing == RUNNING:
            penalties.append(Penalty(p.name, g_run * p.expr, p.weight, RUNNING))
        else:
            # terminal copy (fires only for unpadded lanes, where h == H)
            penalties.append(Penalty(p.name, g_term * p.expr, p.weight, TERMINAL))
            # running copy: fires exactly at stage k == h for padded lanes
            penalties.append(
                Penalty(f"{p.name}__pad_stage", g_term * p.expr, p.weight, RUNNING)
            )
    constraints = []
    for c in task.constraints:
        fill = _fill_value(c)
        if c.timing == RUNNING:
            expr = g_run * c.expr + (1.0 - g_run) * fill
            constraints.append(Constraint(c.name, expr, c.lower, c.upper, RUNNING))
        else:
            expr = g_term * c.expr + (1.0 - g_term) * fill
            constraints.append(Constraint(c.name, expr, c.lower, c.upper, TERMINAL))
            constraints.append(
                Constraint(
                    f"{c.name}__pad_stage", expr, c.lower, c.upper, RUNNING
                )
            )
    model = _unbounded_state_model(task.model)
    # re-impose the native state bounds as gated rows: running stages
    # (k = 1 .. h-1), the true final stage (k == h, via the g_term-gated
    # running copy), and the bucket terminal (k == H, live only when the
    # lane is unpadded) — exactly the knots the native transcription
    # bounds, and none of the tail.
    for spec in task.model.states:
        if not spec.is_bounded:
            continue
        fill = _fill(spec.lower, spec.upper)
        x = spec.var
        run = g_run * x + (1.0 - g_run) * fill
        fin = g_term * x + (1.0 - g_term) * fill
        constraints.append(
            Constraint(f"{spec.name}__pad_bound", run, spec.lower, spec.upper, RUNNING)
        )
        constraints.append(
            Constraint(
                f"{spec.name}__pad_bound_stage", fin, spec.lower, spec.upper, RUNNING
            )
        )
        constraints.append(
            Constraint(
                f"{spec.name}__pad_bound_term", fin, spec.lower, spec.upper, TERMINAL
            )
        )
    return Task(
        name=f"{task.name}__padded",
        model=model,
        penalties=penalties,
        constraints=constraints,
        references=tuple(task.references) + (PAD_RUN, PAD_TERM),
        meta=dict(task.meta),
    )


def gate_columns(bucket: int, horizon: int) -> np.ndarray:
    """Per-stage gate values, shape ``(bucket + 1, 2)``."""
    if not 1 <= horizon <= bucket:
        raise ServeError(
            f"horizon {horizon} does not fit bucket {bucket}"
        )
    stages = np.arange(bucket + 1)
    g_run = (stages < horizon).astype(float)
    g_term = (stages == horizon).astype(float)
    return np.column_stack([g_run, g_term])


def pad_reference(
    ref: Optional[np.ndarray], nref: int, horizon: int, bucket: int
) -> np.ndarray:
    """The padded per-stage reference stack, shape ``(bucket+1, nref+2)``.

    Native reference rows cover stages ``0..h`` (a flat ``(nref,)`` vector
    broadcasts); the tail holds the last row — its values are multiplied
    by a zero gate, so they only have to be finite.
    """
    gates = gate_columns(bucket, horizon)
    if nref == 0:
        return gates
    base = np.asarray(ref, dtype=float)
    if base.ndim == 1:
        if base.shape != (nref,):
            raise ServeError(
                f"reference has shape {base.shape}, expected ({nref},)"
            )
        base = np.tile(base, (horizon + 1, 1))
    elif base.shape != (horizon + 1, nref):
        raise ServeError(
            f"reference has shape {base.shape}, expected ({nref},) or "
            f"({horizon + 1}, {nref})"
        )
    if bucket > horizon:
        base = np.vstack([base, np.tile(base[-1], (bucket - horizon, 1))])
    return np.hstack([base, gates])


def pad_warm_start(
    z: np.ndarray,
    native_problem: TranscribedProblem,
    padded_problem: TranscribedProblem,
) -> np.ndarray:
    """Extend a native warm start into the bucket.

    The tail *rolls the dynamics out* under the trim input (same policy
    as :meth:`TranscribedProblem.initial_guess`) instead of holding the
    last state: a held state leaves large artificial defect residuals at
    the pad boundary, and on nonconvex robots the resulting correction
    steps can knock the solve into a different local basin.  For
    ``rollout_guess=False`` models the tail holds the state, as the
    native guess does.
    """
    h, H = native_problem.N, padded_problem.N
    xs, us = native_problem.split(np.asarray(z, dtype=float))
    if H == h:
        return padded_problem.join(xs, us)
    model = padded_problem.model
    u_trim = np.array(model.trim_inputs(), dtype=float)
    us_tail = np.tile(u_trim, (H - h, 1))
    xs_tail = np.empty((H - h, native_problem.nx))
    if model.rollout_guess:
        # clip against the *native* bounds: the padded model is unbounded
        # by construction, but the guess should stay in the plausible box
        lo, hi = native_problem.model.state_bounds()
        lo = np.maximum(np.asarray(lo), -1e6)
        hi = np.minimum(np.asarray(hi), 1e6)
        xk = xs[-1]
        u_trim_l = u_trim.tolist()
        for i in range(H - h):
            xk = np.clip(
                padded_problem._F.call_positional(*xk.tolist(), *u_trim_l),
                lo,
                hi,
            )
            xs_tail[i] = xk
    else:
        xs_tail[:] = xs[-1]
    return padded_problem.join(np.vstack([xs, xs_tail]), np.vstack([us, us_tail]))


def crop_result(
    result: IPMResult,
    padded_problem: TranscribedProblem,
    native_problem: TranscribedProblem,
) -> IPMResult:
    """Map a padded-bucket solve back onto the native problem layout.

    The head knots of the padded solution are re-joined on the native
    layout; equality multipliers keep their shared prefix (initial
    condition + the first ``h`` dynamics defects — identical row order in
    both layouts) and the task-constraint multipliers restart at zero,
    which the solvers treat as a cold (but valid) dual warm start.
    """
    h = native_problem.N
    xs, us = padded_problem.split(np.asarray(result.z, dtype=float))
    z_native = native_problem.join(xs[: h + 1], us[:h])
    nu = None
    if result.nu is not None:
        nu = np.zeros(native_problem.n_eq)
        shared = min(native_problem.nx * (h + 1), nu.shape[0])
        nu[:shared] = np.asarray(result.nu, dtype=float)[:shared]
    lam = np.zeros(native_problem.n_ineq) if result.lam is not None else None
    return IPMResult(
        z=z_native,
        converged=result.converged,
        iterations=result.iterations,
        qp_iterations=result.qp_iterations,
        objective=result.objective,
        kkt_residual=result.kkt_residual,
        residual_history=list(result.residual_history),
        nu=nu,
        lam=lam,
        status=result.status,
        solve_time=result.solve_time,
        health=result.health,
    )


class PaddedBinding:
    """One robot's padded problem at one bucket horizon, plus its solvers.

    Shards hold one of these per ``(robot, bucket)`` key.  The batched
    solver is ``None`` when the robot cannot batch (e.g. a non-Gauss-
    Newton Hessian model) — its groups then fall back to scalar solves on
    the *padded* problem, so bucketing semantics stay identical.
    """

    def __init__(
        self,
        bench,
        bucket: int,
        qp_method: str = "ipm",
        codegen: str = "auto",
        array_backend: Optional[str] = None,
    ):
        self.bench = bench
        self.bucket = int(bucket)
        self.task = padded_task(bench.task)
        # the padded task rides an unbounded-state model clone — transcribe
        # against *its* model (identity is checked), not bench.model
        self.problem = TranscribedProblem(
            self.task.model, self.task, horizon=self.bucket, dt=bench.dt
        )
        if codegen != "auto":
            self.problem.set_codegen(codegen)
        self.scalar_solver = bench.make_solver(self.problem)
        try:
            from repro.batch import BatchSolver

            self.batch_solver = BatchSolver(
                self.problem,
                self.scalar_solver.options,
                backend=array_backend,
                qp_method=qp_method,
            )
        except ReproError:
            self.batch_solver = None

    @property
    def batchable(self) -> bool:
        return self.batch_solver is not None

    def pad_payload(
        self, payload: Dict[str, object], native_problem: TranscribedProblem
    ) -> Dict[str, object]:
        """Rewrite a ``ControlSession.solve_payload`` dict for the bucket."""
        h = native_problem.N
        out = dict(payload)
        out["horizon"] = self.bucket
        out["ref"] = pad_reference(
            payload.get("ref"), native_problem.nref, h, self.bucket
        )
        z_warm = payload.get("z_warm")
        out["z_warm"] = (
            pad_warm_start(z_warm, native_problem, self.problem)
            if z_warm is not None
            else None
        )
        # native-shaped duals do not map onto the padded row layout; the
        # batched solver would reject them, so restart the duals cold
        out["nu_warm"] = None
        out["lam_warm"] = None
        return out

    def crop(
        self, result: IPMResult, native_problem: TranscribedProblem
    ) -> IPMResult:
        return crop_result(result, self.problem, native_problem)
