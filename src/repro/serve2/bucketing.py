"""Horizon bucketing for the serve2 batch former.

The batch former groups sessions by ``(robot, bucket)`` instead of
``(robot, horizon)``: every session horizon is rounded *up* to the next
rung of a configured ladder (powers of two by default), and the padded
lanes of a bucket all solve the same :class:`TranscribedProblem` shape.
Sessions whose horizons land between rungs therefore co-batch instead of
fragmenting into singleton groups, at the cost of the padded tail stages
— whose fraction :meth:`HorizonBuckets.padding_waste` reports so the
fleet telemetry can track how much lane capacity the rounding burns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ServeError

__all__ = ["DEFAULT_RUNGS", "HorizonBuckets"]

#: Powers-of-two rungs, matching the paper-suite horizons (5..60) with at
#: most one doubling of any horizon.
DEFAULT_RUNGS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class HorizonBuckets:
    """Maps a session horizon to the rung it is padded up to."""

    rungs: Tuple[int, ...] = DEFAULT_RUNGS

    def __post_init__(self):
        rungs = tuple(sorted({int(r) for r in self.rungs}))
        if not rungs:
            raise ServeError("HorizonBuckets needs at least one rung")
        if rungs[0] < 1:
            raise ServeError(f"rungs must be positive, got {rungs}")
        object.__setattr__(self, "rungs", rungs)

    def bucket_for(self, horizon: int) -> int:
        """Smallest rung >= ``horizon``; the horizon itself past the top."""
        if horizon < 1:
            raise ServeError(f"horizon must be >= 1, got {horizon}")
        for rung in self.rungs:
            if rung >= horizon:
                return rung
        return horizon

    def padding_waste(self, horizon: int) -> float:
        """Fraction of the bucket's stages spent on padding for ``horizon``."""
        bucket = self.bucket_for(horizon)
        return (bucket - horizon) / bucket
