"""Dependency-free ASCII visualization helpers.

The library has no plotting dependency, but closed-loop traces and solver
convergence curves are much easier to read as pictures; these helpers render
them as Unicode line/bar charts in the terminal.  Used by the examples and
the CLI; small enough to test exactly.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

__all__ = ["ascii_plot", "ascii_bars", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of a numeric series (e.g. KKT residuals)."""
    values = [float(v) for v in values]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK_LEVELS[0] * len(values)
    span = hi - lo
    chars = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[idx])
    return "".join(chars)


def ascii_plot(
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    title: str = "",
    logy: bool = False,
) -> str:
    """Multi-series ASCII line plot.

    Args:
        series: name -> y-values (x is the index; series may differ in
            length and are stretched to the plot width).
        width / height: plot canvas size in characters.
        title: optional heading line.
        logy: plot ``log10(y)`` (values must be positive).
    """
    if not series or all(len(v) == 0 for v in series.values()):
        return title
    marks = "*+o^#@%&"

    def transform(v: float) -> float:
        if logy:
            if v <= 0:
                raise ValueError("logy requires positive values")
            return math.log10(v)
        return float(v)

    all_vals = [transform(v) for vs in series.values() for v in vs]
    lo, hi = min(all_vals), max(all_vals)
    if hi == lo:
        hi = lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for s_idx, (name, values) in enumerate(series.items()):
        mark = marks[s_idx % len(marks)]
        n = len(values)
        if n == 0:
            continue
        for col in range(width):
            # stretch/shrink the series onto the canvas width
            pos = col / max(width - 1, 1) * (n - 1)
            v = transform(values[int(round(pos))])
            row = int(round((v - lo) / (hi - lo) * (height - 1)))
            canvas[height - 1 - row][col] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{hi:.3g}" + (" (log10)" if logy else "")
    lines.append(f"{top_label:>10} ┤" + "".join(canvas[0]))
    for row in canvas[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    bottom_label = f"{lo:.3g}"
    lines.append(f"{bottom_label:>10} ┤" + "".join(canvas[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    legend = "   ".join(
        f"{marks[i % len(marks)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def ascii_bars(
    values: Dict[str, float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bar chart (e.g. per-benchmark speedups)."""
    if not values:
        return title
    lines: List[str] = [title] if title else []
    label_w = max(len(k) for k in values)
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    for name, v in values.items():
        bar = "█" * max(int(v / peak * width), 0)
        lines.append(f"{name:<{label_w}} │{bar} {v:.3g}{unit}")
    return "\n".join(lines)
