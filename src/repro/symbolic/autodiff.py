"""Symbolic automatic differentiation.

The RoboX Program Translator "uses automatic differentiation to compute all
necessary gradients" (paper §VII): the objective gradient and Hessian, and
the Jacobians of the dynamics (equality) and inequality constraints that
populate the KKT system of Eq. 6.  This module implements exact symbolic
differentiation over the expression DAG with memoization, plus the vector
conveniences (gradient / jacobian / hessian) used by the transcription layer.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import DifferentiationError
from repro.symbolic.expr import (
    Call,
    Const,
    Expr,
    Var,
    as_expr,
    cos,
    exp,
    log,
    sin,
    sqrt,
    tan,
    topological_order,
)
from repro.symbolic.simplify import simplify

__all__ = ["diff", "gradient", "jacobian", "hessian"]

_ZERO = Const(0.0)
_ONE = Const(1.0)


def diff(expr: Expr, var: Var, _cache: Dict[Tuple[Expr, str], Expr] = None) -> Expr:
    """Exact partial derivative of ``expr`` with respect to ``var``.

    The result is simplified so that trivially-zero partials collapse to the
    constant 0, which the transcription layer relies on to build sparse
    Jacobians.
    """
    cache: Dict[Expr, Expr] = {}
    for node in topological_order([expr]):
        cache[node] = _diff_node(node, var, cache)
    return simplify(cache[expr])


def _diff_node(node: Expr, var: Var, cache: Dict[Expr, Expr]) -> Expr:
    if isinstance(node, Const):
        return _ZERO
    if isinstance(node, Var):
        return _ONE if node.name == var.name else _ZERO
    if not isinstance(node, Call):
        raise DifferentiationError(f"cannot differentiate node {node!r}")

    op = node.op.name
    args = node.args
    d = [cache[a] for a in args]

    if op == "add":
        return d[0] + d[1]
    if op == "sub":
        return d[0] - d[1]
    if op == "neg":
        return -d[0]
    if op == "mul":
        return d[0] * args[1] + args[0] * d[1]
    if op == "div":
        # (u/v)' = (u'v - uv') / v^2
        return (d[0] * args[1] - args[0] * d[1]) / (args[1] * args[1])
    if op == "pow":
        base, exponent = args
        if isinstance(exponent, Const):
            # d(u^c) = c * u^(c-1) * u'
            return exponent * base ** Const(exponent.value - 1.0) * d[0]
        if isinstance(base, Const):
            # d(c^v) = c^v * ln(c) * v'
            return node * Const(_ln_const(base)) * d[1]
        # General u^v = exp(v ln u)
        return node * (d[1] * log(base) + exponent * d[0] / base)
    if op == "sin":
        return cos(args[0]) * d[0]
    if op == "cos":
        return -sin(args[0]) * d[0]
    if op == "tan":
        sec2 = _ONE + tan(args[0]) * tan(args[0])
        return sec2 * d[0]
    if op == "asin":
        return d[0] / sqrt(_ONE - args[0] * args[0])
    if op == "acos":
        return -(d[0] / sqrt(_ONE - args[0] * args[0]))
    if op == "atan":
        return d[0] / (_ONE + args[0] * args[0])
    if op == "exp":
        return node * d[0]
    if op == "log":
        return d[0] / args[0]
    if op == "sqrt":
        return d[0] / (Const(2.0) * node)
    if op == "tanh":
        return (_ONE - node * node) * d[0]
    raise DifferentiationError(f"no derivative rule for operation {op!r}")


def _ln_const(c: Const) -> float:
    import math

    if c.value <= 0.0:
        raise DifferentiationError(
            f"cannot differentiate {c.value}^x for non-positive base"
        )
    return math.log(c.value)


def gradient(expr: Expr, variables: Sequence[Var]) -> Tuple[Expr, ...]:
    """Tuple of partials of a scalar expression w.r.t. each variable."""
    return tuple(diff(expr, v) for v in variables)


def jacobian(
    exprs: Sequence[Expr], variables: Sequence[Var]
) -> Tuple[Tuple[Expr, ...], ...]:
    """Row-major Jacobian: ``J[i][j] = d exprs[i] / d variables[j]``."""
    return tuple(gradient(as_expr(e), variables) for e in exprs)


def hessian(expr: Expr, variables: Sequence[Var]) -> Tuple[Tuple[Expr, ...], ...]:
    """Symmetric Hessian matrix of a scalar expression.

    Computed as the Jacobian of the gradient; only the upper triangle is
    differentiated and mirrored, halving the symbolic work.
    """
    grad: List[Expr] = list(gradient(expr, variables))
    n = len(variables)
    rows: List[List[Expr]] = [[_ZERO] * n for _ in range(n)]
    for i in range(n):
        for j in range(i, n):
            entry = diff(grad[i], variables[j])
            rows[i][j] = entry
            rows[j][i] = entry
    return tuple(tuple(r) for r in rows)
