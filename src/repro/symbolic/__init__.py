"""Symbolic math engine: expressions, autodiff, simplification, compilation.

This is the foundation the rest of the RoboX reproduction builds on: robot
dynamics and task penalties are authored (via the DSL or the Python API) as
symbolic expressions, the Program Translator differentiates them, and both
the interior-point solver and the accelerator compiler consume the resulting
DAGs.
"""

from repro.symbolic.autodiff import diff, gradient, hessian, jacobian
from repro.symbolic.compile import CompiledFunction, compile_function
from repro.symbolic.expr import (
    ELEMENTARY_OPS,
    NONLINEAR_OPS,
    OPS,
    Call,
    Const,
    Expr,
    Op,
    Var,
    acos,
    as_expr,
    asin,
    atan,
    cos,
    count_nodes,
    count_ops,
    exp,
    log,
    sin,
    sqrt,
    substitute,
    tan,
    tanh,
    topological_order,
    variables_of,
)
from repro.symbolic.printer import to_string
from repro.symbolic.simplify import is_one, is_zero, simplify

__all__ = [
    "Expr",
    "Const",
    "Var",
    "Call",
    "Op",
    "OPS",
    "ELEMENTARY_OPS",
    "NONLINEAR_OPS",
    "as_expr",
    "sin",
    "cos",
    "tan",
    "asin",
    "acos",
    "atan",
    "exp",
    "log",
    "sqrt",
    "tanh",
    "variables_of",
    "count_nodes",
    "count_ops",
    "substitute",
    "topological_order",
    "diff",
    "gradient",
    "jacobian",
    "hessian",
    "simplify",
    "is_zero",
    "is_one",
    "compile_function",
    "CompiledFunction",
    "to_string",
]
