"""Core symbolic expression DAG.

Expressions are immutable, hash-consed trees.  The node kinds mirror what the
RoboX DSL can express (Table I of the paper): constants, named variables,
elementary arithmetic, a fixed set of nonlinear functions, and power.  Group
operations (``sum``, ``norm``, ``min``, ``max``) are *range reductions* and
are represented after range expansion as trees of binary ops; the DSL layer
records the group structure separately for the compiler (see
``repro.compiler.mdfg``).

The module deliberately avoids any dependency on SymPy: RoboX's translator
needs only differentiation, simplification, numeric compilation and op
counting, all of which are implemented from scratch in this package.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from repro.errors import SymbolicError

__all__ = [
    "Expr",
    "Const",
    "Var",
    "Call",
    "Op",
    "OPS",
    "NONLINEAR_OPS",
    "ELEMENTARY_OPS",
    "as_expr",
    "variables_of",
    "count_nodes",
    "count_ops",
    "substitute",
    "topological_order",
]


class Op:
    """Metadata for a primitive operation.

    Attributes:
        name: canonical operation name (``add``, ``sin``, ...).
        arity: number of operands.
        func: numeric implementation over Python floats.
        symbol: infix symbol for binary elementary ops, else ``None``.
        kind: ``"elementary"`` or ``"nonlinear"``.
    """

    __slots__ = ("name", "arity", "func", "symbol", "kind")

    def __init__(
        self,
        name: str,
        arity: int,
        func: Callable[..., float],
        symbol: Optional[str] = None,
        kind: str = "elementary",
    ):
        self.name = name
        self.arity = arity
        self.func = func
        self.symbol = symbol
        self.kind = kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Op({self.name})"


def _safe_div(a: float, b: float) -> float:
    if b == 0.0:
        raise ZeroDivisionError("symbolic evaluation divided by zero")
    return a / b


def _safe_sqrt(a: float) -> float:
    if a < 0.0:
        raise SymbolicError(f"sqrt of negative value {a!r}")
    return math.sqrt(a)


OPS: Dict[str, Op] = {}


def _register(op: Op) -> Op:
    OPS[op.name] = op
    return op


ADD = _register(Op("add", 2, lambda a, b: a + b, "+"))
SUB = _register(Op("sub", 2, lambda a, b: a - b, "-"))
MUL = _register(Op("mul", 2, lambda a, b: a * b, "*"))
DIV = _register(Op("div", 2, _safe_div, "/"))
NEG = _register(Op("neg", 1, lambda a: -a))
POW = _register(Op("pow", 2, lambda a, b: a**b))

SIN = _register(Op("sin", 1, math.sin, kind="nonlinear"))
COS = _register(Op("cos", 1, math.cos, kind="nonlinear"))
TAN = _register(Op("tan", 1, math.tan, kind="nonlinear"))
ASIN = _register(Op("asin", 1, math.asin, kind="nonlinear"))
ACOS = _register(Op("acos", 1, math.acos, kind="nonlinear"))
ATAN = _register(Op("atan", 1, math.atan, kind="nonlinear"))
EXP = _register(Op("exp", 1, math.exp, kind="nonlinear"))
LOG = _register(Op("log", 1, math.log, kind="nonlinear"))
SQRT = _register(Op("sqrt", 1, _safe_sqrt, kind="nonlinear"))
TANH = _register(Op("tanh", 1, math.tanh, kind="nonlinear"))

ELEMENTARY_OPS = frozenset(n for n, op in OPS.items() if op.kind == "elementary")
NONLINEAR_OPS = frozenset(n for n, op in OPS.items() if op.kind == "nonlinear")


class Expr:
    """Base class for all symbolic expressions.

    Subclasses are immutable; ``==`` is structural equality and instances are
    hashable so expressions can key dictionaries (used heavily by autodiff
    memoization and common-subexpression elimination).
    """

    __slots__ = ("_hash",)

    # -- operator overloading -------------------------------------------------
    def __add__(self, other) -> "Expr":
        return Call(ADD, (self, as_expr(other)))

    def __radd__(self, other) -> "Expr":
        return Call(ADD, (as_expr(other), self))

    def __sub__(self, other) -> "Expr":
        return Call(SUB, (self, as_expr(other)))

    def __rsub__(self, other) -> "Expr":
        return Call(SUB, (as_expr(other), self))

    def __mul__(self, other) -> "Expr":
        return Call(MUL, (self, as_expr(other)))

    def __rmul__(self, other) -> "Expr":
        return Call(MUL, (as_expr(other), self))

    def __truediv__(self, other) -> "Expr":
        return Call(DIV, (self, as_expr(other)))

    def __rtruediv__(self, other) -> "Expr":
        return Call(DIV, (as_expr(other), self))

    def __pow__(self, other) -> "Expr":
        return Call(POW, (self, as_expr(other)))

    def __rpow__(self, other) -> "Expr":
        return Call(POW, (as_expr(other), self))

    def __neg__(self) -> "Expr":
        return Call(NEG, (self,))

    def __pos__(self) -> "Expr":
        return self

    # -- interface -------------------------------------------------------------
    def children(self) -> Tuple["Expr", ...]:
        return ()

    def evaluate(self, env: Dict[str, float]) -> float:
        """Numerically evaluate with variable bindings from ``env``."""
        raise NotImplementedError

    def __bool__(self) -> bool:
        raise SymbolicError(
            "symbolic expressions have no truth value; use explicit comparisons"
        )


class Const(Expr):
    """A floating-point constant leaf."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SymbolicError(f"Const requires a real number, got {value!r}")
        self.value = float(value)
        self._hash = hash(("Const", self.value))

    def evaluate(self, env: Dict[str, float]) -> float:
        return self.value

    def __eq__(self, other) -> bool:
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


class Var(Expr):
    """A named scalar variable leaf.

    Vector quantities (e.g. ``pos[2]`` in the DSL) are represented as one
    ``Var`` per element with a canonical ``name[i]`` spelling produced by the
    frontends.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise SymbolicError(f"Var requires a non-empty name, got {name!r}")
        self.name = name
        self._hash = hash(("Var", name))

    def evaluate(self, env: Dict[str, float]) -> float:
        try:
            return float(env[self.name])
        except KeyError:
            raise SymbolicError(f"unbound variable {self.name!r}") from None

    def __eq__(self, other) -> bool:
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


class Call(Expr):
    """An operation applied to operand expressions."""

    __slots__ = ("op", "args")

    def __init__(self, op: Op, args: Sequence[Expr]):
        if not isinstance(op, Op):
            raise SymbolicError(f"Call requires an Op, got {op!r}")
        args = tuple(args)
        if len(args) != op.arity:
            raise SymbolicError(
                f"{op.name} expects {op.arity} operand(s), got {len(args)}"
            )
        for a in args:
            if not isinstance(a, Expr):
                raise SymbolicError(f"operand {a!r} is not an Expr")
        self.op = op
        self.args = args
        self._hash = hash(("Call", op.name, args))

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def evaluate(self, env: Dict[str, float]) -> float:
        return self.op.func(*(a.evaluate(env) for a in self.args))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Call)
            and self.op is other.op
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.op.name}({inner})"


# -- convenience constructors for nonlinear functions ---------------------------


def _unary(op: Op) -> Callable[[object], Expr]:
    def build(x) -> Expr:
        return Call(op, (as_expr(x),))

    build.__name__ = op.name
    return build


sin = _unary(SIN)
cos = _unary(COS)
tan = _unary(TAN)
asin = _unary(ASIN)
acos = _unary(ACOS)
atan = _unary(ATAN)
exp = _unary(EXP)
log = _unary(LOG)
sqrt = _unary(SQRT)
tanh = _unary(TANH)

__all__ += ["sin", "cos", "tan", "asin", "acos", "atan", "exp", "log", "sqrt", "tanh"]


def as_expr(value) -> Expr:
    """Coerce a Python number (or pass through an Expr) to an expression."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise SymbolicError("booleans are not valid expression constants")
    if isinstance(value, (int, float)):
        return Const(float(value))
    raise SymbolicError(f"cannot convert {value!r} to a symbolic expression")


# -- traversal helpers ----------------------------------------------------------


def topological_order(roots: Iterable[Expr]) -> Tuple[Expr, ...]:
    """Return every distinct node reachable from ``roots``, children first.

    Uses an explicit stack so very deep expression chains (long horizons)
    do not hit Python's recursion limit.
    """
    order: list = []
    visited: set = set()
    for root in roots:
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                if node not in visited:
                    visited.add(node)
                    order.append(node)
                continue
            if node in visited:
                continue
            stack.append((node, True))
            for child in node.children():
                if child not in visited:
                    stack.append((child, False))
    return tuple(order)


def variables_of(roots: Iterable[Expr]) -> Tuple[Var, ...]:
    """All distinct variables reachable from ``roots`` in first-seen order."""
    result = []
    seen = set()
    for node in topological_order(list(roots)):
        if isinstance(node, Var) and node.name not in seen:
            seen.add(node.name)
            result.append(node)
    return tuple(result)


def count_nodes(roots: Iterable[Expr]) -> int:
    """Number of distinct DAG nodes reachable from ``roots``."""
    return len(topological_order(list(roots)))


def count_ops(roots: Iterable[Expr]) -> Dict[str, int]:
    """Histogram of operation names over the *distinct* DAG nodes.

    Shared subexpressions are counted once, matching what the compiler maps to
    compute units (each DAG node executes once per evaluation).
    """
    hist: Dict[str, int] = {}
    for node in topological_order(list(roots)):
        if isinstance(node, Call):
            hist[node.op.name] = hist.get(node.op.name, 0) + 1
    return hist


def substitute(root: Expr, mapping: Dict[Expr, Expr]) -> Expr:
    """Replace subtrees of ``root`` per ``mapping`` (structural match)."""
    cache: Dict[Expr, Expr] = {}

    for node in topological_order([root]):
        if node in mapping:
            cache[node] = mapping[node]
        elif isinstance(node, Call):
            new_args = tuple(cache[a] for a in node.args)
            cache[node] = node if new_args == node.args else Call(node.op, new_args)
        else:
            cache[node] = node
    return cache[root]
