"""Algebraic simplification of expression DAGs.

Simplification keeps the symbolic pipeline tractable: autodiff produces many
``x * 0`` / ``x + 0`` artifacts, and collapsing them both shrinks the M-DFG
the compiler maps onto compute units and exposes structural zeros that make
the KKT Jacobians sparse.

The rewriter is a single bottom-up pass applying local rules:

* constant folding for every operation,
* additive/multiplicative identities and annihilators,
* double negation, ``x - x -> 0``, ``x / x -> 1`` (symbolically),
* power identities ``x**0 -> 1``, ``x**1 -> x``,
* normalization of ``neg`` into the tree only where it shortens it.

Rules are safe for real arithmetic as used by the robot models (the solver
never feeds NaN/inf through symbolic evaluation).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import SymbolicError
from repro.symbolic.expr import OPS, Call, Const, Expr, Var, topological_order

__all__ = ["simplify", "is_zero", "is_one"]


def is_zero(e: Expr) -> bool:
    return isinstance(e, Const) and e.value == 0.0


def is_one(e: Expr) -> bool:
    return isinstance(e, Const) and e.value == 1.0


def simplify(root: Expr) -> Expr:
    """Return a simplified structurally-equivalent expression."""
    cache: Dict[Expr, Expr] = {}
    for node in topological_order([root]):
        if isinstance(node, (Const, Var)):
            cache[node] = node
        else:
            args = tuple(cache[a] for a in node.children())
            cache[node] = _rewrite(node, args)
    return cache[root]


def _rewrite(node: Call, args) -> Expr:
    op = node.op.name

    # Constant folding applies uniformly when every operand is constant.
    if all(isinstance(a, Const) for a in args):
        try:
            return Const(node.op.func(*(a.value for a in args)))
        except (ZeroDivisionError, ValueError, OverflowError, SymbolicError):
            # Leave the node symbolic (e.g. 1/0, sqrt(-1)): definedness is
            # evaluation's concern; simplification must never raise.
            pass

    a = args[0]
    b = args[1] if len(args) > 1 else None

    if op == "add":
        if is_zero(a):
            return b
        if is_zero(b):
            return a
        if a == b:
            return Call(OPS["mul"], (Const(2.0), a))
    elif op == "sub":
        if is_zero(b):
            return a
        if is_zero(a):
            return _negate(b)
        if a == b:
            return Const(0.0)
    elif op == "mul":
        if is_zero(a) or is_zero(b):
            return Const(0.0)
        if is_one(a):
            return b
        if is_one(b):
            return a
        if isinstance(a, Const) and a.value == -1.0:
            return _negate(b)
        if isinstance(b, Const) and b.value == -1.0:
            return _negate(a)
    elif op == "div":
        if is_zero(a) and not is_zero(b):
            return Const(0.0)
        if is_one(b):
            return a
        if a == b and not is_zero(b):
            return Const(1.0)
    elif op == "neg":
        if isinstance(a, Call) and a.op.name == "neg":
            return a.args[0]
        if isinstance(a, Const):
            return Const(-a.value)
    elif op == "pow":
        if is_zero(b):
            return Const(1.0)
        if is_one(b):
            return a
        if is_one(a):
            return Const(1.0)

    new_args = tuple(args)
    if new_args == node.args:
        return node
    return Call(node.op, new_args)


def _negate(e: Expr) -> Expr:
    if isinstance(e, Const):
        return Const(-e.value)
    if isinstance(e, Call) and e.op.name == "neg":
        return e.args[0]
    return Call(OPS["neg"], (e,))
