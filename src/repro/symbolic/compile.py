"""Numeric compilation of expression DAGs to fast Python callables.

The interior-point solver evaluates the dynamics, constraint, gradient and
Hessian expressions thousands of times per control step.  Walking the DAG
interpretively is far too slow, so this module performs a light-weight code
generation: each distinct DAG node becomes one assignment in a generated
Python function body, which is then ``compile``d once.  Shared subexpressions
are therefore computed exactly once per call — the same property the RoboX
compiler exploits when mapping the M-DFG onto compute units.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import SymbolicError
from repro.symbolic.expr import Call, Const, Expr, Var, count_ops, topological_order

__all__ = ["CompiledFunction", "compile_function"]

_MATH_FUNCS = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "asin": math.asin,
    "acos": math.acos,
    "atan": math.atan,
    "exp": math.exp,
    "log": math.log,
    "sqrt": math.sqrt,
    "tanh": math.tanh,
}

_INFIX = {"add": "+", "sub": "-", "mul": "*", "div": "/", "pow": "**"}


class CompiledFunction:
    """A compiled vector function ``f: R^n -> R^m``.

    Attributes:
        variables: input variable names in positional order.
        n_inputs / n_outputs: dimensions of the mapping.
        op_counts: histogram of primitive operations per evaluation — the
            ground truth used by the baseline cost models and the M-DFG sizing.
        source: the generated Python source (for inspection/tests).
    """

    def __init__(
        self,
        func: Callable[..., Tuple[float, ...]],
        variables: Tuple[str, ...],
        n_outputs: int,
        op_counts: Dict[str, int],
        source: str,
        exprs: Tuple[Expr, ...] = (),
    ):
        self._func = func
        #: unchecked fast path: positional floats in, raw tuple out.  The
        #: transcription inner loops call this thousands of times per control
        #: step, so it skips the asarray/shape-check/np.array round trip of
        #: :meth:`__call__` (callers pass python floats, e.g. ``*xs.tolist()``).
        self.call_positional = func
        self.variables = variables
        self.n_inputs = len(variables)
        self.n_outputs = n_outputs
        self.op_counts = dict(op_counts)
        self.source = source
        #: the symbolic output expressions (retained so the accelerator
        #: compiler can walk the exact DAG this function evaluates)
        self.exprs = tuple(exprs)

    def __call__(self, values: Sequence[float]) -> np.ndarray:
        arr = np.asarray(values, dtype=float)
        if arr.shape != (self.n_inputs,):
            raise SymbolicError(
                f"expected {self.n_inputs} input values, got shape {arr.shape}"
            )
        return np.array(self._func(*arr.tolist()), dtype=float)

    def call_dict(self, env: Dict[str, float]) -> np.ndarray:
        """Evaluate with named bindings instead of positional values."""
        try:
            values = [env[name] for name in self.variables]
        except KeyError as exc:
            raise SymbolicError(f"missing binding for variable {exc}") from None
        return np.array(self._func(*values), dtype=float)

    @property
    def total_ops(self) -> int:
        return sum(self.op_counts.values())


def compile_function(
    exprs: Sequence[Expr],
    variables: Sequence[Var],
    name: str = "generated",
) -> CompiledFunction:
    """Compile ``exprs`` into a single callable over ``variables``.

    Variables not appearing in any expression are still accepted as inputs
    (the transcription layer compiles per-stage functions against the full
    stage variable vector for a uniform calling convention).
    """
    var_names = tuple(v.name for v in variables)
    if len(set(var_names)) != len(var_names):
        raise SymbolicError(f"duplicate variable names in signature: {var_names}")
    slot = {nm: f"v{i}" for i, nm in enumerate(var_names)}

    order = topological_order(list(exprs))
    names: Dict[Expr, str] = {}
    lines: List[str] = []
    counter = 0

    for node in order:
        if isinstance(node, Const):
            names[node] = repr(node.value)
        elif isinstance(node, Var):
            if node.name not in slot:
                raise SymbolicError(
                    f"expression references {node.name!r} which is not in the "
                    f"function signature {var_names}"
                )
            names[node] = slot[node.name]
        elif isinstance(node, Call):
            args = [names[a] for a in node.args]
            opn = node.op.name
            if opn in _INFIX:
                rhs = f"({args[0]} {_INFIX[opn]} {args[1]})"
            elif opn == "neg":
                rhs = f"(-{args[0]})"
            elif opn in _MATH_FUNCS:
                rhs = f"{opn}({args[0]})"
            else:  # pragma: no cover - all ops are covered above
                raise SymbolicError(f"cannot compile operation {opn!r}")
            tmp = f"t{counter}"
            counter += 1
            lines.append(f"    {tmp} = {rhs}")
            names[node] = tmp
        else:  # pragma: no cover
            raise SymbolicError(f"unknown node type {node!r}")

    out = ", ".join(names[e] for e in exprs)
    if len(exprs) == 1:
        out += ","
    params = ", ".join(slot[nm] for nm in var_names)
    body = "\n".join(lines) if lines else "    pass"
    source = f"def {name}({params}):\n{body}\n    return ({out})\n"

    namespace: Dict[str, object] = dict(_MATH_FUNCS)
    exec(compile(source, f"<symbolic:{name}>", "exec"), namespace)
    func = namespace[name]

    return CompiledFunction(
        func=func,
        variables=var_names,
        n_outputs=len(exprs),
        op_counts=count_ops(list(exprs)),
        source=source,
        exprs=tuple(exprs),
    )
