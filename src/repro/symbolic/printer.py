"""Human-readable infix printing for symbolic expressions.

Used by DSL error messages, compiler debug dumps, and tests.  The printer
emits minimal parentheses based on operator precedence so that re-parsing the
output through the DSL expression grammar yields a structurally identical
tree (a property the round-trip tests check).
"""

from __future__ import annotations

from repro.symbolic.expr import Call, Const, Expr, Var

__all__ = ["to_string"]

# Higher binds tighter.  ``pow`` is right-associative; others left.
_PRECEDENCE = {"add": 1, "sub": 1, "mul": 2, "div": 2, "neg": 3, "pow": 4}
_SYMBOL = {"add": "+", "sub": "-", "mul": "*", "div": "/", "pow": "^"}


def to_string(expr: Expr) -> str:
    """Render ``expr`` as an infix string using DSL syntax (``^`` for power)."""
    text, _ = _render(expr)
    return text


def _render(expr: Expr):
    if isinstance(expr, Const):
        value = expr.value
        if value == int(value) and abs(value) < 1e15:
            text = str(int(value))
        else:
            text = repr(value)
        if value < 0:
            return text, _PRECEDENCE["neg"]
        return text, 100
    if isinstance(expr, Var):
        return expr.name, 100
    if isinstance(expr, Call):
        op = expr.op.name
        if op == "neg":
            inner, prec = _render(expr.args[0])
            if prec < _PRECEDENCE["neg"]:
                inner = f"({inner})"
            return f"-{inner}", _PRECEDENCE["neg"]
        if op in _SYMBOL:
            my_prec = _PRECEDENCE[op]
            left, lp = _render(expr.args[0])
            right, rp = _render(expr.args[1])
            # Left operand needs parens if looser; right operand also when the
            # operator is non-associative (sub/div) or equal precedence.
            if lp < my_prec or (op == "pow" and lp <= my_prec):
                left = f"({left})"
            if rp < my_prec or (op in ("sub", "div") and rp <= my_prec):
                right = f"({right})"
            return f"{left} {_SYMBOL[op]} {right}", my_prec
        args = ", ".join(_render(a)[0] for a in expr.args)
        return f"{op}({args})", 100
    raise TypeError(f"not an expression: {expr!r}")
