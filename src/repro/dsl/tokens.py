"""Token definitions for the RoboX DSL."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Token", "TokenType", "KEYWORDS"]


class TokenType:
    """Enumeration of token kinds (plain strings for easy debugging)."""

    IDENT = "IDENT"
    NUMBER = "NUMBER"
    # punctuation
    LPAREN = "LPAREN"  # (
    RPAREN = "RPAREN"  # )
    LBRACE = "LBRACE"  # {
    RBRACE = "RBRACE"  # }
    LBRACKET = "LBRACKET"  # [
    RBRACKET = "RBRACKET"  # ]
    COMMA = "COMMA"  # ,
    SEMICOLON = "SEMICOLON"  # ;
    COLON = "COLON"  # :
    DOT = "DOT"  # .
    # operators
    PLUS = "PLUS"  # +
    MINUS = "MINUS"  # -
    STAR = "STAR"  # *
    SLASH = "SLASH"  # /
    CARET = "CARET"  # ^
    ASSIGN = "ASSIGN"  # =   (symbolic assignment)
    IMPERATIVE = "IMPERATIVE"  # <=  (imperative assignment / bound)
    EOF = "EOF"


#: Reserved words of the language (Table I of the paper).
KEYWORDS = frozenset(
    {
        "System",
        "Task",
        "state",
        "input",
        "param",
        "penalty",
        "constraint",
        "reference",
        "range",
    }
)

#: Built-in nonlinear functions (Table I "Mathematical Operations").
BUILTIN_FUNCTIONS = frozenset(
    {"sin", "cos", "tan", "asin", "acos", "atan", "exp", "log", "sqrt", "tanh"}
)

#: Built-in group operations over a range variable.
GROUP_FUNCTIONS = frozenset({"sum", "norm", "min", "max"})


@dataclass(frozen=True)
class Token:
    """A lexical token with source position (1-based line/column)."""

    type: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.type}, {self.value!r}, {self.line}:{self.column})"
