"""Semantic analysis: execute a RoboX DSL program into models and tasks.

The analyzer is an interpreter over the AST.  ``System`` bodies execute at
*instantiation* time (``MobileRobot robot(0.1);``) with the actual parameter
values bound, producing a :class:`repro.mpc.model.RobotModel`; ``Task``
bodies execute at *task-call* time (``robot.moveTo(dx, dy, 1);``), producing
a :class:`repro.mpc.task.Task`.  Expressions evaluate to either plain floats
(imperative context — parameters, bounds, weights) or symbolic
:class:`~repro.symbolic.Expr` trees (symbolic context — dynamics, penalties,
constraints), mirroring the paper's two assignment forms (``<=`` and ``=``).

Group operations and ``range`` variables are expanded at this stage: a
``sum[i](...)`` becomes a balanced reduction tree over the range, and an
assignment whose left side is indexed by range variables broadcasts into one
scalar assignment per index tuple (§IV-C).  The expansion metadata (which
reductions existed, over what widths) is recorded in
:class:`GroupOpRecord` entries so the accelerator compiler can map them onto
the compute-enabled interconnect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.dsl import ast_nodes as ast
from repro.errors import SemanticError
from repro.mpc.model import RobotModel, VarSpec
from repro.mpc.task import Constraint, Penalty, Task
from repro.symbolic import Call, Const, Expr, OPS, Var, as_expr, simplify

__all__ = ["analyze", "AnalysisResult", "GroupOpRecord"]

_INF = math.inf

_NONLINEAR = {
    name: OPS[name]
    for name in ("sin", "cos", "tan", "asin", "acos", "atan", "exp", "log", "sqrt", "tanh")
}


@dataclass
class GroupOpRecord:
    """One expanded group operation (for the accelerator compiler)."""

    func: str  # sum | norm | min | max
    width: int  # number of reduced elements
    context: str  # "dynamics" | "penalty" | "constraint"


@dataclass
class _Entry:
    """Symbol-table entry."""

    kind: str  # state | input | param | reference | penalty | constraint | range
    shape: Tuple[int, ...] = ()
    value: object = None  # float for params; (lo, hi) for ranges
    # per-element metadata, keyed by the flat element name:
    lower: Dict[str, float] = field(default_factory=dict)
    upper: Dict[str, float] = field(default_factory=dict)
    trim: Dict[str, float] = field(default_factory=dict)
    dt: Dict[str, Expr] = field(default_factory=dict)
    weight: Dict[str, float] = field(default_factory=dict)
    running: Dict[str, Expr] = field(default_factory=dict)
    terminal: Dict[str, Expr] = field(default_factory=dict)
    equals: Dict[str, float] = field(default_factory=dict)


def _element_names(name: str, shape: Tuple[int, ...]) -> List[str]:
    """Flat element names in row-major order: pos -> pos[0], pos[1]; R -> R[0][0]..."""
    if not shape:
        return [name]
    names = [name]
    for dim in shape:
        names = [f"{n}[{i}]" for n in names for i in range(dim)]
    return names


@dataclass
class AnalysisResult:
    """Everything a RoboX program produced."""

    models: Dict[str, RobotModel]  # instance name -> model
    tasks: Dict[str, Task]  # "instance.task" -> task
    group_ops: List[GroupOpRecord] = field(default_factory=list)
    #: declaration order of global references
    references: Tuple[str, ...] = ()

    @property
    def model(self) -> RobotModel:
        """The sole model, when the program instantiates exactly one."""
        if len(self.models) != 1:
            raise SemanticError(
                f"program defines {len(self.models)} instances; use .models"
            )
        return next(iter(self.models.values()))

    @property
    def task(self) -> Task:
        """The sole task, when the program calls exactly one."""
        if len(self.tasks) != 1:
            raise SemanticError(
                f"program defines {len(self.tasks)} tasks; use .tasks"
            )
        return next(iter(self.tasks.values()))


class _Scope:
    """Lexically nested symbol table."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.entries: Dict[str, _Entry] = {}

    def declare(self, name: str, entry: _Entry, line: int = 0) -> _Entry:
        if name in self.entries:
            raise SemanticError(f"redeclaration of {name!r}", line)
        self.entries[name] = entry
        return entry

    def lookup(self, name: str) -> Optional[_Entry]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.entries:
                return scope.entries[name]
            scope = scope.parent
        return None


class _Analyzer:
    def __init__(self, program: ast.Program):
        self.program = program
        self.globals = _Scope()
        self.systems: Dict[str, ast.SystemDef] = {}
        self.instances: Dict[str, Tuple[ast.SystemDef, RobotModel, _Scope]] = {}
        self.result = AnalysisResult(models={}, tasks={})
        self._reference_order: List[str] = []

    # -- driver --------------------------------------------------------------------
    def run(self) -> AnalysisResult:
        for item in self.program.items:
            if isinstance(item, ast.SystemDef):
                if item.name in self.systems:
                    raise SemanticError(
                        f"System {item.name!r} defined twice", item.line
                    )
                self.systems[item.name] = item
            elif isinstance(item, ast.ReferenceDecl):
                self._declare_references(item)
            elif isinstance(item, ast.InstanceDecl):
                self._instantiate(item)
            elif isinstance(item, ast.TaskCall):
                self._call_task(item)
            else:  # pragma: no cover
                raise SemanticError(f"unknown top-level item {item!r}")
        self.result.references = tuple(self._reference_order)
        return self.result

    # -- global references -------------------------------------------------------------
    def _declare_references(self, decl: ast.ReferenceDecl) -> None:
        for d in decl.names:
            if d.interval is not None:
                raise SemanticError(
                    "references cannot use interval syntax", d.line
                )
            entry = _Entry(kind="reference", shape=d.dims)
            self.globals.declare(d.name, entry, d.line)
            self._reference_order.extend(_element_names(d.name, d.dims))

    # -- instantiation ------------------------------------------------------------------
    def _instantiate(self, decl: ast.InstanceDecl) -> None:
        system = self.systems.get(decl.system)
        if system is None:
            raise SemanticError(f"unknown System {decl.system!r}", decl.line)
        if decl.name in self.instances:
            raise SemanticError(
                f"instance {decl.name!r} already defined", decl.line
            )
        scope = _Scope(self.globals)
        self._bind_header(system.params, decl.args, scope, decl.line, allow_refs=False)

        # Execute the System body (declarations and assignments; Task defs
        # are collected for later calls).
        for stmt in system.body:
            if isinstance(stmt, ast.TaskDef):
                continue
            self._exec_statement(stmt, scope, context="system")

        model = self._build_model(decl.name, system, scope)
        self.instances[decl.name] = (system, model, scope)
        self.result.models[decl.name] = model

    def _bind_header(
        self,
        params: Tuple[ast.ParamDecl, ...],
        args: Tuple[ast.ExprNode, ...],
        scope: _Scope,
        line: int,
        allow_refs: bool,
    ) -> None:
        if len(args) != len(params):
            raise SemanticError(
                f"expected {len(params)} argument(s), got {len(args)}", line
            )
        for formal, actual in zip(params, args):
            if formal.kind == "param":
                value = self._eval_imperative(actual, scope)
                scope.declare(
                    formal.name, _Entry(kind="param", value=value), formal.line
                )
            else:  # reference
                if not allow_refs:
                    raise SemanticError(
                        "System headers cannot take references", formal.line
                    )
                target = self._resolve_reference_arg(actual, scope)
                scope.declare(
                    formal.name,
                    _Entry(kind="reference", shape=(), value=target),
                    formal.line,
                )

    def _resolve_reference_arg(self, node: ast.ExprNode, scope: _Scope) -> str:
        """A reference argument must name a globally-declared reference."""
        if isinstance(node, ast.Name):
            entry = self.globals.lookup(node.ident)
            if entry is not None and entry.kind == "reference":
                return node.ident
        raise SemanticError(
            "reference arguments must be globally declared references",
            getattr(node, "line", 0),
        )

    # -- task call -----------------------------------------------------------------------
    def _call_task(self, call: ast.TaskCall) -> None:
        if call.instance not in self.instances:
            raise SemanticError(f"unknown instance {call.instance!r}", call.line)
        system, model, sys_scope = self.instances[call.instance]
        task_def = next(
            (
                t
                for t in system.body
                if isinstance(t, ast.TaskDef) and t.name == call.task
            ),
            None,
        )
        if task_def is None:
            raise SemanticError(
                f"System {system.name!r} has no Task {call.task!r}", call.line
            )
        scope = _Scope(sys_scope)
        self._bind_header(task_def.params, call.args, scope, call.line, allow_refs=True)
        for stmt in task_def.body:
            self._exec_statement(stmt, scope, context="task")
        task = self._build_task(call, task_def, model, scope)
        key = f"{call.instance}.{call.task}"
        if key in self.result.tasks:
            raise SemanticError(f"task {key!r} called twice", call.line)
        self.result.tasks[key] = task

    # -- statement execution --------------------------------------------------------------
    def _exec_statement(self, stmt, scope: _Scope, context: str) -> None:
        if isinstance(stmt, ast.VarDecl):
            self._exec_decl(stmt, scope, context)
        elif isinstance(stmt, ast.Assignment):
            self._exec_assignment(stmt, scope)
        else:  # pragma: no cover
            raise SemanticError(f"unexpected statement {stmt!r}", getattr(stmt, "line", 0))

    _SYSTEM_KINDS = {"state", "input", "param", "range"}
    _TASK_KINDS = {"penalty", "constraint", "reference", "range", "param"}

    def _exec_decl(self, decl: ast.VarDecl, scope: _Scope, context: str) -> None:
        allowed = self._SYSTEM_KINDS if context == "system" else self._TASK_KINDS
        if decl.kind not in allowed:
            raise SemanticError(
                f"{decl.kind!r} declarations are not allowed in a {context} body",
                decl.line,
            )
        for d in decl.declarators:
            if decl.kind == "range":
                lo, hi = d.interval
                if hi <= lo:
                    raise SemanticError(
                        f"range {d.name!r} has empty interval [{lo}:{hi}]", d.line
                    )
                scope.declare(
                    d.name, _Entry(kind="range", value=(lo, hi)), d.line
                )
                continue
            entry = _Entry(kind=decl.kind, shape=d.dims)
            if decl.kind == "reference":
                self._reference_order.extend(_element_names(d.name, d.dims))
            scope.declare(d.name, entry, d.line)

    def _exec_assignment(self, stmt: ast.Assignment, scope: _Scope) -> None:
        target = stmt.target
        entry = scope.lookup(target.name)
        if entry is None:
            raise SemanticError(f"undeclared name {target.name!r}", stmt.line)

        # Range-indexed targets broadcast: expand over all index tuples.
        range_vars = [
            idx.ident
            for idx in target.indices
            if isinstance(idx, ast.Name)
            and (e := scope.lookup(idx.ident)) is not None
            and e.kind == "range"
        ]
        if range_vars:
            self._broadcast_assignment(stmt, entry, scope, range_vars)
            return
        self._assign_single(stmt, entry, scope, bindings={})

    def _broadcast_assignment(
        self,
        stmt: ast.Assignment,
        entry: _Entry,
        scope: _Scope,
        range_vars: List[str],
    ) -> None:
        intervals = []
        seen = []
        for rv in range_vars:
            if rv in seen:
                raise SemanticError(
                    f"range variable {rv!r} used twice in one target", stmt.line
                )
            seen.append(rv)
            lo, hi = scope.lookup(rv).value
            intervals.append(range(lo, hi))

        def rec(i: int, bindings: Dict[str, int]) -> None:
            if i == len(range_vars):
                self._assign_single(stmt, entry, scope, dict(bindings))
                return
            for v in intervals[i]:
                bindings[range_vars[i]] = v
                rec(i + 1, bindings)

        rec(0, {})

    def _assign_single(
        self,
        stmt: ast.Assignment,
        entry: _Entry,
        scope: _Scope,
        bindings: Dict[str, int],
    ) -> None:
        target = stmt.target
        elem = self._target_element(target, entry, scope, bindings)
        fld = target.field

        if fld is None:
            raise SemanticError(
                f"assignment to {target.name!r} requires a field "
                "(.dt, .weight, .running, ...)",
                stmt.line,
            )

        symbolic_fields = {"dt", "running", "terminal"}
        imperative_fields = {"weight", "lower_bound", "upper_bound", "equals"}
        if fld in symbolic_fields and not stmt.symbolic:
            raise SemanticError(
                f"field .{fld} requires symbolic assignment '='", stmt.line
            )
        if fld in imperative_fields and stmt.symbolic:
            raise SemanticError(
                f"field .{fld} requires imperative assignment '<='", stmt.line
            )

        if fld == "dt":
            if entry.kind != "state":
                raise SemanticError(
                    f".dt is only valid on states, not {entry.kind}", stmt.line
                )
            if elem in entry.dt:
                raise SemanticError(
                    f"duplicate dynamics for state {elem!r}", stmt.line
                )
            entry.dt[elem] = self._eval_symbolic(stmt.expr, scope, bindings)
        elif fld in ("running", "terminal"):
            if entry.kind not in ("penalty", "constraint"):
                raise SemanticError(
                    f".{fld} is only valid on penalties/constraints", stmt.line
                )
            store = entry.running if fld == "running" else entry.terminal
            other = entry.terminal if fld == "running" else entry.running
            if elem in store or elem in other:
                raise SemanticError(
                    f"{elem!r} already has a running/terminal expression",
                    stmt.line,
                )
            store[elem] = self._eval_symbolic(stmt.expr, scope, bindings)
        elif fld == "weight":
            if entry.kind != "penalty":
                raise SemanticError(".weight is only valid on penalties", stmt.line)
            entry.weight[elem] = self._eval_imperative(stmt.expr, scope, bindings)
        elif fld in ("lower_bound", "upper_bound"):
            if entry.kind not in ("state", "input", "constraint"):
                raise SemanticError(
                    f".{fld} is not valid on a {entry.kind}", stmt.line
                )
            value = self._eval_imperative(stmt.expr, scope, bindings)
            (entry.lower if fld == "lower_bound" else entry.upper)[elem] = value
        elif fld == "equals":
            if entry.kind != "constraint":
                raise SemanticError(".equals is only valid on constraints", stmt.line)
            entry.equals[elem] = self._eval_imperative(stmt.expr, scope, bindings)
        else:  # pragma: no cover - parser restricts fields
            raise SemanticError(f"unsupported field .{fld}", stmt.line)

    def _target_element(
        self,
        target: ast.LValue,
        entry: _Entry,
        scope: _Scope,
        bindings: Dict[str, int],
    ) -> str:
        if len(target.indices) != len(entry.shape):
            raise SemanticError(
                f"{target.name!r} has {len(entry.shape)} dimension(s), "
                f"indexed with {len(target.indices)}",
                target.line,
            )
        elem = target.name
        for idx_node, dim in zip(target.indices, entry.shape):
            idx = self._eval_index(idx_node, scope, bindings)
            if not 0 <= idx < dim:
                raise SemanticError(
                    f"index {idx} out of bounds for {target.name!r}[{dim}]",
                    target.line,
                )
            elem = f"{elem}[{idx}]"
        return elem

    def _eval_index(
        self, node: ast.ExprNode, scope: _Scope, bindings: Dict[str, int]
    ) -> int:
        if isinstance(node, ast.Name) and node.ident in bindings:
            return bindings[node.ident]
        value = self._eval_imperative(node, scope, bindings)
        idx = int(value)
        if idx != value:
            raise SemanticError(
                f"array index must be an integer, got {value}",
                getattr(node, "line", 0),
            )
        return idx

    # -- expression evaluation ---------------------------------------------------------------
    def _eval_imperative(
        self,
        node: ast.ExprNode,
        scope: _Scope,
        bindings: Optional[Dict[str, int]] = None,
    ) -> float:
        value = self._eval(node, scope, bindings or {}, symbolic=False)
        if isinstance(value, Expr):
            raise SemanticError(
                "imperative ('<=') expressions must be constant; this one "
                "references states, inputs, or references",
                getattr(node, "line", 0),
            )
        return float(value)

    def _eval_symbolic(
        self,
        node: ast.ExprNode,
        scope: _Scope,
        bindings: Optional[Dict[str, int]] = None,
    ) -> Expr:
        value = self._eval(node, scope, bindings or {}, symbolic=True)
        return simplify(as_expr(value))

    def _eval(
        self,
        node: ast.ExprNode,
        scope: _Scope,
        bindings: Dict[str, int],
        symbolic: bool,
    ) -> Union[float, Expr]:
        if isinstance(node, ast.NumberLit):
            return node.value

        if isinstance(node, ast.Name):
            if node.ident in bindings:
                return float(bindings[node.ident])
            entry = scope.lookup(node.ident)
            if entry is None:
                raise SemanticError(f"undeclared name {node.ident!r}", node.line)
            return self._value_of(node.ident, entry, (), node.line, symbolic)

        if isinstance(node, ast.Index):
            base, indices = self._collect_indices(node)
            if not isinstance(base, ast.Name):
                raise SemanticError("only names can be indexed", node.line)
            entry = scope.lookup(base.ident)
            if entry is None:
                raise SemanticError(f"undeclared name {base.ident!r}", node.line)
            idx_values = tuple(
                self._eval_index(ix, scope, bindings) for ix in indices
            )
            return self._value_of(base.ident, entry, idx_values, node.line, symbolic)

        if isinstance(node, ast.FieldAccess):
            raise SemanticError(
                f"field .{node.field} cannot be read inside an expression",
                node.line,
            )

        if isinstance(node, ast.BinaryOp):
            left = self._eval(node.left, scope, bindings, symbolic)
            right = self._eval(node.right, scope, bindings, symbolic)
            return self._apply_binary(node.op, left, right, node.line)

        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, scope, bindings, symbolic)
            if isinstance(operand, Expr):
                return -operand
            return -operand

        if isinstance(node, ast.FuncCall):
            if len(node.args) != 1:
                raise SemanticError(
                    f"{node.func} takes exactly one argument", node.line
                )
            arg = self._eval(node.args[0], scope, bindings, symbolic)
            if isinstance(arg, Expr):
                return Call(_NONLINEAR[node.func], (arg,))
            return _NONLINEAR[node.func].func(arg)

        if isinstance(node, ast.GroupOp):
            return self._eval_group(node, scope, bindings, symbolic)

        raise SemanticError(f"unsupported expression {node!r}", getattr(node, "line", 0))

    def _collect_indices(self, node: ast.Index):
        indices: List[ast.ExprNode] = []
        base: ast.ExprNode = node
        while isinstance(base, ast.Index):
            indices.append(base.index)
            base = base.base
        indices.reverse()
        return base, indices

    def _value_of(
        self,
        name: str,
        entry: _Entry,
        indices: Tuple[int, ...],
        line: int,
        symbolic: bool,
    ) -> Union[float, Expr]:
        if entry.kind == "param":
            if indices:
                raise SemanticError(f"parameter {name!r} is scalar", line)
            return float(entry.value)
        if entry.kind == "range":
            raise SemanticError(
                f"range variable {name!r} used outside a group operation or "
                "broadcast target",
                line,
            )
        if len(indices) != len(entry.shape):
            raise SemanticError(
                f"{name!r} has {len(entry.shape)} dimension(s), "
                f"indexed with {len(indices)}",
                line,
            )
        for idx, dim in zip(indices, entry.shape):
            if not 0 <= idx < dim:
                raise SemanticError(
                    f"index {idx} out of bounds for {name!r}[{dim}]", line
                )
        if entry.kind == "reference" and entry.value is not None:
            # Task-header reference formal: aliases a global reference.
            name = str(entry.value)
        elem = name + "".join(f"[{i}]" for i in indices)
        if entry.kind in ("state", "input", "reference"):
            if not symbolic:
                raise SemanticError(
                    f"{entry.kind} {elem!r} cannot appear in an imperative "
                    "('<=') expression",
                    line,
                )
            return Var(elem)
        raise SemanticError(
            f"{entry.kind} {elem!r} cannot be read inside an expression", line
        )

    def _apply_binary(self, op: str, left, right, line: int):
        both_const = not isinstance(left, Expr) and not isinstance(right, Expr)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if both_const and right == 0:
                raise SemanticError("division by zero", line)
            return left / right
        if op == "^":
            if both_const:
                return float(left) ** float(right)
            return as_expr(left) ** as_expr(right)
        raise SemanticError(f"unknown operator {op!r}", line)  # pragma: no cover

    def _eval_group(
        self,
        node: ast.GroupOp,
        scope: _Scope,
        bindings: Dict[str, int],
        symbolic: bool,
    ) -> Union[float, Expr]:
        intervals = []
        for rv in node.ranges:
            entry = scope.lookup(rv)
            if entry is None or entry.kind != "range":
                raise SemanticError(
                    f"{rv!r} is not a declared range variable", node.line
                )
            if rv in bindings:
                raise SemanticError(
                    f"range variable {rv!r} is already bound by the "
                    "assignment target",
                    node.line,
                )
            lo, hi = entry.value
            intervals.append((rv, range(lo, hi)))

        # Expand the body over the cartesian product of the ranges.
        terms: List[Union[float, Expr]] = []

        def rec(i: int, local: Dict[str, int]) -> None:
            if i == len(intervals):
                terms.append(self._eval(node.body, scope, {**bindings, **local}, symbolic))
                return
            rv, interval = intervals[i]
            for v in interval:
                local[rv] = v
                rec(i + 1, local)

        rec(0, {})
        if not terms:
            raise SemanticError("group operation over an empty range", node.line)

        self.result.group_ops.append(
            GroupOpRecord(func=node.func, width=len(terms), context="expression")
        )

        exprs = [as_expr(t) if isinstance(t, Expr) or True else t for t in terms]
        if node.func == "sum":
            return self._reduce_tree(exprs, "add")
        if node.func == "norm":
            squares = [t * t for t in exprs]
            total = self._reduce_tree(squares, "add")
            # Epsilon-smoothed: the exact Euclidean norm is nondifferentiable
            # at zero, which breaks constraint Jacobians whenever the robot
            # starts exactly at the norm's singular point.
            return Call(OPS["sqrt"], (as_expr(total) + Const(1e-12),))
        if node.func in ("min", "max"):
            # min/max group operations lower to arithmetic via pairwise
            # selection; the accelerator has native MIN/MAX aggregation, but
            # the optimizer needs a smooth expression, so we use the standard
            # smooth encoding |a-b| ~ sqrt((a-b)^2 + eps).
            return self._smooth_minmax(exprs, node.func)
        raise SemanticError(f"unknown group op {node.func!r}", node.line)

    def _reduce_tree(self, terms: List[Expr], op_name: str) -> Expr:
        """Balanced binary reduction (mirrors the tree-bus aggregation)."""
        layer = [as_expr(t) for t in terms]
        op = OPS[op_name]
        while len(layer) > 1:
            nxt = []
            for i in range(0, len(layer) - 1, 2):
                nxt.append(Call(op, (layer[i], layer[i + 1])))
            if len(layer) % 2:
                nxt.append(layer[-1])
            layer = nxt
        return layer[0]

    def _smooth_minmax(self, terms: List[Expr], func: str) -> Expr:
        eps = Const(1e-12)
        result = as_expr(terms[0])
        for t in terms[1:]:
            t = as_expr(t)
            diff = result - t
            absdiff = Call(OPS["sqrt"], (diff * diff + eps,))
            if func == "max":
                result = Const(0.5) * (result + t + absdiff)
            else:
                result = Const(0.5) * (result + t - absdiff)
        return result

    # -- model / task construction ------------------------------------------------------------
    def _build_model(
        self, instance: str, system: ast.SystemDef, scope: _Scope
    ) -> RobotModel:
        states: List[VarSpec] = []
        inputs: List[VarSpec] = []
        dynamics: Dict[str, Expr] = {}
        params: Dict[str, float] = {}

        # Preserve declaration order by walking the body again.
        for stmt in system.body:
            if not isinstance(stmt, ast.VarDecl):
                continue
            for d in stmt.declarators:
                entry = scope.entries.get(d.name)
                if entry is None:
                    continue
                for elem in _element_names(d.name, d.dims):
                    if stmt.kind == "state":
                        states.append(
                            VarSpec(
                                elem,
                                entry.lower.get(elem, -_INF),
                                entry.upper.get(elem, _INF),
                                entry.trim.get(elem, 0.0),
                            )
                        )
                        if elem not in entry.dt:
                            raise SemanticError(
                                f"state {elem!r} has no .dt dynamics", d.line
                            )
                        dynamics[elem] = entry.dt[elem]
                    elif stmt.kind == "input":
                        inputs.append(
                            VarSpec(
                                elem,
                                entry.lower.get(elem, -_INF),
                                entry.upper.get(elem, _INF),
                                entry.trim.get(elem, 0.0),
                            )
                        )
                    elif stmt.kind == "param":
                        if entry.value is not None:
                            params[elem] = float(entry.value)
        for formal in system.params:
            if formal.kind == "param":
                params[formal.name] = float(scope.entries[formal.name].value)

        return RobotModel(
            name=f"{system.name}:{instance}" if instance != system.name else system.name,
            states=states,
            inputs=inputs,
            dynamics=dynamics,
            params=params,
        )

    def _build_task(
        self,
        call: ast.TaskCall,
        task_def: ast.TaskDef,
        model: RobotModel,
        scope: _Scope,
    ) -> Task:
        penalties: List[Penalty] = []
        constraints: List[Constraint] = []

        for stmt in task_def.body:
            if not isinstance(stmt, ast.VarDecl):
                continue
            for d in stmt.declarators:
                entry = scope.entries.get(d.name)
                if entry is None:
                    continue
                for elem in _element_names(d.name, d.dims):
                    if stmt.kind == "penalty":
                        expr, timing = self._timed_expr(entry, elem, d.line)
                        penalties.append(
                            Penalty(
                                elem,
                                expr,
                                entry.weight.get(elem, 1.0),
                                timing,
                            )
                        )
                    elif stmt.kind == "constraint":
                        expr, timing = self._timed_expr(entry, elem, d.line)
                        if elem in entry.equals:
                            lo = hi = entry.equals[elem]
                            if elem in entry.lower or elem in entry.upper:
                                raise SemanticError(
                                    f"constraint {elem!r} mixes .equals with "
                                    "bounds",
                                    d.line,
                                )
                        else:
                            lo = entry.lower.get(elem, -_INF)
                            hi = entry.upper.get(elem, _INF)
                        constraints.append(
                            Constraint(elem, expr, lo, hi, timing)
                        )

        # References used by this task: model-external vars in the exprs.
        used = set()
        from repro.symbolic import variables_of

        model_vars = set(model.state_names) | set(model.input_names)
        for item in penalties + constraints:
            for v in variables_of([item.expr]):
                if v.name not in model_vars:
                    used.add(v.name)
        references = [r for r in self._reference_order if r in used]

        return Task(
            name=call.task,
            model=model,
            penalties=penalties,
            constraints=constraints,
            references=references,
        )

    def _timed_expr(self, entry: _Entry, elem: str, line: int):
        if elem in entry.running:
            return entry.running[elem], "running"
        if elem in entry.terminal:
            return entry.terminal[elem], "terminal"
        raise SemanticError(
            f"{entry.kind} {elem!r} was declared but never assigned a "
            ".running or .terminal expression",
            line,
        )


def analyze(program: ast.Program) -> AnalysisResult:
    """Run semantic analysis over a parsed RoboX program."""
    return _Analyzer(program).run()
