"""AST node definitions for the RoboX DSL.

The tree mirrors the surface syntax closely; all meaning (array expansion,
range broadcasting, symbolic vs. imperative evaluation) is resolved by the
semantic analyzer in :mod:`repro.dsl.semantics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

__all__ = [
    "Program",
    "SystemDef",
    "TaskDef",
    "ParamDecl",
    "VarDecl",
    "Declarator",
    "Assignment",
    "LValue",
    "ReferenceDecl",
    "InstanceDecl",
    "TaskCall",
    "NumberLit",
    "Name",
    "Index",
    "FieldAccess",
    "BinaryOp",
    "UnaryOp",
    "FuncCall",
    "GroupOp",
]


# -- expressions -------------------------------------------------------------------


@dataclass(frozen=True)
class NumberLit:
    value: float
    line: int = 0


@dataclass(frozen=True)
class Name:
    ident: str
    line: int = 0


@dataclass(frozen=True)
class Index:
    """``base[index]`` — array element or range-variable subscript."""

    base: "ExprNode"
    index: "ExprNode"
    line: int = 0


@dataclass(frozen=True)
class FieldAccess:
    """``base.field`` (dt, weight, lower_bound, running, ...)."""

    base: "ExprNode"
    field: str
    line: int = 0


@dataclass(frozen=True)
class BinaryOp:
    op: str  # '+', '-', '*', '/', '^'
    left: "ExprNode"
    right: "ExprNode"
    line: int = 0


@dataclass(frozen=True)
class UnaryOp:
    op: str  # '-'
    operand: "ExprNode"
    line: int = 0


@dataclass(frozen=True)
class FuncCall:
    """Nonlinear builtin: ``sin(expr)``, ``sqrt(expr)``, ..."""

    func: str
    args: Tuple["ExprNode", ...]
    line: int = 0


@dataclass(frozen=True)
class GroupOp:
    """Group operation over ranges: ``sum[i](expr)``, ``norm[i](...)``."""

    func: str  # 'sum' | 'norm' | 'min' | 'max'
    ranges: Tuple[str, ...]  # range variable names in the brackets
    body: "ExprNode"
    line: int = 0


ExprNode = Union[NumberLit, Name, Index, FieldAccess, BinaryOp, UnaryOp, FuncCall, GroupOp]


# -- statements ----------------------------------------------------------------------


@dataclass(frozen=True)
class Declarator:
    """One declared name with optional dimensions or a range interval.

    ``state pos[2]`` -> Declarator("pos", dims=(2,))
    ``range i[0:2]`` -> Declarator("i", interval=(0, 2))
    """

    name: str
    dims: Tuple[int, ...] = ()
    interval: Optional[Tuple[int, int]] = None
    line: int = 0


@dataclass(frozen=True)
class VarDecl:
    """``state a, b[2];`` — one keyword, many declarators."""

    kind: str  # state | input | param | penalty | constraint | reference | range
    declarators: Tuple[Declarator, ...]
    line: int = 0


@dataclass(frozen=True)
class LValue:
    """Assignment target: name, optional subscripts, optional field."""

    name: str
    indices: Tuple[ExprNode, ...] = ()
    field: Optional[str] = None
    line: int = 0


@dataclass(frozen=True)
class Assignment:
    """``lvalue = expr;`` (symbolic) or ``lvalue <= expr;`` (imperative)."""

    target: LValue
    expr: ExprNode
    symbolic: bool
    line: int = 0


@dataclass(frozen=True)
class ParamDecl:
    """Formal parameter of a System or Task header."""

    kind: str  # 'param' | 'reference'
    name: str
    line: int = 0


@dataclass(frozen=True)
class TaskDef:
    name: str
    params: Tuple[ParamDecl, ...]
    body: Tuple[Union[VarDecl, Assignment], ...]
    line: int = 0


@dataclass(frozen=True)
class SystemDef:
    name: str
    params: Tuple[ParamDecl, ...]
    body: Tuple[Union[VarDecl, Assignment, TaskDef], ...]
    line: int = 0


@dataclass(frozen=True)
class ReferenceDecl:
    """Global ``reference desired_x;`` declaration."""

    names: Tuple[Declarator, ...]
    line: int = 0


@dataclass(frozen=True)
class InstanceDecl:
    """``MobileRobot robot(0.1, 0.01);`` — instantiate a System."""

    system: str
    name: str
    args: Tuple[ExprNode, ...]
    line: int = 0


@dataclass(frozen=True)
class TaskCall:
    """``robot.moveTo(desired_x, desired_y, 1);``"""

    instance: str
    task: str
    args: Tuple[ExprNode, ...]
    line: int = 0


@dataclass(frozen=True)
class Program:
    items: Tuple[Union[SystemDef, ReferenceDecl, InstanceDecl, TaskCall], ...]
