"""RoboX domain-specific language frontend (paper §IV).

The DSL lets a roboticist express a robot ``System`` (states, inputs,
dynamics, physical constraints) and its ``Task`` (penalties, constraints)
close to the mathematical formulation; the frontend lowers programs to the
same :class:`~repro.mpc.model.RobotModel` / :class:`~repro.mpc.task.Task` IR
used by the Python builder API, from which the Program Translator and
Controller Compiler proceed.

Typical use::

    from repro.dsl import compile_program

    result = compile_program(source_text)
    model, task = result.model, result.task
"""

from repro.dsl.lexer import tokenize
from repro.dsl.parser import parse
from repro.dsl.semantics import AnalysisResult, GroupOpRecord, analyze

__all__ = [
    "tokenize",
    "parse",
    "analyze",
    "compile_program",
    "AnalysisResult",
    "GroupOpRecord",
]


def compile_program(source: str) -> AnalysisResult:
    """Parse and analyze a RoboX program, returning its models and tasks."""
    return analyze(parse(source))
