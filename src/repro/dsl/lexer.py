"""Lexer for the RoboX DSL.

Produces a flat token stream for the recursive-descent parser.  Supports
C++-style ``//`` line comments and ``/* ... */`` block comments, decimal and
scientific-notation numbers, and tracks 1-based line/column positions for
error reporting.
"""

from __future__ import annotations

from typing import List

from repro.dsl.tokens import Token, TokenType
from repro.errors import LexerError

__all__ = ["tokenize"]

_SINGLE = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ",": TokenType.COMMA,
    ";": TokenType.SEMICOLON,
    ":": TokenType.COLON,
    ".": TokenType.DOT,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "^": TokenType.CARET,
}


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` into a list ending with an EOF token."""
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(count: int = 1) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]

        # -- whitespace -----------------------------------------------------------
        if ch in " \t\r\n":
            advance()
            continue

        # -- comments -------------------------------------------------------------
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                advance()
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "*":
            start_line, start_col = line, col
            advance(2)
            while i + 1 < n and not (source[i] == "*" and source[i + 1] == "/"):
                advance()
            if i + 1 >= n:
                raise LexerError("unterminated block comment", start_line, start_col)
            advance(2)
            continue

        # -- numbers ----------------------------------------------------------------
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            start_line, start_col = line, col
            seen_dot = False
            while i < n and (source[i].isdigit() or (source[i] == "." and not seen_dot)):
                if source[i] == ".":
                    # Don't swallow a field access after an integer: `2.dt`
                    # never occurs, but `pos[0].dt` requires the dot to stay
                    # separate when not followed by a digit.
                    if i + 1 >= n or not source[i + 1].isdigit():
                        break
                    seen_dot = True
                advance()
            # scientific notation
            if i < n and source[i] in "eE":
                j = i + 1
                if j < n and source[j] in "+-":
                    j += 1
                if j < n and source[j].isdigit():
                    advance(j - i)
                    while i < n and source[i].isdigit():
                        advance()
            text = source[start:i]
            try:
                float(text)
            except ValueError:
                raise LexerError(f"malformed number {text!r}", start_line, start_col)
            tokens.append(Token(TokenType.NUMBER, text, start_line, start_col))
            continue

        # -- identifiers / keywords ---------------------------------------------------
        if ch.isalpha() or ch == "_":
            start = i
            start_line, start_col = line, col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                advance()
            tokens.append(
                Token(TokenType.IDENT, source[start:i], start_line, start_col)
            )
            continue

        # -- two-character operator <= -----------------------------------------------
        if ch == "<" and i + 1 < n and source[i + 1] == "=":
            tokens.append(Token(TokenType.IMPERATIVE, "<=", line, col))
            advance(2)
            continue

        if ch == "=":
            tokens.append(Token(TokenType.ASSIGN, "=", line, col))
            advance()
            continue

        if ch in _SINGLE:
            tokens.append(Token(_SINGLE[ch], ch, line, col))
            advance()
            continue

        raise LexerError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token(TokenType.EOF, "", line, col))
    return tokens
