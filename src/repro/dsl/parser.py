"""Recursive-descent parser for the RoboX DSL.

Grammar (informal):

    program      := (system_def | reference_decl | instance_decl | task_call)*
    system_def   := "System" IDENT "(" header_params? ")" "{" system_item* "}"
    header_params:= header_param ("," header_param)*
    header_param := ("param" | "reference") IDENT
    system_item  := var_decl | assignment | task_def
    task_def     := "Task" IDENT "(" header_params? ")" "{" task_item* "}"
    task_item    := var_decl | assignment
    var_decl     := KIND declarator ("," declarator)* ";"
    declarator   := IDENT ("[" NUMBER (":" NUMBER)? "]")*
    assignment   := lvalue ("=" | "<=") expr ";"
    lvalue       := IDENT ("[" expr "]")* ("." IDENT)?
    expr         := additive (with ^ for power, standard precedence)
    primary      := NUMBER | func "(" expr ")" | group "[" idents "]" "(" expr ")"
                  | IDENT postfix* | "(" expr ")" | "-" primary
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.dsl import ast_nodes as ast
from repro.dsl.tokens import (
    BUILTIN_FUNCTIONS,
    GROUP_FUNCTIONS,
    KEYWORDS,
    Token,
    TokenType,
)
from repro.dsl.lexer import tokenize
from repro.errors import ParseError

__all__ = ["parse"]

_DECL_KINDS = (
    "state",
    "input",
    "param",
    "penalty",
    "constraint",
    "reference",
    "range",
)

_FIELDS = {
    "dt",
    "weight",
    "lower_bound",
    "upper_bound",
    "equals",
    "running",
    "terminal",
}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -----------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.type != TokenType.EOF:
            self.pos += 1
        return tok

    def check(self, type_: str, value: Optional[str] = None) -> bool:
        tok = self.peek()
        if tok.type != type_:
            return False
        return value is None or tok.value == value

    def expect(self, type_: str, value: Optional[str] = None) -> Token:
        tok = self.peek()
        if not self.check(type_, value):
            want = value or type_
            raise ParseError(
                f"expected {want!r}, found {tok.value or tok.type!r}",
                tok.line,
                tok.column,
            )
        return self.advance()

    def error(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(message, tok.line, tok.column)

    # -- program -------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        items = []
        while not self.check(TokenType.EOF):
            items.append(self.parse_top_level())
        return ast.Program(tuple(items))

    def parse_top_level(self):
        tok = self.peek()
        if self.check(TokenType.IDENT, "System"):
            return self.parse_system()
        if self.check(TokenType.IDENT, "reference"):
            return self.parse_reference_decl()
        if tok.type == TokenType.IDENT:
            # Either `Type name(args);` or `instance.task(args);`
            if self.peek(1).type == TokenType.DOT:
                return self.parse_task_call()
            if self.peek(1).type == TokenType.IDENT:
                return self.parse_instance_decl()
        raise self.error(
            "expected a System definition, reference declaration, system "
            "instantiation, or task call"
        )

    # -- System / Task ------------------------------------------------------------
    def parse_system(self) -> ast.SystemDef:
        start = self.expect(TokenType.IDENT, "System")
        name = self.expect(TokenType.IDENT).value
        params = self.parse_header_params()
        self.expect(TokenType.LBRACE)
        body = []
        while not self.check(TokenType.RBRACE):
            if self.check(TokenType.IDENT, "Task"):
                body.append(self.parse_task())
            else:
                body.append(self.parse_statement())
        self.expect(TokenType.RBRACE)
        return ast.SystemDef(name, params, tuple(body), start.line)

    def parse_task(self) -> ast.TaskDef:
        start = self.expect(TokenType.IDENT, "Task")
        name = self.expect(TokenType.IDENT).value
        params = self.parse_header_params()
        self.expect(TokenType.LBRACE)
        body = []
        while not self.check(TokenType.RBRACE):
            body.append(self.parse_statement())
        self.expect(TokenType.RBRACE)
        return ast.TaskDef(name, params, tuple(body), start.line)

    def parse_header_params(self) -> Tuple[ast.ParamDecl, ...]:
        self.expect(TokenType.LPAREN)
        params = []
        while not self.check(TokenType.RPAREN):
            kind_tok = self.expect(TokenType.IDENT)
            if kind_tok.value not in ("param", "reference"):
                raise ParseError(
                    f"header parameters must be 'param' or 'reference', "
                    f"found {kind_tok.value!r}",
                    kind_tok.line,
                    kind_tok.column,
                )
            name = self.expect(TokenType.IDENT).value
            params.append(ast.ParamDecl(kind_tok.value, name, kind_tok.line))
            if not self.check(TokenType.RPAREN):
                self.expect(TokenType.COMMA)
        self.expect(TokenType.RPAREN)
        return tuple(params)

    # -- statements -------------------------------------------------------------------
    def parse_statement(self) -> Union[ast.VarDecl, ast.Assignment]:
        tok = self.peek()
        if tok.type == TokenType.IDENT and tok.value in _DECL_KINDS:
            # Disambiguate `param x;` declaration from an assignment to a
            # variable that happens to be named like a keyword (disallowed).
            return self.parse_var_decl()
        return self.parse_assignment()

    def parse_var_decl(self) -> ast.VarDecl:
        kind_tok = self.advance()
        kind = kind_tok.value
        declarators = [self.parse_declarator(kind)]
        while self.check(TokenType.COMMA):
            self.advance()
            declarators.append(self.parse_declarator(kind))
        self.expect(TokenType.SEMICOLON)
        return ast.VarDecl(kind, tuple(declarators), kind_tok.line)

    def parse_declarator(self, kind: str) -> ast.Declarator:
        name_tok = self.expect(TokenType.IDENT)
        if name_tok.value in KEYWORDS:
            raise ParseError(
                f"{name_tok.value!r} is a reserved word",
                name_tok.line,
                name_tok.column,
            )
        dims: List[int] = []
        interval: Optional[Tuple[int, int]] = None
        while self.check(TokenType.LBRACKET):
            self.advance()
            first = self.expect(TokenType.NUMBER)
            if self.check(TokenType.COLON):
                if kind != "range":
                    raise ParseError(
                        "interval syntax [lo:hi] is only valid for range "
                        "declarations",
                        first.line,
                        first.column,
                    )
                self.advance()
                second = self.expect(TokenType.NUMBER)
                interval = (int(float(first.value)), int(float(second.value)))
            else:
                dims.append(int(float(first.value)))
            self.expect(TokenType.RBRACKET)
        if kind == "range" and interval is None:
            raise ParseError(
                "range declarations require an interval, e.g. range i[0:2];",
                name_tok.line,
                name_tok.column,
            )
        return ast.Declarator(
            name_tok.value, tuple(dims), interval, name_tok.line
        )

    def parse_assignment(self) -> ast.Assignment:
        target = self.parse_lvalue()
        if self.check(TokenType.ASSIGN):
            self.advance()
            symbolic = True
        elif self.check(TokenType.IMPERATIVE):
            self.advance()
            symbolic = False
        else:
            raise self.error("expected '=' or '<=' in assignment")
        expr = self.parse_expr()
        self.expect(TokenType.SEMICOLON)
        return ast.Assignment(target, expr, symbolic, target.line)

    def parse_lvalue(self) -> ast.LValue:
        name_tok = self.expect(TokenType.IDENT)
        indices: List[ast.ExprNode] = []
        while self.check(TokenType.LBRACKET):
            self.advance()
            indices.append(self.parse_expr())
            self.expect(TokenType.RBRACKET)
        fld: Optional[str] = None
        if self.check(TokenType.DOT):
            self.advance()
            fld_tok = self.expect(TokenType.IDENT)
            if fld_tok.value not in _FIELDS:
                raise ParseError(
                    f"unknown field {fld_tok.value!r}; valid fields: "
                    f"{sorted(_FIELDS)}",
                    fld_tok.line,
                    fld_tok.column,
                )
            fld = fld_tok.value
        return ast.LValue(name_tok.value, tuple(indices), fld, name_tok.line)

    # -- top-level non-System statements -------------------------------------------
    def parse_reference_decl(self) -> ast.ReferenceDecl:
        start = self.expect(TokenType.IDENT, "reference")
        decls = [self.parse_declarator("reference")]
        while self.check(TokenType.COMMA):
            self.advance()
            decls.append(self.parse_declarator("reference"))
        self.expect(TokenType.SEMICOLON)
        return ast.ReferenceDecl(tuple(decls), start.line)

    def parse_instance_decl(self) -> ast.InstanceDecl:
        system = self.expect(TokenType.IDENT)
        name = self.expect(TokenType.IDENT).value
        self.expect(TokenType.LPAREN)
        args = self.parse_call_args()
        self.expect(TokenType.SEMICOLON)
        return ast.InstanceDecl(system.value, name, args, system.line)

    def parse_task_call(self) -> ast.TaskCall:
        instance = self.expect(TokenType.IDENT)
        self.expect(TokenType.DOT)
        task = self.expect(TokenType.IDENT).value
        self.expect(TokenType.LPAREN)
        args = self.parse_call_args()
        self.expect(TokenType.SEMICOLON)
        return ast.TaskCall(instance.value, task, args, instance.line)

    def parse_call_args(self) -> Tuple[ast.ExprNode, ...]:
        args: List[ast.ExprNode] = []
        while not self.check(TokenType.RPAREN):
            args.append(self.parse_expr())
            if not self.check(TokenType.RPAREN):
                self.expect(TokenType.COMMA)
        self.expect(TokenType.RPAREN)
        return tuple(args)

    # -- expressions (precedence climbing) --------------------------------------------
    def parse_expr(self) -> ast.ExprNode:
        return self.parse_additive()

    def parse_additive(self) -> ast.ExprNode:
        left = self.parse_multiplicative()
        while self.peek().type in (TokenType.PLUS, TokenType.MINUS):
            op = self.advance()
            right = self.parse_multiplicative()
            left = ast.BinaryOp(op.value, left, right, op.line)
        return left

    def parse_multiplicative(self) -> ast.ExprNode:
        left = self.parse_unary()
        while self.peek().type in (TokenType.STAR, TokenType.SLASH):
            op = self.advance()
            right = self.parse_unary()
            left = ast.BinaryOp(op.value, left, right, op.line)
        return left

    def parse_unary(self) -> ast.ExprNode:
        if self.check(TokenType.MINUS):
            op = self.advance()
            return ast.UnaryOp("-", self.parse_unary(), op.line)
        if self.check(TokenType.PLUS):
            self.advance()
            return self.parse_unary()
        return self.parse_power()

    def parse_power(self) -> ast.ExprNode:
        base = self.parse_postfix()
        if self.check(TokenType.CARET):
            op = self.advance()
            # Right associative: a^b^c = a^(b^c)
            exponent = self.parse_unary()
            return ast.BinaryOp("^", base, exponent, op.line)
        return base

    def parse_postfix(self) -> ast.ExprNode:
        node = self.parse_primary()
        while True:
            if self.check(TokenType.LBRACKET):
                tok = self.advance()
                index = self.parse_expr()
                self.expect(TokenType.RBRACKET)
                node = ast.Index(node, index, tok.line)
            elif self.check(TokenType.DOT):
                tok = self.advance()
                fld = self.expect(TokenType.IDENT)
                node = ast.FieldAccess(node, fld.value, tok.line)
            else:
                return node

    def parse_primary(self) -> ast.ExprNode:
        tok = self.peek()
        if tok.type == TokenType.NUMBER:
            self.advance()
            return ast.NumberLit(float(tok.value), tok.line)
        if tok.type == TokenType.LPAREN:
            self.advance()
            inner = self.parse_expr()
            self.expect(TokenType.RPAREN)
            return inner
        if tok.type == TokenType.IDENT:
            # Group op: sum[i](...) / norm[i][j](...)
            if tok.value in GROUP_FUNCTIONS and self.peek(1).type == TokenType.LBRACKET:
                self.advance()
                ranges: List[str] = []
                while self.check(TokenType.LBRACKET):
                    self.advance()
                    ranges.append(self.expect(TokenType.IDENT).value)
                    self.expect(TokenType.RBRACKET)
                self.expect(TokenType.LPAREN)
                body = self.parse_expr()
                self.expect(TokenType.RPAREN)
                return ast.GroupOp(tok.value, tuple(ranges), body, tok.line)
            # Nonlinear builtin: sin(...), sqrt(...)
            if tok.value in BUILTIN_FUNCTIONS and self.peek(1).type == TokenType.LPAREN:
                self.advance()
                self.advance()  # (
                args = [self.parse_expr()]
                while self.check(TokenType.COMMA):
                    self.advance()
                    args.append(self.parse_expr())
                self.expect(TokenType.RPAREN)
                return ast.FuncCall(tok.value, tuple(args), tok.line)
            self.advance()
            return ast.Name(tok.value, tok.line)
        raise self.error(f"unexpected token {tok.value or tok.type!r} in expression")


def parse(source: str) -> ast.Program:
    """Parse RoboX DSL source text into a :class:`Program` AST."""
    return _Parser(tokenize(source)).parse_program()
