"""Shared exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch toolchain failures with a single ``except`` clause while still being
able to distinguish DSL errors from solver or accelerator errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro toolchain."""


class SymbolicError(ReproError):
    """Malformed symbolic expression or unsupported operation."""


class DifferentiationError(SymbolicError):
    """An expression could not be differentiated."""


class ModelError(ReproError):
    """Inconsistent robot model definition (states, inputs, dynamics)."""


class TaskError(ReproError):
    """Inconsistent task definition (penalties, constraints)."""


class TranscriptionError(ReproError):
    """The MPC problem could not be transcribed over the horizon."""


class VectorizationError(TranscriptionError):
    """A compiled stage function could not be re-bound to an array backend
    (missing ufunc twin, malformed generated source, backend rejection).

    The batch linearizer catches exactly this to drop to its per-lane loop
    fallback; any other exception from vectorization is a genuine bug and
    propagates."""


class CodegenError(ReproError):
    """Fused-kernel emission or build failure (codegen subsystem).

    Raised when a DAG contains an op with no emitted spelling, a constant
    that cannot cross into C, or the cffi build fails — callers step one
    tier down the codegen fallback ladder instead of crashing."""


class SolverError(ReproError):
    """The interior-point solver failed (singular KKT, divergence, ...)."""


class StateValidationError(SolverError):
    """A solve was rejected before it started: the measured state (or other
    caller-supplied data) contained non-finite entries.

    Carries the structured :class:`~repro.mpc.health.SolverHealth` report on
    ``health`` so callers (the serving session, telemetry) can distinguish
    numerical poison at the *input* from a failure inside the solver.
    """

    def __init__(self, message: str, health=None):
        super().__init__(message)
        self.health = health


class DSLError(ReproError):
    """Base class for DSL frontend failures."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, col {column}: {message}"
        super().__init__(message)


class LexerError(DSLError):
    """Invalid character or malformed token in a RoboX program."""


class ParseError(DSLError):
    """Syntactically invalid RoboX program."""


class SemanticError(DSLError):
    """Well-formed program with inconsistent meaning (undefined names, ...)."""


class CompilerError(ReproError):
    """Program Translator / Controller Compiler failure."""


class MappingError(CompilerError):
    """Algorithm-1 mapping could not place an operation."""


class ScheduleError(CompilerError):
    """Static schedule construction failed."""


class ISAError(CompilerError):
    """Instruction encode/decode failure."""


class AcceleratorError(ReproError):
    """Simulator configuration or execution failure."""


class FixedPointError(AcceleratorError):
    """Fixed-point overflow or invalid format."""


class BaselineError(ReproError):
    """Baseline platform model failure."""


class ConformanceError(ReproError):
    """Differential conformance harness failure (bad case, unknown path,
    malformed tolerance ledger)."""


class ServeError(ReproError):
    """Serving-runtime failure (session lifecycle, engine configuration)."""


class AdmissionError(ServeError):
    """The serving engine rejected a new session (capacity exhausted)."""


class SessionStateError(ServeError):
    """Operation invalid for the session's current lifecycle state."""
